// Reproduces Figure 11 of the paper: performance in a realistic IoT setup
// with Raspberry Pi 4B local nodes (weak CPU, 1 Gbit/s Ethernet with a
// measured ~49 MB/s effective ceiling) and an Intel root node. We emulate
// the Pi with a per-node CPU throttle and an egress bandwidth cap on the
// fabric (DESIGN.md substitution table). Expected shape: the centralized
// schemes pin at the NIC ceiling (their throughput is bytes-bound) while
// Deco_async, which ships partial results, is CPU-bound and scales linearly
// with the number of Pis (11d).

#include "bench/bench_util.h"

using namespace deco;

namespace {

ExperimentConfig PiConfig(Scheme scheme, size_t locals, uint64_t events) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.query.window = WindowSpec::CountTumbling(100'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = locals;
  config.streams_per_local = 4;
  config.events_per_local = events;
  config.base_rate = 1e6;
  config.rate_change = 0.01;
  config.batch_size = 8192;
  config.seed = 42;
  // Raspberry Pi emulation: weak cores and the measured NIC ceiling.
  config.cpu_events_per_sec = 4'000'000;
  config.egress_bytes_per_sec = 49'000'000;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "fig11_iot");
  const uint64_t events = opts.Scaled(2'000'000);
  const std::vector<Scheme> schemes = opts.Schemes(
      {Scheme::kCentral, Scheme::kScotty, Scheme::kDisco,
       Scheme::kDecoAsync});

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("events_per_local", static_cast<int64_t>(events));
  recorder.SetConfig("window", static_cast<int64_t>(100'000));
  recorder.SetConfig("cpu_events_per_sec", static_cast<int64_t>(4'000'000));
  recorder.SetConfig("egress_bytes_per_sec",
                     static_cast<int64_t>(49'000'000));
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Figure 11a-11c: Raspberry Pi cluster emulation "
              "(2 Pis + root, CPU cap 4M ev/s, NIC cap 49 MB/s)\n");
  bench::PrintHeader("Fig 11a/11b/11c");
  for (Scheme scheme : schemes) {
    ExperimentConfig config = PiConfig(
        scheme, 2, scheme == Scheme::kDisco ? events / 4 : events);
    opts.ApplyCommon(&config, SchemeToString(scheme));
    bench::RunAndRecord(config, opts, &recorder, SchemeToString(scheme));
  }

  std::printf("\nFigure 11d: throughput vs. number of Pis\n");
  std::printf("%-14s", "scheme");
  const std::vector<int64_t> node_counts =
      opts.flags.GetIntList("nodes", {1, 2, 3, 4});
  for (int64_t n : node_counts) std::printf(" %9lld Pis", (long long)n);
  std::printf("   (M events/s)\n");
  for (Scheme scheme : {Scheme::kScotty, Scheme::kDecoAsync}) {
    std::printf("%-14s", SchemeToString(scheme));
    for (int64_t n : node_counts) {
      const std::string label = std::string(SchemeToString(scheme)) +
                                "/11d/pis=" + std::to_string(n);
      bool ok = true;
      double tput = 0.0;
      for (int r = 0; r < opts.repeat && ok; ++r) {
        ExperimentConfig config =
            PiConfig(scheme, static_cast<size_t>(n), events);
        opts.ApplyCommon(&config, label);
        auto result = RunExperiment(config);
        if (!result.ok()) {
          ok = false;
          break;
        }
        tput = result->throughput_eps;
        recorder.AddReport(label, *result);
      }
      if (ok) {
        std::printf(" %13.3f", tput / 1e6);
      } else {
        std::printf(" %13s", "ERR");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return bench::Finish(opts, recorder);
}
