// Measures what the observability plane itself costs as the fleet grows
// from 10 to 1000 locals (DESIGN.md §13), and gates the cardinality-
// governance guarantees:
//
//   1. at the largest fleet the /metrics exposition stays under
//      --max_bytes (default 256 KiB);
//   2. sampler tick cost and telemetry JSON size grow sublinearly in the
//      node count (the strided detail scans and the fleet sketches bound
//      the expensive per-node work by the detail limit, not the fleet);
//   3. at 10 nodes — under every governance limit — the telemetry,
//      /metrics and provenance output is byte-identical to a run with
//      governance disabled (--obs_node_detail_limit=0), once the
//      wall-clock self-metering values (the document's only
//      non-replayable part under --sim) are blanked.
//
// Sim-only by design: the structural metrics it records are
// machine-independent and CI-gated against bench/baselines/.

#include "bench/bench_util.h"
#include "obs/export.h"
#include "obs/provenance.h"

using namespace deco;

namespace {

/// Blanks the JSON object around each occurrence of `marker` (flat
/// objects only — the self-metering spans are deliberately kept flat so
/// this stays trivial). `object_starts_after` picks between a marker that
/// precedes its object (`"obs_self": {...}`) and one inside it
/// (`{"name": "obs.self...", ...}`).
void BlankObjectSpans(std::string* text, const std::string& marker,
                      bool object_starts_after) {
  size_t pos = 0;
  while ((pos = text->find(marker, pos)) != std::string::npos) {
    const size_t begin = object_starts_after
                             ? text->find('{', pos + marker.size())
                             : text->rfind('{', pos);
    if (begin == std::string::npos) break;
    const size_t end = text->find('}', begin);
    if (end == std::string::npos) break;
    // Fixed-width token: the spans differ in length across runs (e.g.
    // "node_detail_limit": 64 vs 0), so in-place blanking is not enough.
    text->replace(begin, end - begin + 1, "#");
    pos = begin + 1;
  }
}

/// Telemetry JSON minus its wall-clock carriers: the
/// obs.self.sampler_tick_nanos sketch snapshots inside samples and the
/// flat obs_self document section.
std::string ScrubTelemetryJson(std::string json) {
  BlankObjectSpans(&json, "obs.self.sampler_tick_nanos", false);
  BlankObjectSpans(&json, "\"obs_self\"", true);
  return json;
}

/// /metrics exposition minus every deco_obs_self_* line (scrape counts
/// and wall-clock self-metering differ per run even under --sim).
std::string ScrubExposition(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size() - 1;
    const std::string line = text.substr(pos, eol - pos + 1);
    if (line.find("deco_obs_self") == std::string::npos) out += line;
    pos = eol + 1;
  }
  return out;
}

struct RunArtifacts {
  RunReport report;
  TelemetryLog log;
  std::string exposition;
  std::string telemetry_json;
  std::string provenance_json;
};

bool RunOnce(const bench::BenchOptions& opts, int64_t nodes,
             size_t node_detail_limit, RunArtifacts* out) {
  ExperimentConfig config;
  config.scheme = Scheme::kDecoAsync;
  config.query.window = WindowSpec::CountTumbling(
      500 * static_cast<uint64_t>(nodes));
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = static_cast<size_t>(nodes);
  config.streams_per_local = 2;
  config.events_per_local = opts.Scaled(2000);
  config.base_rate = 1e6;
  config.rate_change = 0.01;
  config.batch_size = 64;
  // Pace the locals so virtual time advances and the sampler gets a
  // real tick series (~10 ticks at 2 ms interval).
  config.cpu_events_per_sec = 100'000;
  config.seed = 42;
  config.sim = true;  // sim-only bench: see file comment

  config.telemetry.enabled = true;
  config.telemetry.sample_interval_nanos = 2 * kNanosPerMilli;
  // Spans and hops are governed by the trace cap, not the node count:
  // the overflow lands in the hops/spans_dropped self-meters.
  config.telemetry.trace_capacity = 2048;
  config.telemetry.sink = &out->log;
  // The accuracy estimator replays the full streams; this bench measures
  // the plane, not the protocol, so skip it (windows_estimated stays 0).
  config.provenance.estimate = false;

  config.ops.metrics_sink = &out->exposition;
  config.obs_governance.node_detail_limit = node_detail_limit;

  auto result = RunExperiment(config);
  if (!result.ok()) {
    std::printf("nodes=%lld ERROR: %s\n", (long long)nodes,
                result.status().ToString().c_str());
    return false;
  }
  out->report = *result;
  out->telemetry_json = TelemetryToJson(out->report, out->log);
  out->provenance_json = ProvenanceJson(out->log.provenance);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "obs_overhead_at_scale");
  const std::vector<int64_t> node_counts =
      opts.flags.GetIntList("nodes", {10, 100, 1000});
  const uint64_t max_bytes = static_cast<uint64_t>(
      opts.flags.GetInt("max_bytes", 262144));

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("sim", true);
  recorder.SetConfig("events_per_local",
                     static_cast<int64_t>(opts.Scaled(2000)));
  recorder.SetConfig("max_bytes", static_cast<int64_t>(max_bytes));
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Observability overhead at scale (10 -> 1000 locals, --sim)\n");
  std::printf("%8s %12s %14s %14s %16s %12s\n", "nodes", "expo(B)",
              "telemetry(B)", "provenance(B)", "tick-mean(us)", "detail/n");

  bool ok = true;
  std::vector<int64_t> swept;
  std::vector<double> expo_bytes, telemetry_bytes, tick_mean_nanos;
  for (int64_t nodes : node_counts) {
    RunArtifacts run;
    if (!RunOnce(opts, nodes, /*node_detail_limit=*/64, &run)) return 1;
    const SamplerSelfStats& self = run.log.obs_self.sampler;
    const uint64_t detail = run.log.samples.empty()
                                ? 0
                                : run.log.samples.back().fleet.detail_nodes;
    std::printf("%8lld %12zu %14zu %14zu %16.1f %12llu\n", (long long)nodes,
                run.exposition.size(), run.telemetry_json.size(),
                run.provenance_json.size(), self.tick_nanos_mean / 1e3,
                (unsigned long long)detail);
    std::fflush(stdout);

    const std::string label = "deco-async/nodes=" + std::to_string(nodes);
    recorder.AddReport(label, run.report);
    recorder.AddMetric(label, "exposition_bytes",
                       static_cast<double>(run.exposition.size()));
    recorder.AddMetric(label, "telemetry_json_bytes",
                       static_cast<double>(run.telemetry_json.size()));
    recorder.AddMetric(label, "provenance_json_bytes",
                       static_cast<double>(run.provenance_json.size()));
    recorder.AddMetric(label, "sampler_tick_mean_nanos",
                       self.tick_nanos_mean);
    recorder.AddMetric(label, "sampler_ticks",
                       static_cast<double>(self.ticks));
    recorder.AddMetric(label, "detail_nodes",
                       static_cast<double>(detail));

    swept.push_back(nodes);
    expo_bytes.push_back(static_cast<double>(run.exposition.size()));
    telemetry_bytes.push_back(static_cast<double>(run.telemetry_json.size()));
    tick_mean_nanos.push_back(self.tick_nanos_mean);

    if (nodes == node_counts.back() &&
        run.exposition.size() > max_bytes) {
      std::printf("FAIL: exposition at %lld nodes is %zu bytes "
                  "(cap %llu)\n",
                  (long long)nodes, run.exposition.size(),
                  (unsigned long long)max_bytes);
      ok = false;
    }
  }

  // Sublinearity gates against the smallest fleet. Exposition and
  // telemetry sizes are dominated by governed (bounded) sections, so
  // half the node ratio leaves a wide margin. Tick cost keeps a cheap
  // O(n) scalar pass by design (the fleet totals must read every node),
  // so its gate is node-ratio with a denominator floor of 20 us — a
  // bounded-cost check that noisy tiny baselines cannot flake.
  if (swept.size() >= 2) {
    const double node_ratio = static_cast<double>(swept.back()) /
                              static_cast<double>(swept.front());
    const double expo_ratio = expo_bytes.back() / expo_bytes.front();
    const double telemetry_ratio =
        telemetry_bytes.back() / telemetry_bytes.front();
    const double tick_floor_nanos = std::max(tick_mean_nanos.front(), 2e4);
    const double tick_ratio = tick_mean_nanos.back() / tick_floor_nanos;
    std::printf("\ngrowth vs %lld-node row (node ratio %.0fx): "
                "exposition %.2fx, telemetry %.2fx, tick %.2fx\n",
                (long long)swept.front(), node_ratio, expo_ratio,
                tick_ratio == 0.0 ? 0.0 : telemetry_ratio, tick_ratio);
    if (expo_ratio >= node_ratio / 2) {
      std::printf("FAIL: exposition grows %.2fx (>= %.0fx)\n", expo_ratio,
                  node_ratio / 2);
      ok = false;
    }
    if (telemetry_ratio >= node_ratio / 2) {
      std::printf("FAIL: telemetry JSON grows %.2fx (>= %.0fx)\n",
                  telemetry_ratio, node_ratio / 2);
      ok = false;
    }
    if (tick_ratio >= node_ratio) {
      std::printf("FAIL: sampler tick cost grows %.2fx (>= %.0fx)\n",
                  tick_ratio, node_ratio);
      ok = false;
    }
  }

  // Governance no-op gate: at 10 nodes (below the default limit) a
  // governed run and an ungoverned (--obs_node_detail_limit=0) run must
  // produce byte-identical telemetry, exposition and provenance, modulo
  // the blanked wall-clock self-meters.
  {
    RunArtifacts governed, unlimited;
    if (!RunOnce(opts, 10, /*node_detail_limit=*/64, &governed)) return 1;
    if (!RunOnce(opts, 10, /*node_detail_limit=*/0, &unlimited)) return 1;
    if (ScrubTelemetryJson(governed.telemetry_json) !=
        ScrubTelemetryJson(unlimited.telemetry_json)) {
      std::printf("FAIL: governed 10-node telemetry JSON differs from "
                  "the ungoverned run\n");
      ok = false;
    }
    if (ScrubExposition(governed.exposition) !=
        ScrubExposition(unlimited.exposition)) {
      std::printf("FAIL: governed 10-node /metrics differs from the "
                  "ungoverned run\n");
      ok = false;
    }
    if (governed.provenance_json != unlimited.provenance_json) {
      std::printf("FAIL: governed 10-node provenance differs from the "
                  "ungoverned run\n");
      ok = false;
    }
    if (ok) {
      std::printf("10-node governance no-op verified (telemetry, "
                  "/metrics, provenance byte-identical)\n");
    }
  }

  const int rc = bench::Finish(opts, recorder);
  if (rc != 0) return rc;
  if (!ok) {
    std::printf("obs_overhead_at_scale: GATES FAILED\n");
    return 1;
  }
  std::printf("obs_overhead_at_scale: all gates passed\n");
  return 0;
}
