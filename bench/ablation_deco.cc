// Ablation study beyond the paper: the two tuning knobs DESIGN.md calls
// out for the prediction machinery.
//  1. The delta safety multiplier: the paper's literal Eq. 2 (x1.0) sizes
//     the raw edge at the mean absolute size change, which misses ~45% of
//     normal-tailed changes; widening it trades raw bytes for fewer
//     corrections.
//  2. The delta history length m (paper §4.2.2): small m reacts fast but
//     noisily, large m smooths.
// Output: corrections per 100 windows and network cost per cell.

#include "bench/bench_util.h"

using namespace deco;

namespace {

ExperimentConfig MakeConfig(double multiplier, size_t history_m,
                            double change, uint64_t events) {
  ExperimentConfig config;
  config.scheme = Scheme::kDecoSync;
  config.query.window = WindowSpec::CountTumbling(50'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 2;
  config.streams_per_local = 4;
  config.events_per_local = events;
  config.base_rate = 1e6;
  config.rate_change = change;
  config.batch_size = 8192;
  config.seed = 42;
  config.root_options.delta_multiplier = multiplier;
  config.root_options.predictor_history_m = history_m;
  return config;
}

std::string CellLabel(double multiplier, size_t m) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "mult=%g/m=%zu", multiplier, m);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "ablation_deco");
  const double change = opts.flags.GetDouble("change", 0.05);
  const uint64_t events = opts.Scaled(1'500'000);

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("change", change);
  recorder.SetConfig("events_per_local", static_cast<int64_t>(events));
  recorder.SetConfig("window", static_cast<int64_t>(50'000));
  recorder.SetConfig("scheme", "deco-sync");
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Ablation: Deco_sync delta multiplier x history m "
              "(rate change %.1f%%)\n", change * 100);
  std::printf("%-12s %-10s %16s %12s %14s\n", "multiplier", "history-m",
              "corrections/100w", "net(MB)", "tput(Mev/s)");
  for (double multiplier : {1.0, 2.0, 3.0, 4.0}) {
    for (size_t m : {size_t{1}, size_t{4}, size_t{16}}) {
      const std::string label = CellLabel(multiplier, m);
      RunReport report;
      for (int r = 0; r < opts.repeat; ++r) {
        ExperimentConfig config = MakeConfig(multiplier, m, change, events);
        opts.ApplyCommon(&config, label);
        auto result = RunExperiment(config);
        if (!result.ok()) continue;
        report = std::move(result).value();
        const double corr100 =
            report.windows_emitted == 0
                ? 0.0
                : 100.0 * static_cast<double>(report.correction_steps) /
                      static_cast<double>(report.windows_emitted);
        recorder.AddReport(label, report);
        recorder.AddMetric(label, "corrections_per_100_windows", corr100);
      }
      const double corr100 =
          report.windows_emitted == 0
              ? 0.0
              : 100.0 * static_cast<double>(report.correction_steps) /
                    static_cast<double>(report.windows_emitted);
      std::printf("%-12.1f %-10zu %16.1f %12.3f %14.3f\n", multiplier, m,
                  corr100,
                  static_cast<double>(report.network.total_bytes) / 1e6,
                  report.throughput_eps / 1e6);
      std::fflush(stdout);
    }
  }
  return bench::Finish(opts, recorder);
}
