// Ablation study beyond the paper: the two tuning knobs DESIGN.md calls
// out for the prediction machinery.
//  1. The delta safety multiplier: the paper's literal Eq. 2 (x1.0) sizes
//     the raw edge at the mean absolute size change, which misses ~45% of
//     normal-tailed changes; widening it trades raw bytes for fewer
//     corrections.
//  2. The delta history length m (paper §4.2.2): small m reacts fast but
//     noisily, large m smooths.
// Output: corrections per 100 windows and network cost per cell.

#include "bench/bench_util.h"

using namespace deco;

namespace {

RunReport Run(double multiplier, size_t history_m, double change) {
  ExperimentConfig config;
  config.scheme = Scheme::kDecoSync;
  config.query.window = WindowSpec::CountTumbling(50'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 2;
  config.streams_per_local = 4;
  config.events_per_local = 1'500'000;
  config.base_rate = 1e6;
  config.rate_change = change;
  config.batch_size = 8192;
  config.seed = 42;
  config.root_options.delta_multiplier = multiplier;
  config.root_options.predictor_history_m = history_m;
  auto result = RunExperiment(config);
  if (!result.ok()) return RunReport();
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const double change = flags.GetDouble("change", 0.05);

  std::printf("Ablation: Deco_sync delta multiplier x history m "
              "(rate change %.1f%%)\n", change * 100);
  std::printf("%-12s %-10s %16s %12s %14s\n", "multiplier", "history-m",
              "corrections/100w", "net(MB)", "tput(Mev/s)");
  for (double multiplier : {1.0, 2.0, 3.0, 4.0}) {
    for (size_t m : {size_t{1}, size_t{4}, size_t{16}}) {
      const RunReport report = Run(multiplier, m, change);
      const double corr100 =
          report.windows_emitted == 0
              ? 0.0
              : 100.0 * static_cast<double>(report.correction_steps) /
                    static_cast<double>(report.windows_emitted);
      std::printf("%-12.1f %-10zu %16.1f %12.3f %14.3f\n", multiplier, m,
                  corr100,
                  static_cast<double>(report.network.total_bytes) / 1e6,
                  report.throughput_eps / 1e6);
      std::fflush(stdout);
    }
  }
  return 0;
}
