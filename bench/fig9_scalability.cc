// Reproduces Figure 9 of the paper: throughput (9a) and latency (9b) while
// the number of local nodes grows from 1 upward. As in the paper, the
// window size grows with the node count to eliminate small-window effects.
// Expected shape: Deco_async's throughput scales roughly linearly with the
// node count (each node aggregates its own share) while the centralized
// schemes stay flat (the root is the bottleneck); Deco's latency rises
// slowly, the centralized schemes' stays constant.

#include "bench/bench_util.h"

using namespace deco;

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "fig9_scalability");
  const uint64_t window_per_node = opts.Scaled(50'000);
  const uint64_t events_per_node = opts.Scaled(2'000'000);
  const std::vector<int64_t> node_counts =
      opts.flags.GetIntList("nodes", {1, 2, 4, 8, 16});
  const std::vector<Scheme> schemes = opts.Schemes(
      {Scheme::kCentral, Scheme::kScotty, Scheme::kDisco,
       Scheme::kDecoAsync});

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("window_per_node",
                     static_cast<int64_t>(window_per_node));
  recorder.SetConfig("events_per_local",
                     static_cast<int64_t>(events_per_node));
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Figure 9: scalability with local node count "
              "(window = %llu * nodes, events/node = %llu)\n",
              static_cast<unsigned long long>(window_per_node),
              static_cast<unsigned long long>(events_per_node));

  for (int64_t nodes : node_counts) {
    std::printf("\n--- %lld local node(s) ---\n", (long long)nodes);
    bench::PrintHeader("Fig 9a/9b");
    for (Scheme scheme : schemes) {
      ExperimentConfig config;
      config.scheme = scheme;
      config.query.window = WindowSpec::CountTumbling(
          window_per_node * static_cast<uint64_t>(nodes));
      config.query.aggregate = AggregateKind::kSum;
      config.num_locals = static_cast<size_t>(nodes);
      config.streams_per_local = 4;
      config.events_per_local =
          scheme == Scheme::kDisco ? events_per_node / 8 : events_per_node;
      config.base_rate = 1e6;
      config.rate_change = 0.01;
      config.batch_size = 8192;
      config.seed = 42;
      const std::string label = std::string(SchemeToString(scheme)) +
                                "/nodes=" + std::to_string(nodes);
      opts.ApplyCommon(&config, label);
      bench::RunAndRecord(config, opts, &recorder, label);
    }
  }
  return bench::Finish(opts, recorder);
}
