// Reproduces Figure 9 of the paper: throughput (9a) and latency (9b) while
// the number of local nodes grows from 1 upward. As in the paper, the
// window size grows with the node count to eliminate small-window effects.
// Expected shape: Deco_async's throughput scales roughly linearly with the
// node count (each node aggregates its own share) while the centralized
// schemes stay flat (the root is the bottleneck); Deco's latency rises
// slowly, the centralized schemes' stays constant.
//
// Two sweep shapes share this binary:
//   * wall mode (default) follows the paper: 1..16 locals, a fixed event
//     budget per node, window growing with the node count;
//   * --sim sweeps the fan-in axis instead — 10 -> 1000 locals over a
//     fixed total workload — so the deterministic run finishes in
//     seconds at every width and the recorded structural metrics are
//     CI-comparable against bench/baselines/.

#include "bench/bench_util.h"

using namespace deco;

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "fig9_scalability");
  const uint64_t window_per_node = opts.Scaled(50'000);
  const uint64_t events_per_node = opts.Scaled(2'000'000);
  // Fixed total budget for the sim fan-in sweep: four windows regardless
  // of width, so every row emits/corrects the same window count and the
  // sweep isolates the cost of fan-in.
  const uint64_t sim_total_events = opts.Scaled(2'000'000);
  const std::vector<int64_t> node_counts = opts.flags.GetIntList(
      "nodes", opts.sim ? std::vector<int64_t>{10, 100, 1000}
                        : std::vector<int64_t>{1, 2, 4, 8, 16});
  const std::vector<Scheme> schemes = opts.Schemes(
      {Scheme::kCentral, Scheme::kScotty, Scheme::kDisco,
       Scheme::kDecoAsync});

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("window_per_node",
                     static_cast<int64_t>(window_per_node));
  recorder.SetConfig("events_per_local",
                     static_cast<int64_t>(events_per_node));
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Figure 9: scalability with local node count "
              "(window = %llu * nodes, events/node = %llu)\n",
              static_cast<unsigned long long>(window_per_node),
              static_cast<unsigned long long>(events_per_node));

  for (int64_t nodes : node_counts) {
    std::printf("\n--- %lld local node(s) ---\n", (long long)nodes);
    bench::PrintHeader("Fig 9a/9b");
    for (Scheme scheme : schemes) {
      const uint64_t base_per_node = opts.sim
          ? std::max<uint64_t>(sim_total_events /
                                   static_cast<uint64_t>(nodes), 1)
          : events_per_node;
      const uint64_t per_node =
          scheme == Scheme::kDisco ? std::max<uint64_t>(base_per_node / 8, 1)
                                   : base_per_node;
      ExperimentConfig config;
      config.scheme = scheme;
      // Sim windows come from the scheme's own budget so every scheme —
      // including Disco's reduced one — still emits four windows.
      config.query.window = WindowSpec::CountTumbling(
          opts.sim ? std::max<uint64_t>(
                         per_node * static_cast<uint64_t>(nodes) / 4, 1)
                   : window_per_node * static_cast<uint64_t>(nodes));
      config.query.aggregate = AggregateKind::kSum;
      config.num_locals = static_cast<size_t>(nodes);
      config.streams_per_local = 4;
      config.events_per_local = per_node;
      config.base_rate = 1e6;
      config.rate_change = 0.01;
      config.batch_size = 8192;
      config.seed = 42;
      const std::string label = std::string(SchemeToString(scheme)) +
                                "/nodes=" + std::to_string(nodes);
      opts.ApplyCommon(&config, label);
      bench::RunAndRecord(config, opts, &recorder, label);
    }
  }
  return bench::Finish(opts, recorder);
}
