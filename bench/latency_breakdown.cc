// Per-window latency attribution, side by side for every scheme: runs each
// approach with the causal trace sink enabled, joins the message hop
// records with the window-lifecycle spans (src/obs/critical_path.h) and
// prints where each scheme's emit latency goes — local aggregation,
// egress shaping, link latency, mailbox queueing, root merge, and (for
// Deco) correction round-trips. The decomposition telescopes along the
// critical path, so the components of every attributed window sum exactly
// to its end-to-end latency; the binary verifies that invariant (within
// 1%, the acceptance bound) and exits non-zero on violation.
//
//   latency_breakdown [--scale=<f>] [--schemes=a,b,c] [--locals=<n>]
//                     [--latency=<ms>]

#include <cmath>
#include <cstdlib>

#include "bench/bench_util.h"
#include "obs/critical_path.h"

using namespace deco;

namespace {

// Checks the telescoping invariant: component sums must match each
// attributed window's end-to-end latency within `tolerance` (relative).
bool VerifySums(const LatencyAttribution& attribution, double tolerance,
                const char* scheme) {
  bool ok = true;
  for (const WindowAttribution& w : attribution.windows) {
    const LatencyComponents& c = w.components;
    const double sum = static_cast<double>(
        c.local_compute_nanos + c.correction_nanos + c.shaping_nanos +
        c.link_nanos + c.queue_nanos + c.root_merge_nanos);
    const double total = static_cast<double>(c.total_nanos);
    const double bound = tolerance * std::max(total, 1.0);
    if (std::abs(sum - total) > bound) {
      std::printf("%-14s FAIL window %llu: components sum to %.0f ns but "
                  "total is %.0f ns\n",
                  scheme, static_cast<unsigned long long>(w.window_index),
                  sum, total);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint64_t window = bench::Scaled(flags, 100'000);
  const uint64_t events = bench::Scaled(flags, 1'000'000);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 4));
  const double latency_ms = flags.GetDouble("latency", 1.0);

  std::printf("Latency breakdown: %zu local nodes, window=%llu, "
              "events/node=%llu, link latency=%.1fms\n",
              locals, static_cast<unsigned long long>(window),
              static_cast<unsigned long long>(events), latency_ms);

  bool all_ok = true;
  for (Scheme scheme : bench::ParseSchemes(
           flags, {Scheme::kCentral, Scheme::kScotty, Scheme::kDisco,
                   Scheme::kApprox, Scheme::kDecoMon, Scheme::kDecoSync,
                   Scheme::kDecoAsync})) {
    ExperimentConfig config;
    config.scheme = scheme;
    config.query.window = WindowSpec::CountTumbling(window);
    config.query.aggregate = AggregateKind::kSum;
    config.num_locals = locals;
    config.streams_per_local = 4;
    // Disco's text path is ~10x slower; keep its run time comparable.
    config.events_per_local =
        scheme == Scheme::kDisco ? events / 4 : events;
    config.base_rate = 1e6;
    config.rate_change = 0.01;
    config.batch_size = 8192;
    config.link_latency_nanos =
        static_cast<TimeNanos>(latency_ms * kNanosPerMilli);
    config.seed = 42;

    TelemetryLog log;
    config.telemetry.enabled = true;
    config.telemetry.sink = &log;

    auto result = RunExperiment(config);
    if (!result.ok()) {
      std::printf("%-14s ERROR: %s\n", SchemeToString(scheme),
                  result.status().ToString().c_str());
      all_ok = false;
      continue;
    }

    const LatencyAttribution attribution = AttributeWindowLatency(log);
    std::printf("\n=== %s ===\n", SchemeToString(scheme));
    std::printf("%s", FormatLatencyBreakdown(attribution).c_str());
    if (!VerifySums(attribution, 0.01, SchemeToString(scheme))) {
      all_ok = false;
    }
    std::fflush(stdout);
  }

  if (!all_ok) {
    std::printf("\nFAIL: latency components did not telescope\n");
    return 1;
  }
  std::printf("\nOK: all attributed windows sum to their end-to-end "
              "latency (within 1%%)\n");
  return 0;
}
