// Per-window latency attribution, side by side for every scheme: runs each
// approach with the causal trace sink enabled, joins the message hop
// records with the window-lifecycle spans (src/obs/critical_path.h) and
// prints where each scheme's emit latency goes — local aggregation,
// egress shaping, link latency, mailbox queueing, root merge, and (for
// Deco) correction round-trips. The decomposition telescopes along the
// critical path, so the components of every attributed window sum exactly
// to its end-to-end latency; the binary verifies that invariant (within
// 1%, the acceptance bound) and exits non-zero on violation.
//
//   latency_breakdown [--scale=<f>] [--schemes=a,b,c] [--locals=<n>]
//                     [--latency=<ms>] [--repeat=<n>] [--json_out=<f>]

#include <cmath>
#include <cstdlib>

#include "bench/bench_util.h"
#include "obs/critical_path.h"

using namespace deco;

namespace {

// Checks the telescoping invariant: component sums must match each
// attributed window's end-to-end latency within `tolerance` (relative).
bool VerifySums(const LatencyAttribution& attribution, double tolerance,
                const char* scheme) {
  bool ok = true;
  for (const WindowAttribution& w : attribution.windows) {
    const LatencyComponents& c = w.components;
    const double sum = static_cast<double>(
        c.local_compute_nanos + c.correction_nanos + c.shaping_nanos +
        c.link_nanos + c.queue_nanos + c.root_merge_nanos);
    const double total = static_cast<double>(c.total_nanos);
    const double bound = tolerance * std::max(total, 1.0);
    if (std::abs(sum - total) > bound) {
      std::printf("%-14s FAIL window %llu: components sum to %.0f ns but "
                  "total is %.0f ns\n",
                  scheme, static_cast<unsigned long long>(w.window_index),
                  sum, total);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "latency_breakdown");
  const uint64_t window = opts.Scaled(100'000);
  const uint64_t events = opts.Scaled(1'000'000);
  const size_t locals =
      static_cast<size_t>(opts.flags.GetInt("locals", 4));
  const double latency_ms = opts.flags.GetDouble("latency", 1.0);

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("window", static_cast<int64_t>(window));
  recorder.SetConfig("events_per_local", static_cast<int64_t>(events));
  recorder.SetConfig("locals", static_cast<int64_t>(locals));
  recorder.SetConfig("link_latency_ms", latency_ms);
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Latency breakdown: %zu local nodes, window=%llu, "
              "events/node=%llu, link latency=%.1fms\n",
              locals, static_cast<unsigned long long>(window),
              static_cast<unsigned long long>(events), latency_ms);

  bool all_ok = true;
  for (Scheme scheme : opts.Schemes(
           {Scheme::kCentral, Scheme::kScotty, Scheme::kDisco,
            Scheme::kApprox, Scheme::kDecoMon, Scheme::kDecoSync,
            Scheme::kDecoAsync})) {
    const std::string label = SchemeToString(scheme);
    for (int r = 0; r < opts.repeat && all_ok; ++r) {
      ExperimentConfig config;
      config.scheme = scheme;
      config.query.window = WindowSpec::CountTumbling(window);
      config.query.aggregate = AggregateKind::kSum;
      config.num_locals = locals;
      config.streams_per_local = 4;
      // Disco's text path is ~10x slower; keep its run time comparable.
      config.events_per_local =
          scheme == Scheme::kDisco ? events / 4 : events;
      config.base_rate = 1e6;
      config.rate_change = 0.01;
      config.batch_size = 8192;
      config.link_latency_nanos =
          static_cast<TimeNanos>(latency_ms * kNanosPerMilli);
      config.seed = 42;
      opts.ApplyCommon(&config, label);

      TelemetryLog log;
      config.telemetry.enabled = true;
      config.telemetry.sink = &log;

      auto result = RunExperiment(config);
      if (!result.ok()) {
        std::printf("%-14s ERROR: %s\n", SchemeToString(scheme),
                    result.status().ToString().c_str());
        all_ok = false;
        break;
      }

      const LatencyAttribution attribution = AttributeWindowLatency(log);
      if (r == 0) {
        std::printf("\n=== %s ===\n", SchemeToString(scheme));
        std::printf("%s", FormatLatencyBreakdown(attribution).c_str());
      }
      if (!VerifySums(attribution, 0.01, SchemeToString(scheme))) {
        all_ok = false;
      }
      std::fflush(stdout);

      recorder.AddReport(label, *result);
      recorder.AddMetric(label, "attributed_windows",
                         static_cast<double>(attribution.windows.size()));
      LatencyComponents sums{};
      for (const WindowAttribution& w : attribution.windows) {
        sums.total_nanos += w.components.total_nanos;
        sums.local_compute_nanos += w.components.local_compute_nanos;
        sums.correction_nanos += w.components.correction_nanos;
        sums.shaping_nanos += w.components.shaping_nanos;
        sums.link_nanos += w.components.link_nanos;
        sums.queue_nanos += w.components.queue_nanos;
        sums.root_merge_nanos += w.components.root_merge_nanos;
      }
      const double n =
          attribution.windows.empty()
              ? 1.0
              : static_cast<double>(attribution.windows.size());
      recorder.AddMetric(label, "comp_total_nanos_mean",
                         static_cast<double>(sums.total_nanos) / n);
      recorder.AddMetric(label, "comp_local_compute_nanos_mean",
                         static_cast<double>(sums.local_compute_nanos) / n);
      recorder.AddMetric(label, "comp_correction_nanos_mean",
                         static_cast<double>(sums.correction_nanos) / n);
      recorder.AddMetric(label, "comp_link_nanos_mean",
                         static_cast<double>(sums.link_nanos) / n);
      recorder.AddMetric(label, "comp_queue_nanos_mean",
                         static_cast<double>(sums.queue_nanos) / n);
      recorder.AddMetric(label, "comp_root_merge_nanos_mean",
                         static_cast<double>(sums.root_merge_nanos) / n);
    }
  }

  const int rc = bench::Finish(opts, recorder);
  if (!all_ok) {
    std::printf("\nFAIL: latency components did not telescope\n");
    return 1;
  }
  std::printf("\nOK: all attributed windows sum to their end-to-end "
              "latency (within 1%%)\n");
  return rc;
}
