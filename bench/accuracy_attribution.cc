// Live accuracy attribution under chaos, side by side for every scheme:
// runs each approach with the provenance tracker enabled while one local
// node crashes mid-stream and rejoins, then prints where each scheme's
// window error comes from — events lost to the crash (drop), events
// consumed in the wrong window by asynchrony (staleness), and value error
// introduced by approximation (approx). The decomposition is anchored to
// the oracle: the three components of every estimated window sum exactly
// to its observed error vs ground truth; the binary verifies that
// invariant (within 1%, the acceptance bound) plus the provenance
// bookkeeping contract (`expected == received + missing` on every record)
// and exits non-zero on violation.
//
//   accuracy_attribution [--scale=<f>] [--schemes=a,b,c] [--locals=<n>]
//                        [--repeat=<n>] [--json_out=<f>] [--sim]

#include <cmath>
#include <cstdlib>

#include "bench/bench_util.h"
#include "obs/provenance.h"

using namespace deco;

namespace {

// Checks the attribution invariant: drop + staleness + approx must match
// each estimated window's observed error within `tolerance` (relative,
// with a small absolute floor for near-exact windows).
bool VerifyAccuracySums(const ProvenanceLog& log, double tolerance,
                        const char* scheme) {
  bool ok = true;
  for (const WindowAccuracy& acc : log.accuracy) {
    const double sum =
        acc.drop_error + acc.staleness_error + acc.approx_error;
    const double bound =
        std::max(tolerance * std::abs(acc.observed_error), 1e-6);
    if (std::abs(sum - acc.observed_error) > bound) {
      std::printf("%-14s FAIL window %llu: components sum to %.9g but "
                  "observed error is %.9g\n",
                  scheme, static_cast<unsigned long long>(acc.window_index),
                  sum, acc.observed_error);
      ok = false;
    }
  }
  return ok;
}

// Checks the bookkeeping contract on every provenance record: totals and
// per-node parts satisfy expected == received + missing, and the state log
// ends in `final` (with `corrected` windows carrying a correction trail).
bool VerifyRecords(const ProvenanceLog& log, const char* scheme) {
  bool ok = true;
  for (const WindowProvenance& w : log.windows) {
    if (w.expected_total != w.received_total + w.missing_total) {
      std::printf("%-14s FAIL window %llu: expected %llu != received %llu "
                  "+ missing %llu\n",
                  scheme, static_cast<unsigned long long>(w.window_index),
                  static_cast<unsigned long long>(w.expected_total),
                  static_cast<unsigned long long>(w.received_total),
                  static_cast<unsigned long long>(w.missing_total));
      ok = false;
    }
    for (const PartialProvenance& p : w.parts) {
      if (p.expected != p.received + p.missing) {
        std::printf("%-14s FAIL window %llu node %zu: expected %llu != "
                    "received %llu + missing %llu\n",
                    scheme, static_cast<unsigned long long>(w.window_index),
                    p.node, static_cast<unsigned long long>(p.expected),
                    static_cast<unsigned long long>(p.received),
                    static_cast<unsigned long long>(p.missing));
        ok = false;
      }
    }
    const bool ends_final =
        !w.transitions.empty() &&
        w.transitions.back().state == ProvState::kFinal;
    bool saw_correcting = false;
    for (const ProvTransition& t : w.transitions) {
      if (t.state == ProvState::kCorrecting ||
          t.state == ProvState::kCorrected) {
        saw_correcting = true;
      }
    }
    if (!ends_final || (w.corrected && !saw_correcting)) {
      std::printf("%-14s FAIL window %llu: inconsistent state log\n", scheme,
                  static_cast<unsigned long long>(w.window_index));
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "accuracy_attribution");
  // Paced IoT-style runs so the crash/rejoin cycle lands mid-stream in both
  // sim (virtual time only advances through waits) and wall-clock mode.
  const uint64_t window = opts.Scaled(10'000);
  const uint64_t events = opts.Scaled(60'000);
  const size_t locals =
      static_cast<size_t>(opts.flags.GetInt("locals", 3));
  const double rate = 30'000.0;
  const double run_ms =
      static_cast<double>(events) / rate * 1e3;  // per-local stream length

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("window", static_cast<int64_t>(window));
  recorder.SetConfig("events_per_local", static_cast<int64_t>(events));
  recorder.SetConfig("locals", static_cast<int64_t>(locals));
  recorder.SetConfig("rate", rate);
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Accuracy attribution: %zu local nodes, window=%llu, "
              "events/node=%llu, crash at 15%% / rejoin at 40%% of the "
              "%.0fms stream\n",
              locals, static_cast<unsigned long long>(window),
              static_cast<unsigned long long>(events), run_ms);

  bool all_ok = true;
  for (Scheme scheme : opts.Schemes(
           {Scheme::kCentral, Scheme::kScotty, Scheme::kDisco,
            Scheme::kApprox, Scheme::kDecoMon, Scheme::kDecoSync,
            Scheme::kDecoAsync})) {
    const std::string label = SchemeToString(scheme);
    std::printf("\n=== %s ===\n", label.c_str());
    std::printf("%-7s %12s %12s %12s %12s %10s %10s\n", "repeat",
                "mean|err|", "drop", "staleness", "approx", "windows",
                "corrected");
    for (int r = 0; r < opts.repeat && all_ok; ++r) {
      ExperimentConfig config;
      config.scheme = scheme;
      config.query.window = WindowSpec::CountTumbling(window);
      config.query.aggregate = AggregateKind::kSum;
      config.num_locals = locals;
      config.streams_per_local = 4;
      config.events_per_local = events;
      config.base_rate = rate;
      config.rate_change = 0.05;
      config.batch_size = 512;
      config.cpu_events_per_sec = static_cast<uint64_t>(rate);
      config.seed = 42 + static_cast<uint64_t>(r);
      // Fault timeline scaled to the stream so --scale keeps the crash
      // mid-run: down for a quarter of the stream, then back with a bumped
      // incarnation (baselines require the restart; Deco schemes need the
      // failure-detection timeout to notice the silence).
      const auto at = [&](double frac) {
        return static_cast<TimeNanos>(frac * run_ms * kNanosPerMilli);
      };
      config.chaos.schedule =
          ChaosSchedule().Crash("local-1", at(0.15)).Restart("local-1",
                                                             at(0.40));
      if (IsDecentralized(scheme)) {
        config.root_options.node_timeout_nanos = at(0.06);
      }
      opts.ApplyCommon(&config, label);

      ProvenanceLog log;
      config.provenance.enabled = true;
      config.provenance.sink = &log;

      auto result = RunExperiment(config);
      if (!result.ok()) {
        std::printf("%-14s ERROR: %s\n", label.c_str(),
                    result.status().ToString().c_str());
        all_ok = false;
        break;
      }

      if (!VerifyAccuracySums(log, 0.01, label.c_str()) ||
          !VerifyRecords(log, label.c_str())) {
        all_ok = false;
      }

      // Signed per-run component sums: summing before aggregation keeps
      // the invariant checkable per repeat in the JSON (means of absolute
      // values would not telescope).
      double err_total = 0.0, err_drop = 0.0, err_staleness = 0.0;
      double err_approx = 0.0, abs_err = 0.0;
      for (const WindowAccuracy& acc : log.accuracy) {
        err_total += acc.observed_error;
        err_drop += acc.drop_error;
        err_staleness += acc.staleness_error;
        err_approx += acc.approx_error;
        abs_err += std::abs(acc.observed_error);
      }
      const double n =
          log.accuracy.empty() ? 1.0
                               : static_cast<double>(log.accuracy.size());
      const ProvenanceSummary& prov = result->provenance;
      std::printf("%-7d %12.4g %12.4g %12.4g %12.4g %10zu %10llu\n", r,
                  abs_err / n, err_drop, err_staleness, err_approx,
                  log.accuracy.size(),
                  static_cast<unsigned long long>(prov.windows_corrected));
      std::fflush(stdout);

      recorder.AddReport(label, *result);
      recorder.AddMetric(label, "windows_estimated", n);
      recorder.AddMetric(label, "windows_corrected",
                         static_cast<double>(prov.windows_corrected));
      recorder.AddMetric(label, "partials_missing",
                         static_cast<double>(prov.partials_missing));
      recorder.AddMetric(label, "mean_abs_error", abs_err / n);
      recorder.AddMetric(label, "err_total", err_total);
      recorder.AddMetric(label, "err_drop", err_drop);
      recorder.AddMetric(label, "err_staleness", err_staleness);
      recorder.AddMetric(label, "err_approx", err_approx);
    }
  }

  const int rc = bench::Finish(opts, recorder);
  if (!all_ok) {
    std::printf("\nFAIL: attribution components did not sum to the "
                "observed error, or a provenance record was inconsistent\n");
    return 1;
  }
  std::printf("\nOK: every estimated window's drop + staleness + approx "
              "sum to its observed error (within 1%%), and every record "
              "satisfies expected == received + missing\n");
  return rc;
}
