#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "harness/experiment.h"

/// \file bench_util.h
/// \brief Shared helpers for the per-figure benchmark binaries.
///
/// Every binary accepts `--scale=<f>` (default 1.0) to grow/shrink the
/// event counts relative to the laptop-friendly defaults, plus
/// `--schemes=a,b,c` to restrict the evaluated approaches. The paper's
/// full-size runs (100 M events/node, 1 M windows) correspond to roughly
/// `--scale=50`; the defaults reproduce the *shapes* in minutes.

namespace deco {
namespace bench {

/// \brief Prints the standard table header for per-scheme rows.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-14s %12s %12s %12s %14s %12s %12s %12s\n", "scheme",
              "tput(Mev/s)", "lat-mean(ms)", "lat-p99(ms)", "net(MB)",
              "bytes/event", "windows", "corrections");
}

/// \brief Prints one run as a table row.
inline void PrintRow(const RunReport& report) {
  std::printf("%-14s %12.3f %12.3f %12.3f %14.3f %12.2f %12llu %12llu\n",
              report.scheme.c_str(), report.throughput_eps / 1e6,
              report.latency.mean() / 1e6,
              static_cast<double>(report.latency.Percentile(0.99)) / 1e6,
              static_cast<double>(report.network.total_bytes) / 1e6,
              report.BytesPerEvent(),
              static_cast<unsigned long long>(report.windows_emitted),
              static_cast<unsigned long long>(report.correction_steps));
  std::fflush(stdout);
}

/// \brief Runs one experiment, printing an error row on failure.
inline bool RunAndPrint(const ExperimentConfig& config) {
  auto result = RunExperiment(config);
  if (!result.ok()) {
    std::printf("%-14s ERROR: %s\n", SchemeToString(config.scheme),
                result.status().ToString().c_str());
    return false;
  }
  PrintRow(*result);
  return true;
}

/// \brief Parses `--schemes=` into a scheme list, with a default.
inline std::vector<Scheme> ParseSchemes(const Flags& flags,
                                        std::vector<Scheme> fallback) {
  const std::string arg = flags.GetString("schemes", "");
  if (arg.empty()) return fallback;
  std::vector<Scheme> schemes;
  std::string token;
  std::stringstream ss(arg);
  while (std::getline(ss, token, ',')) {
    auto scheme = SchemeFromString(token);
    if (scheme.ok()) schemes.push_back(*scheme);
  }
  return schemes.empty() ? fallback : schemes;
}

/// \brief Wires `--telemetry_out=<prefix>` / `--sample_interval_ms=<n>`
/// into one run's config: each tagged run writes
/// `<prefix>.<tag>.json`. No flag = telemetry stays disabled so the
/// benchmark measures the undisturbed system.
inline void ApplyTelemetry(const Flags& flags, ExperimentConfig* config,
                           const std::string& tag) {
  const std::string prefix = flags.GetString("telemetry_out", "");
  if (prefix.empty()) return;
  config->telemetry.enabled = true;
  config->telemetry.json_out = prefix + "." + tag + ".json";
  config->telemetry.sample_interval_nanos = static_cast<TimeNanos>(
      flags.GetInt("sample_interval_ms", 50) * kNanosPerMilli);
}

/// \brief Scales an event count by `--scale`.
inline uint64_t Scaled(const Flags& flags, uint64_t base) {
  const double scale = flags.GetDouble("scale", 1.0);
  const double scaled = static_cast<double>(base) * scale;
  return scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
}

}  // namespace bench
}  // namespace deco
