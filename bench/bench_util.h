#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "harness/experiment.h"
#include "obs/bench_record.h"

/// \file bench_util.h
/// \brief Shared helpers for the per-figure benchmark binaries.
///
/// Every binary parses its flags into a `BenchOptions` (one shared parser
/// instead of twelve hand-rolled ones) and feeds a `BenchRecorder`
/// alongside its human-readable table. Common flags:
///   --scale=<f>     grow/shrink event counts relative to the
///                   laptop-friendly defaults (default 1.0; the paper's
///                   full-size runs are roughly --scale=50)
///   --schemes=a,b,c restrict the evaluated approaches
///   --repeat=<n>    measure each configuration n times; the JSON carries
///                   every repeat plus min/median/stddev (default 1)
///   --json_out=<f>  structured-output path (default BENCH_<binary>.json)
///   --json_dir=<d>  directory for the default-named JSON (CI artifact dirs)
///   --sim           deterministic simulation mode: structural metrics
///                   (messages, windows, bytes/event) become machine-
///                   independent, which is what the CI baseline compares
///   --profile       per-thread CPU/alloc profiling; the last repeat's
///                   profile lands in the row's cpu_breakdown
///   --drop=<p>      per-message drop probability on root<->local links
///   --latency_ms=<f> one-way root<->local link latency
///   --telemetry_out=<prefix>, --sample_interval_ms=<n> as before

namespace deco {
namespace bench {

/// \brief Prints the standard table header for per-scheme rows.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-14s %12s %12s %12s %14s %12s %12s %12s\n", "scheme",
              "tput(Mev/s)", "lat-mean(ms)", "lat-p99(ms)", "net(MB)",
              "bytes/event", "windows", "corrections");
}

/// \brief Prints one run as a table row.
inline void PrintRow(const RunReport& report) {
  std::printf("%-14s %12.3f %12.3f %12.3f %14.3f %12.2f %12llu %12llu\n",
              report.scheme.c_str(), report.throughput_eps / 1e6,
              report.latency.mean() / 1e6,
              static_cast<double>(report.latency.Percentile(0.99)) / 1e6,
              static_cast<double>(report.network.total_bytes) / 1e6,
              report.BytesPerEvent(),
              static_cast<unsigned long long>(report.windows_emitted),
              static_cast<unsigned long long>(report.correction_steps));
  std::fflush(stdout);
}

/// \brief The flags every bench binary shares, parsed once.
struct BenchOptions {
  Flags flags;            ///< raw flags for binary-specific knobs
  std::string bench_name; ///< binary short name ("fig7_end_to_end")
  double scale = 1.0;
  int repeat = 1;
  bool sim = false;
  bool profile = false;
  std::string json_out;   ///< resolved structured-output path

  /// \brief Parses argv and resolves the shared flags. `bench_name` names
  /// the binary (it determines the default `BENCH_<name>.json`).
  static BenchOptions Parse(int argc, char** argv,
                            const std::string& bench_name) {
    BenchOptions opts;
    opts.flags = Flags::Parse(argc, argv);
    opts.bench_name = bench_name;
    opts.scale = opts.flags.GetDouble("scale", 1.0);
    opts.repeat =
        static_cast<int>(opts.flags.GetInt("repeat", 1));
    if (opts.repeat < 1) opts.repeat = 1;
    opts.sim = opts.flags.GetBool("sim", false);
    opts.profile = opts.flags.GetBool("profile", false);
    const std::string dir = opts.flags.GetString("json_dir", "");
    std::string def = "BENCH_" + bench_name + ".json";
    if (!dir.empty()) def = dir + "/" + def;
    opts.json_out = opts.flags.GetString("json_out", def);
    return opts;
  }

  /// \brief Scales an event count by `--scale`.
  uint64_t Scaled(uint64_t base) const {
    const double scaled = static_cast<double>(base) * scale;
    return scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
  }

  /// \brief Parses `--schemes=` into a scheme list, with a default.
  std::vector<Scheme> Schemes(std::vector<Scheme> fallback) const {
    const std::string arg = flags.GetString("schemes", "");
    if (arg.empty()) return fallback;
    std::vector<Scheme> schemes;
    std::string token;
    std::stringstream ss(arg);
    while (std::getline(ss, token, ',')) {
      auto scheme = SchemeFromString(token);
      if (scheme.ok()) schemes.push_back(*scheme);
    }
    return schemes.empty() ? fallback : schemes;
  }

  /// \brief Applies the shared run-mode flags to one experiment config:
  /// sim, profiling, link shaping overrides (`--drop`, `--latency_ms`) and
  /// telemetry (`--telemetry_out=<prefix>` writes `<prefix>.<tag>.json`).
  /// Shaping flags only override when present, so binaries with their own
  /// defaults (chaos_recovery's drop phase) keep them.
  void ApplyCommon(ExperimentConfig* config, const std::string& tag) const {
    config->sim = config->sim || sim;
    config->profile.enabled = config->profile.enabled || profile;
    if (flags.Has("drop")) {
      config->drop_probability = flags.GetDouble("drop", 0.0);
    }
    if (flags.Has("latency_ms")) {
      config->link_latency_nanos = static_cast<TimeNanos>(
          flags.GetDouble("latency_ms", 0.0) * kNanosPerMilli);
    }
    const std::string prefix = flags.GetString("telemetry_out", "");
    if (!prefix.empty()) {
      config->telemetry.enabled = true;
      config->telemetry.json_out = prefix + "." + tag + ".json";
      config->telemetry.sample_interval_nanos = static_cast<TimeNanos>(
          flags.GetInt("sample_interval_ms", 50) * kNanosPerMilli);
    }
  }

  /// \brief Records the shared flags into the recorder's config section
  /// (binaries add their own keys — locals, window, events — after this).
  void RecordConfig(BenchRecorder* recorder) const {
    recorder->SetConfig("scale", scale);
    recorder->SetConfig("repeat", static_cast<int64_t>(repeat));
    recorder->SetConfig("sim", sim);
    recorder->SetConfig("profile", profile);
    if (flags.Has("drop")) {
      recorder->SetConfig("drop", flags.GetDouble("drop", 0.0));
    }
    if (flags.Has("latency_ms")) {
      recorder->SetConfig("latency_ms", flags.GetDouble("latency_ms", 0.0));
    }
  }
};

/// \brief Runs one experiment, printing an error row on failure.
inline bool RunAndPrint(const ExperimentConfig& config) {
  auto result = RunExperiment(config);
  if (!result.ok()) {
    std::printf("%-14s ERROR: %s\n", SchemeToString(config.scheme),
                result.status().ToString().c_str());
    return false;
  }
  PrintRow(*result);
  return true;
}

/// \brief Runs one configuration `--repeat` times, printing each repeat as
/// a table row and appending its metrics to the recorder under `label`.
/// Returns false (after an error row) if any repeat fails.
inline bool RunAndRecord(const ExperimentConfig& config,
                         const BenchOptions& opts, BenchRecorder* recorder,
                         const std::string& label) {
  for (int r = 0; r < opts.repeat; ++r) {
    auto result = RunExperiment(config);
    if (!result.ok()) {
      std::printf("%-14s ERROR: %s\n", label.c_str(),
                  result.status().ToString().c_str());
      return false;
    }
    PrintRow(*result);
    recorder->AddReport(label, *result);
  }
  return true;
}

/// \brief Writes the recorder's JSON to `opts.json_out` and reports the
/// path; returns the process exit code (benches end with
/// `return bench::Finish(opts, recorder);`).
inline int Finish(const BenchOptions& opts, const BenchRecorder& recorder) {
  const Status status = recorder.WriteJson(opts.json_out);
  if (!status.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", opts.json_out.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("\nbench json: %s\n", opts.json_out.c_str());
  return 0;
}

}  // namespace bench
}  // namespace deco
