// Reproduces Figures 10a-10d of the paper: adaptivity of Approx, Deco_mon,
// Deco_sync and Deco_async to the event-rate-change parameter on a
// three-node cluster (two locals + root). Sweeps the change range and
// reports throughput (10a), network utilization (10b), correction steps per
// 100 windows (10c), and correctness vs. the Central ground truth (10d).
// Expected shapes: Approx has optimal throughput/network but degrading
// correctness; Deco_async tracks Approx at small changes and falls behind
// Deco_sync at large ones; corrections grow with the change range; every
// Deco scheme stays at 100% correctness.

#include "bench/bench_util.h"

using namespace deco;

namespace {

ExperimentConfig BaseConfig(Scheme scheme, double change, uint64_t events) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.query.window = WindowSpec::CountTumbling(50'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 2;
  config.streams_per_local = 4;
  config.events_per_local = events;
  config.base_rate = 1e6;
  config.rate_change = change;
  config.batch_size = 8192;
  config.seed = 42;
  return config;
}

std::string ChangeLabel(double change) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", change);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "fig10_adaptivity");
  const uint64_t events = opts.Scaled(2'000'000);
  const std::vector<Scheme> schemes = opts.Schemes(
      {Scheme::kApprox, Scheme::kDecoMon, Scheme::kDecoSync,
       Scheme::kDecoAsync});
  const std::vector<double> changes{0.001, 0.01, 0.05, 0.2, 0.5, 1.0};

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("events_per_local", static_cast<int64_t>(events));
  recorder.SetConfig("window", static_cast<int64_t>(50'000));
  recorder.SetConfig("locals", static_cast<int64_t>(2));
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Figure 10a-10d: adaptivity to event rate change "
              "(2 locals, window 50k, events/node=%llu)\n",
              static_cast<unsigned long long>(events));
  std::printf(
      "\n%-12s %-10s %12s %12s %16s %14s\n", "scheme", "change",
      "tput(Mev/s)", "net(MB)", "corrections/100w", "correctness");

  for (Scheme scheme : schemes) {
    for (double change : changes) {
      const std::string label = std::string(SchemeToString(scheme)) +
                                "/change=" + ChangeLabel(change);
      for (int r = 0; r < opts.repeat; ++r) {
        // Ground truth for the correctness column (Fig 10d).
        ExperimentConfig truth_config =
            BaseConfig(Scheme::kCentral, change, events);
        opts.ApplyCommon(&truth_config, label + ".truth");
        auto truth = RunExperiment(truth_config);
        if (!truth.ok()) continue;

        ExperimentConfig config = BaseConfig(scheme, change, events);
        opts.ApplyCommon(&config, label);
        auto result = RunExperiment(config);
        if (!result.ok()) {
          std::printf("%-12s %-10.3f ERROR: %s\n", SchemeToString(scheme),
                      change, result.status().ToString().c_str());
          continue;
        }
        const CorrectnessReport correctness =
            CompareConsumption(truth->consumption, result->consumption);
        const double corrections_per_100 =
            result->windows_emitted == 0
                ? 0.0
                : 100.0 * static_cast<double>(result->correction_steps) /
                      static_cast<double>(result->windows_emitted);
        std::printf("%-12s %-10.3f %12.3f %12.3f %16.1f %14.4f\n",
                    result->scheme.c_str(), change,
                    result->throughput_eps / 1e6,
                    static_cast<double>(result->network.total_bytes) / 1e6,
                    corrections_per_100, correctness.correctness);
        std::fflush(stdout);
        recorder.AddReport(label, *result);
        recorder.AddMetric(label, "corrections_per_100_windows",
                           corrections_per_100);
        recorder.AddMetric(label, "correctness", correctness.correctness);
      }
    }
  }
  return bench::Finish(opts, recorder);
}
