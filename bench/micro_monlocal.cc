// Reproduces the Section 5.1 microbenchmark: Deco_monlocal removes the
// root from window-size coordination — local nodes exchange event rates
// with each other and apportion the split themselves, the root only
// verifies and signals window starts. The paper measures 10.24 ms latency
// for Deco_monlocal vs 0.526 ms for Deco_mon on 32 local nodes: the
// all-to-all rate exchange costs far more synchronization than the star.
// Expected shape here: with a realistic link latency (default 1 ms one
// way, --latency_ms to change), monlocal's per-window latency exceeds
// mon's and grows with the node count (quadratic message complexity: the
// all-to-all exchange must complete before any node can start its
// window).

#include "bench/bench_util.h"

using namespace deco;

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "micro_monlocal");
  const uint64_t events = opts.Scaled(500'000);
  const std::vector<int64_t> node_counts =
      opts.flags.GetIntList("nodes", {4, 8, 16});
  // ApplyCommon only overrides the link latency when --latency_ms is
  // present; this bench needs a realistic default, so resolve it here.
  const double latency_ms = opts.flags.GetDouble("latency_ms", 1.0);

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("events_per_local", static_cast<int64_t>(events));
  recorder.SetConfig("latency_ms", latency_ms);
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Section 5.1 microbenchmark: Deco_mon vs Deco_monlocal "
              "(peer-to-peer rate exchange)\n");
  for (int64_t nodes : node_counts) {
    std::printf("\n--- %lld local nodes ---\n", (long long)nodes);
    bench::PrintHeader("mon vs monlocal");
    for (Scheme scheme : {Scheme::kDecoMon, Scheme::kDecoMonLocal}) {
      ExperimentConfig config;
      config.scheme = scheme;
      config.query.window = WindowSpec::CountTumbling(
          10'000 * static_cast<uint64_t>(nodes));
      config.query.aggregate = AggregateKind::kSum;
      config.num_locals = static_cast<size_t>(nodes);
      config.streams_per_local = 2;
      config.events_per_local = events;
      config.base_rate = 1e6;
      config.rate_change = 0.01;
      config.batch_size = 4096;
      config.seed = 42;
      config.link_latency_nanos =
          static_cast<TimeNanos>(latency_ms * kNanosPerMilli);
      const std::string label = std::string(SchemeToString(scheme)) +
                                "/nodes=" + std::to_string(nodes);
      opts.ApplyCommon(&config, label);
      bench::RunAndRecord(config, opts, &recorder, label);
    }
  }
  return bench::Finish(opts, recorder);
}
