// Google-benchmark microbenchmarks of the individual substrates: the
// per-event costs that determine where the end-to-end bottlenecks sit
// (aggregation kernels, wire formats, windowers, the k-way merges, and the
// fabric hop).
//
// Unlike the figure benches this binary delegates measurement to
// google-benchmark; a custom main bridges the two worlds so it still
// honours the shared flags: `--repeat=N` becomes
// `--benchmark_repetitions=N`, `--benchmark_*` flags pass through
// untouched, and every per-repetition run lands in the same
// `BENCH_micro_components.json` schema the figure benches emit
// (real/cpu ns per iteration plus google-benchmark's rate counters).

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "agg/aggregate.h"
#include "baseline/root_merger.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "event/serde.h"
#include "metrics/histogram.h"
#include "net/fabric.h"
#include "node/apportion.h"
#include "node/stream_set.h"
#include "stream/generator.h"
#include "window/window.h"

namespace deco {
namespace {

EventVec MakeEvents(size_t n) {
  EventVec events;
  events.reserve(n);
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    Event e;
    e.id = i;
    e.stream_id = static_cast<StreamId>(i % 8);
    e.value = rng.NextDouble(-100, 100);
    e.timestamp = static_cast<EventTime>(i * 1000);
    events.push_back(e);
  }
  return events;
}

void BM_AggregateAccumulate(benchmark::State& state) {
  auto func = std::move(
      MakeAggregate(static_cast<AggregateKind>(state.range(0)))).value();
  const EventVec events = MakeEvents(4096);
  for (auto _ : state) {
    Partial partial = func->CreatePartial();
    for (const Event& e : events) func->Accumulate(&partial, e.value);
    benchmark::DoNotOptimize(func->Finalize(partial));
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}
BENCHMARK(BM_AggregateAccumulate)
    ->Arg(static_cast<int>(AggregateKind::kSum))
    ->Arg(static_cast<int>(AggregateKind::kMin))
    ->Arg(static_cast<int>(AggregateKind::kAvg));

void BM_PartialMerge(benchmark::State& state) {
  auto func = std::move(MakeAggregate(AggregateKind::kSum)).value();
  Partial part = func->CreatePartial();
  func->Accumulate(&part, 42.0);
  for (auto _ : state) {
    Partial merged = func->CreatePartial();
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(func->Merge(&merged, part));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PartialMerge);

void BM_BinaryEncodeBatch(benchmark::State& state) {
  const EventVec events = MakeEvents(state.range(0));
  for (auto _ : state) {
    BinaryWriter writer;
    writer.PutEvents(events);
    benchmark::DoNotOptimize(writer.buffer().data());
  }
  state.SetItemsProcessed(state.iterations() * events.size());
  state.SetBytesProcessed(state.iterations() * events.size() *
                          kBinaryEventSize);
}
BENCHMARK(BM_BinaryEncodeBatch)->Arg(256)->Arg(4096);

void BM_BinaryDecodeBatch(benchmark::State& state) {
  const EventVec events = MakeEvents(state.range(0));
  BinaryWriter writer;
  writer.PutEvents(events);
  const std::string buffer = writer.buffer();
  for (auto _ : state) {
    BinaryReader reader(buffer);
    auto decoded = reader.GetEvents();
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}
BENCHMARK(BM_BinaryDecodeBatch)->Arg(256)->Arg(4096);

void BM_TextEncodeBatch(benchmark::State& state) {
  const EventVec events = MakeEvents(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeEventsText(events).data());
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}
BENCHMARK(BM_TextEncodeBatch)->Arg(256)->Arg(4096);

void BM_TextDecodeBatch(benchmark::State& state) {
  const std::string text = EncodeEventsText(MakeEvents(state.range(0)));
  for (auto _ : state) {
    auto decoded = DecodeEventsText(text);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TextDecodeBatch)->Arg(256)->Arg(4096);

void BM_CountTumblingWindower(benchmark::State& state) {
  auto func = std::move(MakeAggregate(AggregateKind::kSum)).value();
  auto windower = std::move(
      MakeWindower(WindowSpec::CountTumbling(1024), func.get())).value();
  const EventVec events = MakeEvents(8192);
  std::vector<WindowResult> out;
  for (auto _ : state) {
    for (const Event& e : events) {
      (void)windower->Add(e, &out);
    }
    out.clear();
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}
BENCHMARK(BM_CountTumblingWindower);

void BM_CountSlidingWindower(benchmark::State& state) {
  auto func = std::move(MakeAggregate(AggregateKind::kSum)).value();
  auto windower = std::move(MakeWindower(
      WindowSpec::CountSliding(1024, state.range(0)), func.get())).value();
  const EventVec events = MakeEvents(8192);
  std::vector<WindowResult> out;
  for (auto _ : state) {
    for (const Event& e : events) {
      (void)windower->Add(e, &out);
    }
    out.clear();
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}
BENCHMARK(BM_CountSlidingWindower)->Arg(128)->Arg(512);

void BM_StreamSourceNext(benchmark::State& state) {
  StreamConfig config;
  config.rate.base_rate = 1e6;
  config.rate.change_fraction = 0.01;
  config.seed = 3;
  StreamSource source(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamSourceNext);

void BM_StreamSetMerge(benchmark::State& state) {
  std::vector<StreamConfig> configs;
  for (int s = 0; s < state.range(0); ++s) {
    StreamConfig config;
    config.stream_id = static_cast<StreamId>(s);
    config.rate.base_rate = 1e6;
    config.rate.change_fraction = 0.01;
    config.seed = s + 1;
    configs.push_back(config);
  }
  StreamSet set(configs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamSetMerge)->Arg(4)->Arg(16);

void BM_RootMergerPop(benchmark::State& state) {
  const size_t kNodes = state.range(0);
  RootMerger merger(kNodes);
  std::vector<EventVec> batches(kNodes);
  for (size_t n = 0; n < kNodes; ++n) {
    for (int i = 0; i < 1024; ++i) {
      Event e;
      e.id = i;
      e.stream_id = static_cast<StreamId>(n);
      e.timestamp = static_cast<EventTime>(i * kNodes + n);
      batches[n].push_back(e);
    }
  }
  Event e;
  double create = 0;
  size_t node = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t n = 0; n < kNodes; ++n) merger.Append(n, batches[n], 0.0);
    state.ResumeTiming();
    while (merger.PopNext(&e, &create, &node)) {
    }
  }
  state.SetItemsProcessed(state.iterations() * kNodes * 1024);
}
BENCHMARK(BM_RootMergerPop)->Arg(2)->Arg(8);

void BM_FabricSendReceive(benchmark::State& state) {
  NetworkFabric fabric(SystemClock::Default(), 1);
  const NodeId a = fabric.RegisterNode("a");
  const NodeId b = fabric.RegisterNode("b");
  fabric.SetFlowControlLimit(0);
  std::string payload(state.range(0), 'x');
  for (auto _ : state) {
    Message msg;
    msg.type = MessageType::kPartialResult;
    msg.src = a;
    msg.dst = b;
    msg.payload = payload;
    (void)fabric.Send(std::move(msg));
    benchmark::DoNotOptimize(fabric.mailbox(b)->TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricSendReceive)->Arg(64)->Arg(65536);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  Rng rng(5);
  for (auto _ : state) {
    histogram.Record(static_cast<int64_t>(rng.NextBounded(1'000'000'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_Apportion(benchmark::State& state) {
  std::vector<double> weights;
  Rng rng(11);
  for (int i = 0; i < state.range(0); ++i) {
    weights.push_back(rng.NextDouble(0.5, 2.0));
  }
  for (auto _ : state) {
    auto shares = ApportionWindow(1'000'000, weights);
    benchmark::DoNotOptimize(shares.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Apportion)->Arg(8)->Arg(64);

/// Console output as usual, but every per-repetition run is also captured
/// as BenchRecorder metrics (aggregates are skipped: the recorder computes
/// its own min/median/stddev across the repetitions).
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(BenchRecorder* recorder)
      : recorder_(recorder) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.report_big_o || run.report_rms) {
        continue;
      }
      const std::string label = run.benchmark_name();
      recorder_->AddMetric(label, "real_time_ns", run.GetAdjustedRealTime());
      recorder_->AddMetric(label, "cpu_time_ns", run.GetAdjustedCPUTime());
      for (const auto& counter : run.counters) {
        recorder_->AddMetric(label, counter.first, counter.second.value);
      }
    }
  }

 private:
  BenchRecorder* recorder_;
};

}  // namespace
}  // namespace deco

int main(int argc, char** argv) {
  using namespace deco;
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "micro_components");

  // google-benchmark rejects unknown flags, so hand it only its own
  // (`--benchmark_*`) plus the translation of our shared `--repeat`.
  std::vector<std::string> args;
  args.push_back(argc > 0 ? argv[0] : "micro_components");
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      args.push_back(argv[i]);
    }
  }
  if (opts.repeat > 1) {
    args.push_back("--benchmark_repetitions=" +
                   std::to_string(opts.repeat));
  }
  std::vector<char*> bench_argv;
  bench_argv.reserve(args.size());
  for (std::string& arg : args) bench_argv.push_back(arg.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  RecordingReporter reporter(&recorder);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return bench::Finish(opts, recorder);
}
