// Marginal cost of co-resident queries (the serving-layer acceptance
// benchmark): sweep the number of concurrently served queries over the
// same stream and measure how network cost grows. Deco schemes share one
// slice store — the Nth query adds only a per-pane slot partial per local
// — so bytes/event must stay nearly flat; the centralized baselines rerun
// the stream once per query, so their cost grows linearly. The JSON rows
// are labeled `<scheme>/q<N>` and carry a `queries` metric so the
// regression gate can recompute the marginal cost.
//
//   qps_marginal_cost [--scale=<f>] [--schemes=a,b,c] [--locals=<n>]
//                     [--repeat=<n>] [--json_out=<f>] [--sim]

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serve/registry.h"

using namespace deco;

namespace {

// Aggregate mix for the co-queries: five distinct kinds, so a 64-query
// sweep still folds into five shared slots (the dedup the layer exists
// for), cycling tenants t0..t3 to exercise per-tenant accounting.
ServedQuery MakeServedQuery(size_t index, uint64_t window) {
  static const AggregateKind kAggs[] = {
      AggregateKind::kSum, AggregateKind::kCount, AggregateKind::kMin,
      AggregateKind::kMax, AggregateKind::kAvg};
  ServedQuery q;
  q.query.aggregate = kAggs[index % 5];
  q.query.window = WindowSpec::CountTumbling(window);
  q.tenant = "t" + std::to_string(index % 4);
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "qps_marginal_cost");
  const uint64_t window = opts.Scaled(10'000);
  const uint64_t events = opts.Scaled(200'000);
  const size_t locals =
      static_cast<size_t>(opts.flags.GetInt("locals", 4));

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("window", static_cast<int64_t>(window));
  recorder.SetConfig("events_per_local", static_cast<int64_t>(events));
  recorder.SetConfig("locals", static_cast<int64_t>(locals));
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  const std::vector<Scheme> schemes = opts.Schemes(
      {Scheme::kDecoSync, Scheme::kDecoAsync, Scheme::kCentral});
  static const size_t kQueryCounts[] = {1, 2, 4, 8, 16, 32, 64};

  std::printf("Marginal query cost: %zu locals, window=%llu, "
              "events/node=%llu, 1..64 co-resident queries\n",
              locals, static_cast<unsigned long long>(window),
              static_cast<unsigned long long>(events));

  for (Scheme scheme : schemes) {
    std::printf("\n=== %s — queries 1,2,4,...,64 ===\n",
                SchemeToString(scheme));
    std::printf("  %-6s %14s %20s %8s\n", "q", "bytes/event",
                "marginal(b/ev/query)", "slots");
    double single_bpe = 0.0;
    for (size_t count : kQueryCounts) {
      ExperimentConfig config;
      config.scheme = scheme;
      config.num_locals = locals;
      config.streams_per_local = 2;
      config.events_per_local = events;
      config.base_rate = 200'000.0;
      config.rate_change = 0.05;
      config.batch_size = 512;
      config.seed = 42;
      config.sim_time_limit_nanos = 600 * kNanosPerSecond;
      for (size_t i = 0; i < count; ++i) {
        config.serve.queries.push_back(MakeServedQuery(i, window));
      }
      opts.ApplyCommon(&config,
                       std::string(SchemeToString(scheme)) + ".q" +
                           std::to_string(count));
      const std::string label = std::string(SchemeToString(scheme)) +
                                "/q" + std::to_string(count);
      std::printf("  %-6zu ", count);
      for (int r = 0; r < opts.repeat; ++r) {
        auto result = RunExperiment(config);
        if (!result.ok()) {
          std::printf("%-14s ERROR: %s\n", label.c_str(),
                      result.status().ToString().c_str());
          return 1;
        }
        if (r == 0) {
          if (count == 1) single_bpe = result->BytesPerEvent();
          const double marginal =
              count > 1 ? (result->BytesPerEvent() - single_bpe) /
                              static_cast<double>(count - 1)
                        : 0.0;
          std::printf("%14.2f %20.4f %8llu\n", result->BytesPerEvent(),
                      marginal,
                      static_cast<unsigned long long>(
                          result->serving.slots));
        }
        recorder.AddReport(label, *result);
        recorder.AddMetric(label, "queries", static_cast<double>(count));
        recorder.AddMetric(label, "serve_slots",
                           static_cast<double>(result->serving.slots));
        recorder.AddMetric(
            label, "marginal_bytes_per_event",
            count > 1 ? (result->BytesPerEvent() - single_bpe) /
                            static_cast<double>(count - 1)
                      : 0.0);
      }
    }
  }
  return bench::Finish(opts, recorder);
}
