// Reproduces Figures 10e and 10f of the paper: adaptivity to the window
// size. 10e sweeps the global window size at 1% rate change and reports
// throughput (expected: all Deco schemes gain with larger windows —
// decentralization amortizes the per-window coordination — with Deco_async
// benefiting soonest). 10f repeats the sweep at 50% rate change and checks
// correctness: every Deco scheme stays at 100% while Approx degrades.

#include "bench/bench_util.h"

using namespace deco;

namespace {

ExperimentConfig BaseConfig(Scheme scheme, uint64_t window, double change,
                            uint64_t events) {
  ExperimentConfig config;
  config.scheme = scheme;
  config.query.window = WindowSpec::CountTumbling(window);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 2;
  config.streams_per_local = 4;
  config.events_per_local = events;
  config.base_rate = 1e6;
  config.rate_change = change;
  config.batch_size = 8192;
  config.seed = 42;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "fig10_windowsize");
  const uint64_t events = opts.Scaled(2'000'000);
  const std::vector<int64_t> windows = opts.flags.GetIntList(
      "windows", {5'000, 20'000, 50'000, 100'000, 250'000});
  const std::vector<Scheme> schemes = opts.Schemes(
      {Scheme::kApprox, Scheme::kDecoMon, Scheme::kDecoSync,
       Scheme::kDecoAsync});

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("events_per_local", static_cast<int64_t>(events));
  recorder.SetConfig("locals", static_cast<int64_t>(2));
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Figure 10e: throughput vs. window size (1%% change)\n");
  std::printf("%-12s", "scheme");
  for (int64_t w : windows) std::printf(" %11lldw", (long long)w);
  std::printf("   (M events/s)\n");
  for (Scheme scheme : schemes) {
    std::printf("%-12s", SchemeToString(scheme));
    for (int64_t window : windows) {
      const std::string label = std::string(SchemeToString(scheme)) +
                                "/10e/window=" + std::to_string(window);
      bool ok = true;
      double tput = 0.0;
      for (int r = 0; r < opts.repeat && ok; ++r) {
        ExperimentConfig config = BaseConfig(
            scheme, static_cast<uint64_t>(window), 0.01, events);
        opts.ApplyCommon(&config, label);
        auto result = RunExperiment(config);
        if (!result.ok()) {
          ok = false;
          break;
        }
        tput = result->throughput_eps;
        recorder.AddReport(label, *result);
      }
      if (ok) {
        std::printf(" %12.3f", tput / 1e6);
      } else {
        std::printf(" %12s", "ERR");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nFigure 10f: correctness vs. window size (50%% change)\n");
  std::printf("%-12s", "scheme");
  for (int64_t w : windows) std::printf(" %11lldw", (long long)w);
  std::printf("   (fraction correct)\n");
  for (Scheme scheme : schemes) {
    std::printf("%-12s", SchemeToString(scheme));
    for (int64_t window : windows) {
      const std::string label = std::string(SchemeToString(scheme)) +
                                "/10f/window=" + std::to_string(window);
      bool ok = true;
      double fraction = 0.0;
      for (int r = 0; r < opts.repeat && ok; ++r) {
        ExperimentConfig truth_config = BaseConfig(
            Scheme::kCentral, static_cast<uint64_t>(window), 0.5, events);
        ExperimentConfig config = BaseConfig(
            scheme, static_cast<uint64_t>(window), 0.5, events);
        opts.ApplyCommon(&truth_config, label + ".truth");
        opts.ApplyCommon(&config, label);
        auto truth = RunExperiment(truth_config);
        auto result = RunExperiment(config);
        if (!truth.ok() || !result.ok()) {
          ok = false;
          break;
        }
        const CorrectnessReport correctness =
            CompareConsumption(truth->consumption, result->consumption);
        fraction = correctness.correctness;
        recorder.AddReport(label, *result);
        recorder.AddMetric(label, "correctness", fraction);
      }
      if (ok) {
        std::printf(" %12.4f", fraction);
      } else {
        std::printf(" %12s", "ERR");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return bench::Finish(opts, recorder);
}
