// Accuracy-under-chaos benchmark (DESIGN.md §6, EXPERIMENTS.md): each
// scheme runs the same workload twice — fault-free, then under a scripted
// crash + restart of one local node — and the chaos run is scored against
// the fault-free ground truth.
//
//   chaos_recovery [--events=N] [--window=N] [--locals=N] [--rate=F]
//                  [--crash_ms=N] [--restart_ms=N] [--timeout_ms=N]
//                  [--chaos=<spec>] [--schemes=a,b,c] [--seed=N]
//                  [--tail=F] [--telemetry_out=<prefix>]
//
// Reported per scheme: windows emitted in both runs, corrections, the
// root's crash-detection latency (first removal minus the scheduled crash
// offset; paper §4.3.4 bounds it by node_timeout), the rejoin-admission
// latency (first re-admission minus the scheduled restart offset), and the
// tail relative error versus the fault-free run.
//
// Error metric: after a removal the two runs' window *indices* shift
// permanently (the removed node's unconsumed events below the watermark
// are lost), so windows are aligned on event time instead: the fault-free
// (end_ts, value) trajectory is linearly interpolated at each chaos
// window's end_ts, and the mean absolute difference over the last
// `--tail` fraction of windows is normalized by the mean |truth| there.
// The value trajectory is smooth (sinusoidal sensor signal, period 10 s,
// window span a few event-time ms), so boundary-shift noise is
// second-order and a recovered run scores well under 1%.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "harness/experiment.h"

using namespace deco;

namespace {

// `InterpolateTruth` / `TimeAlignedTailError` live in metrics/report.h so
// the chaos-fuzz test asserts the same <1% invariant this bench reports.

/// First membership change of the requested kind, as an offset from the
/// run start; negative when absent.
double MembershipOffsetMs(const RunReport& report, bool rejoined) {
  for (const MembershipEvent& event : report.membership) {
    if (event.rejoined == rejoined) {
      return static_cast<double>(event.at_nanos -
                                 report.start_wall_nanos) /
             1e6;
    }
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "chaos_recovery");
  const Flags& flags = opts.flags;

  const double crash_ms = flags.GetDouble("crash_ms", 300.0);
  const double restart_ms = flags.GetDouble("restart_ms", 800.0);
  const double timeout_ms = flags.GetDouble("timeout_ms", 120.0);
  const double tail_fraction = flags.GetDouble("tail", 0.25);

  ExperimentConfig base;
  base.query.window = WindowSpec::CountTumbling(
      static_cast<uint64_t>(flags.GetInt("window", 10'000)));
  base.query.aggregate = AggregateKind::kSum;
  base.num_locals = static_cast<size_t>(flags.GetInt("locals", 3));
  base.streams_per_local = static_cast<size_t>(flags.GetInt("streams", 2));
  base.events_per_local = opts.Scaled(
      static_cast<uint64_t>(flags.GetInt("events", 8'000'000)));
  base.base_rate = flags.GetDouble("rate", 2e6);
  base.rate_change = 0.01;
  base.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  base.root_options.node_timeout_nanos =
      static_cast<TimeNanos>(timeout_ms * kNanosPerMilli);

  ChaosSchedule schedule;
  if (flags.Has("chaos")) {
    auto parsed = ChaosSchedule::Parse(flags.GetString("chaos", ""));
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --chaos: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    schedule = *parsed;
  } else {
    schedule.Crash("local-1",
                   static_cast<TimeNanos>(crash_ms * kNanosPerMilli))
        .Restart("local-1",
                 static_cast<TimeNanos>(restart_ms * kNanosPerMilli));
  }

  const std::vector<Scheme> schemes = opts.Schemes(
      {Scheme::kCentral, Scheme::kDecoMon, Scheme::kDecoSync,
       Scheme::kDecoAsync});

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("chaos", schedule.ToSpecString());
  recorder.SetConfig("window",
                     static_cast<int64_t>(base.query.window.length));
  recorder.SetConfig("locals", static_cast<int64_t>(base.num_locals));
  recorder.SetConfig("events_per_local",
                     static_cast<int64_t>(base.events_per_local));
  recorder.SetConfig("timeout_ms", timeout_ms);
  recorder.SetConfig("tail", tail_fraction);
  recorder.SetConfig("seed", static_cast<int64_t>(base.seed));

  std::printf("=== chaos_recovery: %s ===\n",
              schedule.ToSpecString().c_str());
  std::printf("%zu locals, window %llu, %llu events/local, node timeout "
              "%.0f ms, tail %.0f%%\n",
              base.num_locals,
              (unsigned long long)base.query.window.length,
              (unsigned long long)base.events_per_local, timeout_ms,
              100.0 * tail_fraction);
  std::printf("%-14s %10s %10s %12s %11s %11s %12s %10s\n", "scheme",
              "windows", "w/chaos", "corrections", "detect(ms)",
              "rejoin(ms)", "tail-err(%)", "compared");

  bool ok = true;
  for (Scheme scheme : schemes) {
    const std::string label = SchemeToString(scheme);
    for (int r = 0; r < opts.repeat; ++r) {
      ExperimentConfig config = base;
      config.scheme = scheme;
      opts.ApplyCommon(&config, label + ".truth");

      auto truth = RunExperiment(config);
      if (!truth.ok()) {
        std::printf("%-14s ERROR (fault-free): %s\n",
                    SchemeToString(scheme),
                    truth.status().ToString().c_str());
        ok = false;
        break;
      }

      config.chaos.schedule = schedule;
      std::vector<ChaosAuditEntry> audit;
      config.chaos.audit = &audit;
      opts.ApplyCommon(&config, std::string("chaos.") + label);
      auto chaos = RunExperiment(config);
      if (!chaos.ok()) {
        std::printf("%-14s ERROR (chaos): %s\n", SchemeToString(scheme),
                    chaos.status().ToString().c_str());
        ok = false;
        break;
      }

      const TailError error =
          TimeAlignedTailError(*truth, *chaos, tail_fraction);
      const double detect_at = MembershipOffsetMs(*chaos, false);
      const double rejoin_at = MembershipOffsetMs(*chaos, true);
      std::printf(
          "%-14s %10llu %10llu %12llu %11.1f %11.1f %12.4f %10zu\n",
          SchemeToString(scheme),
          (unsigned long long)truth->windows_emitted,
          (unsigned long long)chaos->windows_emitted,
          (unsigned long long)chaos->correction_steps,
          detect_at >= 0.0 ? detect_at - crash_ms : -1.0,
          rejoin_at >= 0.0 ? rejoin_at - restart_ms : -1.0,
          100.0 * error.relative, error.compared);
      std::fflush(stdout);
      recorder.AddReport(label, *chaos);
      recorder.AddMetric(label, "tail_error_relative", error.relative);
      if (detect_at >= 0.0) {
        recorder.AddMetric(label, "detect_latency_ms",
                           detect_at - crash_ms);
      }
      if (rejoin_at >= 0.0) {
        recorder.AddMetric(label, "rejoin_latency_ms",
                           rejoin_at - restart_ms);
      }
    }
  }
  const int rc = bench::Finish(opts, recorder);
  return ok ? rc : 1;
}
