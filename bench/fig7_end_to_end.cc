// Reproduces Figure 7 of the paper: end-to-end throughput (7a) and latency
// (7b) of Central, Scotty, Disco and Deco_async on a 9-node cluster (one
// root, eight local nodes), tumbling count window, sum aggregate, 1% event
// rate change. The paper uses 1M-event windows and a physical cluster; the
// defaults here scale the window to 200k events on the in-process fabric
// (see DESIGN.md for the substitution argument). Expected shape: Deco_async
// an order of magnitude above Scotty in throughput and far below Central in
// latency; Disco slowest (single-threaded text decoding).

#include "bench/bench_util.h"

using namespace deco;

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "fig7_end_to_end");
  const uint64_t window = opts.Scaled(200'000);
  const uint64_t events = opts.Scaled(4'000'000);
  const size_t locals =
      static_cast<size_t>(opts.flags.GetInt("locals", 8));

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("window", static_cast<int64_t>(window));
  recorder.SetConfig("events_per_local", static_cast<int64_t>(events));
  recorder.SetConfig("locals", static_cast<int64_t>(locals));
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Figure 7: end-to-end performance, %zu local nodes, "
              "window=%llu, events/node=%llu, rate change 1%%\n",
              locals, static_cast<unsigned long long>(window),
              static_cast<unsigned long long>(events));
  bench::PrintHeader("Fig 7a/7b: throughput and latency");

  for (Scheme scheme : opts.Schemes({Scheme::kCentral, Scheme::kScotty,
                                     Scheme::kDisco, Scheme::kDecoAsync})) {
    ExperimentConfig config;
    config.scheme = scheme;
    config.query.window = WindowSpec::CountTumbling(window);
    config.query.aggregate = AggregateKind::kSum;
    config.num_locals = locals;
    config.streams_per_local = 4;
    // Disco's text path is ~10x slower; keep its run time comparable.
    config.events_per_local =
        scheme == Scheme::kDisco ? events / 4 : events;
    config.base_rate = 1e6;
    config.rate_change = 0.01;
    config.batch_size = 8192;
    config.seed = 42;
    opts.ApplyCommon(&config, SchemeToString(scheme));
    bench::RunAndRecord(config, opts, &recorder, SchemeToString(scheme));
  }

  // --ops_overhead: rerun the Deco row with the full live ops plane on
  // (metrics endpoint, watchdog on the sampler tick, flight recorder) as
  // `<scheme>/ops`. check_bench_json.py asserts the paired sim rows'
  // throughput medians stay within 2% — the observability tax must stay
  // in the noise.
  if (opts.flags.GetBool("ops_overhead", false)) {
    ExperimentConfig config;
    config.scheme = Scheme::kDecoAsync;
    config.query.window = WindowSpec::CountTumbling(window);
    config.query.aggregate = AggregateKind::kSum;
    config.num_locals = locals;
    config.streams_per_local = 4;
    config.events_per_local = events;
    config.base_rate = 1e6;
    config.rate_change = 0.01;
    config.batch_size = 8192;
    config.seed = 42;
    opts.ApplyCommon(&config, "deco-async.ops");
    config.ops.ops_port = 0;  // ephemeral; scraped by nobody, still serving
    config.ops.watchdog = true;
    config.ops.flight_recorder = true;
    bench::RunAndRecord(config, opts, &recorder, "deco-async/ops");
  }
  return bench::Finish(opts, recorder);
}
