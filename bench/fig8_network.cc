// Reproduces Figure 8 of the paper: network utilization of the approaches.
// 8a: a 2-node cluster (one local, one root). 8b: growing the topology from
// 1 to 8 local nodes. The paper pushes 100M events per local node; the
// default here is 2M (--scale to grow). Expected shape: Deco_async ships a
// tiny fraction of the centralized schemes' bytes (up to 99% saving); Disco
// costs the most (verbose string wire format); all centralized schemes grow
// linearly with node count.

#include "bench/bench_util.h"

using namespace deco;

namespace {

ExperimentConfig BaseConfig(uint64_t events, size_t locals) {
  ExperimentConfig config;
  config.query.window = WindowSpec::CountTumbling(100'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = locals;
  config.streams_per_local = 4;
  config.events_per_local = events;
  config.base_rate = 1e6;
  config.rate_change = 0.01;
  config.batch_size = 8192;
  config.seed = 42;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts =
      bench::BenchOptions::Parse(argc, argv, "fig8_network");
  const uint64_t events = opts.Scaled(2'000'000);
  const std::vector<Scheme> schemes = opts.Schemes(
      {Scheme::kCentral, Scheme::kScotty, Scheme::kDisco,
       Scheme::kDecoAsync});

  BenchRecorder recorder(opts.bench_name);
  opts.RecordConfig(&recorder);
  recorder.SetConfig("events_per_local", static_cast<int64_t>(events));
  recorder.SetConfig("window", static_cast<int64_t>(100'000));
  recorder.SetConfig("seed", static_cast<int64_t>(42));

  std::printf("Figure 8: network utilization, events/node=%llu\n",
              static_cast<unsigned long long>(events));
  bench::PrintHeader("Fig 8a: single local node data transfer");
  for (Scheme scheme : schemes) {
    ExperimentConfig config = BaseConfig(
        scheme == Scheme::kDisco ? events / 4 : events, 1);
    config.scheme = scheme;
    opts.ApplyCommon(&config, SchemeToString(scheme));
    bench::RunAndRecord(config, opts, &recorder, SchemeToString(scheme));
  }

  std::printf("\n=== Fig 8b: total network bytes vs. local node count ===\n");
  std::printf("%-14s", "scheme");
  const std::vector<int64_t> node_counts =
      opts.flags.GetIntList("nodes", {1, 2, 3, 4, 6, 8});
  for (int64_t n : node_counts) std::printf(" %10lldn", (long long)n);
  std::printf("   (MB total)\n");
  for (Scheme scheme : schemes) {
    std::printf("%-14s", SchemeToString(scheme));
    for (int64_t n : node_counts) {
      ExperimentConfig config = BaseConfig(
          scheme == Scheme::kDisco ? events / 8 : events / 2,
          static_cast<size_t>(n));
      config.scheme = scheme;
      const std::string label = std::string(SchemeToString(scheme)) +
                                "/nodes=" + std::to_string(n);
      opts.ApplyCommon(&config, label);
      bool ok = true;
      uint64_t bytes = 0;
      for (int r = 0; r < opts.repeat && ok; ++r) {
        auto result = RunExperiment(config);
        if (!result.ok()) {
          ok = false;
          break;
        }
        bytes = result->network.total_bytes;
        recorder.AddReport(label, *result);
      }
      if (ok) {
        std::printf(" %11.2f", static_cast<double>(bytes) / 1e6);
      } else {
        std::printf(" %11s", "ERR");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return bench::Finish(opts, recorder);
}
