#!/usr/bin/env python3
"""Structural validator for deco_run --trace_out output.

Checks that a Chrome-trace-event/Perfetto JSON document is loadable and
internally consistent, so CI catches exporter regressions before anyone
drags a broken trace into ui.perfetto.dev:

  * top level is an object with "displayTimeUnit" and a "traceEvents" list
  * every event has the mandatory fields for its phase ("ph")
  * every async begin ("b") is balanced by an end ("e") with the same
    (cat, id) and a timestamp >= the begin
  * every counter ("C") event carries a non-empty numeric args object,
    and counter timestamps never run backwards per (pid, name) track
  * every non-metadata event's pid has a process_name metadata record

Usage: check_perfetto_trace.py <trace.json>
"""

import json
import sys


def fail(message):
    print(f"check_perfetto_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_perfetto_trace.py <trace.json>")
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("displayTimeUnit") != "ms":
        fail("displayTimeUnit missing or not 'ms'")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    named_pids = set()
    open_async = {}  # (cat, id) -> begin ts
    counter_last_ts = {}  # (pid, name) -> last ts
    balanced = 0
    counters = 0
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph is None:
            fail(f"event {i} has no ph")
        if ph == "M":
            if event.get("name") == "process_name":
                named_pids.add(event.get("pid"))
            continue
        for key in ("name", "pid", "ts"):
            if key not in event:
                fail(f"event {i} (ph={ph}) missing {key}")
        if event["pid"] not in named_pids:
            fail(f"event {i} uses pid {event['pid']} "
                 "with no process_name metadata")
        if ph == "b":
            key = (event.get("cat"), event.get("id"))
            if None in key:
                fail(f"async begin {i} missing cat or id")
            if key in open_async:
                fail(f"async begin {key} nested/duplicated")
            open_async[key] = event["ts"]
        elif ph == "e":
            key = (event.get("cat"), event.get("id"))
            begin_ts = open_async.pop(key, None)
            if begin_ts is None:
                fail(f"async end {key} without matching begin")
            if event["ts"] < begin_ts:
                fail(f"async {key} ends at {event['ts']} "
                     f"before its begin at {begin_ts}")
            balanced += 1
        elif ph == "i":
            if event.get("s") not in ("t", "p", "g"):
                fail(f"instant event {i} has invalid scope {event.get('s')}")
        elif ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"counter event {i} has no args")
            for key, value in args.items():
                if not isinstance(value, (int, float)):
                    fail(f"counter event {i} arg {key!r} is not numeric")
            track = (event["pid"], event["name"])
            if event["ts"] < counter_last_ts.get(track, event["ts"]):
                fail(f"counter event {i} ({event['name']}) goes back in time")
            counter_last_ts[track] = event["ts"]
            counters += 1
        else:
            fail(f"event {i} has unexpected ph {ph!r}")

    if open_async:
        fail(f"{len(open_async)} async begins never ended: "
             f"{sorted(open_async)[:5]}")
    if not named_pids:
        fail("no process_name metadata records")

    print(f"check_perfetto_trace: OK: {len(events)} events, "
          f"{len(named_pids)} node tracks, {balanced} balanced async pairs, "
          f"{counters} counter samples")


if __name__ == "__main__":
    main()
