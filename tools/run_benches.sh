#!/usr/bin/env bash
# Runs every bench binary and collects the structured JSON in one place.
#
#   tools/run_benches.sh [--build_dir=build] [--json_dir=bench_results] \
#                        [any shared bench flag, e.g. --scale=0.1 --repeat=3]
#
# Every other argument is forwarded verbatim to each binary (they share
# one flag parser; see bench/bench_util.h). Typical uses:
#
#   tools/run_benches.sh --json_dir=results --scale=0.1 --repeat=3
#   tools/run_benches.sh --json_dir=results --sim          # CI baselines
#
# Exits non-zero if any binary fails; keeps going so one failure doesn't
# hide the rest.

set -euo pipefail

BUILD_DIR=build
JSON_DIR=bench_results
FORWARD=()
for arg in "$@"; do
  case "$arg" in
    --build_dir=*) BUILD_DIR="${arg#*=}" ;;
    --json_dir=*) JSON_DIR="${arg#*=}" ;;
    *) FORWARD+=("$arg") ;;
  esac
done

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "run_benches: $BUILD_DIR/bench does not exist; build first" >&2
  exit 2
fi
mkdir -p "$JSON_DIR"

status=0
for bench in "$BUILD_DIR"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo
  echo "=== $name ==="
  if ! "$bench" --json_dir="$JSON_DIR" ${FORWARD[@]+"${FORWARD[@]}"}; then
    echo "run_benches: FAILED: $name" >&2
    status=1
  fi
done

echo
echo "bench JSON in $JSON_DIR/:"
ls -1 "$JSON_DIR"/BENCH_*.json 2>/dev/null || true
exit $status
