// Command-line experiment runner: every knob of the harness as a flag.
//
//   deco_run --scheme=deco-async --window=1000000 --locals=8
//   deco_run ... --events=10000000 --change=0.01 --agg=sum
//
// Prints the one-line run summary and, with --verbose, every emitted
// window. With --compare, the run is repeated with the Central ground
// truth and the correctness overlap is reported (paper Fig. 10d metric).

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <ctime>

#include "common/flags.h"
#include "common/logging.h"
#include "harness/experiment.h"

using namespace deco;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// SIGINT/SIGTERM flip this flag; the harness's interrupt watcher sees it,
// stops the actors cleanly and still flushes telemetry/provenance/bench
// output on the way out. A second signal falls back to the default
// disposition (hard kill) so a wedged run stays killable.
std::atomic<bool> g_interrupted{false};

void HandleInterrupt(int signo) {
  g_interrupted.store(true, std::memory_order_release);
  std::signal(signo, SIG_DFL);
}

void InstallInterruptHandlers() {
  struct sigaction action = {};
  action.sa_handler = &HandleInterrupt;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

// Default flight-recorder dump path, timestamped so repeated runs in one
// directory never clobber each other's post-mortems.
std::string DefaultFlightRecorderPath() {
  char buf[64];
  const std::time_t now = std::time(nullptr);
  std::tm tm_buf = {};
  localtime_r(&now, &tm_buf);
  std::strftime(buf, sizeof(buf), "deco_flight_%Y%m%d_%H%M%S.json", &tm_buf);
  return buf;
}

void PrintUsage() {
  std::printf(
      "deco_run — run one decentralized-aggregation experiment\n\n"
      "  --scheme=<name>     central|scotty|disco|approx|deco-mon|"
      "deco-sync|deco-async|deco-monlocal (default deco-sync)\n"
      "  --window=<n>        global count window length (default 100000)\n"
      "  --slide=<n>         slide for sliding count windows (default: "
      "tumbling)\n"
      "  --agg=<name>        sum|count|min|max|avg|median (default sum)\n"
      "  --locals=<n>        local node count (default 2)\n"
      "  --streams=<n>       sensor streams per local node (default 4)\n"
      "  --events=<n>        events per local node (default 1000000)\n"
      "  --batch=<n>         events per data-plane message (default 4096)\n"
      "  --rate=<f>          per-node event rate, events/s (default 1e6)\n"
      "  --change=<f>        rate-change fraction, e.g. 0.01 (default)\n"
      "  --skew=<f>          per-node rate skew (default 0)\n"
      "  --cpu=<n>           per-node CPU cap, events/s (0 = off)\n"
      "  --nic=<n>           per-node egress cap, bytes/s (0 = off)\n"
      "  --latency=<ms>      one-way link latency (default 0)\n"
      "  --drop=<p>          per-message drop probability on every\n"
      "                      root<->local link (default 0)\n"
      "  --chaos=<spec>      scheduled fault injection, e.g.\n"
      "                      crash:local-1@300ms,restart:local-1@800ms\n"
      "                      kinds: crash|restart|drop|lag|part|surge,\n"
      "                      optional +<duration> and =<value>\n"
      "  --timeout=<ms>      root failure-detection timeout; required for\n"
      "                      crash chaos against a Deco scheme (default 0)\n"
      "  --queries=<list>    serve a ;-separated query set over the same\n"
      "                      streams (DESIGN.md §11). Specs: positional\n"
      "                      agg:window[:slide] or key=value\n"
      "                      (tenant=,agg=,window=,slide=,q=,add=,rm=);\n"
      "                      add/rm schedule runtime add/remove at that\n"
      "                      protocol pane. Entry 0 is the primary and\n"
      "                      overrides --window/--agg. Example:\n"
      "                      --queries='sum:100000;tenant=b,agg=max,"
      "window=50000;tenant=b,agg=avg,window=100000,add=4,rm=12'\n"
      "  --max_queries=<n>   admission cap on registered queries "
      "(default 64)\n"
      "  --query_budget=<f>  admission cap on estimated extra slice bytes\n"
      "                      per event from the non-primary slots\n"
      "                      (0 = unlimited); over-budget sets are rejected\n"
      "                      before the run starts\n"
      "  --seed=<n>          PRNG seed (default 42)\n"
      "  --sim               deterministic simulation mode (DESIGN.md §8):\n"
      "                      virtual-time scheduler seeded with --seed; the\n"
      "                      whole run (message order, report, counters)\n"
      "                      replays byte-identically from (config, seed).\n"
      "                      Composes with --chaos and --trace_out; note\n"
      "                      that chaos offsets only land mid-stream when\n"
      "                      the run is paced with --cpu\n"
      "  --sim_limit_ms=<n>  abort a sim run once virtual time exceeds\n"
      "                      this (0 = unlimited; livelock guard)\n"
      "  --telemetry_out=<f>      write run telemetry (sampler time series +\n"
      "                           window-lifecycle spans) as JSON to <f>\n"
      "  --telemetry_csv=<p>      also write <p>.samples.csv / <p>.spans.csv\n"
      "  --trace_out=<f>          write a Chrome-trace-event/Perfetto JSON\n"
      "                           trace (one track per node; open it in\n"
      "                           https://ui.perfetto.dev) to <f>\n"
      "  --trace_capacity=<n>     TraceSink cap on retained spans and hop\n"
      "                           records (default 1048576; 0 = unbounded);\n"
      "                           raise it when a run warns about truncation\n"
      "  --sample_interval_ms=<n> telemetry sampling period (default 50)\n"
      "  --profile           per-thread CPU/alloc profiling (DESIGN.md §9):\n"
      "                      prints a per-actor CPU table with handler-level\n"
      "                      attribution and embeds the profile in the\n"
      "                      telemetry JSON\n"
      "  --profile_allocs=<b>     count per-thread allocations while\n"
      "                           profiling (default true)\n"
      "  --provenance        window provenance + live accuracy attribution\n"
      "                      (DESIGN.md §10): per-window records of who\n"
      "                      contributed what, plus a drop/staleness/approx\n"
      "                      error decomposition; prints the summary line\n"
      "  --provenance_out=<f>     write the full provenance log (records +\n"
      "                           per-window accuracy) as JSON to <f>;\n"
      "                           implies --provenance\n"
      "  --provenance_reservoir=<n>  wall-clock runs estimate accuracy on\n"
      "                           this many sampled windows (default 256;\n"
      "                           0 = all; sim runs always estimate all)\n"
      "  --ops_port=<n>      serve live ops HTTP endpoints on\n"
      "                      127.0.0.1:<n> for the duration of the run\n"
      "                      (DESIGN.md §12): /metrics (Prometheus text\n"
      "                      exposition), /healthz (RFC health JSON),\n"
      "                      /statusz (per-node + query JSON). 0 picks an\n"
      "                      ephemeral port (printed at startup). Implies\n"
      "                      the watchdog and the flight recorder\n"
      "  --metrics_out=<f>   write the final /metrics Prometheus exposition\n"
      "                      to <f> after the run (no HTTP port needed)\n"
      "  --obs_node_detail_limit=<n> cardinality governance (DESIGN.md §13):\n"
      "                      above <n> locals, per-node observability detail\n"
      "                      (telemetry samples, /metrics, /statusz,\n"
      "                      provenance parts, CLI summaries) collapses into\n"
      "                      fleet aggregates + top-k offenders\n"
      "                      (default 64; 0 = unlimited detail)\n"
      "  --obs_top_k=<n>     offender series kept per governed surface\n"
      "                      (default 8)\n"
      "  --status_interval_ms=<n> print a one-line live progress heartbeat\n"
      "                      (events in, panes, windows, alerts) to stderr\n"
      "                      every <n> ms (0 = off)\n"
      "  --watchdog          run the anomaly watchdog on the sampler tick:\n"
      "                      window-stall, queue-growth, node-silence,\n"
      "                      correction-storm and tenant byte-burn\n"
      "                      detectors; alerts land in the log, /healthz\n"
      "                      and telemetry JSON (schema v6)\n"
      "  --watchdog_stall_ms=<n>    stall threshold (default 2000)\n"
      "  --watchdog_queue_limit=<n> mailbox depth limit (default 100000)\n"
      "  --watchdog_silence_ms=<n>  node-silence threshold (default 2000)\n"
      "  --watchdog_corrections_per_sec=<f> correction-storm rate limit\n"
      "                      (default 100)\n"
      "  --watchdog_tenant_bytes_per_sec=<f> per-tenant byte-budget burn\n"
      "                      rate limit (default 0 = off)\n"
      "  --flight_recorder   keep a bounded in-memory ring of recent\n"
      "                      message hops, span events and alert\n"
      "                      transitions; dumped to JSON on a watchdog\n"
      "                      trip, a fatal signal (SIGSEGV/SIGABRT) or\n"
      "                      --dump_flight_recorder\n"
      "  --flight_recorder_out=<f>  dump path (default\n"
      "                      deco_flight_<timestamp>.json)\n"
      "  --dump_flight_recorder     always dump the flight recorder at the\n"
      "                      end of the run; implies --flight_recorder\n"
      "  --log_level=<name>  debug|info|warning|error|fatal (default info)\n"
      "  --compare           also run Central and report correctness\n"
      "  --verbose           print every emitted window\n"
      "  --debug             enable debug logging (same as --log_level=debug)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  if (flags.Has("help")) {
    PrintUsage();
    return 0;
  }
  if (flags.GetBool("debug", false)) SetLogLevel(LogLevel::kDebug);
  if (flags.Has("log_level")) {
    auto level = LogLevelFromString(flags.GetString("log_level", "info"));
    if (!level.ok()) return Fail(level.status());
    SetLogLevel(*level);
  }

  ExperimentConfig config;
  auto scheme = SchemeFromString(flags.GetString("scheme", "deco-sync"));
  if (!scheme.ok()) return Fail(scheme.status());
  config.scheme = *scheme;

  const uint64_t window =
      static_cast<uint64_t>(flags.GetInt("window", 100'000));
  const uint64_t slide = static_cast<uint64_t>(flags.GetInt("slide", 0));
  config.query.window = slide > 0 ? WindowSpec::CountSliding(window, slide)
                                  : WindowSpec::CountTumbling(window);
  auto agg = AggregateKindFromString(flags.GetString("agg", "sum"));
  if (!agg.ok()) return Fail(agg.status());
  config.query.aggregate = *agg;

  config.num_locals = static_cast<size_t>(flags.GetInt("locals", 2));
  config.streams_per_local =
      static_cast<size_t>(flags.GetInt("streams", 4));
  config.events_per_local =
      static_cast<uint64_t>(flags.GetInt("events", 1'000'000));
  config.batch_size = static_cast<size_t>(flags.GetInt("batch", 4096));
  config.base_rate = flags.GetDouble("rate", 1e6);
  config.rate_change = flags.GetDouble("change", 0.01);
  config.rate_skew = flags.GetDouble("skew", 0.0);
  config.cpu_events_per_sec =
      static_cast<uint64_t>(flags.GetInt("cpu", 0));
  config.egress_bytes_per_sec =
      static_cast<uint64_t>(flags.GetInt("nic", 0));
  config.link_latency_nanos = static_cast<TimeNanos>(
      flags.GetDouble("latency", 0.0) * kNanosPerMilli);
  config.drop_probability = flags.GetDouble("drop", 0.0);
  config.root_options.node_timeout_nanos = static_cast<TimeNanos>(
      flags.GetDouble("timeout", 0.0) * kNanosPerMilli);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.sim = flags.GetBool("sim", false);
  config.sim_time_limit_nanos = static_cast<TimeNanos>(
      flags.GetDouble("sim_limit_ms", 0.0) * kNanosPerMilli);

  if (flags.Has("queries")) {
    auto queries = ParseQueryList(flags.GetString("queries", ""));
    if (!queries.ok()) return Fail(queries.status());
    config.serve.queries = std::move(*queries);
  }
  config.serve.admission.max_queries =
      static_cast<size_t>(flags.GetInt("max_queries", 64));
  config.serve.admission.max_extra_bytes_per_event =
      flags.GetDouble("query_budget", 0.0);

  std::vector<ChaosAuditEntry> audit;
  if (flags.Has("chaos")) {
    auto schedule = ChaosSchedule::Parse(flags.GetString("chaos", ""));
    if (!schedule.ok()) return Fail(schedule.status());
    config.chaos.schedule = *schedule;
    config.chaos.audit = &audit;
  }

  config.telemetry.json_out = flags.GetString("telemetry_out", "");
  config.telemetry.csv_prefix = flags.GetString("telemetry_csv", "");
  config.telemetry.perfetto_out = flags.GetString("trace_out", "");
  config.telemetry.trace_capacity = static_cast<size_t>(
      flags.GetInt("trace_capacity", 1 << 20));
  config.telemetry.sample_interval_nanos = static_cast<TimeNanos>(
      flags.GetInt("sample_interval_ms", 50) * kNanosPerMilli);
  config.telemetry.enabled = !config.telemetry.json_out.empty() ||
                             !config.telemetry.csv_prefix.empty() ||
                             !config.telemetry.perfetto_out.empty();
  config.profile.enabled = flags.GetBool("profile", false);
  config.profile.count_allocs = flags.GetBool("profile_allocs", true);
  config.provenance.json_out = flags.GetString("provenance_out", "");
  config.provenance.enabled = flags.GetBool("provenance", false) ||
                              !config.provenance.json_out.empty();
  config.provenance.accuracy_reservoir = static_cast<size_t>(
      flags.GetInt("provenance_reservoir", 256));

  int bound_port = -1;
  std::vector<Alert> alerts;
  config.ops.ops_port =
      flags.Has("ops_port") ? static_cast<int>(flags.GetInt("ops_port", 0))
                            : -1;
  config.ops.bound_port = &bound_port;
  config.ops.status_interval_nanos = static_cast<TimeNanos>(
      flags.GetInt("status_interval_ms", 0) * kNanosPerMilli);
  config.ops.watchdog = flags.GetBool("watchdog", false);
  config.ops.watchdog_options.stall_nanos = static_cast<TimeNanos>(
      flags.GetInt("watchdog_stall_ms", 2000) * kNanosPerMilli);
  config.ops.watchdog_options.queue_depth_limit =
      flags.GetInt("watchdog_queue_limit", 100000);
  config.ops.watchdog_options.silence_nanos = static_cast<TimeNanos>(
      flags.GetInt("watchdog_silence_ms", 2000) * kNanosPerMilli);
  config.ops.watchdog_options.corrections_per_sec =
      flags.GetDouble("watchdog_corrections_per_sec", 100.0);
  config.ops.watchdog_options.tenant_bytes_per_sec =
      flags.GetDouble("watchdog_tenant_bytes_per_sec", 0.0);
  config.ops.dump_flight_recorder =
      flags.GetBool("dump_flight_recorder", false);
  config.ops.flight_recorder = flags.GetBool("flight_recorder", false) ||
                               flags.Has("flight_recorder_out") ||
                               config.ops.dump_flight_recorder;
  config.ops.flight_recorder_out = flags.GetString(
      "flight_recorder_out",
      config.ops.flight_recorder || config.ops.watchdog ||
              config.ops.ops_port >= 0
          ? DefaultFlightRecorderPath()
          : "");
  config.ops.crash_handler =
      config.ops.flight_recorder || config.ops.ops_port >= 0;
  config.ops.interrupt = &g_interrupted;
  config.ops.alerts = &alerts;
  config.ops.metrics_out = flags.GetString("metrics_out", "");
  config.obs_governance.node_detail_limit =
      static_cast<size_t>(flags.GetInt("obs_node_detail_limit", 64));
  config.obs_governance.top_k =
      static_cast<size_t>(flags.GetInt("obs_top_k", 8));
  InstallInterruptHandlers();

  auto result = RunExperiment(config);
  if (!result.ok()) return Fail(result.status());
  const RunReport& report = *result;
  std::printf("%s\n", report.Summary().c_str());

  if (report.serving.enabled) {
    std::printf(
        "serving: %llu queries in %llu slots, pane=%llu, "
        "%llu query windows\n",
        (unsigned long long)report.serving.queries,
        (unsigned long long)report.serving.slots,
        (unsigned long long)report.serving.pane_length,
        (unsigned long long)report.serving.total_query_windows);
    for (const QueryRunResult& q : report.query_results) {
      char end_pane[32];
      if (q.end_pane == UINT64_MAX) {
        std::snprintf(end_pane, sizeof(end_pane), "end");
      } else {
        std::snprintf(end_pane, sizeof(end_pane), "%llu",
                      (unsigned long long)q.end_pane);
      }
      std::printf("  query %u [%s] %s: %zu windows, panes [%llu, %s)%s\n",
                  q.query_id, q.tenant.c_str(), q.spec.c_str(),
                  q.windows.size(), (unsigned long long)q.start_pane,
                  end_pane, q.activated ? "" : " (never activated)");
    }
    for (const TenantUsage& t : report.serving.tenants) {
      std::printf(
          "  tenant %-10s bytes=%llu agg_ops=%llu cpu_est=%.2fms "
          "queries=%llu\n",
          t.tenant.c_str(), (unsigned long long)t.bytes,
          (unsigned long long)t.agg_ops,
          static_cast<double>(t.cpu_nanos_est) / 1e6,
          (unsigned long long)t.queries);
    }
  }

  if (report.provenance.enabled) {
    const ProvenanceSummary& prov = report.provenance;
    std::printf(
        "provenance: %llu windows (%llu corrected, %llu correction rounds), "
        "partials %llu/%llu received (%llu missing, %llu duplicate), "
        "mean staleness %.3fms\n",
        (unsigned long long)prov.windows_tracked,
        (unsigned long long)prov.windows_corrected,
        (unsigned long long)prov.correction_rounds,
        (unsigned long long)prov.partials_received,
        (unsigned long long)prov.partials_expected,
        (unsigned long long)prov.partials_missing,
        (unsigned long long)prov.partials_duplicate,
        prov.mean_staleness_nanos / 1e6);
    if (prov.windows_estimated > 0) {
      std::printf(
          "accuracy: %llu windows estimated, mean |err|=%.6g max=%.6g "
          "(drop %.6g + staleness %.6g + approx %.6g)\n",
          (unsigned long long)prov.windows_estimated, prov.mean_abs_error,
          prov.max_abs_error, prov.mean_abs_drop_error,
          prov.mean_abs_staleness_error, prov.mean_abs_approx_error);
    }
  }

  if (!audit.empty()) {
    std::printf("chaos audit (%zu actions fired):\n", audit.size());
    for (const ChaosAuditEntry& entry : audit) {
      std::printf("  %s\n", entry.Describe().c_str());
    }
  }

  // Governed runs cap the per-entry CLI blocks the same way /statusz caps
  // its node table: top-k entries plus a count of the rest, so a 1000-node
  // incident never floods the terminal.
  const bool governed =
      config.obs_governance.Collapsed(config.num_locals);
  const size_t print_cap =
      governed ? config.obs_governance.top_k : SIZE_MAX;
  if (!alerts.empty()) {
    std::printf("alerts (%zu fired):\n", alerts.size());
    size_t printed = 0;
    for (const Alert& alert : alerts) {
      if (printed++ >= print_cap) break;
      std::printf("  %s [%s] observed=%.6g threshold=%.6g%s: %s\n",
                  std::string(AlertKindToString(alert.kind)).c_str(),
                  alert.subject.c_str(), alert.observed, alert.threshold,
                  alert.resolved_at_nanos > 0 ? " (resolved)" : " (active)",
                  alert.message.c_str());
    }
    if (alerts.size() > print_cap) {
      std::printf("  ... and %zu more (see /statusz or --telemetry_out)\n",
                  alerts.size() - print_cap);
    }
  }
  if (report.profile.enabled) {
    std::printf("cpu profile%s:\n", report.profile.alloc_counted
                                        ? " (with alloc counters)"
                                        : "");
    for (const ThreadProfile& t : report.profile.threads) {
      std::printf("  %-12s cpu=%9.2fms wall=%9.2fms msgs=%llu", t.name.c_str(),
                  static_cast<double>(t.cpu_nanos) / 1e6,
                  static_cast<double>(t.wall_nanos) / 1e6,
                  (unsigned long long)t.messages_handled);
      if (report.profile.alloc_counted) {
        std::printf(" allocs=%llu (%.2f MB)", (unsigned long long)t.allocations,
                    static_cast<double>(t.allocated_bytes) / 1e6);
      }
      std::printf("\n");
      for (const HandlerProfile& h : t.handlers) {
        std::printf("    %-16s n=%-8llu cpu=%9.2fms wall=%9.2fms\n",
                    MessageTypeToString(h.type), (unsigned long long)h.count,
                    static_cast<double>(h.cpu_nanos) / 1e6,
                    static_cast<double>(h.wall_nanos) / 1e6);
      }
    }
  }

  {
    size_t printed = 0;
    for (const MembershipEvent& event : report.membership) {
      if (printed++ >= print_cap) break;
      std::printf("membership: local-%zu %s at +%.1fms\n", event.node,
                  event.rejoined ? "rejoined" : "removed",
                  static_cast<double>(event.at_nanos -
                                      report.start_wall_nanos) /
                      1e6);
    }
    if (report.membership.size() > print_cap) {
      std::printf("membership: ... and %zu more events\n",
                  report.membership.size() - print_cap);
    }
  }

  if (flags.GetBool("verbose", false)) {
    for (const GlobalWindowRecord& w : report.windows) {
      std::printf("  window %llu: value=%.6f events=%llu latency=%.3fms%s\n",
                  (unsigned long long)w.window_index, w.value,
                  (unsigned long long)w.event_count,
                  w.mean_latency_nanos / 1e6,
                  w.corrected ? " (corrected)" : "");
    }
  }

  if (flags.GetBool("compare", false) &&
      config.scheme != Scheme::kCentral) {
    ExperimentConfig truth_config = config;
    truth_config.scheme = Scheme::kCentral;
    auto truth = RunExperiment(truth_config);
    if (!truth.ok()) return Fail(truth.status());
    std::printf("%s\n", truth->Summary().c_str());
    if (config.query.window.type == WindowType::kTumbling) {
      const CorrectnessReport correctness =
          CompareConsumption(truth->consumption, report.consumption);
      std::printf("correctness vs central: %.4f (%llu/%llu events in the "
                  "same windows)\n",
                  correctness.correctness,
                  (unsigned long long)correctness.overlapping_events,
                  (unsigned long long)correctness.truth_events);
    }
    const double saving =
        truth->network.total_bytes == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(
                                 report.network.total_bytes) /
                                 static_cast<double>(
                                     truth->network.total_bytes));
    std::printf("network saving vs central: %.1f%%\n", saving);
  }
  if (g_interrupted.load(std::memory_order_acquire)) {
    std::fprintf(stderr, "deco_run: interrupted — partial results above\n");
    return 130;
  }
  return 0;
}
