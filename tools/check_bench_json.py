#!/usr/bin/env python3
"""Validates Deco bench JSON documents (schema_version 1).

Usage: tools/check_bench_json.py BENCH_*.json

Checks, per document:
  * the required top-level fields and their types
    (schema_version/bench/git_sha/host/config/rows);
  * host carries cores / trace_enabled / sanitizer;
  * every row has a unique non-empty label, a metrics object, and a
    cpu_breakdown that is either null or a profile object
    (enabled/alloc_counted/threads);
  * every metric aggregate is self-consistent: non-empty values list,
    min <= median <= max, min/max actually bound the values, and the
    mean lies within [min, max] (up to a few ulps: summing identical
    doubles and dividing back can land one ulp outside the range);
  * rows carrying the accuracy-attribution metrics (err_total, err_drop,
    err_staleness, err_approx — signed per-repeat sums emitted by
    bench/accuracy_attribution) satisfy the decomposition invariant on
    every repeat: drop + staleness + approx must equal the observed
    total within 1% (with a small absolute floor for near-exact runs);
  * multi-query serving rows (label `<scheme>/q<N>`, emitted by
    bench/qps_marginal_cost with a `queries` metric) are self-consistent
    — the label's query count matches the metric, every sweep has a q=1
    anchor — and the Deco schemes satisfy the serving-layer acceptance
    bound: the marginal bytes/event of the largest query count must stay
    under 20% of the single-query cost (the shared slice store makes the
    Nth query nearly free; rerun-per-query baselines like central are
    exempt — their linear growth is the point of the comparison);
  * ops-overhead pairs (a `<scheme>/ops` row next to its `<scheme>` row,
    emitted by fig7_end_to_end --ops_overhead) in sim documents keep the
    live ops plane's throughput cost within 2% of the plain run.

Exits non-zero with a per-file message on the first violation in each
file; prints a one-line OK per valid file.
"""

import json
import sys


class BadDoc(Exception):
    pass


def expect(cond, message):
    if not cond:
        raise BadDoc(message)


def check_number(value, where):
    expect(isinstance(value, (int, float)) and not isinstance(value, bool),
           f"{where}: expected a number, got {type(value).__name__}")


def check_metric(name, agg, where):
    expect(isinstance(agg, dict), f"{where}: metric '{name}' is not an object")
    for key in ("values", "min", "max", "mean", "median", "stddev"):
        expect(key in agg, f"{where}: metric '{name}' missing '{key}'")
    values = agg["values"]
    expect(isinstance(values, list) and values,
           f"{where}: metric '{name}' has no values")
    for v in values:
        check_number(v, f"{where}: metric '{name}' values")
    for key in ("min", "max", "mean", "median", "stddev"):
        check_number(agg[key], f"{where}: metric '{name}' {key}")
    lo, hi = agg["min"], agg["max"]
    # Accumulating repeats and dividing back is not exact: allow the
    # derived statistics to sit a few ulps outside [min, max].
    slack = 1e-12 * max(abs(lo), abs(hi))
    expect(lo - slack <= agg["median"] <= hi + slack,
           f"{where}: metric '{name}': median {agg['median']} outside "
           f"[{lo}, {hi}]")
    expect(lo - slack <= agg["mean"] <= hi + slack,
           f"{where}: metric '{name}': mean {agg['mean']} outside "
           f"[{lo}, {hi}]")
    expect(lo == min(values) and hi == max(values),
           f"{where}: metric '{name}': min/max do not bound the values")
    expect(agg["stddev"] >= 0, f"{where}: metric '{name}': negative stddev")


ATTRIBUTION_METRICS = ("err_total", "err_drop", "err_staleness",
                       "err_approx")
ATTRIBUTION_REL_TOLERANCE = 0.01
ATTRIBUTION_ABS_FLOOR = 1e-6


def check_attribution(metrics, where):
    """Per-repeat decomposition check: the signed component sums must
    telescope to the observed error on every index of the values lists
    (aggregates like the median do not telescope, the raw repeats do)."""
    present = [m for m in ATTRIBUTION_METRICS if m in metrics]
    if not present:
        return
    expect(len(present) == len(ATTRIBUTION_METRICS),
           f"{where}: partial attribution metrics (have {present}, "
           f"need all of {list(ATTRIBUTION_METRICS)})")
    series = {m: metrics[m]["values"] for m in ATTRIBUTION_METRICS}
    lengths = {len(v) for v in series.values()}
    expect(len(lengths) == 1,
           f"{where}: attribution metrics have mismatched repeat counts")
    for i in range(lengths.pop()):
        total = series["err_total"][i]
        parts = (series["err_drop"][i] + series["err_staleness"][i] +
                 series["err_approx"][i])
        bound = max(ATTRIBUTION_REL_TOLERANCE * abs(total),
                    ATTRIBUTION_ABS_FLOOR)
        expect(abs(parts - total) <= bound,
               f"{where}: repeat {i}: err_drop + err_staleness + "
               f"err_approx = {parts!r} does not sum to err_total "
               f"{total!r} (bound {bound:g})")


MARGINAL_COST_BOUND = 0.20
SHARED_STORE_SCHEME_PREFIX = "deco"


def check_marginal_cost(doc, path):
    """Cross-row checks for the multi-query serving sweep: every
    `<scheme>/q<N>` row's `queries` metric must agree with its label, each
    scheme's sweep needs a q=1 anchor, and the Deco schemes must keep the
    marginal bytes/event of their largest query count under
    MARGINAL_COST_BOUND of the single-query cost (computed from medians,
    like the regression comparison)."""
    sweeps = {}  # scheme -> {count: row}
    for i, row in enumerate(doc["rows"]):
        label = row["label"]
        metrics = row["metrics"]
        if "queries" not in metrics:
            continue
        where = f"rows[{i}] ('{label}')"
        expect("/" in label and label.rsplit("/", 1)[1].startswith("q"),
               f"{where}: serving row labels must look like <scheme>/q<N>")
        scheme, qpart = label.rsplit("/", 1)
        expect(qpart[1:].isdigit(), f"{where}: bad query count '{qpart}'")
        count = int(qpart[1:])
        expect(metrics["queries"]["median"] == count,
               f"{where}: 'queries' metric {metrics['queries']['median']!r} "
               f"disagrees with label count {count}")
        expect("bytes_per_event" in metrics,
               f"{where}: serving row missing bytes_per_event")
        sweeps.setdefault(scheme, {})[count] = (where, metrics)
    for scheme, rows in sweeps.items():
        expect(1 in rows,
               f"serving sweep for '{scheme}' has no q=1 anchor row")
        single = rows[1][1]["bytes_per_event"]["median"]
        top = max(rows)
        if top == 1 or not scheme.startswith(SHARED_STORE_SCHEME_PREFIX):
            continue
        where, metrics = rows[top]
        marginal = (metrics["bytes_per_event"]["median"] - single) / (top - 1)
        expect(marginal < MARGINAL_COST_BOUND * single,
               f"{where}: marginal cost {marginal:.4f} bytes/event/query at "
               f"q={top} exceeds {MARGINAL_COST_BOUND:.0%} of the "
               f"single-query cost {single:.4f}")


OPS_OVERHEAD_BOUND = 0.02


def check_ops_overhead(doc, path):
    """Cross-row check for the live ops plane: when a bench carries both a
    `<scheme>` row and its `<scheme>/ops` twin (same workload rerun with
    the metrics endpoint, watchdog and flight recorder on), their
    throughput medians must agree within OPS_OVERHEAD_BOUND. Only sim rows
    are gated — virtual-time throughput is deterministic, wall-clock
    throughput is too noisy for a 2% bar."""
    if not doc.get("config", {}).get("sim", False):
        return
    rows = {row["label"]: (i, row) for i, row in enumerate(doc["rows"])}
    for label, (i, row) in rows.items():
        if not label.endswith("/ops"):
            continue
        base_label = label[: -len("/ops")]
        expect(base_label in rows,
               f"rows[{i}] ('{label}'): no matching '{base_label}' row to "
               "compare against")
        where = f"rows[{i}] ('{label}')"
        base = rows[base_label][1]["metrics"]
        ops = row["metrics"]
        # Virtual time makes the structural metrics exact: the ops plane
        # (pure reads + sampler-tick detectors) must not perturb the data
        # plane at all.
        for name in ("windows", "total_bytes", "total_messages",
                     "corrections"):
            if name not in base or name not in ops:
                continue
            expect(ops[name]["median"] == base[name]["median"],
                   f"{where}: ops plane changed {name} "
                   f"({ops[name]['median']!r} vs {base[name]['median']!r}) "
                   "— endpoints must be pure reads")
        # Unpaced sim runs report zero eps (no virtual elapsed time); when
        # throughput is measurable (--cpu-paced sim), hold the 2% bound.
        plain = base.get("throughput_eps", {}).get("median", 0)
        with_ops = ops.get("throughput_eps", {}).get("median", 0)
        if plain > 0:
            overhead = (plain - with_ops) / plain
            expect(overhead <= OPS_OVERHEAD_BOUND,
                   f"{where}: ops plane costs {overhead:.2%} throughput "
                   f"({with_ops:.0f} vs {plain:.0f} ev/s), above the "
                   f"{OPS_OVERHEAD_BOUND:.0%} bound")


def check_profile(profile, where):
    for key in ("enabled", "alloc_counted", "threads"):
        expect(key in profile, f"{where}: cpu_breakdown missing '{key}'")
    expect(isinstance(profile["threads"], list),
           f"{where}: cpu_breakdown threads is not a list")
    for thread in profile["threads"]:
        for key in ("name", "cpu_nanos", "wall_nanos", "messages_handled",
                    "allocations", "allocated_bytes", "handlers"):
            expect(key in thread,
                   f"{where}: cpu_breakdown thread missing '{key}'")
        for handler in thread["handlers"]:
            for key in ("type", "count", "cpu_nanos", "wall_nanos"):
                expect(key in handler,
                       f"{where}: cpu_breakdown handler missing '{key}'")


def check_doc(doc, path):
    expect(isinstance(doc, dict), "top level is not an object")
    for key, kind in (("schema_version", int), ("bench", str),
                      ("git_sha", str), ("host", dict), ("config", dict),
                      ("rows", list)):
        expect(key in doc, f"missing top-level '{key}'")
        expect(isinstance(doc[key], kind),
               f"'{key}' is not a {kind.__name__}")
    expect(doc["schema_version"] == 1,
           f"unsupported schema_version {doc['schema_version']}")
    expect(doc["bench"], "empty bench name")
    for key in ("cores", "trace_enabled", "sanitizer"):
        expect(key in doc["host"], f"host missing '{key}'")
    labels = set()
    for i, row in enumerate(doc["rows"]):
        where = f"rows[{i}]"
        expect(isinstance(row, dict), f"{where}: not an object")
        for key in ("label", "metrics", "cpu_breakdown"):
            expect(key in row, f"{where}: missing '{key}'")
        label = row["label"]
        expect(isinstance(label, str) and label, f"{where}: empty label")
        expect(label not in labels, f"{where}: duplicate label '{label}'")
        labels.add(label)
        expect(isinstance(row["metrics"], dict) and row["metrics"],
               f"{where} ('{label}'): no metrics")
        for name, agg in row["metrics"].items():
            check_metric(name, agg, f"{where} ('{label}')")
        check_attribution(row["metrics"], f"{where} ('{label}')")
        if row["cpu_breakdown"] is not None:
            check_profile(row["cpu_breakdown"], f"{where} ('{label}')")
    check_marginal_cost(doc, path)
    check_ops_overhead(doc, path)


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    status = 0
    for path in sys.argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            check_doc(doc, path)
        except (OSError, ValueError) as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            status = 1
            continue
        except BadDoc as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            status = 1
            continue
        print(f"OK {path}: bench '{doc['bench']}', {len(doc['rows'])} rows")
    return status


if __name__ == "__main__":
    sys.exit(main())
