#!/usr/bin/env python3
"""Validates Deco bench JSON documents (schema_version 1).

Usage: tools/check_bench_json.py BENCH_*.json

Checks, per document:
  * the required top-level fields and their types
    (schema_version/bench/git_sha/host/config/rows);
  * host carries cores / trace_enabled / sanitizer;
  * every row has a unique non-empty label, a metrics object, and a
    cpu_breakdown that is either null or a profile object
    (enabled/alloc_counted/threads);
  * every metric aggregate is self-consistent: non-empty values list,
    min <= median <= max, min/max actually bound the values, and the
    mean lies within [min, max] (up to a few ulps: summing identical
    doubles and dividing back can land one ulp outside the range);
  * rows carrying the accuracy-attribution metrics (err_total, err_drop,
    err_staleness, err_approx — signed per-repeat sums emitted by
    bench/accuracy_attribution) satisfy the decomposition invariant on
    every repeat: drop + staleness + approx must equal the observed
    total within 1% (with a small absolute floor for near-exact runs).

Exits non-zero with a per-file message on the first violation in each
file; prints a one-line OK per valid file.
"""

import json
import sys


class BadDoc(Exception):
    pass


def expect(cond, message):
    if not cond:
        raise BadDoc(message)


def check_number(value, where):
    expect(isinstance(value, (int, float)) and not isinstance(value, bool),
           f"{where}: expected a number, got {type(value).__name__}")


def check_metric(name, agg, where):
    expect(isinstance(agg, dict), f"{where}: metric '{name}' is not an object")
    for key in ("values", "min", "max", "mean", "median", "stddev"):
        expect(key in agg, f"{where}: metric '{name}' missing '{key}'")
    values = agg["values"]
    expect(isinstance(values, list) and values,
           f"{where}: metric '{name}' has no values")
    for v in values:
        check_number(v, f"{where}: metric '{name}' values")
    for key in ("min", "max", "mean", "median", "stddev"):
        check_number(agg[key], f"{where}: metric '{name}' {key}")
    lo, hi = agg["min"], agg["max"]
    # Accumulating repeats and dividing back is not exact: allow the
    # derived statistics to sit a few ulps outside [min, max].
    slack = 1e-12 * max(abs(lo), abs(hi))
    expect(lo - slack <= agg["median"] <= hi + slack,
           f"{where}: metric '{name}': median {agg['median']} outside "
           f"[{lo}, {hi}]")
    expect(lo - slack <= agg["mean"] <= hi + slack,
           f"{where}: metric '{name}': mean {agg['mean']} outside "
           f"[{lo}, {hi}]")
    expect(lo == min(values) and hi == max(values),
           f"{where}: metric '{name}': min/max do not bound the values")
    expect(agg["stddev"] >= 0, f"{where}: metric '{name}': negative stddev")


ATTRIBUTION_METRICS = ("err_total", "err_drop", "err_staleness",
                       "err_approx")
ATTRIBUTION_REL_TOLERANCE = 0.01
ATTRIBUTION_ABS_FLOOR = 1e-6


def check_attribution(metrics, where):
    """Per-repeat decomposition check: the signed component sums must
    telescope to the observed error on every index of the values lists
    (aggregates like the median do not telescope, the raw repeats do)."""
    present = [m for m in ATTRIBUTION_METRICS if m in metrics]
    if not present:
        return
    expect(len(present) == len(ATTRIBUTION_METRICS),
           f"{where}: partial attribution metrics (have {present}, "
           f"need all of {list(ATTRIBUTION_METRICS)})")
    series = {m: metrics[m]["values"] for m in ATTRIBUTION_METRICS}
    lengths = {len(v) for v in series.values()}
    expect(len(lengths) == 1,
           f"{where}: attribution metrics have mismatched repeat counts")
    for i in range(lengths.pop()):
        total = series["err_total"][i]
        parts = (series["err_drop"][i] + series["err_staleness"][i] +
                 series["err_approx"][i])
        bound = max(ATTRIBUTION_REL_TOLERANCE * abs(total),
                    ATTRIBUTION_ABS_FLOOR)
        expect(abs(parts - total) <= bound,
               f"{where}: repeat {i}: err_drop + err_staleness + "
               f"err_approx = {parts!r} does not sum to err_total "
               f"{total!r} (bound {bound:g})")


def check_profile(profile, where):
    for key in ("enabled", "alloc_counted", "threads"):
        expect(key in profile, f"{where}: cpu_breakdown missing '{key}'")
    expect(isinstance(profile["threads"], list),
           f"{where}: cpu_breakdown threads is not a list")
    for thread in profile["threads"]:
        for key in ("name", "cpu_nanos", "wall_nanos", "messages_handled",
                    "allocations", "allocated_bytes", "handlers"):
            expect(key in thread,
                   f"{where}: cpu_breakdown thread missing '{key}'")
        for handler in thread["handlers"]:
            for key in ("type", "count", "cpu_nanos", "wall_nanos"):
                expect(key in handler,
                       f"{where}: cpu_breakdown handler missing '{key}'")


def check_doc(doc, path):
    expect(isinstance(doc, dict), "top level is not an object")
    for key, kind in (("schema_version", int), ("bench", str),
                      ("git_sha", str), ("host", dict), ("config", dict),
                      ("rows", list)):
        expect(key in doc, f"missing top-level '{key}'")
        expect(isinstance(doc[key], kind),
               f"'{key}' is not a {kind.__name__}")
    expect(doc["schema_version"] == 1,
           f"unsupported schema_version {doc['schema_version']}")
    expect(doc["bench"], "empty bench name")
    for key in ("cores", "trace_enabled", "sanitizer"):
        expect(key in doc["host"], f"host missing '{key}'")
    labels = set()
    for i, row in enumerate(doc["rows"]):
        where = f"rows[{i}]"
        expect(isinstance(row, dict), f"{where}: not an object")
        for key in ("label", "metrics", "cpu_breakdown"):
            expect(key in row, f"{where}: missing '{key}'")
        label = row["label"]
        expect(isinstance(label, str) and label, f"{where}: empty label")
        expect(label not in labels, f"{where}: duplicate label '{label}'")
        labels.add(label)
        expect(isinstance(row["metrics"], dict) and row["metrics"],
               f"{where} ('{label}'): no metrics")
        for name, agg in row["metrics"].items():
            check_metric(name, agg, f"{where} ('{label}')")
        check_attribution(row["metrics"], f"{where} ('{label}')")
        if row["cpu_breakdown"] is not None:
            check_profile(row["cpu_breakdown"], f"{where} ('{label}')")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    status = 0
    for path in sys.argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
            check_doc(doc, path)
        except (OSError, ValueError) as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            status = 1
            continue
        except BadDoc as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            status = 1
            continue
        print(f"OK {path}: bench '{doc['bench']}', {len(doc['rows'])} rows")
    return status


if __name__ == "__main__":
    sys.exit(main())
