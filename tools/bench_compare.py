#!/usr/bin/env python3
"""Compares Deco bench JSON documents and fails on regressions.

Usage:
  # Diff two documents (baseline first):
  tools/bench_compare.py BASELINE.json CURRENT.json

  # Diff a directory of checked-in baselines against fresh runs; files
  # are matched on their "bench" field:
  tools/bench_compare.py --baseline-dir bench/baselines CURRENT.json ...

  # Refresh the checked-in baselines from fresh runs:
  tools/bench_compare.py --baseline-dir bench/baselines --update-baseline \
      CURRENT.json ...

Tolerance rules (applied to the per-metric *median* across repeats):

  * When both documents were produced with --sim, the structural metrics
    (total_messages, total_bytes, total_dropped, windows_emitted,
    correction_steps, events_processed, bytes_per_event) are
    machine-independent and must match exactly; timing metrics are
    ignored. This is the CI mode: checked-in baselines stay valid on any
    host.
  * Otherwise: throughput_eps may not drop more than 5%; the latency
    metrics may not rise more than 10%; bytes_per_event must be
    bit-stable for the exact schemes (central, scotty, disco, deco-mon,
    deco-sync, deco-monlocal) and within 1% for the rest; structural
    metrics are informational (wall-clock runs schedule nondeterministically).
  * total_dropped may never rise, in any mode: a throttled or lossy run
    (--drop) is a regression by definition.
  * Accuracy metrics (bench/accuracy_attribution): under --sim the whole
    run replays byte-identically, so mean_abs_error and the signed
    err_total/err_drop/err_staleness/err_approx sums — plus the
    windows_estimated/windows_corrected/partials_missing counts — must
    match exactly. In wall-clock mode mean_abs_error may not rise more
    than 25% (scheduling jitter moves which windows straddle a
    correction); the signed sums and counts are informational.
  * Every other metric (wall_seconds, cpu_total_nanos, allocations,
    queue_depth_high_water, ...) is informational only.

Baselines are paired on (bench, sim-mode): a --sim document matches the
checked-in BENCH_<name>.json, a wall-clock document matches
BENCH_<name>.wall.json, so one directory holds both kinds side by side.

Documents produced under a sanitizer are refused: sanitizer timing is not
comparable with anything, including itself.

Exit codes: 0 no regressions, 1 regressions found, 2 usage/input error.
"""

import argparse
import json
import os
import shutil
import sys

THROUGHPUT_DROP_TOLERANCE = 0.05
LATENCY_RISE_TOLERANCE = 0.10
BYTES_PER_EVENT_TOLERANCE = 0.01
ERROR_RISE_TOLERANCE = 0.25

HIGHER_BETTER = {"throughput_eps": THROUGHPUT_DROP_TOLERANCE}
LOWER_BETTER = {
    "latency_mean_nanos": LATENCY_RISE_TOLERANCE,
    "latency_p50_nanos": LATENCY_RISE_TOLERANCE,
    "latency_p99_nanos": LATENCY_RISE_TOLERANCE,
    "mean_abs_error": ERROR_RISE_TOLERANCE,
}
STRUCTURAL = {
    "total_messages",
    "total_bytes",
    "windows_emitted",
    "correction_steps",
    "events_processed",
    "bytes_per_event",
    # Accuracy attribution: deterministic replay makes both the counts and
    # the error decomposition exact under --sim.
    "windows_estimated",
    "windows_corrected",
    "partials_missing",
    "mean_abs_error",
    "err_total",
    "err_drop",
    "err_staleness",
    "err_approx",
}
EXACT_SCHEMES = {
    "central", "scotty", "disco", "deco-mon", "deco-sync", "deco-monlocal",
}


def fail(message):
    print(f"bench_compare: error: {message}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"{path}: {e}")
    for key in ("schema_version", "bench", "host", "config", "rows"):
        if key not in doc:
            fail(f"{path}: missing '{key}' (not a bench JSON?)")
    if doc["schema_version"] != 1:
        fail(f"{path}: unsupported schema_version {doc['schema_version']}")
    sanitizer = doc["host"].get("sanitizer", "none")
    if sanitizer != "none":
        fail(f"{path}: refusing document built with -fsanitize={sanitizer}; "
             "sanitizer timings are not comparable")
    return doc


def baseline_name(doc):
    """Checked-in baseline filename for a document: sim documents pair
    with BENCH_<name>.json, wall-clock ones with BENCH_<name>.wall.json."""
    suffix = "" if doc["config"].get("sim") else ".wall"
    return f"BENCH_{doc['bench']}{suffix}.json"


def row_scheme(label):
    """The scheme part of a row label ('deco-sync/nodes=4' -> 'deco-sync')."""
    return label.split("/", 1)[0].split(".", 1)[0]


def compare_rows(bench, base_row, cur_row, both_sim, findings):
    label = base_row["label"]
    scheme = row_scheme(label)
    for metric, base in base_row["metrics"].items():
        cur = cur_row["metrics"].get(metric)
        where = f"{bench}: {label}: {metric}"
        if cur is None:
            findings.append(("REGRESSION", where, "metric missing in current"))
            continue
        b, c = base["median"], cur["median"]
        if metric == "total_dropped":
            # A throttled/lossy run is a regression in any mode.
            if c > b:
                findings.append(
                    ("REGRESSION", where,
                     f"messages dropped rose: {b:g} -> {c:g}"))
            continue
        if both_sim:
            if metric in STRUCTURAL:
                if b != c:
                    findings.append(
                        ("REGRESSION", where,
                         f"structural metric changed under --sim: "
                         f"{b!r} -> {c!r}"))
            continue
        if metric in HIGHER_BETTER:
            tol = HIGHER_BETTER[metric]
            if b > 0 and c < b * (1.0 - tol):
                findings.append(
                    ("REGRESSION", where,
                     f"dropped {100.0 * (1.0 - c / b):.1f}% "
                     f"({b:.6g} -> {c:.6g}, tolerance {100 * tol:.0f}%)"))
        elif metric in LOWER_BETTER:
            tol = LOWER_BETTER[metric]
            if b > 0 and c > b * (1.0 + tol):
                findings.append(
                    ("REGRESSION", where,
                     f"rose {100.0 * (c / b - 1.0):.1f}% "
                     f"({b:.6g} -> {c:.6g}, tolerance {100 * tol:.0f}%)"))
        elif metric == "bytes_per_event":
            if scheme in EXACT_SCHEMES:
                if b != c:
                    findings.append(
                        ("REGRESSION", where,
                         f"must be bit-stable for scheme '{scheme}': "
                         f"{b!r} -> {c!r}"))
            elif b > 0 and abs(c - b) > b * BYTES_PER_EVENT_TOLERANCE:
                findings.append(
                    ("REGRESSION", where,
                     f"changed {100.0 * abs(c - b) / b:.2f}% "
                     f"({b:.6g} -> {c:.6g}, tolerance "
                     f"{100 * BYTES_PER_EVENT_TOLERANCE:.0f}%)"))
        # everything else: informational only


def compare_docs(base, cur, findings, notes):
    bench = base["bench"]
    if cur["bench"] != bench:
        fail(f"bench mismatch: baseline is '{bench}', "
             f"current is '{cur['bench']}'")
    both_sim = bool(base["config"].get("sim")) and bool(
        cur["config"].get("sim"))
    if bool(base["config"].get("sim")) != bool(cur["config"].get("sim")):
        notes.append(f"{bench}: one side is --sim and the other is not; "
                     "timing rules apply, structural exactness does not")
    cur_rows = {r["label"]: r for r in cur["rows"]}
    for base_row in base["rows"]:
        cur_row = cur_rows.pop(base_row["label"], None)
        if cur_row is None:
            findings.append(
                ("REGRESSION", f"{bench}: {base_row['label']}",
                 "row missing in current document"))
            continue
        compare_rows(bench, base_row, cur_row, both_sim, findings)
    for label in cur_rows:
        notes.append(f"{bench}: new row '{label}' (not in baseline)")


def render_report(findings, notes, pairs):
    lines = ["# Bench comparison", ""]
    for base_path, cur_path in pairs:
        lines.append(f"- baseline `{base_path}` vs current `{cur_path}`")
    lines.append("")
    if findings:
        lines.append(f"## {len(findings)} regression(s)")
        lines.append("")
        lines.append("| where | what |")
        lines.append("|---|---|")
        for _, where, what in findings:
            lines.append(f"| {where} | {what} |")
    else:
        lines.append("## No regressions")
    if notes:
        lines.append("")
        lines.append("## Notes")
        lines.append("")
        for note in notes:
            lines.append(f"- {note}")
    lines.append("")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+",
                        help="BASELINE.json CURRENT.json, or with "
                        "--baseline-dir one or more CURRENT.json")
    parser.add_argument("--baseline-dir",
                        help="directory of checked-in BENCH_<name>.json "
                        "baselines, matched on the 'bench' field")
    parser.add_argument("--report", help="also write the markdown report here")
    parser.add_argument("--update-baseline", action="store_true",
                        help="copy the current documents into "
                        "--baseline-dir instead of comparing")
    args = parser.parse_args()

    pairs = []  # (baseline_path, current_path)
    if args.baseline_dir:
        if args.update_baseline:
            os.makedirs(args.baseline_dir, exist_ok=True)
            for path in args.files:
                doc = load(path)
                dest = os.path.join(args.baseline_dir, baseline_name(doc))
                shutil.copyfile(path, dest)
                print(f"updated {dest}")
            return 0
        for path in args.files:
            doc = load(path)
            base_path = os.path.join(args.baseline_dir, baseline_name(doc))
            if not os.path.exists(base_path):
                fail(f"no baseline for bench '{doc['bench']}' "
                     f"(expected {base_path}; run with --update-baseline "
                     "to create it)")
            pairs.append((base_path, path))
    else:
        if args.update_baseline:
            fail("--update-baseline requires --baseline-dir")
        if len(args.files) != 2:
            fail("expected exactly BASELINE.json CURRENT.json "
                 "(or use --baseline-dir)")
        pairs.append((args.files[0], args.files[1]))

    findings, notes = [], []
    for base_path, cur_path in pairs:
        compare_docs(load(base_path), load(cur_path), findings, notes)

    report = render_report(findings, notes, pairs)
    print(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(report)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
