#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (0.0.4) document.

Used by the CI ops-smoke job on the body scraped from `deco_run
--ops_port`'s /metrics endpoint. Checks, line by line:

  * HELP/TYPE comment grammar: `# HELP <name> <docstring>` and
    `# TYPE <name> counter|gauge|summary|histogram|untyped`;
  * sample grammar: `name{label="value",...} value [timestamp]` with
    metric/label names matching [a-zA-Z_:][a-zA-Z0-9_:]*;
  * every TYPE declared at most once per metric, before its samples;
  * counter sample names end in `_total` (+ finite, non-negative values);
  * summaries expose `_count` and `_sum` alongside quantile samples;
  * summary quantile labels parse as floats in [0, 1], every label group
    of a family exposes the same quantile set, and quantile values are
    monotone non-decreasing in the quantile (the sketch-backed fleet
    summaries must never report p99 < p50);
  * all sample values parse as floats (NaN allowed only for quantiles).

Exit 0 and a one-line summary when valid; exit 1 with every violation
otherwise.

Usage:
  check_metrics_exposition.py metrics.txt
  curl -s localhost:9900/metrics | check_metrics_exposition.py -
  check_metrics_exposition.py metrics.txt --require deco_root_windows_emitted_total
  check_metrics_exposition.py metrics.txt --max_bytes 262144
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name, optional {labels}, value, optional timestamp
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALID_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def base_name(sample_name, metric_type):
    """The declared metric family a sample belongs to."""
    if metric_type in ("summary", "histogram"):
        for suffix in ("_count", "_sum", "_bucket"):
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
    return sample_name


def parse_labels(raw, lineno, errors):
    pos = 0
    out = {}
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if not m:
            errors.append(f"line {lineno}: malformed label set '{{{raw}}}'")
            return out
        out[m.group(1)] = m.group(2)
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                errors.append(
                    f"line {lineno}: expected ',' between labels in '{{{raw}}}'")
                return out
            pos += 1
    return out


def check(text):
    errors = []
    types = {}       # metric family -> declared type
    helps = set()
    samples = {}     # family -> list of (sample_name, labels, value)
    sample_count = 0

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Arbitrary comments are legal; only malformed HELP/TYPE
                # shapes are flagged.
                if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                    errors.append(f"line {lineno}: truncated {parts[1]} comment")
                continue
            kind, name = parts[1], parts[2]
            if not NAME_RE.match(name):
                errors.append(f"line {lineno}: bad metric name '{name}'")
                continue
            if kind == "HELP":
                if name in helps:
                    errors.append(f"line {lineno}: duplicate HELP for '{name}'")
                helps.add(name)
            else:  # TYPE
                declared = parts[3].strip() if len(parts) > 3 else ""
                if declared not in VALID_TYPES:
                    errors.append(
                        f"line {lineno}: invalid TYPE '{declared}' for '{name}'")
                    continue
                if name in types:
                    errors.append(f"line {lineno}: duplicate TYPE for '{name}'")
                if name in samples:
                    errors.append(
                        f"line {lineno}: TYPE for '{name}' after its samples")
                types[name] = declared
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample line '{line}'")
            continue
        sample_name = m.group("name")
        labels = parse_labels(m.group("labels") or "", lineno, errors)
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(
                f"line {lineno}: non-numeric value '{m.group('value')}'")
            continue

        family = sample_name
        for declared, metric_type in types.items():
            if base_name(sample_name, metric_type) == declared:
                family = declared
                break
        samples.setdefault(family, []).append((sample_name, labels, value))
        sample_count += 1

        metric_type = types.get(family)
        if metric_type == "counter":
            if not sample_name.endswith("_total"):
                errors.append(
                    f"line {lineno}: counter sample '{sample_name}' "
                    "must end in _total")
            if math.isnan(value) or value < 0:
                errors.append(
                    f"line {lineno}: counter '{sample_name}' value {value} "
                    "must be finite and >= 0")
        elif metric_type == "summary":
            if math.isnan(value) and "quantile" not in labels:
                errors.append(
                    f"line {lineno}: NaN only allowed for quantile samples")

    # Cross-line checks: every summary exposes _count and _sum, and its
    # quantile series are well-formed.
    for family, metric_type in types.items():
        if metric_type != "summary":
            continue
        names = {s[0] for s in samples.get(family, [])}
        for required in (family + "_count", family + "_sum"):
            if required not in names:
                errors.append(f"summary '{family}' is missing {required}")

        # Group the family's quantile samples by their non-quantile labels
        # so multi-series summaries are checked series by series.
        groups = {}
        for sample_name, labels, value in samples.get(family, []):
            if sample_name != family or "quantile" not in labels:
                continue
            raw_q = labels["quantile"]
            try:
                q = float(raw_q)
            except ValueError:
                errors.append(
                    f"summary '{family}' has non-numeric quantile "
                    f"'{raw_q}'")
                continue
            if not 0.0 <= q <= 1.0:
                errors.append(
                    f"summary '{family}' quantile {raw_q} outside [0, 1]")
            key = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "quantile"))
            groups.setdefault(key, []).append((q, value))

        quantile_sets = {}
        for key, series in groups.items():
            series.sort()
            qs = tuple(q for q, _ in series)
            if len(set(qs)) != len(qs):
                errors.append(
                    f"summary '{family}' repeats a quantile in series "
                    f"{dict(key) or '{}'}")
            quantile_sets[key] = qs
            finite = [(q, v) for q, v in series if not math.isnan(v)]
            for (q_lo, v_lo), (q_hi, v_hi) in zip(finite, finite[1:]):
                if v_hi < v_lo:
                    errors.append(
                        f"summary '{family}' is non-monotone: "
                        f"q={q_hi} value {v_hi} < q={q_lo} value {v_lo}"
                        f" in series {dict(key) or '{}'}")
        if len(set(quantile_sets.values())) > 1:
            errors.append(
                f"summary '{family}' exposes inconsistent quantile sets "
                f"across its label groups: "
                f"{sorted(set(quantile_sets.values()))}")

    return errors, types, sample_count


def main():
    parser = argparse.ArgumentParser(
        description="Validate Prometheus text exposition (0.0.4)")
    parser.add_argument("path", help="file to check, or '-' for stdin")
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="fail unless a sample of this metric family is present "
             "(repeatable)")
    parser.add_argument(
        "--max_bytes", type=int, default=0, metavar="N",
        help="fail when the document exceeds N bytes (0 = unlimited); "
             "the CI scale-smoke job uses this to hold the governed "
             "exposition to its byte budget")
    args = parser.parse_args()

    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, "r", encoding="utf-8") as f:
            text = f.read()

    errors, types, sample_count = check(text)

    present = set(types)
    all_sample_names = set()
    for line in text.splitlines():
        m = SAMPLE_RE.match(line)
        if m and not line.startswith("#"):
            all_sample_names.add(m.group("name"))
    for name in args.require:
        if name not in present and name not in all_sample_names:
            errors.append(f"required metric '{name}' not found")

    doc_bytes = len(text.encode("utf-8"))
    if args.max_bytes > 0 and doc_bytes > args.max_bytes:
        errors.append(
            f"document is {doc_bytes} bytes, over the --max_bytes budget "
            f"of {args.max_bytes}")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        print(f"{len(errors)} violation(s)", file=sys.stderr)
        return 1

    print(f"OK: {sample_count} samples across {len(types)} declared "
          f"metric families, {doc_bytes} bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
