file(REMOVE_RECURSE
  "CMakeFiles/fig10_windowsize.dir/fig10_windowsize.cc.o"
  "CMakeFiles/fig10_windowsize.dir/fig10_windowsize.cc.o.d"
  "fig10_windowsize"
  "fig10_windowsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_windowsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
