# Empty dependencies file for fig10_windowsize.
# This may be replaced when dependencies are built.
