# Empty compiler generated dependencies file for fig8_network.
# This may be replaced when dependencies are built.
