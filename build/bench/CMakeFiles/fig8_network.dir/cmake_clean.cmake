file(REMOVE_RECURSE
  "CMakeFiles/fig8_network.dir/fig8_network.cc.o"
  "CMakeFiles/fig8_network.dir/fig8_network.cc.o.d"
  "fig8_network"
  "fig8_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
