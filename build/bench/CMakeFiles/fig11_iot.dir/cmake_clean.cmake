file(REMOVE_RECURSE
  "CMakeFiles/fig11_iot.dir/fig11_iot.cc.o"
  "CMakeFiles/fig11_iot.dir/fig11_iot.cc.o.d"
  "fig11_iot"
  "fig11_iot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_iot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
