# Empty dependencies file for fig11_iot.
# This may be replaced when dependencies are built.
