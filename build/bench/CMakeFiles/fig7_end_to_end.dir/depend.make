# Empty dependencies file for fig7_end_to_end.
# This may be replaced when dependencies are built.
