file(REMOVE_RECURSE
  "CMakeFiles/fig7_end_to_end.dir/fig7_end_to_end.cc.o"
  "CMakeFiles/fig7_end_to_end.dir/fig7_end_to_end.cc.o.d"
  "fig7_end_to_end"
  "fig7_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
