# Empty compiler generated dependencies file for micro_monlocal.
# This may be replaced when dependencies are built.
