file(REMOVE_RECURSE
  "CMakeFiles/micro_monlocal.dir/micro_monlocal.cc.o"
  "CMakeFiles/micro_monlocal.dir/micro_monlocal.cc.o.d"
  "micro_monlocal"
  "micro_monlocal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_monlocal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
