# Empty compiler generated dependencies file for fig10_adaptivity.
# This may be replaced when dependencies are built.
