file(REMOVE_RECURSE
  "CMakeFiles/fig10_adaptivity.dir/fig10_adaptivity.cc.o"
  "CMakeFiles/fig10_adaptivity.dir/fig10_adaptivity.cc.o.d"
  "fig10_adaptivity"
  "fig10_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
