file(REMOVE_RECURSE
  "CMakeFiles/ablation_deco.dir/ablation_deco.cc.o"
  "CMakeFiles/ablation_deco.dir/ablation_deco.cc.o.d"
  "ablation_deco"
  "ablation_deco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
