# Empty dependencies file for ablation_deco.
# This may be replaced when dependencies are built.
