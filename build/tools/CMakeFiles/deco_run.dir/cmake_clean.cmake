file(REMOVE_RECURSE
  "CMakeFiles/deco_run.dir/deco_run.cc.o"
  "CMakeFiles/deco_run.dir/deco_run.cc.o.d"
  "deco_run"
  "deco_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
