# Empty dependencies file for deco_run.
# This may be replaced when dependencies are built.
