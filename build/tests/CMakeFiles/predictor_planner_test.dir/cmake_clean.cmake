file(REMOVE_RECURSE
  "CMakeFiles/predictor_planner_test.dir/predictor_planner_test.cc.o"
  "CMakeFiles/predictor_planner_test.dir/predictor_planner_test.cc.o.d"
  "predictor_planner_test"
  "predictor_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
