# Empty compiler generated dependencies file for predictor_planner_test.
# This may be replaced when dependencies are built.
