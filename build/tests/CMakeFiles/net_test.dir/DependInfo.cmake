
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/net_test.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/deco_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/deco/CMakeFiles/deco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/deco_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/deco_node.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/deco_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/window/CMakeFiles/deco_window.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/deco_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/deco_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/deco_net.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/deco_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/deco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
