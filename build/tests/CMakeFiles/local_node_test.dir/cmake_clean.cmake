file(REMOVE_RECURSE
  "CMakeFiles/local_node_test.dir/local_node_test.cc.o"
  "CMakeFiles/local_node_test.dir/local_node_test.cc.o.d"
  "local_node_test"
  "local_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
