# Empty compiler generated dependencies file for local_node_test.
# This may be replaced when dependencies are built.
