file(REMOVE_RECURSE
  "CMakeFiles/root_node_test.dir/root_node_test.cc.o"
  "CMakeFiles/root_node_test.dir/root_node_test.cc.o.d"
  "root_node_test"
  "root_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/root_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
