# Empty compiler generated dependencies file for root_node_test.
# This may be replaced when dependencies are built.
