# Empty dependencies file for soccer_monitoring.
# This may be replaced when dependencies are built.
