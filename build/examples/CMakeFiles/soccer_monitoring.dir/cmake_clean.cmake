file(REMOVE_RECURSE
  "CMakeFiles/soccer_monitoring.dir/soccer_monitoring.cpp.o"
  "CMakeFiles/soccer_monitoring.dir/soccer_monitoring.cpp.o.d"
  "soccer_monitoring"
  "soccer_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soccer_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
