file(REMOVE_RECURSE
  "libdeco_harness.a"
)
