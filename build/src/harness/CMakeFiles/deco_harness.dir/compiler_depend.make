# Empty compiler generated dependencies file for deco_harness.
# This may be replaced when dependencies are built.
