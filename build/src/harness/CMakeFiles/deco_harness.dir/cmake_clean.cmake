file(REMOVE_RECURSE
  "CMakeFiles/deco_harness.dir/experiment.cc.o"
  "CMakeFiles/deco_harness.dir/experiment.cc.o.d"
  "libdeco_harness.a"
  "libdeco_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
