file(REMOVE_RECURSE
  "CMakeFiles/deco_common.dir/clock.cc.o"
  "CMakeFiles/deco_common.dir/clock.cc.o.d"
  "CMakeFiles/deco_common.dir/flags.cc.o"
  "CMakeFiles/deco_common.dir/flags.cc.o.d"
  "CMakeFiles/deco_common.dir/logging.cc.o"
  "CMakeFiles/deco_common.dir/logging.cc.o.d"
  "CMakeFiles/deco_common.dir/random.cc.o"
  "CMakeFiles/deco_common.dir/random.cc.o.d"
  "CMakeFiles/deco_common.dir/status.cc.o"
  "CMakeFiles/deco_common.dir/status.cc.o.d"
  "libdeco_common.a"
  "libdeco_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
