# Empty compiler generated dependencies file for deco_common.
# This may be replaced when dependencies are built.
