file(REMOVE_RECURSE
  "libdeco_common.a"
)
