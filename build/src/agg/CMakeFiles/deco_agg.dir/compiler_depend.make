# Empty compiler generated dependencies file for deco_agg.
# This may be replaced when dependencies are built.
