file(REMOVE_RECURSE
  "CMakeFiles/deco_agg.dir/aggregate.cc.o"
  "CMakeFiles/deco_agg.dir/aggregate.cc.o.d"
  "libdeco_agg.a"
  "libdeco_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
