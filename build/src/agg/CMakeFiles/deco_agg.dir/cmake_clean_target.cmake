file(REMOVE_RECURSE
  "libdeco_agg.a"
)
