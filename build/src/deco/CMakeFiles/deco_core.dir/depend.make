# Empty dependencies file for deco_core.
# This may be replaced when dependencies are built.
