file(REMOVE_RECURSE
  "CMakeFiles/deco_core.dir/assembler.cc.o"
  "CMakeFiles/deco_core.dir/assembler.cc.o.d"
  "CMakeFiles/deco_core.dir/local_node.cc.o"
  "CMakeFiles/deco_core.dir/local_node.cc.o.d"
  "CMakeFiles/deco_core.dir/planner.cc.o"
  "CMakeFiles/deco_core.dir/planner.cc.o.d"
  "CMakeFiles/deco_core.dir/predictor.cc.o"
  "CMakeFiles/deco_core.dir/predictor.cc.o.d"
  "CMakeFiles/deco_core.dir/root_node.cc.o"
  "CMakeFiles/deco_core.dir/root_node.cc.o.d"
  "libdeco_core.a"
  "libdeco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
