file(REMOVE_RECURSE
  "libdeco_core.a"
)
