# Empty compiler generated dependencies file for deco_baseline.
# This may be replaced when dependencies are built.
