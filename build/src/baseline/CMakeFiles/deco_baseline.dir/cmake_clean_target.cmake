file(REMOVE_RECURSE
  "libdeco_baseline.a"
)
