file(REMOVE_RECURSE
  "CMakeFiles/deco_baseline.dir/approx.cc.o"
  "CMakeFiles/deco_baseline.dir/approx.cc.o.d"
  "CMakeFiles/deco_baseline.dir/centralized_root.cc.o"
  "CMakeFiles/deco_baseline.dir/centralized_root.cc.o.d"
  "CMakeFiles/deco_baseline.dir/forwarding_local.cc.o"
  "CMakeFiles/deco_baseline.dir/forwarding_local.cc.o.d"
  "CMakeFiles/deco_baseline.dir/root_merger.cc.o"
  "CMakeFiles/deco_baseline.dir/root_merger.cc.o.d"
  "libdeco_baseline.a"
  "libdeco_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
