# Empty dependencies file for deco_baseline.
# This may be replaced when dependencies are built.
