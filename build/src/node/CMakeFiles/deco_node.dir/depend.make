# Empty dependencies file for deco_node.
# This may be replaced when dependencies are built.
