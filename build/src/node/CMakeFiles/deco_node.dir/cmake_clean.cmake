file(REMOVE_RECURSE
  "CMakeFiles/deco_node.dir/actor.cc.o"
  "CMakeFiles/deco_node.dir/actor.cc.o.d"
  "CMakeFiles/deco_node.dir/apportion.cc.o"
  "CMakeFiles/deco_node.dir/apportion.cc.o.d"
  "CMakeFiles/deco_node.dir/ingest.cc.o"
  "CMakeFiles/deco_node.dir/ingest.cc.o.d"
  "CMakeFiles/deco_node.dir/protocol.cc.o"
  "CMakeFiles/deco_node.dir/protocol.cc.o.d"
  "CMakeFiles/deco_node.dir/query.cc.o"
  "CMakeFiles/deco_node.dir/query.cc.o.d"
  "CMakeFiles/deco_node.dir/stream_set.cc.o"
  "CMakeFiles/deco_node.dir/stream_set.cc.o.d"
  "libdeco_node.a"
  "libdeco_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
