# Empty compiler generated dependencies file for deco_node.
# This may be replaced when dependencies are built.
