
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/actor.cc" "src/node/CMakeFiles/deco_node.dir/actor.cc.o" "gcc" "src/node/CMakeFiles/deco_node.dir/actor.cc.o.d"
  "/root/repo/src/node/apportion.cc" "src/node/CMakeFiles/deco_node.dir/apportion.cc.o" "gcc" "src/node/CMakeFiles/deco_node.dir/apportion.cc.o.d"
  "/root/repo/src/node/ingest.cc" "src/node/CMakeFiles/deco_node.dir/ingest.cc.o" "gcc" "src/node/CMakeFiles/deco_node.dir/ingest.cc.o.d"
  "/root/repo/src/node/protocol.cc" "src/node/CMakeFiles/deco_node.dir/protocol.cc.o" "gcc" "src/node/CMakeFiles/deco_node.dir/protocol.cc.o.d"
  "/root/repo/src/node/query.cc" "src/node/CMakeFiles/deco_node.dir/query.cc.o" "gcc" "src/node/CMakeFiles/deco_node.dir/query.cc.o.d"
  "/root/repo/src/node/stream_set.cc" "src/node/CMakeFiles/deco_node.dir/stream_set.cc.o" "gcc" "src/node/CMakeFiles/deco_node.dir/stream_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/deco_common.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/deco_event.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/deco_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/window/CMakeFiles/deco_window.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/deco_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/deco_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
