file(REMOVE_RECURSE
  "libdeco_node.a"
)
