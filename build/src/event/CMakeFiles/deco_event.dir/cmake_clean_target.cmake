file(REMOVE_RECURSE
  "libdeco_event.a"
)
