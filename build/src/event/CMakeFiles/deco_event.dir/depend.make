# Empty dependencies file for deco_event.
# This may be replaced when dependencies are built.
