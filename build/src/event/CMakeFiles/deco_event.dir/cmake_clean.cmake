file(REMOVE_RECURSE
  "CMakeFiles/deco_event.dir/event.cc.o"
  "CMakeFiles/deco_event.dir/event.cc.o.d"
  "CMakeFiles/deco_event.dir/serde.cc.o"
  "CMakeFiles/deco_event.dir/serde.cc.o.d"
  "libdeco_event.a"
  "libdeco_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
