file(REMOVE_RECURSE
  "libdeco_metrics.a"
)
