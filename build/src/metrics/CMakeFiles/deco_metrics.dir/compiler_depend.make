# Empty compiler generated dependencies file for deco_metrics.
# This may be replaced when dependencies are built.
