file(REMOVE_RECURSE
  "CMakeFiles/deco_metrics.dir/correctness.cc.o"
  "CMakeFiles/deco_metrics.dir/correctness.cc.o.d"
  "CMakeFiles/deco_metrics.dir/histogram.cc.o"
  "CMakeFiles/deco_metrics.dir/histogram.cc.o.d"
  "CMakeFiles/deco_metrics.dir/report.cc.o"
  "CMakeFiles/deco_metrics.dir/report.cc.o.d"
  "libdeco_metrics.a"
  "libdeco_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
