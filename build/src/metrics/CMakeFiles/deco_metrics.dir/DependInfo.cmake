
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/correctness.cc" "src/metrics/CMakeFiles/deco_metrics.dir/correctness.cc.o" "gcc" "src/metrics/CMakeFiles/deco_metrics.dir/correctness.cc.o.d"
  "/root/repo/src/metrics/histogram.cc" "src/metrics/CMakeFiles/deco_metrics.dir/histogram.cc.o" "gcc" "src/metrics/CMakeFiles/deco_metrics.dir/histogram.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/metrics/CMakeFiles/deco_metrics.dir/report.cc.o" "gcc" "src/metrics/CMakeFiles/deco_metrics.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/deco_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/deco_net.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/deco_event.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
