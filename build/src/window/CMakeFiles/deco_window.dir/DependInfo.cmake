
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/window/count_window.cc" "src/window/CMakeFiles/deco_window.dir/count_window.cc.o" "gcc" "src/window/CMakeFiles/deco_window.dir/count_window.cc.o.d"
  "/root/repo/src/window/session_window.cc" "src/window/CMakeFiles/deco_window.dir/session_window.cc.o" "gcc" "src/window/CMakeFiles/deco_window.dir/session_window.cc.o.d"
  "/root/repo/src/window/time_window.cc" "src/window/CMakeFiles/deco_window.dir/time_window.cc.o" "gcc" "src/window/CMakeFiles/deco_window.dir/time_window.cc.o.d"
  "/root/repo/src/window/window.cc" "src/window/CMakeFiles/deco_window.dir/window.cc.o" "gcc" "src/window/CMakeFiles/deco_window.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agg/CMakeFiles/deco_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/deco_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/deco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
