file(REMOVE_RECURSE
  "CMakeFiles/deco_window.dir/count_window.cc.o"
  "CMakeFiles/deco_window.dir/count_window.cc.o.d"
  "CMakeFiles/deco_window.dir/session_window.cc.o"
  "CMakeFiles/deco_window.dir/session_window.cc.o.d"
  "CMakeFiles/deco_window.dir/time_window.cc.o"
  "CMakeFiles/deco_window.dir/time_window.cc.o.d"
  "CMakeFiles/deco_window.dir/window.cc.o"
  "CMakeFiles/deco_window.dir/window.cc.o.d"
  "libdeco_window.a"
  "libdeco_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
