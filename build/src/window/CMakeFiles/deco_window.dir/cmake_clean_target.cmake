file(REMOVE_RECURSE
  "libdeco_window.a"
)
