# Empty compiler generated dependencies file for deco_window.
# This may be replaced when dependencies are built.
