# Empty dependencies file for deco_window.
# This may be replaced when dependencies are built.
