file(REMOVE_RECURSE
  "CMakeFiles/deco_stream.dir/generator.cc.o"
  "CMakeFiles/deco_stream.dir/generator.cc.o.d"
  "CMakeFiles/deco_stream.dir/rate_model.cc.o"
  "CMakeFiles/deco_stream.dir/rate_model.cc.o.d"
  "CMakeFiles/deco_stream.dir/trace.cc.o"
  "CMakeFiles/deco_stream.dir/trace.cc.o.d"
  "libdeco_stream.a"
  "libdeco_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
