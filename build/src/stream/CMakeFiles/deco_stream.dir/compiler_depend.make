# Empty compiler generated dependencies file for deco_stream.
# This may be replaced when dependencies are built.
