file(REMOVE_RECURSE
  "libdeco_stream.a"
)
