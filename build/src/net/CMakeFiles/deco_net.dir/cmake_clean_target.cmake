file(REMOVE_RECURSE
  "libdeco_net.a"
)
