# Empty dependencies file for deco_net.
# This may be replaced when dependencies are built.
