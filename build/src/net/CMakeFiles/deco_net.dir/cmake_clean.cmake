file(REMOVE_RECURSE
  "CMakeFiles/deco_net.dir/fabric.cc.o"
  "CMakeFiles/deco_net.dir/fabric.cc.o.d"
  "CMakeFiles/deco_net.dir/message.cc.o"
  "CMakeFiles/deco_net.dir/message.cc.o.d"
  "CMakeFiles/deco_net.dir/shaping.cc.o"
  "CMakeFiles/deco_net.dir/shaping.cc.o.d"
  "libdeco_net.a"
  "libdeco_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deco_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
