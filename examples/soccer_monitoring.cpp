// A DEBS-2013-style deployment: the paper's evaluation replays a real-time
// locating system from a soccer field (player/ball sensors at high rates).
// This example sets up the analogous topology — edge gateways near the
// pitch, each ingesting a bundle of position sensors — and runs a rolling
// load metric (sum over the last N readings) with Deco_async, the paper's
// fastest scheme, printing per-window results and the latency distribution.

#include <cstdio>

#include "harness/experiment.h"

using namespace deco;

int main() {
  ExperimentConfig config;
  config.scheme = Scheme::kDecoAsync;
  config.query.window = WindowSpec::CountTumbling(50'000);
  config.query.aggregate = AggregateKind::kSum;
  // Four pitch-side gateways, eight sensors each (players + ball).
  config.num_locals = 4;
  config.streams_per_local = 8;
  config.events_per_local = 500'000;
  config.base_rate = 200'000;  // RTLS sensors are fast
  config.rate_change = 0.02;   // players cluster and spread
  config.seed = 2013;

  std::printf("Soccer RTLS monitoring: 4 gateways x 8 sensors, "
              "window = 50k readings, Deco_async\n\n");

  auto result = RunExperiment(config);
  if (!result.ok()) {
    std::printf("run failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const RunReport& report = *result;

  std::printf("%-8s %14s %10s %12s\n", "window", "sum", "events",
              "latency(ms)");
  for (size_t i = 0; i < report.windows.size(); ++i) {
    if (i > 4 && i + 3 < report.windows.size()) {
      if (i == 5) std::printf("  ...\n");
      continue;
    }
    const GlobalWindowRecord& w = report.windows[i];
    std::printf("%-8llu %14.2f %10llu %12.3f%s\n",
                (unsigned long long)w.window_index, w.value,
                (unsigned long long)w.event_count,
                w.mean_latency_nanos / 1e6, w.corrected ? "  (corrected)" : "");
  }

  std::printf("\n%s\n", report.Summary().c_str());
  std::printf("latency: mean %.3f ms, p50 %.3f ms, p99 %.3f ms\n",
              report.latency.mean() / 1e6,
              report.latency.Percentile(0.5) / 1e6,
              report.latency.Percentile(0.99) / 1e6);
  std::printf("network: %.2f MB total (%.2f bytes/event) — raw readings "
              "stay at the gateways\n",
              report.network.total_bytes / 1e6, report.BytesPerEvent());
  return 0;
}
