// Quickstart: the two layers of the library in ~80 lines.
//
//  1. The single-node windowing library: aggregate a stream with a
//     count-based tumbling window, exactly like any stream processor.
//  2. The decentralized layer: run the same query over a simulated
//     three-node topology (two local nodes + root) with Deco_sync, and
//     check it against the centralized ground truth.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart

#include <cmath>
#include <cstdio>

#include "harness/experiment.h"

using namespace deco;

int main() {
  // ---------------------------------------------------------------------
  // Part 1: local windowing. Five-event tumbling windows, sum aggregate.
  // ---------------------------------------------------------------------
  auto sum = std::move(MakeAggregate(AggregateKind::kSum)).value();
  auto windower =
      std::move(MakeWindower(WindowSpec::CountTumbling(5), sum.get()))
          .value();

  StreamConfig sensor;
  sensor.stream_id = 0;
  sensor.rate.base_rate = 100.0;  // 100 events/s
  sensor.seed = 7;
  StreamSource source(sensor);

  std::printf("Part 1: count-tumbling windows on one sensor stream\n");
  std::vector<WindowResult> closed;
  for (int i = 0; i < 17; ++i) {
    DECO_CHECK_OK(windower->Add(source.Next(), &closed));
  }
  for (const WindowResult& w : closed) {
    std::printf("  window %llu: sum=%.2f over %llu events "
                "(event time %.3fs..%.3fs)\n",
                (unsigned long long)w.window_index, w.value,
                (unsigned long long)w.event_count,
                w.start_time / 1e9, w.end_time / 1e9);
  }

  // ---------------------------------------------------------------------
  // Part 2: the same query, decentralized. Two local nodes ingest four
  // sensor streams each; Deco_sync plans local windows from predictions,
  // aggregates slices on the local nodes, and resolves the exact window
  // edges at the root. The result is bit-identical to running everything
  // centrally — at a fraction of the network traffic.
  // ---------------------------------------------------------------------
  ExperimentConfig config;
  config.scheme = Scheme::kDecoSync;
  config.query.window = WindowSpec::CountTumbling(10'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 2;
  config.streams_per_local = 4;
  config.events_per_local = 100'000;
  config.base_rate = 100'000;
  config.rate_change = 0.01;  // rates drift by up to 1%

  std::printf("\nPart 2: decentralized aggregation (Deco_sync, 2 locals)\n");
  RunReport deco = std::move(RunExperiment(config)).value();

  config.scheme = Scheme::kCentral;
  RunReport central = std::move(RunExperiment(config)).value();

  std::printf("  %s\n  %s\n", deco.Summary().c_str(),
              central.Summary().c_str());

  // Partial aggregation merges floating-point sums in a different order
  // than a sequential pass, so compare with a relative tolerance; the
  // window *contents* are bit-identical (see the correctness checker).
  size_t mismatches = 0;
  for (size_t i = 0; i < deco.windows.size(); ++i) {
    const double t = central.windows[i].value;
    if (std::abs(deco.windows[i].value - t) >
        1e-9 * std::max(1.0, std::abs(t))) {
      ++mismatches;
    }
  }
  std::printf("  windows compared: %zu, value mismatches: %zu\n",
              deco.windows.size(), mismatches);
  std::printf("  network bytes: deco=%llu central=%llu (%.1f%% saved)\n",
              (unsigned long long)deco.network.total_bytes,
              (unsigned long long)central.network.total_bytes,
              100.0 * (1.0 - static_cast<double>(deco.network.total_bytes) /
                                 static_cast<double>(
                                     central.network.total_bytes)));
  return mismatches == 0 ? 0 : 1;
}
