// Failure handling (paper §4.3.4) plus the rejoin extension (DESIGN.md §6):
// the root uses per-node timeouts to detect silent local nodes, removes
// them from the topology, and rebuilds the affected global window from the
// survivors via a correction step. A restarted local announces itself
// (kRejoin) and is re-admitted; its durable retained queue lets it resume
// contributing without duplicating already-emitted events.
//
// The fault timeline is a declarative `ChaosSchedule` applied by the
// harness's chaos controller: local-1 crashes at t=300 ms and restarts at
// t=800 ms. The controller's audit log — deterministic for a given
// schedule — is printed at the end.

#include <cstdio>

#include "harness/experiment.h"

using namespace deco;

int main() {
  ExperimentConfig config;
  config.scheme = Scheme::kDecoSync;
  config.query.window = WindowSpec::CountTumbling(10'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 3;
  config.streams_per_local = 2;
  config.events_per_local = 4'000'000;
  config.base_rate = 2'000'000;
  config.rate_change = 0.01;
  config.root_options.node_timeout_nanos = 250 * kNanosPerMilli;

  config.chaos.schedule = ChaosSchedule()
                              .Crash("local-1", 300 * kNanosPerMilli)
                              .Restart("local-1", 800 * kNanosPerMilli);
  std::vector<ChaosAuditEntry> audit;
  config.chaos.audit = &audit;

  std::printf("Fault tolerance demo: 3 local nodes, Deco_sync, node "
              "timeout 250 ms\n");
  std::printf("schedule: %s\n",
              config.chaos.schedule.ToSpecString().c_str());

  auto result = RunExperiment(config);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const RunReport& report = *result;

  std::printf("\nchaos audit (%zu actions fired):\n", audit.size());
  for (const ChaosAuditEntry& entry : audit) {
    std::printf("  %s\n", entry.Describe().c_str());
  }

  bool removed = false;
  bool rejoined = false;
  std::printf("\nmembership changes seen by the root:\n");
  for (const MembershipEvent& event : report.membership) {
    const double offset_ms =
        static_cast<double>(event.at_nanos - report.start_wall_nanos) / 1e6;
    std::printf("  t=%.1fms: local-%zu %s\n", offset_ms, event.node,
                event.rejoined ? "re-admitted (rejoin)"
                               : "removed (timeout)");
    if (event.rejoined) {
      rejoined = true;
    } else {
      removed = true;
    }
  }

  uint64_t corrected = 0;
  for (const GlobalWindowRecord& w : report.windows) {
    if (w.corrected) ++corrected;
  }
  std::printf("\nrun finished: %llu windows, %llu corrections\n",
              (unsigned long long)report.windows_emitted,
              (unsigned long long)corrected);
  std::printf("the crashed node was removed after its timeout and "
              "re-admitted after its\nrestart; windows in between were "
              "built from the two survivors only.\n");
  return removed && rejoined && report.windows_emitted > 0 ? 0 : 1;
}
