// Failure handling (paper §4.3.4): the root uses per-node timeouts to
// detect silent local nodes, removes them from the topology, and rebuilds
// the affected global window from the survivors via a correction step.
//
// This example assembles the topology by hand (instead of the one-call
// harness) to inject a crash mid-run: after 300 ms one local node is
// marked down on the fabric — its messages vanish, exactly like a dead
// host — and the run is expected to keep emitting windows.

#include <chrono>
#include <cstdio>
#include <thread>

#include "harness/experiment.h"
#include "node/runtime.h"

using namespace deco;

int main() {
  ExperimentConfig config;
  config.scheme = Scheme::kDecoSync;
  config.query.window = WindowSpec::CountTumbling(10'000);
  config.query.aggregate = AggregateKind::kSum;
  config.num_locals = 3;
  config.streams_per_local = 2;
  config.events_per_local = 2'000'000;
  config.base_rate = 100'000;
  config.rate_change = 0.01;
  config.root_options.node_timeout_nanos = 250 * kNanosPerMilli;

  Clock* clock = SystemClock::Default();
  NetworkFabric fabric(clock, 7);
  Topology topology;
  topology.root = fabric.RegisterNode("root");
  for (size_t i = 0; i < config.num_locals; ++i) {
    topology.locals.push_back(
        fabric.RegisterNode("local-" + std::to_string(i)));
  }

  RunReport report;
  Runtime runtime(&fabric);
  auto root = std::make_unique<DecoRootNode>(
      &fabric, topology.root, clock, topology, config.query,
      DecoScheme::kSync, &report, config.root_options);
  DecoRootNode* root_ptr = root.get();
  runtime.AddActor(std::move(root));
  for (size_t i = 0; i < config.num_locals; ++i) {
    runtime.AddActor(std::make_unique<DecoLocalNode>(
        &fabric, topology.locals[i], clock, topology,
        MakeIngestConfig(config, i), config.query, DecoScheme::kSync));
  }

  std::printf("Fault tolerance demo: 3 local nodes, Deco_sync, node "
              "timeout 250 ms\n");
  runtime.StartAll();

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const uint64_t windows_before = report.windows_emitted;
  std::printf("t=300ms: crashing local node %u (emitted %llu windows so "
              "far)\n", topology.locals[1],
              (unsigned long long)windows_before);
  DECO_CHECK_OK(fabric.SetNodeDown(topology.locals[1], true));

  // While the timeout is pending, watch the fabric: the downed node's
  // traffic now counts as dropped, and the root's mailbox depth shows
  // whether the survivors keep it busy.
  for (int tick = 1; tick <= 3; ++tick) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::printf("t=%dms: root queue=%zu", 300 + tick * 100,
                fabric.queue_depth(topology.root));
    for (size_t i = 0; i < topology.locals.size(); ++i) {
      std::printf(" local-%zu queue=%zu", i,
                  fabric.queue_depth(topology.locals[i]));
    }
    std::printf(" dropped=%llu\n",
                (unsigned long long)fabric.Stats().total_dropped);
  }

  root_ptr->Join();
  runtime.StopAll();
  fabric.Shutdown();
  DECO_CHECK_OK(runtime.JoinAll());

  uint64_t corrected = 0;
  for (const GlobalWindowRecord& w : report.windows) {
    if (w.corrected) ++corrected;
  }
  std::printf("run finished: %llu windows total, %llu after the crash, "
              "%llu corrections\n",
              (unsigned long long)report.windows_emitted,
              (unsigned long long)(report.windows_emitted - windows_before),
              (unsigned long long)corrected);
  std::printf("the failed node was removed after its timeout; subsequent "
              "windows were built\nfrom the two survivors' events only.\n");
  return report.windows_emitted > windows_before ? 0 : 1;
}
