// The paper's motivating scenario (§1): a smart factory where local nodes
// spread across the floor collect assembly-line measurements, and quality
// control needs exact per-batch statistics — "the minimum, maximum, or
// average quality of products within batches" — as count-based windows
// (one window = one batch of products).
//
// Assembly lines speed up and slow down with demand, so event rates drift;
// an approximate split of the batch across lines mis-assigns products to
// batches, which rigorous quality control cannot accept. This example runs
// the same batch query with Approx and Deco_sync and shows that only Deco
// keeps the batches exact while still avoiding raw-event shipping.

#include <cmath>
#include <cstdio>

#include "harness/experiment.h"

using namespace deco;

namespace {

ExperimentConfig FactoryConfig(Scheme scheme, AggregateKind aggregate) {
  ExperimentConfig config;
  config.scheme = scheme;
  // One batch = 20k products; quality score per product.
  config.query.window = WindowSpec::CountTumbling(20'000);
  config.query.aggregate = aggregate;
  // Four assembly halls, each with six line sensors.
  config.num_locals = 4;
  config.streams_per_local = 6;
  config.events_per_local = 400'000;
  config.base_rate = 50'000;
  config.rate_skew = 0.15;    // halls run at different speeds
  config.rate_change = 0.10;  // demand-driven speed changes (10%)
  config.seed = 2024;
  return config;
}

}  // namespace

int main() {
  std::printf("Smart factory: batch quality statistics over 4 halls x 6 "
              "line sensors\n");
  std::printf("Batch = 20,000 products; line speeds drift by 10%%.\n\n");

  for (AggregateKind aggregate :
       {AggregateKind::kAvg, AggregateKind::kMin}) {
    std::printf("--- %s quality per batch ---\n",
                std::string(AggregateKindToString(aggregate)).c_str());

    RunReport truth = std::move(
        RunExperiment(FactoryConfig(Scheme::kCentral, aggregate))).value();
    RunReport deco = std::move(
        RunExperiment(FactoryConfig(Scheme::kDecoSync, aggregate))).value();
    RunReport approx = std::move(
        RunExperiment(FactoryConfig(Scheme::kApprox, aggregate))).value();

    std::printf("first batches (truth vs deco-sync vs approx):\n");
    auto same = [](double a, double b) {
      return std::abs(a - b) <= 1e-9 * std::max(1.0, std::abs(b));
    };
    for (size_t i = 0; i < 5 && i < truth.windows.size(); ++i) {
      const double t = truth.windows[i].value;
      const double d =
          i < deco.windows.size() ? deco.windows[i].value : 0.0;
      const double a =
          i < approx.windows.size() ? approx.windows[i].value : 0.0;
      std::printf("  batch %zu: %.4f | %.4f (%s) | %.4f (%s)\n", i, t, d,
                  same(d, t) ? "exact" : "WRONG", a,
                  same(a, t) ? "exact" : "WRONG");
    }

    const CorrectnessReport deco_correct =
        CompareConsumption(truth.consumption, deco.consumption);
    const CorrectnessReport approx_correct =
        CompareConsumption(truth.consumption, approx.consumption);
    std::printf("batch-assignment correctness: deco-sync %.2f%%, "
                "approx %.2f%%\n",
                100 * deco_correct.correctness,
                100 * approx_correct.correctness);
    std::printf("network: central %.2f MB, deco-sync %.2f MB, "
                "approx %.2f MB\n\n",
                truth.network.total_bytes / 1e6,
                deco.network.total_bytes / 1e6,
                approx.network.total_bytes / 1e6);
  }
  std::printf("Deco keeps every batch bit-exact while shipping a small "
              "fraction of the bytes;\nApprox mis-assigns products to "
              "batches as soon as line speeds drift.\n");
  return 0;
}
