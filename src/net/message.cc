#include "net/message.h"

namespace deco {

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kEventBatch:
      return "event-batch";
    case MessageType::kPartialResult:
      return "partial-result";
    case MessageType::kEventRate:
      return "event-rate";
    case MessageType::kWindowAssignment:
      return "window-assignment";
    case MessageType::kCorrectionRequest:
      return "correction-request";
    case MessageType::kCorrectionResult:
      return "correction-result";
    case MessageType::kQueryConfig:
      return "query-config";
    case MessageType::kRateExchange:
      return "rate-exchange";
    case MessageType::kStartWindow:
      return "start-window";
    case MessageType::kShutdown:
      return "shutdown";
    case MessageType::kRejoin:
      return "rejoin";
    case MessageType::kQueryAdd:
      return "query-add";
    case MessageType::kQueryRemove:
      return "query-remove";
  }
  return "unknown";
}

}  // namespace deco
