#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/result.h"
#include "net/message.h"
#include "net/shaping.h"
#include "sim/scheduler.h"

/// \file fabric.h
/// \brief In-process network fabric connecting node actors.
///
/// This is the repository's substitute for the paper's 25 Gbit/s Ethernet
/// cluster (see DESIGN.md). Each registered node owns a mailbox; `Send`
/// routes a message to the destination mailbox while:
///  - accounting serialized bytes per link and per node (the paper's
///    network-utilization metric),
///  - enforcing per-node egress bandwidth caps via a token bucket
///    (emulates the Raspberry Pi's 1 Gbit/s NIC; senders block, which is
///    exactly NIC backpressure),
///  - optionally adding per-link latency and probabilistic drops
///    (unreliable-network failure injection, paper §4.3.4).
///
/// Per-link FIFO order is preserved, including under added latency.

namespace deco {

/// \brief Counters for one directed link.
struct LinkStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_dropped = 0;
};

/// \brief Aggregate traffic counters for one node.
struct NodeTrafficStats {
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_received = 0;
  /// Egress split by `MessageType` (indexed by the enum value): separates
  /// up-flow (partials, corrections) from down-flow (assignments) cost
  /// without tracing enabled.
  std::array<uint64_t, kNumMessageTypes> messages_sent_by_type{};
  std::array<uint64_t, kNumMessageTypes> bytes_sent_by_type{};

  /// Largest mailbox backlog ever observed at delivery time (messages).
  /// The sampler's `queue_depth` is a point-in-time reading that can miss
  /// bursts between snapshots; this high-water mark cannot, so benchmark
  /// JSON uses it as the queue-saturation regression signal.
  uint64_t queue_depth_high_water = 0;
};

/// \brief Whole-network summary.
struct NetworkStats {
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t total_dropped = 0;
  std::vector<NodeTrafficStats> per_node;  // indexed by NodeId
};

/// \brief Mailbox type nodes receive from.
using Mailbox = BlockingQueue<Message>;

/// \brief Process-global switch for causal hop stamping (DESIGN.md §7).
///
/// Owned by the net layer so the fabric need not depend on the observability
/// library; `TraceSink::Install` flips it. While enabled (and
/// `DECO_TRACE_ENABLED` is compiled in), `NetworkFabric::Send` assigns each
/// message a process-unique id and fills in its `MessageHop` timestamps.
void SetHopStampingEnabled(bool enabled);
bool HopStampingEnabled();

/// \brief The in-process network.
///
/// Lifecycle: register nodes and configure links, then exchange messages;
/// `Shutdown` closes every mailbox and wakes all receivers. Registration
/// after traffic has started is supported (node add/remove at runtime,
/// paper §4.3.4) and takes an exclusive lock.
class NetworkFabric {
 public:
  /// \param clock time source for shaping and latency; not owned
  /// \param seed seed of the drop-injection PRNG
  explicit NetworkFabric(Clock* clock, uint64_t seed = 7);
  ~NetworkFabric();

  NetworkFabric(const NetworkFabric&) = delete;
  NetworkFabric& operator=(const NetworkFabric&) = delete;

  /// \brief Adds a node and returns its id. Ids are dense and start at 0.
  NodeId RegisterNode(const std::string& name);

  /// \brief Number of registered nodes.
  size_t node_count() const;

  /// \brief Human-readable node name.
  std::string node_name(NodeId id) const;

  /// \brief Configures the directed link `src -> dst`. Unconfigured links
  /// behave as zero-latency, lossless. Safe to call while traffic is
  /// flowing (runtime-mutable shaping): per-link FIFO order is preserved
  /// across latency changes — a message sent after a latency reduction is
  /// never delivered before an earlier, still-delayed message on the same
  /// link.
  Status SetLinkConfig(NodeId src, NodeId dst, const LinkConfig& config);

  /// \brief Current configuration of `src -> dst`; the default (lossless,
  /// zero-latency) config for links never configured.
  Result<LinkConfig> GetLinkConfig(NodeId src, NodeId dst) const;

  /// \brief Sets only the `blocked` flag of `src -> dst`, preserving the
  /// link's latency and drop probability (partition / heal).
  Status SetLinkBlocked(NodeId src, NodeId dst, bool blocked);

  /// \brief Blocks or unblocks every link between `node` and all other
  /// registered nodes, both directions (network partition isolating one
  /// host).
  Status PartitionNode(NodeId node, bool partitioned);

  /// \brief Configures a node's egress shaping. Replaces any previous cap.
  Status SetNodeNetConfig(NodeId node, const NodeNetConfig& config);

  /// \brief Marks a node as crashed (true) or recovered (false). Messages
  /// to or from a down node are silently dropped, as with a dead host.
  /// On the down -> up transition the node's mailbox is purged — a
  /// rebooted host has lost its pre-crash receive buffers, so stale
  /// messages must not replay into the restarted actor — and the node's
  /// incarnation counter is bumped.
  Status SetNodeDown(NodeId node, bool down);
  bool IsNodeDown(NodeId node) const;

  /// \brief Number of completed down -> up transitions of a node (0 for a
  /// never-crashed node; 0 for unknown ids).
  uint64_t node_incarnation(NodeId node) const;

  /// \brief Routes one message. Blocks while the sender's egress cap is
  /// exceeded. Returns InvalidArgument for unknown endpoints; delivery to a
  /// down node succeeds from the sender's perspective (bytes are spent) but
  /// the message vanishes.
  Status Send(Message msg);

  /// \brief Sets the data-plane flow-control limit: senders of
  /// `kEventBatch` messages block while the destination mailbox holds more
  /// than this many messages. This is the backpressure mechanism of paper
  /// §4.3.1 ("queues like Kafka"); 0 disables it. Default 512.
  void SetFlowControlLimit(size_t limit) {
    flow_control_limit_.store(limit, std::memory_order_relaxed);
  }

  /// \brief Switches the fabric into deterministic simulation mode
  /// (DESIGN.md §8). Must be attached before any traffic flows. Every
  /// delivery — including zero-latency ones — becomes a timer event on the
  /// scheduler's queue, so message order is a pure function of the sim
  /// seed; no delivery thread is ever spawned, and sender-side blocking
  /// (egress shaping, flow control) blocks in virtual time.
  void SetSimScheduler(SimScheduler* sim) { sim_ = sim; }

  /// \brief The attached scheduler, or nullptr outside sim mode.
  SimScheduler* sim() const { return sim_; }

  /// \brief Order-sensitive FNV-1a digest over every delivered message's
  /// (virtual deliver time, src, dst, type, wire size). Only maintained in
  /// sim mode, where deliveries are serialized on the driver thread; two
  /// runs deliver the same messages in the same order iff the digests
  /// match. This is what the determinism regression test compares.
  uint64_t delivery_hash() const {
    return delivery_hash_.load(std::memory_order_acquire);
  }

  /// \brief The receive queue of a node; nullptr for unknown ids.
  Mailbox* mailbox(NodeId id);

  /// \brief Messages currently waiting in a node's mailbox (its receive
  /// backlog — the telemetry sampler's backpressure signal); 0 for unknown
  /// ids.
  size_t queue_depth(NodeId id) const;

  /// \brief Point-in-time copy of a link's counters.
  LinkStats link_stats(NodeId src, NodeId dst) const;

  /// \brief Point-in-time copy of a node's counters.
  NodeTrafficStats node_stats(NodeId id) const;

  /// \brief Point-in-time network summary.
  NetworkStats Stats() const;

  /// \brief Resets all traffic counters — both the per-node totals and
  /// every per-link counter, including drop counts (used between benchmark
  /// phases, e.g. to exclude warm-up windows from measurements).
  void ResetStats();

  /// \brief Closes every mailbox and stops the delivery thread.
  void Shutdown();

 private:
  struct NodeState {
    std::string name;
    std::unique_ptr<Mailbox> mailbox;
    std::unique_ptr<TokenBucket> egress_bucket;  // null = unlimited
    std::atomic<bool> down{false};
    std::atomic<uint64_t> incarnation{0};
    std::atomic<uint64_t> messages_sent{0};
    std::atomic<uint64_t> bytes_sent{0};
    std::atomic<uint64_t> messages_received{0};
    std::atomic<uint64_t> bytes_received{0};
    std::array<std::atomic<uint64_t>, kNumMessageTypes>
        messages_sent_by_type{};
    std::array<std::atomic<uint64_t>, kNumMessageTypes> bytes_sent_by_type{};
    std::atomic<uint64_t> queue_high_water{0};
  };

  struct LinkState {
    LinkConfig config;
    std::atomic<uint64_t> messages_sent{0};
    std::atomic<uint64_t> bytes_sent{0};
    std::atomic<uint64_t> messages_dropped{0};
  };

  struct DelayedDelivery {
    TimeNanos deliver_at;
    uint64_t seq;
    Message msg;
    bool operator>(const DelayedDelivery& other) const {
      if (deliver_at != other.deliver_at) {
        return deliver_at > other.deliver_at;
      }
      return seq > other.seq;
    }
  };

  LinkState* GetOrCreateLink(NodeId src, NodeId dst);
  const LinkState* FindLink(NodeId src, NodeId dst) const;
  void Deliver(Message msg);
  void EnsureDeliveryThread();
  void DeliveryLoop();

  Clock* clock_;
  SimScheduler* sim_ = nullptr;
  // Per-fabric so message ids restart at 1 for every experiment: a
  // process running several back-to-back runs (benches, the serving
  // layer's tests) would otherwise leak the previous run's id offset
  // into trace hop records and break sim replay identity. 0 is reserved
  // for "untraced".
  std::atomic<uint64_t> next_msg_id_{1};
  // FNV-1a offset basis; see delivery_hash().
  std::atomic<uint64_t> delivery_hash_{1469598103934665603ull};
  std::atomic<size_t> flow_control_limit_{512};

  mutable std::shared_mutex nodes_mu_;
  std::vector<std::unique_ptr<NodeState>> nodes_;

  mutable std::mutex links_mu_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<LinkState>> links_;

  std::mutex rng_mu_;
  Rng rng_;

  // Delayed-delivery machinery (only active once a latency link exists).
  std::mutex delay_mu_;
  std::condition_variable delay_cv_;
  std::priority_queue<DelayedDelivery, std::vector<DelayedDelivery>,
                      std::greater<DelayedDelivery>>
      delayed_;
  std::thread delivery_thread_;
  bool delivery_thread_running_ = false;
  bool shutting_down_ = false;
  uint64_t delay_seq_ = 0;

  // Messages currently sitting in `delayed_`; lets the zero-latency fast
  // path skip `delay_mu_` entirely while no delayed traffic exists.
  std::atomic<size_t> delayed_in_flight_{0};

  // Per-link delivery horizon: the latest `deliver_at` scheduled on each
  // link. A later message on the same link is never scheduled before it,
  // which preserves per-link FIFO order across runtime latency changes
  // (guarded by delay_mu_).
  std::map<std::pair<NodeId, NodeId>, TimeNanos> link_horizon_;
};

}  // namespace deco
