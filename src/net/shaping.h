#pragma once

#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "common/status.h"

/// \file shaping.h
/// \brief Link and egress shaping primitives used by the fabric to emulate
/// constrained networks (paper §5.3, Raspberry Pi cluster with 1 Gbit/s
/// Ethernet).

namespace deco {

/// \brief Per-link properties. All fields are runtime-mutable: the chaos
/// controller rewrites them mid-run (drop bursts, latency spikes,
/// partitions) via `NetworkFabric::SetLinkConfig` and friends.
struct LinkConfig {
  /// One-way propagation delay added to every message, in nanoseconds.
  TimeNanos latency_nanos = 0;

  /// Probability that a message is silently dropped (unreliable network
  /// injection, paper §4.3.4). Bytes of dropped messages still count as
  /// sent (they left the NIC).
  double drop_probability = 0.0;

  /// Hard partition: every message on the link is dropped. Kept separate
  /// from `drop_probability` so healing a partition restores the link's
  /// previous loss characteristics untouched.
  bool blocked = false;
};

/// \brief Per-node egress properties.
struct NodeNetConfig {
  /// Egress bandwidth cap in bytes per second; 0 means unlimited. Senders
  /// block when the cap is exceeded, which is how NIC backpressure
  /// propagates into the node runtime.
  uint64_t egress_bytes_per_sec = 0;
};

/// \brief Classic token bucket: capacity of one second's worth of tokens,
/// refilled continuously from a monotonic clock.
///
/// Thread-safe. `AcquireBlocking` sleeps the calling thread until enough
/// tokens accumulate — only meaningful with a real clock; deterministic
/// tests use `TryAcquire` with a `ManualClock`.
class TokenBucket {
 public:
  /// \param rate_per_sec token refill rate (bytes/sec); must be > 0
  /// \param clock time source; not owned, must outlive the bucket
  TokenBucket(uint64_t rate_per_sec, Clock* clock);

  /// \brief Takes `n` tokens, sleeping as needed. `n` larger than the
  /// bucket capacity is allowed: the debt is paid across multiple refills.
  void AcquireBlocking(uint64_t n);

  /// \brief Takes `n` tokens iff available without waiting.
  bool TryAcquire(uint64_t n);

  /// \brief Tokens currently available (after refilling to now).
  uint64_t AvailableTokens();

  uint64_t rate_per_sec() const { return rate_; }

 private:
  /// Refills from elapsed time; caller holds `mu_`.
  void RefillLocked();

  const uint64_t rate_;
  const uint64_t capacity_;
  Clock* clock_;
  std::mutex mu_;
  double tokens_;
  TimeNanos last_refill_;
};

}  // namespace deco
