#include "net/fabric.h"

#include <chrono>

#include "common/logging.h"

namespace deco {

namespace {
// Hop-stamping switch. It lives here (not in the TraceSink) so the net
// layer stays free of an obs dependency; `TraceSink::Install` toggles
// the switch.
std::atomic<bool> g_hop_stamping{false};
}  // namespace

void SetHopStampingEnabled(bool enabled) {
  g_hop_stamping.store(enabled, std::memory_order_release);
}

bool HopStampingEnabled() {
  return g_hop_stamping.load(std::memory_order_acquire);
}

NetworkFabric::NetworkFabric(Clock* clock, uint64_t seed)
    : clock_(clock), rng_(seed) {}

NetworkFabric::~NetworkFabric() { Shutdown(); }

NodeId NetworkFabric::RegisterNode(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(nodes_mu_);
  auto state = std::make_unique<NodeState>();
  state->name = name;
  state->mailbox = std::make_unique<Mailbox>();
  nodes_.push_back(std::move(state));
  return static_cast<NodeId>(nodes_.size() - 1);
}

size_t NetworkFabric::node_count() const {
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  return nodes_.size();
}

std::string NetworkFabric::node_name(NodeId id) const {
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  if (id >= nodes_.size()) return "<unknown>";
  return nodes_[id]->name;
}

Status NetworkFabric::SetLinkConfig(NodeId src, NodeId dst,
                                    const LinkConfig& config) {
  if (src >= node_count() || dst >= node_count()) {
    return Status::InvalidArgument("link endpoint not registered");
  }
  if (config.drop_probability < 0.0 || config.drop_probability > 1.0) {
    return Status::InvalidArgument("drop probability must be in [0, 1]");
  }
  if (config.latency_nanos < 0) {
    return Status::InvalidArgument("latency must be non-negative");
  }
  LinkState* link = GetOrCreateLink(src, dst);
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    link->config = config;
  }
  if (config.latency_nanos > 0) EnsureDeliveryThread();
  return Status::OK();
}

Status NetworkFabric::SetNodeNetConfig(NodeId node,
                                       const NodeNetConfig& config) {
  std::unique_lock<std::shared_mutex> lock(nodes_mu_);
  if (node >= nodes_.size()) {
    return Status::InvalidArgument("node not registered");
  }
  if (config.egress_bytes_per_sec == 0) {
    nodes_[node]->egress_bucket.reset();
  } else {
    nodes_[node]->egress_bucket =
        std::make_unique<TokenBucket>(config.egress_bytes_per_sec, clock_);
  }
  return Status::OK();
}

Status NetworkFabric::SetNodeDown(NodeId node, bool down) {
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  if (node >= nodes_.size()) {
    return Status::InvalidArgument("node not registered");
  }
  NodeState& state = *nodes_[node];
  const bool was_down = state.down.load(std::memory_order_acquire);
  if (was_down && !down) {
    // Revival: a rebooted host has lost its pre-crash receive buffers.
    // Purging here (rather than on crash) keeps the down period observable
    // via queue_depth and guarantees the restarted actor never replays
    // stale pre-crash messages (dead-window partials, old assignments).
    // The purge happens *before* the node becomes visibly up so that no
    // post-revive message can be swept away with the stale ones.
    const size_t purged = state.mailbox->Clear();
    state.incarnation.fetch_add(1, std::memory_order_acq_rel);
    if (purged > 0) {
      DECO_LOG(DEBUG) << "fabric: node " << node << " revived, purged "
                      << purged << " stale pre-crash messages";
    }
  }
  state.down.store(down, std::memory_order_release);
  return Status::OK();
}

uint64_t NetworkFabric::node_incarnation(NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  if (node >= nodes_.size()) return 0;
  return nodes_[node]->incarnation.load(std::memory_order_acquire);
}

Result<LinkConfig> NetworkFabric::GetLinkConfig(NodeId src,
                                                NodeId dst) const {
  if (src >= node_count() || dst >= node_count()) {
    return Status::InvalidArgument("link endpoint not registered");
  }
  const LinkState* link = FindLink(src, dst);
  if (link == nullptr) return LinkConfig{};
  std::lock_guard<std::mutex> lock(links_mu_);
  return link->config;
}

Status NetworkFabric::SetLinkBlocked(NodeId src, NodeId dst, bool blocked) {
  if (src >= node_count() || dst >= node_count()) {
    return Status::InvalidArgument("link endpoint not registered");
  }
  LinkState* link = GetOrCreateLink(src, dst);
  std::lock_guard<std::mutex> lock(links_mu_);
  link->config.blocked = blocked;
  return Status::OK();
}

Status NetworkFabric::PartitionNode(NodeId node, bool partitioned) {
  const size_t n = node_count();
  if (node >= n) return Status::InvalidArgument("node not registered");
  for (NodeId other = 0; other < n; ++other) {
    if (other == node) continue;
    DECO_RETURN_NOT_OK(SetLinkBlocked(node, other, partitioned));
    DECO_RETURN_NOT_OK(SetLinkBlocked(other, node, partitioned));
  }
  return Status::OK();
}

bool NetworkFabric::IsNodeDown(NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  if (node >= nodes_.size()) return true;
  return nodes_[node]->down.load(std::memory_order_acquire);
}

NetworkFabric::LinkState* NetworkFabric::GetOrCreateLink(NodeId src,
                                                         NodeId dst) {
  std::lock_guard<std::mutex> lock(links_mu_);
  auto& slot = links_[{src, dst}];
  if (!slot) slot = std::make_unique<LinkState>();
  return slot.get();
}

const NetworkFabric::LinkState* NetworkFabric::FindLink(NodeId src,
                                                        NodeId dst) const {
  std::lock_guard<std::mutex> lock(links_mu_);
  auto it = links_.find({src, dst});
  return it == links_.end() ? nullptr : it->second.get();
}

Status NetworkFabric::Send(Message msg) {
  const size_t wire_size = msg.WireSize();
  NodeState* src_state = nullptr;
  NodeState* dst_state = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(nodes_mu_);
    if (msg.src >= nodes_.size() || msg.dst >= nodes_.size()) {
      return Status::InvalidArgument("message endpoint not registered");
    }
    src_state = nodes_[msg.src].get();
    dst_state = nodes_[msg.dst].get();
  }

  if (src_state->down.load(std::memory_order_acquire)) {
    // A crashed node emits nothing.
    return Status::NodeFailed("sender is down");
  }

#if DECO_TRACE_ENABLED
  const bool stamp_hop = HopStampingEnabled();
  if (stamp_hop) {
    msg.hop.msg_id = next_msg_id_.fetch_add(1, std::memory_order_relaxed);
    msg.hop.enqueue_nanos = clock_->NowNanos();
  }
#endif

  // Egress shaping: block like a saturated NIC would.
  if (src_state->egress_bucket) {
    src_state->egress_bucket->AcquireBlocking(wire_size);
  }

  // Data-plane flow control: raw-event producers block while the receiver
  // is congested, which propagates backpressure into ingestion and makes
  // the measured throughput the *sustainable* one (paper §5, metrics).
  if (msg.type == MessageType::kEventBatch) {
    const size_t limit = flow_control_limit_.load(std::memory_order_relaxed);
    if (limit > 0) {
      if (sim_ != nullptr) {
        // Sim mode: block in virtual time until the receiver drains. Only a
        // granted sim task may block; a driver-side Send skips backpressure
        // (the driver must never suspend itself).
        Mailbox* dst_mailbox = dst_state->mailbox.get();
        while (SimScheduler::OnSimTask() &&
               dst_mailbox->size() > limit && !dst_mailbox->closed() &&
               !dst_state->down.load(std::memory_order_acquire)) {
          sim_->WaitUntil(
              [dst_mailbox, dst_state, limit] {
                return dst_mailbox->size() <= limit ||
                       dst_mailbox->closed() ||
                       dst_state->down.load(std::memory_order_acquire);
              },
              -1);
        }
      } else {
        // A closed mailbox means the run is tearing down: backpressure is
        // meaningless and waiting for a drain that will never happen would
        // wedge the sender.
        while (dst_state->mailbox->size() > limit &&
               !dst_state->mailbox->closed() &&
               !dst_state->down.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    }
  }

#if DECO_TRACE_ENABLED
  if (stamp_hop) {
    // Everything between enqueue and here was sender-side blocking
    // (egress token bucket and/or data-plane flow control).
    msg.hop.shaping_delay_nanos =
        clock_->NowNanos() - msg.hop.enqueue_nanos;
  }
#endif

  src_state->messages_sent.fetch_add(1, std::memory_order_relaxed);
  src_state->bytes_sent.fetch_add(wire_size, std::memory_order_relaxed);
  const size_t type_index = static_cast<size_t>(msg.type);
  if (type_index < kNumMessageTypes) {
    src_state->messages_sent_by_type[type_index].fetch_add(
        1, std::memory_order_relaxed);
    src_state->bytes_sent_by_type[type_index].fetch_add(
        wire_size, std::memory_order_relaxed);
  }

  LinkState* link = GetOrCreateLink(msg.src, msg.dst);
  link->messages_sent.fetch_add(1, std::memory_order_relaxed);
  link->bytes_sent.fetch_add(wire_size, std::memory_order_relaxed);

  LinkConfig config;
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    config = link->config;
  }

  if (config.blocked) {
    // Hard partition: the link is severed, nothing gets across.
    link->messages_dropped.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  if (config.drop_probability > 0.0) {
    bool drop;
    {
      std::lock_guard<std::mutex> lock(rng_mu_);
      drop = rng_.NextBool(config.drop_probability);
    }
    if (drop) {
      link->messages_dropped.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }

  if (dst_state->down.load(std::memory_order_acquire)) {
    // Bytes were spent but the destination host is gone.
    link->messages_dropped.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  if (sim_ != nullptr) {
    // Sim mode: every delivery — even zero-latency — is a timer event, so
    // the full delivery order is decided by the scheduler's deterministic
    // (time, schedule-order) queue. Per-link FIFO still holds: a later
    // message is scheduled at max(now + latency, link horizon), and ties
    // fire in schedule order.
    TimeNanos deliver_at;
    {
      std::lock_guard<std::mutex> lock(delay_mu_);
      if (shutting_down_) return Status::Cancelled("fabric shut down");
      const std::pair<NodeId, NodeId> key{msg.src, msg.dst};
      deliver_at = clock_->NowNanos() + config.latency_nanos;
      auto horizon = link_horizon_.find(key);
      if (horizon != link_horizon_.end() && horizon->second > deliver_at) {
        deliver_at = horizon->second;
      }
      link_horizon_[key] = deliver_at;
    }
    auto shared = std::make_shared<Message>(std::move(msg));
    sim_->ScheduleAt(deliver_at,
                     [this, shared] { Deliver(std::move(*shared)); });
    return Status::OK();
  }

  // The delayed path is taken while the link has latency OR any delayed
  // message is still in flight anywhere: a message sent right after a
  // latency drop to 0 must not overtake an earlier, still-delayed message
  // on the same link.
  if (config.latency_nanos > 0 ||
      delayed_in_flight_.load(std::memory_order_acquire) > 0) {
    const std::pair<NodeId, NodeId> key{msg.src, msg.dst};
    std::unique_lock<std::mutex> lock(delay_mu_);
    if (shutting_down_) return Status::Cancelled("fabric shut down");
    const TimeNanos now = clock_->NowNanos();
    TimeNanos deliver_at = now + config.latency_nanos;
    auto horizon = link_horizon_.find(key);
    if (horizon != link_horizon_.end() && horizon->second > deliver_at) {
      deliver_at = horizon->second;  // FIFO: never pass a predecessor.
    }
    if (deliver_at <= now && delayed_.empty()) {
      // No predecessor pending on this link and no delay requested:
      // deliver inline without touching the delivery thread.
      lock.unlock();
      Deliver(std::move(msg));
      return Status::OK();
    }
    link_horizon_[key] = deliver_at;
    delayed_.push(DelayedDelivery{deliver_at, delay_seq_++, std::move(msg)});
    delayed_in_flight_.fetch_add(1, std::memory_order_acq_rel);
    lock.unlock();
    EnsureDeliveryThread();
    delay_cv_.notify_one();
    return Status::OK();
  }

  Deliver(std::move(msg));
  return Status::OK();
}

void NetworkFabric::Deliver(Message msg) {
  const size_t wire_size = msg.WireSize();
  NodeState* dst_state = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(nodes_mu_);
    if (msg.dst >= nodes_.size()) return;
    dst_state = nodes_[msg.dst].get();
  }
  if (dst_state->down.load(std::memory_order_acquire)) return;
#if DECO_TRACE_ENABLED
  if (msg.hop.msg_id != 0) msg.hop.deliver_nanos = clock_->NowNanos();
#endif
  if (sim_ != nullptr) {
    // Deliveries are serialized on the sim driver thread, so a plain FNV-1a
    // accumulation is race-free; the atomic is only for the final read.
    uint64_t h = delivery_hash_.load(std::memory_order_relaxed);
    const uint64_t word =
        (static_cast<uint64_t>(msg.src) << 48) ^
        (static_cast<uint64_t>(msg.dst) << 40) ^
        (static_cast<uint64_t>(msg.type) << 32) ^
        static_cast<uint64_t>(wire_size) ^
        static_cast<uint64_t>(clock_->NowNanos());
    h = (h ^ word) * 1099511628211ull;
    delivery_hash_.store(h, std::memory_order_release);
  }
  dst_state->messages_received.fetch_add(1, std::memory_order_relaxed);
  dst_state->bytes_received.fetch_add(wire_size, std::memory_order_relaxed);
  dst_state->mailbox->Push(std::move(msg));
  // High-water accounting after the push so the mark includes this message.
  // Concurrent deliveries can each observe a stale smaller size, but every
  // delivery re-reads the depth, so the mark is never below any depth that
  // existed at some delivery instant.
  const uint64_t depth = dst_state->mailbox->size();
  uint64_t high = dst_state->queue_high_water.load(std::memory_order_relaxed);
  while (depth > high &&
         !dst_state->queue_high_water.compare_exchange_weak(
             high, depth, std::memory_order_relaxed)) {
  }
}

Mailbox* NetworkFabric::mailbox(NodeId id) {
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  if (id >= nodes_.size()) return nullptr;
  return nodes_[id]->mailbox.get();
}

size_t NetworkFabric::queue_depth(NodeId id) const {
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  if (id >= nodes_.size()) return 0;
  return nodes_[id]->mailbox->size();
}

LinkStats NetworkFabric::link_stats(NodeId src, NodeId dst) const {
  LinkStats out;
  const LinkState* link = FindLink(src, dst);
  if (link == nullptr) return out;
  out.messages_sent = link->messages_sent.load(std::memory_order_relaxed);
  out.bytes_sent = link->bytes_sent.load(std::memory_order_relaxed);
  out.messages_dropped =
      link->messages_dropped.load(std::memory_order_relaxed);
  return out;
}

NodeTrafficStats NetworkFabric::node_stats(NodeId id) const {
  NodeTrafficStats out;
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  if (id >= nodes_.size()) return out;
  const NodeState& n = *nodes_[id];
  out.messages_sent = n.messages_sent.load(std::memory_order_relaxed);
  out.bytes_sent = n.bytes_sent.load(std::memory_order_relaxed);
  out.messages_received = n.messages_received.load(std::memory_order_relaxed);
  out.bytes_received = n.bytes_received.load(std::memory_order_relaxed);
  for (size_t t = 0; t < kNumMessageTypes; ++t) {
    out.messages_sent_by_type[t] =
        n.messages_sent_by_type[t].load(std::memory_order_relaxed);
    out.bytes_sent_by_type[t] =
        n.bytes_sent_by_type[t].load(std::memory_order_relaxed);
  }
  out.queue_depth_high_water =
      n.queue_high_water.load(std::memory_order_relaxed);
  return out;
}

NetworkStats NetworkFabric::Stats() const {
  NetworkStats stats;
  {
    std::shared_lock<std::shared_mutex> lock(nodes_mu_);
    stats.per_node.resize(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const NodeState& n = *nodes_[i];
      auto& entry = stats.per_node[i];
      entry.messages_sent = n.messages_sent.load(std::memory_order_relaxed);
      entry.bytes_sent = n.bytes_sent.load(std::memory_order_relaxed);
      entry.messages_received =
          n.messages_received.load(std::memory_order_relaxed);
      entry.bytes_received =
          n.bytes_received.load(std::memory_order_relaxed);
      for (size_t t = 0; t < kNumMessageTypes; ++t) {
        entry.messages_sent_by_type[t] =
            n.messages_sent_by_type[t].load(std::memory_order_relaxed);
        entry.bytes_sent_by_type[t] =
            n.bytes_sent_by_type[t].load(std::memory_order_relaxed);
      }
      entry.queue_depth_high_water =
          n.queue_high_water.load(std::memory_order_relaxed);
      stats.total_messages += entry.messages_sent;
      stats.total_bytes += entry.bytes_sent;
    }
  }
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    for (const auto& [key, link] : links_) {
      stats.total_dropped +=
          link->messages_dropped.load(std::memory_order_relaxed);
    }
  }
  return stats;
}

void NetworkFabric::ResetStats() {
  {
    std::shared_lock<std::shared_mutex> lock(nodes_mu_);
    for (auto& n : nodes_) {
      n->messages_sent.store(0, std::memory_order_relaxed);
      n->bytes_sent.store(0, std::memory_order_relaxed);
      n->messages_received.store(0, std::memory_order_relaxed);
      n->bytes_received.store(0, std::memory_order_relaxed);
      for (size_t t = 0; t < kNumMessageTypes; ++t) {
        n->messages_sent_by_type[t].store(0, std::memory_order_relaxed);
        n->bytes_sent_by_type[t].store(0, std::memory_order_relaxed);
      }
      n->queue_high_water.store(0, std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(links_mu_);
  for (auto& [key, link] : links_) {
    link->messages_sent.store(0, std::memory_order_relaxed);
    link->bytes_sent.store(0, std::memory_order_relaxed);
    link->messages_dropped.store(0, std::memory_order_relaxed);
  }
}

void NetworkFabric::EnsureDeliveryThread() {
  if (sim_ != nullptr) return;  // sim mode: deliveries are timer events
  std::lock_guard<std::mutex> lock(delay_mu_);
  if (delivery_thread_running_ || shutting_down_) return;
  delivery_thread_running_ = true;
  delivery_thread_ = std::thread([this] { DeliveryLoop(); });
}

void NetworkFabric::DeliveryLoop() {
  std::unique_lock<std::mutex> lock(delay_mu_);
  while (!shutting_down_) {
    if (delayed_.empty()) {
      delay_cv_.wait(lock,
                     [&] { return shutting_down_ || !delayed_.empty(); });
      continue;
    }
    const TimeNanos now = clock_->NowNanos();
    const TimeNanos due = delayed_.top().deliver_at;
    if (due > now) {
      delay_cv_.wait_for(lock, std::chrono::nanoseconds(due - now));
      continue;
    }
    Message msg = std::move(const_cast<DelayedDelivery&>(delayed_.top()).msg);
    delayed_.pop();
    delayed_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    lock.unlock();
    Deliver(std::move(msg));
    lock.lock();
  }
}

void NetworkFabric::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(delay_mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  delay_cv_.notify_all();
  if (delivery_thread_.joinable()) delivery_thread_.join();
  std::shared_lock<std::shared_mutex> lock(nodes_mu_);
  for (auto& n : nodes_) n->mailbox->Close();
}

}  // namespace deco
