#pragma once

#include <cstdint>
#include <string>

/// \file message.h
/// \brief The message envelope exchanged between nodes (paper §3,
/// communication model).
///
/// Every communication *flow* — up-flow (local → root) or down-flow
/// (root → local) — is a sequence of messages. A message has a small fixed
/// header and a scheme-specific payload; the fabric accounts
/// `header + payload` bytes as network utilization, which is the quantity
/// Figures 8, 10b and 11b of the paper report.

namespace deco {

/// Identifier of a node registered with the fabric.
using NodeId = uint32_t;

/// \brief Discriminates message payloads across all schemes.
enum class MessageType : uint8_t {
  /// Raw events (centralized ingest, Deco buffer shipping). Payload:
  /// event batch in the sender's wire format.
  kEventBatch = 0,

  /// Partial aggregation result of a local slice plus statistics.
  kPartialResult = 1,

  /// Event-rate report from a local node (Deco_mon initialization step).
  kEventRate = 2,

  /// Root → local: (predicted) local window size, delta and watermark for
  /// the next global window.
  kWindowAssignment = 3,

  /// Root → local: prediction was wrong; actual local window size inside
  /// (correction step).
  kCorrectionRequest = 4,

  /// Local → root: corrected partial result plus the window's last event.
  kCorrectionResult = 5,

  /// Root → local: query definition (window spec, aggregate) at startup.
  kQueryConfig = 6,

  /// Local ↔ local: event-rate exchange (Deco_monlocal microbenchmark).
  kRateExchange = 7,

  /// Root → local: begin the next global window (synchronous schemes).
  kStartWindow = 8,

  /// Clean end-of-stream marker.
  kShutdown = 9,

  /// Local → root: a restarted local announces itself and asks to be
  /// re-admitted into the topology (rejoin protocol, DESIGN.md §6).
  /// Payload: `RateReport` with the node's current rate and cumulative
  /// stream position.
  kRejoin = 10,

  /// Root → local: a query was admitted at runtime; the payload
  /// (`QueryUpdate`) names the aggregate slot the local must start
  /// computing and the first protocol window (pane) it takes effect in
  /// (multi-query serving layer, DESIGN.md §11).
  kQueryAdd = 11,

  /// Root → local: a query was retired at runtime; payload (`QueryUpdate`)
  /// names the slot and the first pane it no longer applies to.
  kQueryRemove = 12,
};

/// Number of `MessageType` values; sizes per-type counter arrays.
inline constexpr size_t kNumMessageTypes = 13;

/// \brief Returns a short name for logging ("event-batch", ...).
const char* MessageTypeToString(MessageType type);

#ifndef DECO_TRACE_ENABLED
#define DECO_TRACE_ENABLED 1
#endif

#if DECO_TRACE_ENABLED
/// \brief Causal hop record carried by every message while tracing is
/// compiled in (CMake option `DECO_TRACE=ON`, the default).
///
/// The fabric stamps the record as the message moves: `Send` assigns a
/// process-unique id and the enqueue time, measures how long the sender
/// blocked on egress shaping / flow control, and `Deliver` stamps the
/// mailbox-arrival time. The *receiving* actor stamps the dequeue time and
/// hands the finished record to the installed `TraceSink` — so node code
/// stays untouched on the hot path. Like the latency side-channel, the hop
/// record is excluded from wire-byte accounting: a real deployment would
/// fold these ~12 bytes into the RPC framing or reconstruct them from
/// per-host clocks.
///
/// All fields stay zero unless a sink is installed (`msg_id == 0` means
/// "not traced").
struct MessageHop {
  uint64_t msg_id = 0;            ///< process-unique causal id; 0 = untraced
  int64_t enqueue_nanos = 0;      ///< sender entered `Send`
  int64_t deliver_nanos = 0;      ///< fabric pushed into the dst mailbox
  int64_t dequeue_nanos = 0;      ///< receiver popped from its mailbox
  int64_t shaping_delay_nanos = 0;///< sender blocked on egress cap/backpressure
};
#endif

/// \brief Envelope carried by the fabric.
struct Message {
  MessageType type = MessageType::kEventBatch;
  NodeId src = 0;
  NodeId dst = 0;

  /// Global window index the message refers to (0-based); schemes that do
  /// not need it leave it 0.
  uint64_t window_index = 0;

  /// Protocol epoch. Deco_async bumps it on every correction so stale
  /// messages from rolled-back windows can be discarded (paper §4.3.2).
  uint64_t epoch = 0;

  /// Serialized payload; format depends on `type` and the sender's wire
  /// format (binary everywhere except the Disco baseline's text format).
  std::string payload;

  /// Measurement side-channel (see DESIGN.md §4.1): weighted mean
  /// wall-clock creation time of the events this message covers, and their
  /// count. Excluded from wire-byte accounting — in a real deployment each
  /// node measures latency locally; the side channel replaces synchronized
  /// clocks in the in-process fabric.
  double lat_mean_create_nanos = 0.0;
  uint64_t lat_event_count = 0;

#if DECO_TRACE_ENABLED
  /// Causal tracing side-channel (DESIGN.md §7); zero unless a `TraceSink`
  /// is installed. Compiled out entirely with `DECO_TRACE=OFF`.
  MessageHop hop;
#endif

  /// \brief Folds another covered-event set into the latency side-channel.
  void MergeLatencyMeta(double mean_create_nanos, uint64_t count) {
    if (count == 0) return;
    const uint64_t total = lat_event_count + count;
    lat_mean_create_nanos =
        (lat_mean_create_nanos * static_cast<double>(lat_event_count) +
         mean_create_nanos * static_cast<double>(count)) /
        static_cast<double>(total);
    lat_event_count = total;
  }

  /// \brief Modeled on-the-wire size: fixed header + payload bytes.
  size_t WireSize() const { return kHeaderBytes + payload.size(); }

  /// Modeled header: type (1) + src (4) + dst (4) + window index (8) +
  /// epoch (8) + payload length (4) — comparable to a compact RPC framing.
  static constexpr size_t kHeaderBytes = 29;
};

/// \brief The causal id of a message, or 0 when untraced / tracing is
/// compiled out. Span sites use this so they need no `#if` of their own.
inline uint64_t MessageCausalId(const Message& msg) {
#if DECO_TRACE_ENABLED
  return msg.hop.msg_id;
#else
  (void)msg;
  return 0;
#endif
}

}  // namespace deco
