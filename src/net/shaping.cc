#include "net/shaping.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "sim/scheduler.h"

namespace deco {

TokenBucket::TokenBucket(uint64_t rate_per_sec, Clock* clock)
    : rate_(rate_per_sec),
      capacity_(rate_per_sec),
      clock_(clock),
      tokens_(static_cast<double>(rate_per_sec)),
      last_refill_(clock->NowNanos()) {}

void TokenBucket::RefillLocked() {
  const TimeNanos now = clock_->NowNanos();
  if (now <= last_refill_) return;
  const double elapsed_sec = static_cast<double>(now - last_refill_) /
                             static_cast<double>(kNanosPerSecond);
  tokens_ = std::min(static_cast<double>(capacity_),
                     tokens_ + elapsed_sec * static_cast<double>(rate_));
  last_refill_ = now;
}

bool TokenBucket::TryAcquire(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked();
  if (tokens_ < static_cast<double>(n)) return false;
  tokens_ -= static_cast<double>(n);
  return true;
}

uint64_t TokenBucket::AvailableTokens() {
  std::lock_guard<std::mutex> lock(mu_);
  RefillLocked();
  return tokens_ < 0 ? 0 : static_cast<uint64_t>(tokens_);
}

void TokenBucket::AcquireBlocking(uint64_t n) {
  // Go into debt immediately (tokens_ may become negative) and sleep until
  // the debt is repaid; this preserves FIFO cost accounting for messages
  // larger than the bucket capacity.
  double deficit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefillLocked();
    tokens_ -= static_cast<double>(n);
    deficit = -tokens_;
  }
  if (deficit <= 0) return;
  const double wait_sec = deficit / static_cast<double>(rate_);
  if (SimScheduler::OnSimTask()) {
    // Simulated run: the debt is repaid in virtual time, at zero wall cost.
    SimScheduler::Current()->SleepFor(
        static_cast<TimeNanos>(wait_sec * kNanosPerSecond) + 1);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(wait_sec));
}

}  // namespace deco
