#include "metrics/report.h"

#include <cstdio>

namespace deco {

std::string RunReport::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%-12s windows=%llu events=%llu tput=%.3fM ev/s lat(mean)=%.3f ms "
      "lat(p99)=%.3f ms net=%.2f MB (%.2f B/ev) corrections=%llu",
      scheme.c_str(), static_cast<unsigned long long>(windows_emitted),
      static_cast<unsigned long long>(events_processed),
      throughput_eps / 1e6, latency.mean() / 1e6,
      static_cast<double>(latency.Percentile(0.99)) / 1e6,
      static_cast<double>(network.total_bytes) / 1e6, BytesPerEvent(),
      static_cast<unsigned long long>(correction_steps));
  return buf;
}

}  // namespace deco
