#include "metrics/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/json.h"

namespace deco {

std::string RunReport::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%-12s windows=%llu events=%llu tput=%.3fM ev/s lat(mean)=%.3f ms "
      "lat(p99)=%.3f ms net=%.2f MB (%.2f B/ev) corrections=%llu",
      scheme.c_str(), static_cast<unsigned long long>(windows_emitted),
      static_cast<unsigned long long>(events_processed),
      throughput_eps / 1e6, latency.mean() / 1e6,
      static_cast<double>(latency.Percentile(0.99)) / 1e6,
      static_cast<double>(network.total_bytes) / 1e6, BytesPerEvent(),
      static_cast<unsigned long long>(correction_steps));
  return buf;
}

namespace {

// Local aliases for the shared deterministic-JSON primitives (common/json.h)
// this file historically defined itself.
constexpr auto AppendU64 = JsonAppendU64;
constexpr auto AppendI64 = JsonAppendI64;
constexpr auto AppendDouble = JsonAppendDouble;

}  // namespace

std::string ProfileReportJson(const ProfileReport& profile) {
  std::string out;
  out.reserve(256 + profile.threads.size() * 256);
  out += "{\"enabled\":";
  out += profile.enabled ? "true" : "false";
  out += ",\"alloc_counted\":";
  out += profile.alloc_counted ? "true" : "false";
  out += ",\"threads\":[";
  for (size_t i = 0; i < profile.threads.size(); ++i) {
    const ThreadProfile& thread = profile.threads[i];
    if (i > 0) out += ",";
    out += "{\"name\":";
    JsonAppendString(&out, thread.name);
    out += ",\"cpu_nanos\":";
    AppendU64(&out, thread.cpu_nanos);
    out += ",\"wall_nanos\":";
    AppendU64(&out, thread.wall_nanos);
    out += ",\"messages_handled\":";
    AppendU64(&out, thread.messages_handled);
    out += ",\"allocations\":";
    AppendU64(&out, thread.allocations);
    out += ",\"allocated_bytes\":";
    AppendU64(&out, thread.allocated_bytes);
    out += ",\"handlers\":[";
    for (size_t h = 0; h < thread.handlers.size(); ++h) {
      const HandlerProfile& handler = thread.handlers[h];
      if (h > 0) out += ",";
      out += "{\"type\":";
      JsonAppendString(&out, MessageTypeToString(handler.type));
      out += ",\"count\":";
      AppendU64(&out, handler.count);
      out += ",\"cpu_nanos\":";
      AppendU64(&out, handler.cpu_nanos);
      out += ",\"wall_nanos\":";
      AppendU64(&out, handler.wall_nanos);
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string ProvenanceSummaryJson(const ProvenanceSummary& summary) {
  std::string out;
  out.reserve(512);
  out += "{\"enabled\":";
  out += summary.enabled ? "true" : "false";
  out += ",\"windows_tracked\":";
  AppendU64(&out, summary.windows_tracked);
  out += ",\"windows_corrected\":";
  AppendU64(&out, summary.windows_corrected);
  out += ",\"correction_rounds\":";
  AppendU64(&out, summary.correction_rounds);
  out += ",\"partials_expected\":";
  AppendU64(&out, summary.partials_expected);
  out += ",\"partials_received\":";
  AppendU64(&out, summary.partials_received);
  out += ",\"partials_missing\":";
  AppendU64(&out, summary.partials_missing);
  out += ",\"partials_duplicate\":";
  AppendU64(&out, summary.partials_duplicate);
  out += ",\"mean_staleness_nanos\":";
  AppendDouble(&out, summary.mean_staleness_nanos);
  out += ",\"windows_estimated\":";
  AppendU64(&out, summary.windows_estimated);
  out += ",\"mean_abs_error\":";
  AppendDouble(&out, summary.mean_abs_error);
  out += ",\"max_abs_error\":";
  AppendDouble(&out, summary.max_abs_error);
  out += ",\"mean_abs_drop_error\":";
  AppendDouble(&out, summary.mean_abs_drop_error);
  out += ",\"mean_abs_staleness_error\":";
  AppendDouble(&out, summary.mean_abs_staleness_error);
  out += ",\"mean_abs_approx_error\":";
  AppendDouble(&out, summary.mean_abs_approx_error);
  out += "}";
  return out;
}

std::string RunReportJson(const RunReport& report) {
  std::string out;
  out.reserve(4096 + report.windows.size() * 96);
  out += "{\"scheme\":\"";
  out += report.scheme;
  out += "\",\"events_processed\":";
  AppendU64(&out, report.events_processed);
  out += ",\"windows_emitted\":";
  AppendU64(&out, report.windows_emitted);
  out += ",\"correction_steps\":";
  AppendU64(&out, report.correction_steps);
  out += ",\"wall_seconds\":";
  AppendDouble(&out, report.wall_seconds);
  out += ",\"throughput_eps\":";
  AppendDouble(&out, report.throughput_eps);
  out += ",\"delivery_hash\":";
  AppendU64(&out, report.delivery_hash);

  out += ",\"latency\":{\"count\":";
  AppendU64(&out, report.latency.count());
  out += ",\"mean\":";
  AppendDouble(&out, report.latency.mean());
  out += ",\"min\":";
  AppendI64(&out, report.latency.min());
  out += ",\"max\":";
  AppendI64(&out, report.latency.max());
  out += ",\"p99\":";
  AppendI64(&out, report.latency.Percentile(0.99));
  out += "}";

  out += ",\"network\":{\"total_messages\":";
  AppendU64(&out, report.network.total_messages);
  out += ",\"total_bytes\":";
  AppendU64(&out, report.network.total_bytes);
  out += ",\"total_dropped\":";
  AppendU64(&out, report.network.total_dropped);
  out += ",\"per_node\":[";
  for (size_t i = 0; i < report.network.per_node.size(); ++i) {
    const NodeTrafficStats& node = report.network.per_node[i];
    if (i > 0) out += ",";
    out += "{\"messages_sent\":";
    AppendU64(&out, node.messages_sent);
    out += ",\"bytes_sent\":";
    AppendU64(&out, node.bytes_sent);
    out += ",\"messages_received\":";
    AppendU64(&out, node.messages_received);
    out += ",\"bytes_received\":";
    AppendU64(&out, node.bytes_received);
    out += ",\"queue_depth_high_water\":";
    AppendU64(&out, node.queue_depth_high_water);
    out += "}";
  }
  out += "]}";

  out += ",\"membership\":[";
  for (size_t i = 0; i < report.membership.size(); ++i) {
    const MembershipEvent& event = report.membership[i];
    if (i > 0) out += ",";
    out += "{\"node\":";
    AppendU64(&out, event.node);
    out += ",\"rejoined\":";
    out += event.rejoined ? "true" : "false";
    out += ",\"offset_nanos\":";
    AppendI64(&out, event.at_nanos - report.start_wall_nanos);
    out += "}";
  }
  out += "]";

  out += ",\"windows\":[";
  for (size_t i = 0; i < report.windows.size(); ++i) {
    const GlobalWindowRecord& w = report.windows[i];
    if (i > 0) out += ",";
    out += "{\"index\":";
    AppendU64(&out, w.window_index);
    out += ",\"value\":";
    AppendDouble(&out, w.value);
    out += ",\"event_count\":";
    AppendU64(&out, w.event_count);
    out += ",\"end_ts\":";
    AppendI64(&out, w.end_ts);
    out += ",\"mean_latency_nanos\":";
    AppendDouble(&out, w.mean_latency_nanos);
    out += ",\"corrected\":";
    out += w.corrected ? "true" : "false";
    out += "}";
  }
  out += "]";

  out += ",\"consumption\":[";
  for (size_t w = 0; w < report.consumption.num_windows(); ++w) {
    if (w > 0) out += ",";
    out += "[";
    const std::vector<uint64_t>& counts = report.consumption.window(w);
    for (size_t n = 0; n < counts.size(); ++n) {
      if (n > 0) out += ",";
      AppendU64(&out, counts[n]);
    }
    out += "]";
  }
  out += "]";

  // Additive since schema v3; {"enabled":false,...} with empty threads in
  // unprofiled runs, so v2 consumers that ignore unknown keys still parse.
  out += ",\"profile\":";
  out += ProfileReportJson(report.profile);

  // Additive since the provenance layer (DESIGN.md §10); disabled-and-zero
  // when no tracker was installed.
  out += ",\"provenance\":";
  out += ProvenanceSummaryJson(report.provenance);

  // Additive since the serving layer (DESIGN.md §11). Per-query summaries
  // only — the primary's windows are already in "windows", and a 64-query
  // run would multiply the document size; full per-query window arrays
  // stay in the report struct for programmatic consumers.
  out += ",\"queries\":[";
  for (size_t i = 0; i < report.query_results.size(); ++i) {
    const QueryRunResult& q = report.query_results[i];
    if (i > 0) out += ",";
    out += "{\"id\":";
    AppendU64(&out, q.query_id);
    out += ",\"tenant\":\"";
    out += q.tenant;
    out += "\",\"spec\":\"";
    out += q.spec;
    out += "\",\"start_pane\":";
    AppendU64(&out, q.start_pane);
    out += ",\"end_pane\":";
    AppendU64(&out, q.end_pane);
    out += ",\"activated\":";
    out += q.activated ? "true" : "false";
    out += ",\"windows\":";
    AppendU64(&out, q.windows.size());
    out += ",\"last_value\":";
    AppendDouble(&out, q.windows.empty() ? 0.0 : q.windows.back().value);
    out += "}";
  }
  out += "]";

  out += ",\"serving\":";
  out += ServingSummaryJson(report.serving);
  out += "}";
  return out;
}

std::string ServingSummaryJson(const ServingSummary& serving) {
  std::string out;
  out += "{\"enabled\":";
  out += serving.enabled ? "true" : "false";
  out += ",\"pane_length\":";
  AppendU64(&out, serving.pane_length);
  out += ",\"queries\":";
  AppendU64(&out, serving.queries);
  out += ",\"slots\":";
  AppendU64(&out, serving.slots);
  out += ",\"total_query_windows\":";
  AppendU64(&out, serving.total_query_windows);
  out += ",\"tenants\":[";
  for (size_t i = 0; i < serving.tenants.size(); ++i) {
    const TenantUsage& t = serving.tenants[i];
    if (i > 0) out += ",";
    out += "{\"tenant\":\"";
    out += t.tenant;
    out += "\",\"bytes\":";
    AppendU64(&out, t.bytes);
    out += ",\"agg_ops\":";
    AppendU64(&out, t.agg_ops);
    out += ",\"cpu_nanos_est\":";
    AppendU64(&out, t.cpu_nanos_est);
    out += ",\"queries\":";
    AppendU64(&out, t.queries);
    out += "}";
  }
  out += "]}";
  return out;
}

double InterpolateTruth(const std::vector<GlobalWindowRecord>& truth,
                        EventTime ts) {
  const auto at_or_after = std::lower_bound(
      truth.begin(), truth.end(), ts,
      [](const GlobalWindowRecord& w, EventTime t) { return w.end_ts < t; });
  if (at_or_after == truth.begin()) return truth.front().value;
  if (at_or_after == truth.end()) return truth.back().value;
  const GlobalWindowRecord& hi = *at_or_after;
  const GlobalWindowRecord& lo = *(at_or_after - 1);
  if (hi.end_ts == lo.end_ts) return hi.value;
  const double frac = static_cast<double>(ts - lo.end_ts) /
                      static_cast<double>(hi.end_ts - lo.end_ts);
  return lo.value + frac * (hi.value - lo.value);
}

TailError TimeAlignedTailError(const RunReport& truth, const RunReport& probe,
                               double tail_fraction) {
  TailError result;
  if (truth.windows.size() < 2 || probe.windows.empty()) return result;
  const size_t first =
      probe.windows.size() -
      std::max<size_t>(1, static_cast<size_t>(
                              static_cast<double>(probe.windows.size()) *
                              tail_fraction));
  const EventTime truth_max = truth.windows.back().end_ts;
  double abs_err_sum = 0.0;
  double abs_truth_sum = 0.0;
  for (size_t i = first; i < probe.windows.size(); ++i) {
    const GlobalWindowRecord& w = probe.windows[i];
    if (w.end_ts > truth_max) continue;  // truth run ended earlier
    const double expected = InterpolateTruth(truth.windows, w.end_ts);
    abs_err_sum += std::fabs(w.value - expected);
    abs_truth_sum += std::fabs(expected);
    ++result.compared;
  }
  if (result.compared > 0 && abs_truth_sum > 0.0) {
    result.relative = abs_err_sum / abs_truth_sum;
  }
  return result;
}

}  // namespace deco
