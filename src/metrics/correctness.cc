#include "metrics/correctness.h"

#include <algorithm>
#include <cassert>

namespace deco {

void ConsumptionLog::AddWindow(const std::vector<uint64_t>& counts) {
  assert(counts.size() == num_nodes_);
  std::vector<uint64_t> cumulative(num_nodes_);
  if (windows_.empty()) {
    cumulative = counts;
  } else {
    const auto& prev = cumulative_.back();
    for (size_t n = 0; n < num_nodes_; ++n) {
      cumulative[n] = prev[n] + counts[n];
    }
  }
  windows_.push_back(counts);
  cumulative_.push_back(std::move(cumulative));
}

uint64_t ConsumptionLog::CumulativeBefore(size_t w, size_t n) const {
  if (w == 0) return 0;
  return cumulative_[w - 1][n];
}

uint64_t ConsumptionLog::TotalEvents() const {
  if (windows_.empty()) return 0;
  uint64_t total = 0;
  for (uint64_t c : cumulative_.back()) total += c;
  return total;
}

CorrectnessReport CompareConsumption(const ConsumptionLog& truth,
                                     const ConsumptionLog& test) {
  CorrectnessReport report;
  assert(truth.num_nodes() == test.num_nodes());
  const size_t windows = std::min(truth.num_windows(), test.num_windows());
  report.windows_compared = windows;
  for (size_t w = 0; w < windows; ++w) {
    for (size_t n = 0; n < truth.num_nodes(); ++n) {
      const uint64_t t_lo = truth.CumulativeBefore(w, n);
      const uint64_t t_hi = t_lo + truth.window(w)[n];
      const uint64_t s_lo = test.CumulativeBefore(w, n);
      const uint64_t s_hi = s_lo + test.window(w)[n];
      report.truth_events += t_hi - t_lo;
      const uint64_t lo = std::max(t_lo, s_lo);
      const uint64_t hi = std::min(t_hi, s_hi);
      if (hi > lo) report.overlapping_events += hi - lo;
    }
  }
  report.correctness =
      report.truth_events == 0
          ? 1.0
          : static_cast<double>(report.overlapping_events) /
                static_cast<double>(report.truth_events);
  return report;
}

}  // namespace deco
