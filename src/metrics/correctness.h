#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file correctness.h
/// \brief Correctness metric of paper §5.2 (Fig. 10d/f): the fraction of
/// events an approach assigns to the same global window as the Central
/// ground truth.
///
/// Every scheme consumes each local node's (locally sorted) stream strictly
/// in order, so the membership of events in global windows is completely
/// described by per-window, per-node consumed counts. Window `w` of a
/// scheme and window `w` of the truth then overlap, for node `n`, in
/// `[max(truth_start, test_start), min(truth_end, test_end))` of node `n`'s
/// cumulative event index — no raw events need to be stored.

namespace deco {

/// \brief Per-window record of how many events each local node contributed.
class ConsumptionLog {
 public:
  /// \param num_nodes number of local nodes (columns)
  explicit ConsumptionLog(size_t num_nodes = 0) : num_nodes_(num_nodes) {}

  /// \brief Appends one global window's consumption vector; `counts` must
  /// have `num_nodes()` entries.
  void AddWindow(const std::vector<uint64_t>& counts);

  size_t num_windows() const { return windows_.size(); }
  size_t num_nodes() const { return num_nodes_; }

  /// \brief Consumption of window `w` (size `num_nodes()`).
  const std::vector<uint64_t>& window(size_t w) const { return windows_[w]; }

  /// \brief Cumulative events of node `n` consumed by windows `[0, w)`.
  uint64_t CumulativeBefore(size_t w, size_t n) const;

  /// \brief Total events across all recorded windows.
  uint64_t TotalEvents() const;

 private:
  size_t num_nodes_;
  std::vector<std::vector<uint64_t>> windows_;
  std::vector<std::vector<uint64_t>> cumulative_;  // prefix sums per window
};

/// \brief Result of comparing a scheme against the ground truth.
struct CorrectnessReport {
  /// Windows compared (the shorter of the two logs).
  uint64_t windows_compared = 0;

  /// Events in the compared ground-truth windows.
  uint64_t truth_events = 0;

  /// Events the scheme placed into the same window as the truth.
  uint64_t overlapping_events = 0;

  /// `overlapping_events / truth_events` in [0, 1]; 1 when both are empty.
  double correctness = 1.0;
};

/// \brief Computes the overlap metric. Both logs must have the same
/// `num_nodes()`.
CorrectnessReport CompareConsumption(const ConsumptionLog& truth,
                                     const ConsumptionLog& test);

}  // namespace deco
