#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file histogram.h
/// \brief Log-bucketed latency histogram (HdrHistogram-style) for
/// percentile reporting without storing samples.

namespace deco {

/// \brief Records non-negative values (nanoseconds, bytes, ...) into
/// logarithmic buckets with bounded relative error, and reports count,
/// mean, min, max and percentiles.
///
/// Not thread-safe; each recording thread keeps its own histogram and the
/// harness merges them.
class Histogram {
 public:
  /// Buckets per power of two; 32 sub-buckets bound the relative error of
  /// percentile estimates at ~3%.
  Histogram();

  /// \brief Records one value (negative values clamp to 0).
  void Record(int64_t value);

  /// \brief Records `count` occurrences of `value`.
  void RecordMany(int64_t value, uint64_t count);

  /// \brief Merges another histogram into this one.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double mean() const;
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }

  /// \brief Value at quantile `q` in [0, 1]; 0 when empty.
  int64_t Percentile(double q) const;

  void Reset();

 private:
  size_t BucketIndex(int64_t value) const;
  int64_t BucketRepresentative(size_t index) const;

  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace deco
