#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "event/event.h"
#include "metrics/correctness.h"
#include "metrics/histogram.h"
#include "net/fabric.h"

/// \file report.h
/// \brief The measurement record one experiment run produces; every
/// benchmark, example and integration test consumes this.

namespace deco {

/// \brief One emitted global window result, as reported by a scheme's root.
struct GlobalWindowRecord {
  uint64_t window_index = 0;
  double value = 0.0;          ///< finalized aggregate
  uint64_t event_count = 0;    ///< always l_global for complete windows
  double mean_latency_nanos = 0.0;  ///< mean event processing-time latency
  bool corrected = false;      ///< window needed a correction step

  /// Event-time of the window's last event (its watermark timestamp).
  /// Chaos benchmarking aligns windows of different runs on this axis:
  /// after a node removal the runs' window *indices* shift (the removed
  /// node's unconsumed events are lost), but event-time still lines up.
  EventTime end_ts = 0;
};

/// \brief One membership change observed by the root: a local node removed
/// after a silence timeout, or re-admitted after a rejoin announcement
/// (paper §4.3.4 + the rejoin extension, DESIGN.md §6).
struct MembershipEvent {
  TimeNanos at_nanos = 0;  ///< root wall-clock when the change was applied
  size_t node = 0;         ///< local node ordinal
  bool rejoined = false;   ///< false = removed (timeout), true = re-admitted
};

/// \brief CPU/wall cost of one message-handler class on one actor thread.
///
/// The profiler attributes the interval from a message's dequeue to the
/// actor's next receive call to that message's `MessageType`; actors that
/// interleave non-message work between receives (the ingest loop of a
/// local node) fold that work into the preceding handler's cost, so the
/// per-type split is exact for purely message-driven actors (the root) and
/// an upper bound elsewhere.
struct HandlerProfile {
  MessageType type = MessageType::kEventBatch;
  uint64_t count = 0;        ///< messages of this type dispatched
  uint64_t cpu_nanos = 0;    ///< thread CPU time spent in the handler
  uint64_t wall_nanos = 0;   ///< wall-clock time spent in the handler
};

/// \brief One actor thread's profile: total CPU, handler split, allocation
/// counters (all zero unless the run enabled the profiler).
struct ThreadProfile {
  std::string name;          ///< fabric node name ("root", "local-0", ...)
  uint64_t cpu_nanos = 0;    ///< CLOCK_THREAD_CPUTIME_ID over the actor body
  uint64_t wall_nanos = 0;   ///< wall-clock duration of the actor body
  uint64_t messages_handled = 0;
  uint64_t allocations = 0;      ///< operator-new calls on this thread
  uint64_t allocated_bytes = 0;  ///< bytes requested by those calls
  /// Per-`MessageType` handler attribution; only types with nonzero counts
  /// appear, in enum order.
  std::vector<HandlerProfile> handlers;
};

/// \brief Whole-run CPU/allocation profile (DESIGN.md §9). Default state is
/// "disabled, empty", so every consumer can read the fields without
/// checking `enabled` first.
struct ProfileReport {
  bool enabled = false;        ///< profiler installed for this run
  bool alloc_counted = false;  ///< counting allocator hook was active
  std::vector<ThreadProfile> threads;  ///< actor threads, registration order

  /// \brief Sum of per-thread CPU across all actor threads.
  uint64_t TotalCpuNanos() const {
    uint64_t total = 0;
    for (const ThreadProfile& t : threads) total += t.cpu_nanos;
    return total;
  }
  /// \brief Sum of per-thread allocation counts.
  uint64_t TotalAllocations() const {
    uint64_t total = 0;
    for (const ThreadProfile& t : threads) total += t.allocations;
    return total;
  }
  /// \brief Sum of per-thread allocated bytes.
  uint64_t TotalAllocatedBytes() const {
    uint64_t total = 0;
    for (const ThreadProfile& t : threads) total += t.allocated_bytes;
    return total;
  }
};

/// \brief Whole-run roll-up of the per-window provenance records
/// (src/obs/provenance.h, DESIGN.md §10). Plain summary POD so the metrics
/// layer stays independent of the observability library; default state is
/// "disabled, all zero", so consumers never need an existence check.
struct ProvenanceSummary {
  bool enabled = false;          ///< a tracker was installed for this run
  uint64_t windows_tracked = 0;  ///< provenance records retained
  uint64_t windows_corrected = 0;
  uint64_t correction_rounds = 0;  ///< solicit rounds across all windows
  uint64_t partials_expected = 0;
  uint64_t partials_received = 0;
  uint64_t partials_missing = 0;   ///< expected - received, summed
  uint64_t partials_duplicate = 0;
  /// Mean staleness (partial arrival minus mean event creation) across all
  /// accepted partials that carried creation metadata, nanoseconds.
  double mean_staleness_nanos = 0.0;

  // Accuracy attribution (zero unless the oracle estimator ran).
  uint64_t windows_estimated = 0;
  double mean_abs_error = 0.0;   ///< mean |emitted - oracle| per window
  double max_abs_error = 0.0;
  double mean_abs_drop_error = 0.0;
  double mean_abs_staleness_error = 0.0;
  double mean_abs_approx_error = 0.0;
};

/// \brief One registered query's results in a multi-query run
/// (serving layer, DESIGN.md §11). The primary query (id 0) duplicates
/// its windows into `RunReport::windows` for legacy consumers.
struct QueryRunResult {
  uint32_t query_id = 0;
  std::string tenant;
  std::string spec;  ///< canonical key=value spec string

  /// Effective activation pane (0 for whole-run queries; for runtime adds,
  /// the pane the root actually activated at — at or after the requested
  /// one, recorded so oracles can replay the run exactly).
  uint64_t start_pane = 0;

  /// Effective retirement pane, exclusive (`UINT64_MAX` = run end).
  uint64_t end_pane = UINT64_MAX;

  /// False only for a scheduled add whose trigger never fired (stream
  /// ended first).
  bool activated = false;

  /// This query's emitted windows, in order.
  std::vector<GlobalWindowRecord> windows;
};

/// \brief Resource usage attributed to one tenant (serving layer
/// accounting; bytes and aggregate ops come from the `serve.tenant.*`
/// counters, CPU is estimated by scaling the profiler's measured local
/// CPU by the tenant's share of aggregate ops).
struct TenantUsage {
  std::string tenant;
  uint64_t bytes = 0;          ///< attributed wire bytes
  uint64_t agg_ops = 0;        ///< attributed aggregate accumulations
  uint64_t cpu_nanos_est = 0;  ///< 0 unless the profiler ran
  uint64_t queries = 0;        ///< registered queries owned by the tenant
};

/// \brief Serving-layer roll-up for one run. Default state is "disabled,
/// empty" (single legacy query, no accounting), so consumers never need an
/// existence check.
struct ServingSummary {
  bool enabled = false;       ///< a query registry was installed
  uint64_t pane_length = 0;   ///< shared protocol pane (gcd across queries)
  uint64_t queries = 0;       ///< registered queries
  uint64_t slots = 0;         ///< distinct aggregate slots
  uint64_t total_query_windows = 0;  ///< windows summed over all queries
  std::vector<TenantUsage> tenants;
};

/// \brief Full measurement record of one run.
struct RunReport {
  std::string scheme;

  /// Root wall-clock at the start of the measured phase; membership event
  /// times are offsets against this.
  TimeNanos start_wall_nanos = 0;

  /// Node removals / re-admissions, in root order.
  std::vector<MembershipEvent> membership;

  /// Events the emitted windows cover.
  uint64_t events_processed = 0;

  /// Wall-clock duration of the measured phase, seconds.
  double wall_seconds = 0.0;

  /// `events_processed / wall_seconds`.
  double throughput_eps = 0.0;

  /// Per-window mean event latency samples, nanoseconds.
  Histogram latency;

  /// Fabric counters at the end of the run.
  NetworkStats network;

  /// Number of emitted global windows.
  uint64_t windows_emitted = 0;

  /// Correction steps executed (Deco schemes; 0 for baselines).
  uint64_t correction_steps = 0;

  /// Final values, in window order (for exact-equality checks vs Central).
  std::vector<GlobalWindowRecord> windows;

  /// Per-window, per-node consumed counts (for the correctness metric).
  ConsumptionLog consumption;

  /// Order-sensitive digest of every fabric delivery (sim mode only;
  /// 0 outside it). Two sim runs delivered the same messages in the same
  /// virtual order iff the hashes match — the determinism regression
  /// test's message-order witness.
  uint64_t delivery_hash = 0;

  /// Per-thread CPU/allocation profile; disabled-and-empty unless the run
  /// enabled the profiler (`ExperimentConfig::profile`, deco_run
  /// `--profile`).
  ProfileReport profile;

  /// Roll-up of the run's per-window provenance records and accuracy
  /// attribution; disabled-and-zero unless provenance collection was on
  /// (`ExperimentConfig::provenance`, deco_run `--provenance_out`).
  ProvenanceSummary provenance;

  /// Per-query results of the multi-query serving layer, registry order.
  /// Entry 0 is the primary query, whose windows also populate `windows`.
  std::vector<QueryRunResult> query_results;

  /// Serving-layer summary + per-tenant accounting (filled by the
  /// harness; disabled-and-empty for direct node runs).
  ServingSummary serving;

  /// \brief Network bytes sent per processed event.
  double BytesPerEvent() const {
    return events_processed == 0
               ? 0.0
               : static_cast<double>(network.total_bytes) /
                     static_cast<double>(events_processed);
  }

  /// \brief One-line human-readable summary.
  std::string Summary() const;
};

/// \brief Canonical JSON rendering of a full report. Deterministic: fixed
/// key order, integers as-is, doubles printed with %.17g (round-trip
/// exact), no timestamps beyond what the report itself carries. In sim
/// mode two runs of the same `(config, seed)` must produce byte-identical
/// output — the determinism regression test diffs these strings.
std::string RunReportJson(const RunReport& report);

/// \brief Canonical JSON rendering of a profile (same determinism rules);
/// the `profile` section of `RunReportJson` and the `cpu_breakdown`
/// section of the bench JSON.
std::string ProfileReportJson(const ProfileReport& profile);

/// \brief Canonical JSON rendering of a provenance summary (same
/// determinism rules); the `provenance` section of `RunReportJson` and the
/// `summary` part of the telemetry document's provenance section.
std::string ProvenanceSummaryJson(const ProvenanceSummary& summary);

/// \brief Canonical JSON rendering of a serving summary (same determinism
/// rules); the `serving` section of `RunReportJson` and of the telemetry
/// document (schema v5).
std::string ServingSummaryJson(const ServingSummary& serving);

/// \brief Result of `TimeAlignedTailError`.
struct TailError {
  double relative = 0.0;  ///< mean |probe - truth| / mean |truth|
  size_t compared = 0;    ///< windows entering the metric
};

/// \brief Linear interpolation of a (fault-free) run's value trajectory at
/// event-time `ts`. `truth` must be non-empty and sorted by `end_ts` (the
/// natural window order).
double InterpolateTruth(const std::vector<GlobalWindowRecord>& truth,
                        EventTime ts);

/// \brief Time-aligned relative error of `probe`'s last `tail_fraction` of
/// windows against the `truth` run's interpolated trajectory. Used by
/// bench/chaos_recovery and the chaos-fuzz test for the <1% post-recovery
/// error invariant: after a crash/restart the two runs' window *indices*
/// diverge, but event time still lines up.
TailError TimeAlignedTailError(const RunReport& truth, const RunReport& probe,
                               double tail_fraction);

}  // namespace deco
