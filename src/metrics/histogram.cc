#include "metrics/histogram.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace deco {

Histogram::Histogram() : buckets_(64 << kSubBucketBits, 0) {}

size_t Histogram::BucketIndex(int64_t value) const {
  const uint64_t v = value <= 0 ? 0 : static_cast<uint64_t>(value);
  if (v < (1u << kSubBucketBits)) return static_cast<size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kSubBucketBits;
  const uint64_t sub = (v >> shift) & ((1u << kSubBucketBits) - 1);
  const size_t index = static_cast<size_t>(
      (static_cast<uint64_t>(msb - kSubBucketBits + 1) << kSubBucketBits) +
      sub);
  return std::min(index, buckets_.size() - 1);
}

int64_t Histogram::BucketRepresentative(size_t index) const {
  if (index < (1u << kSubBucketBits)) return static_cast<int64_t>(index);
  const uint64_t octave = (index >> kSubBucketBits);
  const uint64_t sub = index & ((1u << kSubBucketBits) - 1);
  const int shift = static_cast<int>(octave) - 1;
  const uint64_t base = (1ULL << (shift + kSubBucketBits));
  const uint64_t lo = base + (sub << shift);
  const uint64_t width = 1ULL << shift;
  return static_cast<int64_t>(lo + width / 2);
}

void Histogram::Record(int64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(int64_t value, uint64_t count) {
  if (count == 0) return;
  if (value < 0) value = 0;
  buckets_[BucketIndex(value)] += count;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(
      q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      return std::clamp<int64_t>(BucketRepresentative(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

}  // namespace deco
