#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "node/query.h"

/// \file registry.h
/// \brief Query registry of the multi-query serving layer (DESIGN.md §11).
///
/// A run serves a *set* of window queries over the same streams. The
/// registry assigns each admitted query a stable id, a tenant tag, an
/// *aggregate slot* (distinct (aggregate kind, quantile) pairs — queries
/// sharing an aggregate share its slot, and therefore its per-pane
/// partial on the wire), and a lifecycle interval in protocol panes.
///
/// The registry is built once before the run, validated by admission
/// control, and then shared read-only by the harness, the root and the
/// locals. Runtime add/remove is *declarative*: a query scheduled with
/// `add_pane`/`remove_pane` is known to the registry up front, but locals
/// only learn of it when the root broadcasts `kQueryAdd`/`kQueryRemove`
/// at the effective pane the root picks — the execution path exercises the
/// real runtime protocol, the registry just makes the run reproducible.

namespace deco {

/// \brief Sentinel pane index meaning "never" (query active to run end).
inline constexpr uint64_t kServePaneNever = UINT64_MAX;

/// \brief One distinct aggregate computed per pane. Slot 0 is the primary
/// query's aggregate and is always active for the whole run.
struct SlotSpec {
  AggregateKind kind = AggregateKind::kSum;
  double quantile_q = 0.5;
};

/// \brief One registered query.
struct ServedQuery {
  /// Stable id, assigned by the registry in admission order.
  uint32_t id = 0;

  /// Owning tenant for accounting ("default" when unspecified).
  std::string tenant = "default";

  QueryConfig query;

  /// Aggregate slot shared with every query computing the same aggregate.
  uint16_t slot = 0;

  /// First pane the query is *requested* to be active at (0 = from start).
  /// The root may activate later (its effective pane must clear every
  /// local's planning horizon); actual activation is recorded in the run
  /// report.
  uint64_t add_pane = 0;

  /// First pane the query is requested to no longer apply to
  /// (`kServePaneNever` = active to run end).
  uint64_t remove_pane = kServePaneNever;

  /// Canonical spec string (filled by the registry on admission).
  std::string spec;
};

/// \brief Admission-control budget. Violations are rejected loudly
/// (`ResourceExhausted`) at registration time, never degraded at runtime.
struct ServeAdmission {
  /// Maximum registered queries (including the primary).
  size_t max_queries = 64;

  /// Maximum *estimated* extra wire bytes per stream event the non-primary
  /// aggregate slots may cost (0 = unlimited). The estimate is the
  /// steady-state slice overhead: one encoded slot partial per pane per
  /// local, divided by the pane's event count.
  double max_extra_bytes_per_event = 0.0;

  /// Local node count used by the bytes/event estimate (the harness fills
  /// it from the experiment config; 1 when unknown).
  size_t num_locals = 1;
};

/// \brief Immutable-after-build set of served queries.
class QueryRegistry {
 public:
  QueryRegistry() = default;
  explicit QueryRegistry(ServeAdmission admission)
      : admission_(admission) {}

  /// \brief Admits one query: validates it, assigns id + slot + canonical
  /// spec, and enforces the admission budget. The first admitted query is
  /// the *primary* (slot 0, must be active from pane 0 to run end).
  Status Add(ServedQuery q);

  const std::vector<ServedQuery>& queries() const { return queries_; }
  const std::vector<SlotSpec>& slots() const { return slots_; }
  const ServeAdmission& admission() const { return admission_; }

  /// \brief Distinct tenant names, admission order.
  const std::vector<std::string>& tenants() const { return tenants_; }

  /// \brief Shared protocol pane length: gcd over `ProtocolWindowLength`
  /// of every registered query. 0 when empty.
  uint64_t PaneLength() const;

  /// \brief True when any query has a scheduled runtime add or remove.
  bool HasRuntimeSchedule() const;

  /// \brief True when the layer is doing more than the legacy single
  /// always-on query.
  bool MultiQuery() const {
    return queries_.size() > 1 || HasRuntimeSchedule();
  }

  /// \brief Estimated steady-state extra wire bytes per stream event from
  /// the non-primary slots (the quantity `max_extra_bytes_per_event`
  /// bounds).
  double ExtraBytesPerEvent() const;

  /// \brief Per-slot encoded size of one slice extra (slot > 0 only;
  /// returns 0 for slot 0, which rides in the base summary).
  size_t SlotWireBytes(uint16_t slot) const;

 private:
  ServeAdmission admission_;
  std::vector<ServedQuery> queries_;
  std::vector<SlotSpec> slots_;
  std::vector<std::string> tenants_;
};

/// \brief Parses one query spec. Two grammars:
///   - positional: `agg:window[:slide]`, e.g. `sum:100000` or
///     `avg:100000:50000`;
///   - key=value list: `tenant=acme,agg=quantile,window=100000,q=0.9,
///     add=4,rm=12` (keys: tenant, agg, window, slide, q, add, rm).
/// `add`/`rm` are pane indices of the requested runtime schedule.
Result<ServedQuery> ParseQuerySpec(const std::string& spec);

/// \brief Parses a `;`-separated list of query specs (`--queries=`).
Result<std::vector<ServedQuery>> ParseQueryList(const std::string& list);

/// \brief Canonical key=value rendering of a served query.
std::string CanonicalQuerySpec(const ServedQuery& q);

}  // namespace deco
