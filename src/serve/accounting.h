#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "node/protocol.h"
#include "obs/metric_registry.h"
#include "serve/registry.h"

/// \file accounting.h
/// \brief Per-tenant byte/CPU attribution for the serving layer
/// (DESIGN.md §11), reported through the existing metric registry.
///
/// Counters (global metric registry, so they show up in telemetry samples
/// like every other counter; the harness diffs a before/after snapshot to
/// isolate one run):
///   - `serve.tenant.<name>.bytes`  — wire bytes attributed to the tenant:
///     its even share of the shared slice payload plus its share of the
///     slot extras its queries requested;
///   - `serve.tenant.<name>.agg_ops` — aggregate accumulations performed
///     on the tenant's behalf (slice events × its active slots, shared
///     slots split evenly), the CPU proxy the harness scales by the
///     profiler's measured local CPU.
///
/// Attribution uses the registry's *requested* activation panes; the
/// root's effective panes lag by its planning horizon, so tenant shares
/// around an add/remove boundary are an approximation (documented in
/// DESIGN.md §11).

namespace deco {

class ServeAccounting {
 public:
  /// \brief Hoists one counter pair per registry tenant.
  Status Init(const QueryRegistry* registry);

  /// \brief Attributes one produced slice at `pane`: `base_bytes` is the
  /// slice payload without the extras (shared work, split evenly across
  /// tenants with any active query); each extra's wire bytes go to the
  /// tenants whose active queries share its slot; `slice_events`
  /// accumulations are charged per active slot the same way.
  void OnSlice(uint64_t pane, uint64_t base_bytes, uint64_t slice_events,
               const std::vector<SlotPartial>& extras);

 private:
  struct TenantCounters {
    Counter* bytes = nullptr;
    Counter* agg_ops = nullptr;
  };

  /// Tenant indices (registry tenant order) with an active query at
  /// `pane`, optionally restricted to queries on `slot`.
  void ActiveTenants(uint64_t pane, int slot,
                     std::vector<size_t>* out) const;

  static void SplitEvenly(uint64_t amount, const std::vector<size_t>& among,
                          std::vector<uint64_t>* shares);

  const QueryRegistry* registry_ = nullptr;
  std::vector<TenantCounters> tenants_;
  std::vector<size_t> query_tenant_;  ///< query index → tenant index
  std::vector<size_t> scratch_;
  std::vector<uint64_t> shares_;
};

}  // namespace deco
