#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "agg/aggregate.h"
#include "event/event.h"
#include "serve/registry.h"

/// \file composer.h
/// \brief Root-side per-query window composition from shared pane
/// partials (DESIGN.md §11).
///
/// The decentralized protocol runs on *panes* of
/// `QueryRegistry::PaneLength()` events. Each registered query re-composes
/// its windows from consecutive panes of its aggregate slot: a query with
/// window length L and slide S consumes L/pane panes per window and
/// advances by S/pane panes (tumbling: S = L). This generalizes the
/// sliding-window pane composition the root previously special-cased for
/// the single query.

namespace deco {

/// \brief One fully composed query window.
struct ComposedWindow {
  double value = 0.0;
  uint64_t event_count = 0;
  /// Weighted mean event-creation wall time across the composed panes
  /// (latency side-channel), with its weight.
  double create_mean = 0.0;
  uint64_t create_count = 0;
  bool corrected = false;  ///< any composed pane needed a correction
  EventTime end_ts = 0;    ///< last pane's final event timestamp
  uint64_t first_pane = 0;
  uint64_t last_pane = 0;  ///< inclusive
};

/// \brief Streams panes of one slot into one query's windows.
class QueryComposer {
 public:
  /// \pre the query's `ProtocolWindowLength` is a multiple of
  /// `pane_length` (guaranteed by the registry's gcd construction).
  QueryComposer(const ServedQuery& query, const AggregateFunction* func,
                uint64_t pane_length);

  /// \brief First pane this query consumes (the root's effective
  /// activation pane; defaults to the registry's `add_pane`).
  void set_start_pane(uint64_t pane) { start_pane_ = pane; }
  uint64_t start_pane() const { return start_pane_; }

  /// \brief Stops consumption at `end_pane` (exclusive): a window needing
  /// panes at or beyond it is never emitted.
  void Close(uint64_t end_pane) { end_pane_ = end_pane; }
  uint64_t end_pane() const { return end_pane_; }

  /// \brief Feeds the next pane (panes arrive in strictly increasing
  /// order); returns a window when this pane completes one.
  std::optional<ComposedWindow> AddPane(uint64_t pane_index,
                                        const Partial& partial,
                                        double create_mean,
                                        uint64_t create_count, bool corrected,
                                        EventTime end_ts);

  const ServedQuery& query() const { return query_; }
  uint64_t windows_emitted() const { return windows_emitted_; }

 private:
  struct Pane {
    Partial partial;
    uint64_t event_count = 0;
    double create_mean = 0.0;
    uint64_t create_count = 0;
    bool corrected = false;
    EventTime end_ts = 0;
    uint64_t index = 0;
  };

  ServedQuery query_;
  const AggregateFunction* func_;  ///< not owned (root's slot bank)
  uint64_t panes_per_window_;
  uint64_t panes_per_slide_;
  uint64_t pane_length_;
  uint64_t start_pane_ = 0;
  uint64_t end_pane_ = kServePaneNever;  ///< exclusive
  uint64_t panes_seen_ = 0;              ///< consumed since `start_pane_`
  uint64_t windows_emitted_ = 0;
  std::deque<Pane> panes_;
};

}  // namespace deco
