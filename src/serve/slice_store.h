#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "agg/aggregate.h"
#include "common/result.h"
#include "event/serde.h"
#include "node/protocol.h"
#include "serve/registry.h"

/// \file slice_store.h
/// \brief Shared per-pane aggregate computation for the multi-query
/// serving layer (DESIGN.md §11).
///
/// Every registered query is served from the *same* pass over each local
/// stream: a pane (protocol window of `QueryRegistry::PaneLength()`
/// events) is aggregated once per active slot, the primary slot rides in
/// `SliceSummary::partial` exactly as before, and the other slots travel
/// as tagged `SliceSummary::extras`. The root re-composes each query's
/// windows from consecutive pane partials of its slot.
///
/// Three pieces live here:
///   - `SlotSchedule`: which slots are active at which panes (half-open
///     activation intervals, updated by runtime add/remove);
///   - `SliceStore` (local side): accumulates one pane into every active
///     slot in a single pass;
///   - `SlotBank` (root side): the slot aggregate functions plus the
///     schedule the assembler consults when merging slices and raws.

namespace deco {

/// \brief Half-open pane intervals per slot. Slot 0 is always active.
class SlotSchedule {
 public:
  /// \brief Sizes the table; slot 0 gets an open interval from pane 0.
  void Reset(size_t num_slots);

  /// \brief Opens an activation interval `[from_pane, ...)` for `slot`.
  /// Idempotent: re-activating an already-open slot keeps the earlier
  /// start.
  void Activate(uint16_t slot, uint64_t from_pane);

  /// \brief Closes the open interval of `slot` at `until_pane`
  /// (exclusive). No-op when the slot has no open interval.
  void Retire(uint16_t slot, uint64_t until_pane);

  bool ActiveAt(uint16_t slot, uint64_t pane) const;

  size_t num_slots() const { return intervals_.size(); }

  /// \brief Replaces this schedule with `other` (registry snapshot
  /// re-sync after corrections / rejoin).
  void CopyFrom(const SlotSchedule& other) { intervals_ = other.intervals_; }

  void Encode(BinaryWriter* writer) const;
  static Result<SlotSchedule> Decode(BinaryReader* reader);

 private:
  struct Interval {
    uint64_t from = 0;
    uint64_t until = kServePaneNever;  ///< exclusive
  };
  std::vector<std::vector<Interval>> intervals_;
};

/// \brief `kQueryConfig` re-sync payload: the root's authoritative pane
/// length + slot schedule, broadcast at startup, on correction rollback
/// and on rejoin so a lost `kQueryAdd`/`kQueryRemove` cannot wedge a
/// local on a stale slot set.
struct ServeSnapshot {
  uint64_t pane_length = 0;
  SlotSchedule schedule;
};

void EncodeServeSnapshot(const ServeSnapshot& snapshot, BinaryWriter* writer);
Result<ServeSnapshot> DecodeServeSnapshot(BinaryReader* reader);

/// \brief Root-side slot table: one aggregate function per slot plus the
/// activation schedule (the root's view — effective panes it actually
/// broadcast, not the registry's requested panes).
class SlotBank {
 public:
  /// \brief Builds functions for every slot; activates the slots of
  /// queries already active at pane 0.
  Status Init(const QueryRegistry* registry);

  size_t size() const { return funcs_.size(); }
  const AggregateFunction* func(uint16_t slot) const {
    return funcs_[slot].get();
  }
  SlotSchedule* schedule() { return &schedule_; }
  const SlotSchedule& schedule() const { return schedule_; }
  bool ActiveAt(uint16_t slot, uint64_t pane) const {
    return schedule_.ActiveAt(slot, pane);
  }

 private:
  std::vector<std::unique_ptr<AggregateFunction>> funcs_;
  SlotSchedule schedule_;
};

/// \brief Local-side shared slice computation: one pass over the pane's
/// events feeds every active slot.
class SliceStore {
 public:
  /// \brief Builds slot functions from the registry; initially activates
  /// only the slots of queries active from pane 0 — scheduled queries
  /// arrive later via `kQueryAdd`.
  Status Init(const QueryRegistry* registry);

  /// \brief Starts accumulation for `pane`: resolves the active slot set
  /// and resets their partials.
  void BeginPane(uint64_t pane);

  /// \brief Folds one event value into every active slot.
  void Accumulate(double value);

  /// \brief Slot 0's partial for the current pane.
  const Partial& primary() const { return partials_[0]; }

  /// \brief Tagged partials of the active slots beyond 0, ascending slot
  /// order.
  std::vector<SlotPartial> TakeExtras();

  /// \brief Applies a runtime add/remove broadcast from the root.
  void ApplyUpdate(const QueryUpdate& update);

  /// \brief Applies an authoritative schedule re-sync.
  void ApplySnapshot(const ServeSnapshot& snapshot);

  /// \brief Aggregate accumulations performed (events × active slots);
  /// the serving layer's CPU proxy for accounting.
  uint64_t agg_ops() const { return agg_ops_; }

  size_t num_slots() const { return funcs_.size(); }
  bool ActiveAt(uint16_t slot, uint64_t pane) const {
    return schedule_.ActiveAt(slot, pane);
  }

 private:
  std::vector<std::unique_ptr<AggregateFunction>> funcs_;
  SlotSchedule schedule_;
  std::vector<Partial> partials_;
  std::vector<uint16_t> active_;  ///< active slots of the current pane
  uint64_t agg_ops_ = 0;
};

}  // namespace deco
