#include "serve/accounting.h"

#include <algorithm>

namespace deco {

Status ServeAccounting::Init(const QueryRegistry* registry) {
  if (registry == nullptr || registry->queries().empty()) {
    return Status::InvalidArgument("serve accounting needs a registry");
  }
  registry_ = registry;
  tenants_.clear();
  for (const std::string& tenant : registry->tenants()) {
    TenantCounters counters;
    counters.bytes = MetricRegistry::Global()->counter(
        "serve.tenant." + tenant + ".bytes");
    counters.agg_ops = MetricRegistry::Global()->counter(
        "serve.tenant." + tenant + ".agg_ops");
    tenants_.push_back(counters);
  }
  query_tenant_.clear();
  for (const ServedQuery& q : registry->queries()) {
    const auto& names = registry->tenants();
    const auto it = std::find(names.begin(), names.end(), q.tenant);
    query_tenant_.push_back(
        static_cast<size_t>(std::distance(names.begin(), it)));
  }
  return Status::OK();
}

void ServeAccounting::ActiveTenants(uint64_t pane, int slot,
                                    std::vector<size_t>* out) const {
  out->clear();
  const std::vector<ServedQuery>& queries = registry_->queries();
  for (size_t i = 0; i < queries.size(); ++i) {
    const ServedQuery& q = queries[i];
    if (pane < q.add_pane || pane >= q.remove_pane) continue;
    if (slot >= 0 && q.slot != static_cast<uint16_t>(slot)) continue;
    if (std::find(out->begin(), out->end(), query_tenant_[i]) == out->end()) {
      out->push_back(query_tenant_[i]);
    }
  }
}

void ServeAccounting::SplitEvenly(uint64_t amount,
                                  const std::vector<size_t>& among,
                                  std::vector<uint64_t>* shares) {
  shares->assign(among.size(), 0);
  if (among.empty() || amount == 0) return;
  const uint64_t each = amount / among.size();
  uint64_t remainder = amount % among.size();
  for (size_t i = 0; i < among.size(); ++i) {
    (*shares)[i] = each + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
  }
}

void ServeAccounting::OnSlice(uint64_t pane, uint64_t base_bytes,
                              uint64_t slice_events,
                              const std::vector<SlotPartial>& extras) {
  // Shared slice payload: split across every tenant active at the pane.
  ActiveTenants(pane, /*slot=*/-1, &scratch_);
  SplitEvenly(base_bytes, scratch_, &shares_);
  for (size_t i = 0; i < scratch_.size(); ++i) {
    tenants_[scratch_[i]].bytes->Add(static_cast<int64_t>(shares_[i]));
  }

  // Slot 0's accumulations go to the tenants of active slot-0 queries.
  ActiveTenants(pane, /*slot=*/0, &scratch_);
  SplitEvenly(slice_events, scratch_, &shares_);
  for (size_t i = 0; i < scratch_.size(); ++i) {
    tenants_[scratch_[i]].agg_ops->Add(static_cast<int64_t>(shares_[i]));
  }

  // Extras: both their wire bytes and their accumulations belong to the
  // tenants sharing the slot.
  for (const SlotPartial& extra : extras) {
    ActiveTenants(pane, static_cast<int>(extra.slot), &scratch_);
    SplitEvenly(SlotPartialWireSize(extra), scratch_, &shares_);
    for (size_t i = 0; i < scratch_.size(); ++i) {
      tenants_[scratch_[i]].bytes->Add(static_cast<int64_t>(shares_[i]));
    }
    SplitEvenly(slice_events, scratch_, &shares_);
    for (size_t i = 0; i < scratch_.size(); ++i) {
      tenants_[scratch_[i]].agg_ops->Add(static_cast<int64_t>(shares_[i]));
    }
  }
}

}  // namespace deco
