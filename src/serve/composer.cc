#include "serve/composer.h"

namespace deco {

QueryComposer::QueryComposer(const ServedQuery& query,
                             const AggregateFunction* func,
                             uint64_t pane_length)
    : query_(query), func_(func), pane_length_(pane_length) {
  panes_per_window_ = query.query.window.length / pane_length;
  panes_per_slide_ = query.query.window.type == WindowType::kSliding
                         ? query.query.window.slide / pane_length
                         : panes_per_window_;
  start_pane_ = query.add_pane;
  if (query.remove_pane != kServePaneNever) end_pane_ = query.remove_pane;
}

std::optional<ComposedWindow> QueryComposer::AddPane(
    uint64_t pane_index, const Partial& partial, double create_mean,
    uint64_t create_count, bool corrected, EventTime end_ts) {
  if (pane_index < start_pane_ || pane_index >= end_pane_) return std::nullopt;

  Pane pane;
  pane.partial = partial;
  pane.event_count = pane_length_;
  pane.create_mean = create_mean;
  pane.create_count = create_count;
  pane.corrected = corrected;
  pane.end_ts = end_ts;
  pane.index = pane_index;
  panes_.push_back(std::move(pane));
  ++panes_seen_;

  const bool closes =
      panes_seen_ >= panes_per_window_ &&
      (panes_seen_ - panes_per_window_) % panes_per_slide_ == 0;
  if (!closes) return std::nullopt;

  ComposedWindow out;
  Partial merged = func_->CreatePartial();
  for (const Pane& p : panes_) {
    Status st = func_->Merge(&merged, p.partial);
    (void)st;  // same-kind merges cannot fail
    out.event_count += p.event_count;
    if (p.create_count > 0) {
      const uint64_t total = out.create_count + p.create_count;
      out.create_mean =
          (out.create_mean * static_cast<double>(out.create_count) +
           p.create_mean * static_cast<double>(p.create_count)) /
          static_cast<double>(total);
      out.create_count = total;
    }
    out.corrected = out.corrected || p.corrected;
  }
  out.value = func_->Finalize(merged);
  out.end_ts = panes_.back().end_ts;
  out.first_pane = panes_.front().index;
  out.last_pane = panes_.back().index;
  for (uint64_t i = 0; i < panes_per_slide_ && !panes_.empty(); ++i) {
    panes_.pop_front();
  }
  ++windows_emitted_;
  return out;
}

}  // namespace deco
