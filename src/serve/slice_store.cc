#include "serve/slice_store.h"

#include <algorithm>

namespace deco {

void SlotSchedule::Reset(size_t num_slots) {
  intervals_.assign(num_slots, {});
  if (!intervals_.empty()) {
    intervals_[0].push_back(Interval{0, kServePaneNever});
  }
}

void SlotSchedule::Activate(uint16_t slot, uint64_t from_pane) {
  if (slot >= intervals_.size()) intervals_.resize(slot + 1);
  std::vector<Interval>& slots = intervals_[slot];
  if (!slots.empty() && slots.back().until == kServePaneNever) {
    return;  // already open; keep the earlier start
  }
  slots.push_back(Interval{from_pane, kServePaneNever});
}

void SlotSchedule::Retire(uint16_t slot, uint64_t until_pane) {
  if (slot >= intervals_.size()) return;
  std::vector<Interval>& slots = intervals_[slot];
  if (slots.empty() || slots.back().until != kServePaneNever) return;
  if (until_pane <= slots.back().from) {
    slots.pop_back();
    return;
  }
  slots.back().until = until_pane;
}

bool SlotSchedule::ActiveAt(uint16_t slot, uint64_t pane) const {
  if (slot >= intervals_.size()) return false;
  for (const Interval& interval : intervals_[slot]) {
    if (pane >= interval.from && pane < interval.until) return true;
  }
  return false;
}

void SlotSchedule::Encode(BinaryWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(intervals_.size()));
  for (const std::vector<Interval>& slots : intervals_) {
    writer->PutU32(static_cast<uint32_t>(slots.size()));
    for (const Interval& interval : slots) {
      writer->PutU64(interval.from);
      writer->PutU64(interval.until);
    }
  }
}

Result<SlotSchedule> SlotSchedule::Decode(BinaryReader* reader) {
  SlotSchedule schedule;
  DECO_ASSIGN_OR_RETURN(uint32_t num_slots, reader->GetU32());
  schedule.intervals_.resize(num_slots);
  for (uint32_t s = 0; s < num_slots; ++s) {
    DECO_ASSIGN_OR_RETURN(uint32_t count, reader->GetU32());
    schedule.intervals_[s].reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      Interval interval;
      DECO_ASSIGN_OR_RETURN(interval.from, reader->GetU64());
      DECO_ASSIGN_OR_RETURN(interval.until, reader->GetU64());
      schedule.intervals_[s].push_back(interval);
    }
  }
  return schedule;
}

void EncodeServeSnapshot(const ServeSnapshot& snapshot,
                         BinaryWriter* writer) {
  writer->PutU64(snapshot.pane_length);
  snapshot.schedule.Encode(writer);
}

Result<ServeSnapshot> DecodeServeSnapshot(BinaryReader* reader) {
  ServeSnapshot snapshot;
  DECO_ASSIGN_OR_RETURN(snapshot.pane_length, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(snapshot.schedule, SlotSchedule::Decode(reader));
  return snapshot;
}

namespace {

Status BuildSlotFuncs(const QueryRegistry* registry,
                      std::vector<std::unique_ptr<AggregateFunction>>* out) {
  out->clear();
  for (const SlotSpec& spec : registry->slots()) {
    DECO_ASSIGN_OR_RETURN(std::unique_ptr<AggregateFunction> func,
                          MakeAggregate(spec.kind, spec.quantile_q));
    out->push_back(std::move(func));
  }
  if (out->empty()) {
    return Status::InvalidArgument("serve registry has no queries");
  }
  return Status::OK();
}

// Activation intervals for the slots of queries active from pane 0. The
// scheduled queries stay inactive until the runtime protocol announces
// their root-chosen effective pane.
void SeedSchedule(const QueryRegistry* registry, SlotSchedule* schedule) {
  schedule->Reset(registry->slots().size());
  for (const ServedQuery& q : registry->queries()) {
    if (q.add_pane != 0) continue;
    schedule->Activate(q.slot, 0);
  }
}

}  // namespace

Status SlotBank::Init(const QueryRegistry* registry) {
  DECO_RETURN_NOT_OK(BuildSlotFuncs(registry, &funcs_));
  SeedSchedule(registry, &schedule_);
  return Status::OK();
}

Status SliceStore::Init(const QueryRegistry* registry) {
  DECO_RETURN_NOT_OK(BuildSlotFuncs(registry, &funcs_));
  SeedSchedule(registry, &schedule_);
  partials_.resize(funcs_.size());
  return Status::OK();
}

void SliceStore::BeginPane(uint64_t pane) {
  active_.clear();
  for (size_t s = 0; s < funcs_.size(); ++s) {
    const uint16_t slot = static_cast<uint16_t>(s);
    if (!schedule_.ActiveAt(slot, pane)) continue;
    active_.push_back(slot);
    partials_[slot] = funcs_[slot]->CreatePartial();
  }
}

void SliceStore::Accumulate(double value) {
  for (uint16_t slot : active_) {
    funcs_[slot]->Accumulate(&partials_[slot], value);
  }
  agg_ops_ += active_.size();
}

std::vector<SlotPartial> SliceStore::TakeExtras() {
  std::vector<SlotPartial> extras;
  for (uint16_t slot : active_) {
    if (slot == 0) continue;
    SlotPartial extra;
    extra.slot = slot;
    extra.partial = partials_[slot];
    extras.push_back(std::move(extra));
  }
  return extras;
}

void SliceStore::ApplyUpdate(const QueryUpdate& update) {
  if (update.add) {
    schedule_.Activate(update.slot, update.effective_pane);
  } else if (update.slot_retired) {
    schedule_.Retire(update.slot, update.effective_pane);
  }
  // A remove that does not retire the slot changes nothing on the local:
  // some other query still needs the slot's partials.
}

void SliceStore::ApplySnapshot(const ServeSnapshot& snapshot) {
  schedule_.CopyFrom(snapshot.schedule);
  if (schedule_.num_slots() > partials_.size()) {
    partials_.resize(schedule_.num_slots());
  }
}

}  // namespace deco
