#include "serve/registry.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <numeric>

#include "agg/aggregate.h"
#include "event/serde.h"
#include "node/protocol.h"

namespace deco {

namespace {

bool SameSlot(const SlotSpec& slot, AggregateKind kind, double quantile_q) {
  if (slot.kind != kind) return false;
  if (kind != AggregateKind::kQuantile) return true;
  return slot.quantile_q == quantile_q;
}

}  // namespace

Status QueryRegistry::Add(ServedQuery q) {
  DECO_RETURN_NOT_OK(q.query.Validate());
  if (q.tenant.empty()) q.tenant = "default";
  if (q.remove_pane <= q.add_pane) {
    return Status::InvalidArgument(
        "query remove pane " + std::to_string(q.remove_pane) +
        " must be after its add pane " + std::to_string(q.add_pane));
  }
  if (queries_.empty()) {
    // The primary query anchors the run: the report's legacy window list,
    // rate bootstrap and EOS handling all key off it.
    if (q.add_pane != 0 || q.remove_pane != kServePaneNever) {
      return Status::InvalidArgument(
          "the primary (first) query must be active for the whole run; "
          "schedule add/remove on a later query instead");
    }
  }
  if (queries_.size() >= admission_.max_queries) {
    return Status::ResourceExhausted(
        "query admission rejected: registry already serves " +
        std::to_string(queries_.size()) + " queries, max_queries=" +
        std::to_string(admission_.max_queries) +
        " (raise --max_queries to admit more)");
  }

  q.id = static_cast<uint32_t>(queries_.size());

  // Slot assignment: share with an existing identical aggregate.
  uint16_t slot = 0;
  for (; slot < slots_.size(); ++slot) {
    if (SameSlot(slots_[slot], q.query.aggregate, q.query.quantile_q)) break;
  }
  if (slot == slots_.size()) {
    slots_.push_back(SlotSpec{q.query.aggregate, q.query.quantile_q});
  }
  q.slot = slot;
  q.spec = CanonicalQuerySpec(q);

  queries_.push_back(std::move(q));
  if (std::find(tenants_.begin(), tenants_.end(), queries_.back().tenant) ==
      tenants_.end()) {
    tenants_.push_back(queries_.back().tenant);
  }

  // Bytes budget: checked after the slot table update so the estimate sees
  // the post-admission steady state. Roll back on violation so a rejected
  // query leaves no trace.
  if (admission_.max_extra_bytes_per_event > 0.0) {
    const double estimate = ExtraBytesPerEvent();
    if (estimate > admission_.max_extra_bytes_per_event) {
      const ServedQuery rejected = queries_.back();
      queries_.pop_back();
      // Recompute the slot and tenant tables from the surviving queries.
      slots_.clear();
      tenants_.clear();
      std::vector<ServedQuery> survivors = std::move(queries_);
      queries_.clear();
      for (ServedQuery& s : survivors) {
        Status st = Add(std::move(s));
        (void)st;  // previously admitted; re-admission cannot fail
      }
      return Status::ResourceExhausted(
          "query admission rejected: adding '" + rejected.spec +
          "' would cost an estimated " + std::to_string(estimate) +
          " extra bytes/event, over the budget of " +
          std::to_string(admission_.max_extra_bytes_per_event) +
          " (raise --query_budget or drop an aggregate slot)");
    }
  }
  return Status::OK();
}

uint64_t QueryRegistry::PaneLength() const {
  uint64_t pane = 0;
  for (const ServedQuery& q : queries_) {
    pane = std::gcd(pane, ProtocolWindowLength(q.query.window));
  }
  return pane;
}

bool QueryRegistry::HasRuntimeSchedule() const {
  for (const ServedQuery& q : queries_) {
    if (q.add_pane != 0 || q.remove_pane != kServePaneNever) return true;
  }
  return false;
}

size_t QueryRegistry::SlotWireBytes(uint16_t slot) const {
  if (slot == 0 || slot >= slots_.size()) return 0;
  const SlotSpec& spec = slots_[slot];
  Result<std::unique_ptr<AggregateFunction>> func =
      MakeAggregate(spec.kind, spec.quantile_q);
  if (!func.ok()) return 0;
  SlotPartial extra;
  extra.slot = slot;
  extra.partial = (*func)->CreatePartial();
  return SlotPartialWireSize(extra);
}

double QueryRegistry::ExtraBytesPerEvent() const {
  const uint64_t pane = PaneLength();
  if (pane == 0) return 0.0;
  size_t extra_bytes_per_pane = 0;
  for (uint16_t slot = 1; slot < slots_.size(); ++slot) {
    extra_bytes_per_pane += SlotWireBytes(slot);
  }
  const size_t locals = std::max<size_t>(1, admission_.num_locals);
  return static_cast<double>(extra_bytes_per_pane * locals) /
         static_cast<double>(pane);
}

namespace {

Result<uint64_t> ParsePaneIndex(const std::string& value,
                                const std::string& key) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad " + key + " value '" + value +
                                   "' in query spec");
  }
  return static_cast<uint64_t>(parsed);
}

Status ApplyKeyValue(ServedQuery* q, uint64_t* slide,
                     const std::string& key, const std::string& value) {
  if (key == "tenant") {
    if (value.empty()) {
      return Status::InvalidArgument("empty tenant in query spec");
    }
    q->tenant = value;
    return Status::OK();
  }
  if (key == "agg") {
    DECO_ASSIGN_OR_RETURN(q->query.aggregate,
                          AggregateKindFromString(value));
    return Status::OK();
  }
  if (key == "window") {
    DECO_ASSIGN_OR_RETURN(uint64_t length, ParsePaneIndex(value, key));
    q->query.window.length = length;
    return Status::OK();
  }
  if (key == "slide") {
    DECO_ASSIGN_OR_RETURN(*slide, ParsePaneIndex(value, key));
    return Status::OK();
  }
  if (key == "q") {
    char* end = nullptr;
    q->query.quantile_q = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad q value '" + value +
                                     "' in query spec");
    }
    return Status::OK();
  }
  if (key == "add") {
    DECO_ASSIGN_OR_RETURN(q->add_pane, ParsePaneIndex(value, key));
    return Status::OK();
  }
  if (key == "rm") {
    DECO_ASSIGN_OR_RETURN(q->remove_pane, ParsePaneIndex(value, key));
    return Status::OK();
  }
  return Status::InvalidArgument("unknown key '" + key + "' in query spec");
}

}  // namespace

Result<ServedQuery> ParseQuerySpec(const std::string& spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("empty query spec");
  }
  ServedQuery q;
  q.query.window = WindowSpec::CountTumbling(1);
  uint64_t slide = 0;
  bool saw_window = false;

  if (spec.find('=') == std::string::npos) {
    // Positional shorthand: agg:window[:slide].
    std::vector<std::string> parts;
    size_t start = 0;
    while (true) {
      const size_t colon = spec.find(':', start);
      parts.push_back(spec.substr(start, colon - start));
      if (colon == std::string::npos) break;
      start = colon + 1;
    }
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument(
          "positional query spec must be agg:window[:slide], got '" + spec +
          "'");
    }
    DECO_ASSIGN_OR_RETURN(q.query.aggregate,
                          AggregateKindFromString(parts[0]));
    DECO_ASSIGN_OR_RETURN(uint64_t length,
                          ParsePaneIndex(parts[1], "window"));
    q.query.window.length = length;
    saw_window = true;
    if (parts.size() == 3) {
      DECO_ASSIGN_OR_RETURN(slide, ParsePaneIndex(parts[2], "slide"));
    }
  } else {
    size_t start = 0;
    while (start <= spec.size()) {
      const size_t comma = spec.find(',', start);
      const std::string item = spec.substr(start, comma - start);
      const size_t eq = item.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("query spec item '" + item +
                                       "' is not key=value");
      }
      DECO_RETURN_NOT_OK(ApplyKeyValue(&q, &slide, item.substr(0, eq),
                                       item.substr(eq + 1)));
      if (item.substr(0, eq) == "window") saw_window = true;
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  if (!saw_window) {
    return Status::InvalidArgument("query spec '" + spec +
                                   "' is missing window=<events>");
  }
  if (slide > 0 && slide != q.query.window.length) {
    q.query.window =
        WindowSpec::CountSliding(q.query.window.length, slide);
  } else {
    q.query.window = WindowSpec::CountTumbling(q.query.window.length);
  }
  DECO_RETURN_NOT_OK(q.query.Validate());
  return q;
}

Result<std::vector<ServedQuery>> ParseQueryList(const std::string& list) {
  std::vector<ServedQuery> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t semi = list.find(';', start);
    const std::string item = list.substr(start, semi - start);
    if (!item.empty()) {
      DECO_ASSIGN_OR_RETURN(ServedQuery q, ParseQuerySpec(item));
      out.push_back(std::move(q));
    }
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  if (out.empty()) {
    return Status::InvalidArgument("query list '" + list +
                                   "' contains no specs");
  }
  return out;
}

std::string CanonicalQuerySpec(const ServedQuery& q) {
  std::string out = "tenant=" + q.tenant +
                    ",agg=" + std::string(AggregateKindToString(
                                  q.query.aggregate)) +
                    ",window=" + std::to_string(q.query.window.length);
  if (q.query.window.type == WindowType::kSliding) {
    out += ",slide=" + std::to_string(q.query.window.slide);
  }
  if (q.query.aggregate == AggregateKind::kQuantile) {
    out += ",q=" + std::to_string(q.query.quantile_q);
  }
  if (q.add_pane != 0) out += ",add=" + std::to_string(q.add_pane);
  if (q.remove_pane != kServePaneNever) {
    out += ",rm=" + std::to_string(q.remove_pane);
  }
  return out;
}

}  // namespace deco
