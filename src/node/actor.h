#pragma once

#include <atomic>
#include <optional>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/status.h"
#include "net/fabric.h"
#include "obs/profiler.h"
#include "obs/trace.h"

/// \file actor.h
/// \brief Thread-per-node actor base class.
///
/// Each node of the decentralized topology (Fig. 1 of the paper) is an
/// `Actor`: a thread with a fabric mailbox. Subclasses implement `Run()`;
/// the runtime starts all actors, lets the streams flow, and joins them.
/// Actors communicate exclusively through the fabric — there is no shared
/// mutable state between nodes, mirroring a real deployment.

namespace deco {

/// \brief Base class for root and local node implementations.
class Actor {
 public:
  /// \param fabric the network; not owned, must outlive the actor
  /// \param id this node's fabric id
  /// \param clock wall-clock used for latency measurement and timeouts
  Actor(NetworkFabric* fabric, NodeId id, Clock* clock)
      : fabric_(fabric), id_(id), clock_(clock) {}

  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  /// \brief Spawns the actor thread. If the fabric runs in sim mode
  /// (`NetworkFabric::sim()` non-null), the thread registers as a sim task:
  /// it executes only when the scheduler grants it the virtual CPU, and all
  /// of its receives and sleeps block in virtual time.
  void Start();

  /// \brief This actor's sim task id (valid after `Start` in sim mode).
  SimTaskId sim_task() const { return sim_task_; }

  /// \brief Waits for `Run` to return.
  void Join();

  /// \brief Cooperative stop: sets the stop flag and closes the mailbox so
  /// a blocked `Receive` wakes up.
  void RequestStop();

  /// \brief First error encountered by `Run`, or OK.
  Status status() const;

  NodeId id() const { return id_; }

 protected:
  /// \brief Actor body; runs on the actor thread. Return value is recorded
  /// as `status()`.
  virtual Status Run() = 0;

  /// \brief Sends a message, filling in the source id.
  Status Send(Message msg) {
    msg.src = id_;
    return fabric_->Send(std::move(msg));
  }

  /// \brief `Send` that survives a chaos crash of this node: on NodeFailed
  /// (the fabric marked this node down) the actor pauses until it is
  /// revived, then resends a copy — the receiver never saw the failed
  /// attempt. Used by the baseline locals, which have no protocol-level
  /// rejoin; returns OK if the run stops while the node is down.
  Status SendRetryingCrash(Message msg);

  /// \brief Blocking receive; empty once the mailbox is closed and drained.
  std::optional<Message> Receive() {
    ProfileReceiveEnter();
    SimScheduler* sim = fabric_->sim();
    std::optional<Message> msg =
        sim != nullptr ? sim->Pop(fabric_->mailbox(id_), TimeNanos{-1})
                       : fabric_->mailbox(id_)->Pop();
    FinishHop(msg);
    ProfileDequeue(msg);
    return msg;
  }

  /// \brief Receive with timeout; empty on timeout or closure. In sim mode
  /// the timeout elapses in virtual time.
  std::optional<Message> ReceiveWithTimeout(TimeNanos timeout_nanos) {
    ProfileReceiveEnter();
    SimScheduler* sim = fabric_->sim();
    std::optional<Message> msg =
        sim != nullptr
            ? sim->Pop(fabric_->mailbox(id_),
                       sim->Now() + timeout_nanos)
            : fabric_->mailbox(id_)->PopWithTimeout(
                  std::chrono::nanoseconds(timeout_nanos));
    FinishHop(msg);
    ProfileDequeue(msg);
    return msg;
  }

  /// \brief Non-blocking receive.
  std::optional<Message> TryReceive() {
    ProfileReceiveEnter();
    std::optional<Message> msg = fabric_->mailbox(id_)->TryPop();
    FinishHop(msg);
    ProfileDequeue(msg);
    return msg;
  }

  /// \brief Completes a stamped message's hop record at dequeue time and
  /// hands it to the installed trace sink. Compiles to nothing with
  /// `DECO_TRACE=OFF`; costs one relaxed load per receive otherwise.
#if DECO_TRACE_ENABLED
  void FinishHop(std::optional<Message>& msg) {
    if (!msg.has_value() || msg->hop.msg_id == 0) return;
    TraceSink* sink = TraceSink::Active();
    const bool record_flight = ActiveFlightRecorder() != nullptr;
    if (sink == nullptr && !record_flight) return;
    msg->hop.dequeue_nanos = clock_->NowNanos();
    if (sink != nullptr) sink->RecordHop(*msg);
    if (record_flight) FlightRecorderHop(*msg);
  }
#else
  void FinishHop(std::optional<Message>&) {}
#endif

  /// \brief Profiler hooks around the receive calls (DESIGN.md §9). The
  /// handler interval opened at dequeue closes on re-entry into the next
  /// receive, so handler cost includes any follow-up work the actor does
  /// between receives. One null check each when no profiler is installed
  /// (`prof_` is only set while one is).
  void ProfileReceiveEnter() {
    if (prof_ != nullptr) prof_->HandlerEnd();
  }
  void ProfileDequeue(const std::optional<Message>& msg) {
    if (prof_ != nullptr && msg.has_value()) prof_->HandlerBegin(msg->type);
  }

  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// \brief Sleeps in virtual time on a sim task, in wall time otherwise.
  /// The polling loops of the crash-retry paths use this so chaos recovery
  /// behaves identically in both modes.
  void SleepNanos(TimeNanos nanos);

  TimeNanos NowNanos() const { return clock_->NowNanos(); }

  NetworkFabric* fabric_;
  NodeId id_;
  Clock* clock_;

  /// This actor thread's profiler slot; null unless a `Profiler` was
  /// installed when the actor started.
  Profiler::ThreadSlot* prof_ = nullptr;

 private:
  std::thread thread_;
  SimTaskId sim_task_ = kInvalidSimTask;
  std::atomic<bool> stop_{false};
  mutable std::mutex status_mu_;
  Status status_;
};

}  // namespace deco
