#include "node/protocol.h"

namespace deco {

void EncodeSliceSummary(const SliceSummary& summary, BinaryWriter* writer) {
  EncodePartial(summary.partial, writer);
  writer->PutU64(summary.event_count);
  writer->PutI64(summary.min_ts);
  writer->PutI64(summary.max_ts);
  writer->PutU32(summary.max_stream_id);
  writer->PutU64(summary.max_event_id);
  writer->PutDouble(summary.event_rate);
  writer->PutU32(static_cast<uint32_t>(summary.extras.size()));
  for (const SlotPartial& extra : summary.extras) {
    writer->PutU32(extra.slot);
    EncodePartial(extra.partial, writer);
  }
}

Result<SliceSummary> DecodeSliceSummary(BinaryReader* reader) {
  SliceSummary summary;
  DECO_ASSIGN_OR_RETURN(summary.partial, DecodePartial(reader));
  DECO_ASSIGN_OR_RETURN(summary.event_count, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(summary.min_ts, reader->GetI64());
  DECO_ASSIGN_OR_RETURN(summary.max_ts, reader->GetI64());
  DECO_ASSIGN_OR_RETURN(summary.max_stream_id, reader->GetU32());
  DECO_ASSIGN_OR_RETURN(summary.max_event_id, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(summary.event_rate, reader->GetDouble());
  DECO_ASSIGN_OR_RETURN(uint32_t num_extras, reader->GetU32());
  summary.extras.reserve(num_extras);
  for (uint32_t i = 0; i < num_extras; ++i) {
    SlotPartial extra;
    DECO_ASSIGN_OR_RETURN(uint32_t slot, reader->GetU32());
    if (slot > UINT16_MAX) {
      return Status::InvalidArgument("slice extra slot id out of range");
    }
    extra.slot = static_cast<uint16_t>(slot);
    DECO_ASSIGN_OR_RETURN(extra.partial, DecodePartial(reader));
    summary.extras.push_back(std::move(extra));
  }
  return summary;
}

size_t SlotPartialWireSize(const SlotPartial& extra) {
  return sizeof(uint32_t) + extra.partial.WireSize();
}

void EncodeQueryUpdate(const QueryUpdate& update, BinaryWriter* writer) {
  writer->PutU32(update.query_id);
  writer->PutU32(update.slot);
  writer->PutU64(update.effective_pane);
  writer->PutU8(update.add ? 1 : 0);
  writer->PutU8(update.slot_retired ? 1 : 0);
  EncodeQueryConfig(update.query, writer);
}

Result<QueryUpdate> DecodeQueryUpdate(BinaryReader* reader) {
  QueryUpdate update;
  DECO_ASSIGN_OR_RETURN(update.query_id, reader->GetU32());
  DECO_ASSIGN_OR_RETURN(uint32_t slot, reader->GetU32());
  if (slot > UINT16_MAX) {
    return Status::InvalidArgument("query update slot id out of range");
  }
  update.slot = static_cast<uint16_t>(slot);
  DECO_ASSIGN_OR_RETURN(update.effective_pane, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(uint8_t add, reader->GetU8());
  update.add = add != 0;
  DECO_ASSIGN_OR_RETURN(uint8_t retired, reader->GetU8());
  update.slot_retired = retired != 0;
  DECO_ASSIGN_OR_RETURN(update.query, DecodeQueryConfig(reader));
  return update;
}

void EncodeWindowAssignment(const WindowAssignment& assignment,
                            BinaryWriter* writer) {
  writer->PutU64(assignment.window_index);
  writer->PutU64(assignment.local_window_size);
  writer->PutU64(assignment.delta);
  writer->PutI64(assignment.size_adjust);
  writer->PutI64(assignment.wm_ts);
  writer->PutU32(assignment.wm_stream);
  writer->PutU64(assignment.wm_id);
}

Result<WindowAssignment> DecodeWindowAssignment(BinaryReader* reader) {
  WindowAssignment assignment;
  DECO_ASSIGN_OR_RETURN(assignment.window_index, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(assignment.local_window_size, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(assignment.delta, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(assignment.size_adjust, reader->GetI64());
  DECO_ASSIGN_OR_RETURN(assignment.wm_ts, reader->GetI64());
  DECO_ASSIGN_OR_RETURN(assignment.wm_stream, reader->GetU32());
  DECO_ASSIGN_OR_RETURN(assignment.wm_id, reader->GetU64());
  return assignment;
}

void EncodeRateReport(const RateReport& report, BinaryWriter* writer) {
  writer->PutU64(report.window_index);
  writer->PutDouble(report.event_rate);
  writer->PutU64(report.stream_position);
  writer->PutU8(report.end_of_stream ? 1 : 0);
  writer->PutU64(report.incarnation);
}

Result<RateReport> DecodeRateReport(BinaryReader* reader) {
  RateReport report;
  DECO_ASSIGN_OR_RETURN(report.window_index, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(report.event_rate, reader->GetDouble());
  DECO_ASSIGN_OR_RETURN(report.stream_position, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(uint8_t eos, reader->GetU8());
  report.end_of_stream = eos != 0;
  DECO_ASSIGN_OR_RETURN(report.incarnation, reader->GetU64());
  return report;
}

void EncodeCorrectionRequest(const CorrectionRequest& request,
                             BinaryWriter* writer) {
  writer->PutU64(request.window_index);
  writer->PutU64(request.topup_events);
  writer->PutI64(request.wm_ts);
  writer->PutU32(request.wm_stream);
  writer->PutU64(request.wm_id);
  writer->PutU64(request.round);
}

Result<CorrectionRequest> DecodeCorrectionRequest(BinaryReader* reader) {
  CorrectionRequest request;
  DECO_ASSIGN_OR_RETURN(request.window_index, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(request.topup_events, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(request.wm_ts, reader->GetI64());
  DECO_ASSIGN_OR_RETURN(request.wm_stream, reader->GetU32());
  DECO_ASSIGN_OR_RETURN(request.wm_id, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(request.round, reader->GetU64());
  return request;
}

void EncodeCorrectionResponse(const CorrectionResponse& response,
                              BinaryWriter* writer) {
  writer->PutU64(response.window_index);
  writer->PutU64(response.from_offset);
  writer->PutU8(response.end_of_stream ? 1 : 0);
  writer->PutU64(response.round);
  writer->PutEvents(response.events);
}

Result<CorrectionResponse> DecodeCorrectionResponse(BinaryReader* reader) {
  CorrectionResponse response;
  DECO_ASSIGN_OR_RETURN(response.window_index, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(response.from_offset, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(uint8_t eos, reader->GetU8());
  response.end_of_stream = eos != 0;
  DECO_ASSIGN_OR_RETURN(response.round, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(response.events, reader->GetEvents());
  return response;
}

void EncodeEventBatch(const EventBatchPayload& batch, BinaryWriter* writer) {
  writer->PutU64(batch.from_offset);
  writer->PutU8(batch.end_of_stream ? 1 : 0);
  writer->PutU8(static_cast<uint8_t>(batch.role));
  writer->PutEvents(batch.events);
}

Result<EventBatchPayload> DecodeEventBatch(BinaryReader* reader) {
  EventBatchPayload batch;
  DECO_ASSIGN_OR_RETURN(batch.from_offset, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(uint8_t eos, reader->GetU8());
  batch.end_of_stream = eos != 0;
  DECO_ASSIGN_OR_RETURN(uint8_t role, reader->GetU8());
  if (role > static_cast<uint8_t>(BatchRole::kEnd)) {
    return Status::InvalidArgument("bad batch role byte");
  }
  batch.role = static_cast<BatchRole>(role);
  DECO_ASSIGN_OR_RETURN(batch.events, reader->GetEvents());
  return batch;
}

std::string EncodeEventBatchText(const EventBatchPayload& batch) {
  std::string out = "batch;from=" + std::to_string(batch.from_offset) +
                    ";eos=" + (batch.end_of_stream ? std::string("1")
                                                   : std::string("0")) +
                    "\n";
  out += EncodeEventsText(batch.events);
  return out;
}

Result<EventBatchPayload> DecodeEventBatchText(const std::string& text) {
  EventBatchPayload batch;
  const size_t newline = text.find('\n');
  if (newline == std::string::npos) {
    return Status::InvalidArgument("text batch missing header line");
  }
  const std::string header = text.substr(0, newline);
  if (header.rfind("batch;from=", 0) != 0) {
    return Status::InvalidArgument("text batch bad header: " + header);
  }
  const size_t eos_pos = header.find(";eos=");
  if (eos_pos == std::string::npos) {
    return Status::InvalidArgument("text batch header missing eos");
  }
  batch.from_offset =
      std::strtoull(header.c_str() + std::string("batch;from=").size(),
                    nullptr, 10);
  batch.end_of_stream = header[eos_pos + 5] == '1';
  DECO_ASSIGN_OR_RETURN(batch.events,
                        DecodeEventsText(text.substr(newline + 1)));
  return batch;
}

}  // namespace deco
