#pragma once

#include <vector>

#include "common/result.h"
#include "net/message.h"

/// \file topology.h
/// \brief Star topology of the paper's deployments: one root, `m` local
/// nodes (Fig. 1). Datastream nodes are modeled in-process on the local
/// nodes (the paper deploys its data generators the same way, §5).

namespace deco {

/// \brief Node ids of one deployment.
struct Topology {
  NodeId root = 0;
  std::vector<NodeId> locals;

  /// \brief Ordinal (0-based dense index) of a local node id, or an error
  /// for unknown ids.
  Result<size_t> OrdinalOf(NodeId id) const {
    for (size_t i = 0; i < locals.size(); ++i) {
      if (locals[i] == id) return i;
    }
    return Status::NotFound("node id not a local node of this topology");
  }

  size_t num_locals() const { return locals.size(); }
};

}  // namespace deco
