#include "node/stream_set.h"

#include <cassert>

namespace deco {

StreamSet::StreamSet(const std::vector<StreamConfig>& configs) {
  assert(!configs.empty());
  sources_.reserve(configs.size());
  for (const StreamConfig& config : configs) {
    sources_.push_back(std::make_unique<StreamSource>(config));
    heap_.push(HeapEntry{sources_.back()->Next(), sources_.size() - 1});
  }
}

Event StreamSet::Next() {
  HeapEntry top = heap_.top();
  heap_.pop();
  heap_.push(HeapEntry{sources_[top.source]->Next(), top.source});
  ++position_;
  return top.event;
}

void StreamSet::NextBatch(size_t n, EventVec* out) {
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) out->push_back(Next());
}

double StreamSet::TotalRate() const {
  double total = 0.0;
  for (const auto& source : sources_) total += source->current_rate();
  return total;
}

}  // namespace deco
