#pragma once

#include <memory>
#include <vector>

#include "node/actor.h"

/// \file runtime.h
/// \brief Owns a topology's actors and drives their lifecycle.

namespace deco {

/// \brief Start/join/stop for a set of actors over one fabric.
class Runtime {
 public:
  explicit Runtime(NetworkFabric* fabric) : fabric_(fabric) {}

  ~Runtime() { StopAll(); }

  /// \brief Takes ownership of an actor. Must be called before `StartAll`.
  void AddActor(std::unique_ptr<Actor> actor) {
    actors_.push_back(std::move(actor));
  }

  /// \brief Starts every actor thread.
  void StartAll() {
    for (auto& actor : actors_) actor->Start();
  }

  /// \brief Joins every actor; returns the first non-OK actor status.
  Status JoinAll() {
    for (auto& actor : actors_) actor->Join();
    for (auto& actor : actors_) {
      Status status = actor->status();
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

  /// \brief Requests cooperative stop on every actor and shuts the fabric
  /// down (closing all mailboxes).
  void StopAll() {
    for (auto& actor : actors_) actor->RequestStop();
  }

  NetworkFabric* fabric() { return fabric_; }
  const std::vector<std::unique_ptr<Actor>>& actors() const {
    return actors_;
  }

 private:
  NetworkFabric* fabric_;
  std::vector<std::unique_ptr<Actor>> actors_;
};

}  // namespace deco
