#pragma once

#include <atomic>
#include <memory>

#include "common/clock.h"
#include "net/shaping.h"
#include "node/stream_set.h"

/// \file ingest.h
/// \brief Local-node ingestion front end: merged sensor streams, an event
/// budget, and an optional CPU throttle.
///
/// The throttle models a weak device (paper §5.3, Raspberry Pi local
/// nodes): pulling a batch blocks until the node's per-second event budget
/// allows it, capping the node's processing rate the way a slow CPU would.

namespace deco {

/// \brief Configuration of one local node's ingestion.
struct IngestConfig {
  std::vector<StreamConfig> streams;

  /// Total events this node produces before signalling end-of-stream.
  uint64_t events_to_produce = 1'000'000;

  /// Events pulled per batch; data-plane messages ship one batch.
  size_t batch_size = 4096;

  /// Processing cap in events/second; 0 = unthrottled (Xeon-class node).
  uint64_t cpu_events_per_sec = 0;

  /// Live multiplier on the node's event rate, written by the chaos
  /// controller (`surge` faults) and read by the throttle and the rate
  /// report. Null means a fixed 1.0. The multiplier scales the *reported*
  /// rate and the CPU throttle but not the event content, so a surged run
  /// still compares exactly against fault-free ground truth.
  std::shared_ptr<const std::atomic<double>> rate_multiplier;
};

/// \brief Budgeted, throttled, merged event source of a local node.
class IngestSource {
 public:
  IngestSource(const IngestConfig& config, Clock* clock);

  /// \brief Pulls up to `n` events (fewer near the budget end) and appends
  /// them to `out`. Sets `*create_wall_nanos` to the pull's wall time — the
  /// creation time used for processing-time latency (the paper's
  /// "event-time when created equals processing-time when it arrives").
  /// Returns the number of events pulled; 0 means the budget is exhausted.
  size_t Pull(size_t n, EventVec* out, TimeNanos* create_wall_nanos);

  /// \brief True once the event budget has been fully produced.
  bool exhausted() const { return produced_ >= config_.events_to_produce; }

  /// \brief Measured total event rate of the node's sensors, events/sec,
  /// scaled by the live chaos rate multiplier.
  double TotalRate() const { return streams_.TotalRate() * multiplier(); }

  /// \brief Cumulative events produced (the node's stream position).
  uint64_t position() const { return produced_; }

  const IngestConfig& config() const { return config_; }

 private:
  double multiplier() const {
    return config_.rate_multiplier == nullptr
               ? 1.0
               : config_.rate_multiplier->load(std::memory_order_acquire);
  }

  IngestConfig config_;
  Clock* clock_;
  StreamSet streams_;
  std::unique_ptr<TokenBucket> throttle_;  // null = unthrottled
  uint64_t produced_ = 0;
};

}  // namespace deco
