#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "event/event.h"
#include "stream/generator.h"

/// \file stream_set.h
/// \brief The merged event source of one local node.
///
/// A local node ingests `n` sensor streams (paper Fig. 1, datastream
/// nodes). Each stream is ordered by timestamp; the node observes the
/// k-way merge in the deterministic total order `(timestamp, stream_id,
/// event_id)`. Merging locally means every local node emits a locally
/// sorted stream, so the root's merge across local nodes equals a global
/// sort — the Central ground truth (DESIGN.md §4.1).

namespace deco {

/// \brief k-way merged, infinite, locally sorted event source.
class StreamSet {
 public:
  /// \param configs one per sensor stream; must be non-empty
  explicit StreamSet(const std::vector<StreamConfig>& configs);

  /// \brief Next event in merged order.
  Event Next();

  /// \brief Appends `n` merged events to `out`.
  void NextBatch(size_t n, EventVec* out);

  /// \brief Sum of the instantaneous configured rates of all streams,
  /// events per second — what the local node reports to the root
  /// (paper §4.3.3: "polls frequencies of data sources").
  double TotalRate() const;

  /// \brief Total events emitted by `Next`/`NextBatch` so far (the node's
  /// cumulative stream position).
  uint64_t position() const { return position_; }

  size_t stream_count() const { return sources_.size(); }

 private:
  struct HeapEntry {
    Event event;
    size_t source;
  };
  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      EventTimestampLess less;
      return less(b.event, a.event);
    }
  };

  std::vector<std::unique_ptr<StreamSource>> sources_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> heap_;
  uint64_t position_ = 0;
};

}  // namespace deco
