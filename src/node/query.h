#pragma once

#include <cmath>

#include "agg/aggregate.h"
#include "common/result.h"
#include "event/serde.h"
#include "window/window.h"

/// \file query.h
/// \brief The streamed query a topology executes: a window definition plus
/// an aggregation function. Shipped root → local at startup
/// (`MessageType::kQueryConfig`).

namespace deco {

/// \brief Query definition shared by every scheme.
struct QueryConfig {
  WindowSpec window = WindowSpec::CountTumbling(1'000'000);
  AggregateKind aggregate = AggregateKind::kSum;

  /// Quantile parameter for `AggregateKind::kQuantile`.
  double quantile_q = 0.5;

  Status Validate() const {
    if (aggregate == AggregateKind::kQuantile &&
        (!std::isfinite(quantile_q) || quantile_q <= 0.0 ||
         quantile_q >= 1.0)) {
      return Status::InvalidArgument(
          "quantile_q must be a finite value strictly inside (0, 1), got " +
          std::to_string(quantile_q));
    }
    return window.Validate();
  }
};

/// \brief Length of the count window the decentralized protocol actually
/// runs on. Tumbling windows map to themselves; sliding count windows are
/// decomposed into non-overlapping *panes* of `gcd(length, slide)` events —
/// each pane is processed as one protocol window and the root composes
/// emitted windows from consecutive pane partials (an extension beyond the
/// paper, which processes sliding count windows centrally).
uint64_t ProtocolWindowLength(const WindowSpec& window);

/// \brief Serializes a query config (binary wire format).
void EncodeQueryConfig(const QueryConfig& config, BinaryWriter* writer);

/// \brief Parses a query config.
Result<QueryConfig> DecodeQueryConfig(BinaryReader* reader);

}  // namespace deco
