#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

/// \file apportion.h
/// \brief Rate-proportional split of a global window size onto local nodes
/// (paper §4.1: `l_a = f_a / f_root * l_global`).

namespace deco {

/// \brief Splits `total` into integer shares proportional to `weights`,
/// with `sum(shares) == total` exactly.
///
/// Uses the largest-remainder method: floor each share, then hand the
/// remaining units to the largest fractional parts (ties broken by lower
/// index, so the split is deterministic). Nodes with zero weight receive a
/// share only from remainder distribution when all weights are zero, in
/// which case the split is as even as possible.
Result<std::vector<uint64_t>> ApportionWindow(
    uint64_t total, const std::vector<double>& weights);

}  // namespace deco
