#include "node/apportion.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace deco {

Result<std::vector<uint64_t>> ApportionWindow(
    uint64_t total, const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("apportion needs at least one weight");
  }
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      return Status::InvalidArgument("weights must be finite and >= 0");
    }
  }
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<uint64_t> shares(weights.size(), 0);
  std::vector<std::pair<double, size_t>> fractions(weights.size());
  uint64_t assigned = 0;
  if (sum <= 0.0) {
    // Degenerate: split evenly.
    for (size_t i = 0; i < weights.size(); ++i) {
      shares[i] = total / weights.size();
      assigned += shares[i];
      fractions[i] = {0.0, i};
    }
  } else {
    for (size_t i = 0; i < weights.size(); ++i) {
      const double exact =
          static_cast<double>(total) * (weights[i] / sum);
      shares[i] = static_cast<uint64_t>(std::floor(exact));
      assigned += shares[i];
      fractions[i] = {exact - std::floor(exact), i};
    }
  }
  // Hand out the remainder to the largest fractional parts; ties go to the
  // lower index for determinism.
  std::stable_sort(fractions.begin(), fractions.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  uint64_t remainder = total - assigned;
  for (size_t i = 0; remainder > 0; i = (i + 1) % fractions.size()) {
    ++shares[fractions[i].second];
    --remainder;
  }
  return shares;
}

}  // namespace deco
