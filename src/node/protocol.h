#pragma once

#include <cstdint>
#include <vector>

#include "agg/aggregate.h"
#include "common/result.h"
#include "event/event.h"
#include "event/serde.h"
#include "node/query.h"

/// \file protocol.h
/// \brief Typed payloads of the messages exchanged by the schemes, with
/// their binary codecs. One struct per `MessageType` that carries data.
///
/// Wire formats are versionless and little-endian; the fabric is
/// homogeneous. The Disco baseline encodes event batches with the verbose
/// text codec from event/serde.h instead (it only ever ships raw events).

namespace deco {

/// \brief `kPartialResult` payload: the partial aggregate of one local
/// slice plus the statistics the root needs for verification (paper §4.2.2:
/// "partial results ... and the statistics including the number of events
/// and the first and the last event's timestamps" plus the event rate).
/// \brief One extra aggregate computed over the same slice for another
/// registered query (multi-query serving, DESIGN.md §11). Slot 0 — the
/// primary query's aggregate — stays in `SliceSummary::partial` so the
/// single-query wire format is unchanged apart from the extras count.
struct SlotPartial {
  uint16_t slot = 0;
  Partial partial;
};

struct SliceSummary {
  Partial partial;

  /// Per-slot partials for aggregate slots beyond the primary (slot 0),
  /// computed in the same pass over the slice. Empty in single-query runs.
  std::vector<SlotPartial> extras;

  /// Events aggregated into the slice.
  uint64_t event_count = 0;

  /// Timestamps of the slice's first and last event (undefined when
  /// `event_count == 0`).
  EventTime min_ts = 0;
  EventTime max_ts = 0;

  /// Stream-id and event-id of the slice's last event, completing the
  /// total-order key used for exact edge verification.
  StreamId max_stream_id = 0;
  EventId max_event_id = 0;

  /// Local node's measured event rate over the slice, events/second of
  /// event time (paper §4.3.3).
  double event_rate = 0.0;
};

void EncodeSliceSummary(const SliceSummary& summary, BinaryWriter* writer);
Result<SliceSummary> DecodeSliceSummary(BinaryReader* reader);

/// \brief Wire size of one encoded `SlotPartial` extra; the marginal
/// bytes/pane one additional aggregate slot costs on a slice message.
size_t SlotPartialWireSize(const SlotPartial& extra);

/// \brief `kQueryAdd` / `kQueryRemove` payload: root → local runtime change
/// to the served query set (multi-query serving layer, DESIGN.md §11).
///
/// The root picks `effective_pane` far enough ahead of every local's
/// planning horizon that all slices for panes >= `effective_pane` carry
/// (add) or stop carrying (remove) the slot. A lost add is healed by the
/// correction path: the root detects the missing slot partial, corrects the
/// pane from raw events (exact for every slot), and re-broadcasts the
/// registry snapshot.
struct QueryUpdate {
  uint32_t query_id = 0;
  uint16_t slot = 0;

  /// First protocol window (pane) the change applies to.
  uint64_t effective_pane = 0;

  /// True for `kQueryAdd`, false for `kQueryRemove`.
  bool add = true;

  /// Remove only: no other active query shares the slot at or after
  /// `effective_pane`, so locals stop computing it entirely.
  bool slot_retired = false;

  /// Add only: the query definition (informational on locals — slices ship
  /// partials, so only the aggregate kind and quantile matter there).
  QueryConfig query;
};

void EncodeQueryUpdate(const QueryUpdate& update, BinaryWriter* writer);
Result<QueryUpdate> DecodeQueryUpdate(BinaryReader* reader);

/// \brief `kWindowAssignment` payload: root → local window-planning values
/// for the next global window.
struct WindowAssignment {
  uint64_t window_index = 0;

  /// Predicted (Deco_sync/async) or measured (Deco_mon) local window size.
  uint64_t local_window_size = 0;

  /// Delta buffer parameter (paper Eq. 2).
  uint64_t delta = 0;

  /// One-shot size adjustment (Deco_async): applied by the local node to
  /// the first window it plans after receiving this assignment, then
  /// discarded. The root uses it as a damped feedback term that recenters
  /// the node's root-buffer carryover around delta/2, keeping the
  /// self-balancing asynchronous layout verifiable.
  int64_t size_adjust = 0;

  /// Watermark as a full total-order key `(ts, stream, id)`: events at or
  /// before it belong to verified windows and can be dropped. The full key
  /// (not just the timestamp) makes the drop exact under timestamp ties.
  EventTime wm_ts = INT64_MIN;
  StreamId wm_stream = 0;
  EventId wm_id = 0;
};

void EncodeWindowAssignment(const WindowAssignment& assignment,
                            BinaryWriter* writer);
Result<WindowAssignment> DecodeWindowAssignment(BinaryReader* reader);

/// \brief `kEventRate` payload: a local node's rate report (Deco_mon
/// initialization step, and Deco_monlocal peer exchange).
struct RateReport {
  uint64_t window_index = 0;
  double event_rate = 0.0;

  /// Total events this node has ingested so far (cumulative position).
  uint64_t stream_position = 0;

  /// Set on the sender's final broadcast: its stream is exhausted and no
  /// further rate reports will follow. Peers apportion it zero share for
  /// every later window instead of waiting for reports that never come.
  bool end_of_stream = false;

  /// Sender's incarnation: how many crash/restart cycles it has completed
  /// (0 for a node that never crashed). Carried so the root's provenance
  /// records attribute each contribution to the producing incarnation
  /// without consulting the fabric (DESIGN.md §10).
  uint64_t incarnation = 0;
};

void EncodeRateReport(const RateReport& report, BinaryWriter* writer);
Result<RateReport> DecodeRateReport(BinaryReader* reader);

/// \brief `kCorrectionRequest` payload: root → local fallback instructions
/// for a mispredicted window (paper §4.3.1/§4.3.2).
struct CorrectionRequest {
  uint64_t window_index = 0;

  /// When 0: send the full retained raw region of the current window.
  /// When > 0: top-up — send this many further events from the stream.
  uint64_t topup_events = 0;

  /// The root's verified watermark as a total-order key, mirroring
  /// `WindowAssignment`. A rejoining local drops retained events at or
  /// before it before responding: the root already emitted windows covering
  /// them using the node's pre-crash contributions, so resending would
  /// double-count (rejoin protocol, DESIGN.md §6). `INT64_MIN` (the
  /// default) keeps every retained event — the behaviour healthy locals
  /// relied on before rejoin existed.
  EventTime wm_ts = INT64_MIN;
  StreamId wm_stream = 0;
  EventId wm_id = 0;

  /// Per-node solicitation round, echoed by the response. The root bumps
  /// it on every request it sends to a node — including the lost-message
  /// retries — and discards responses carrying an older round, so a
  /// delayed original and its retry can never both be folded into the
  /// candidate list (which would double-count events).
  uint64_t round = 0;
};

void EncodeCorrectionRequest(const CorrectionRequest& request,
                             BinaryWriter* writer);
Result<CorrectionRequest> DecodeCorrectionRequest(BinaryReader* reader);

/// \brief `kCorrectionResult` payload: local → root raw events for the
/// centralized fallback of a mispredicted window.
struct CorrectionResponse {
  uint64_t window_index = 0;

  /// Cumulative stream offset of `events.front()` at this node.
  uint64_t from_offset = 0;

  /// True when the node's stream budget is exhausted: no top-up can ever
  /// return more events.
  bool end_of_stream = false;

  /// Echo of `CorrectionRequest::round`; the root only accepts the
  /// response to its latest request.
  uint64_t round = 0;

  EventVec events;
};

void EncodeCorrectionResponse(const CorrectionResponse& response,
                              BinaryWriter* writer);
Result<CorrectionResponse> DecodeCorrectionResponse(BinaryReader* reader);

/// \brief Role of a raw-event batch within the Deco window protocol.
enum class BatchRole : uint8_t {
  kData = 0,     ///< centralized forwarding (baselines)
  kFront = 1,    ///< Deco_async Fbuffer region of a window
  kEnd = 2,      ///< Deco_sync buffer / Deco_async Ebuffer region
};

/// \brief `kEventBatch` payload in the binary format, with the cumulative
/// stream offset of the first event (used by the root to detect gaps and
/// duplicates after corrections).
struct EventBatchPayload {
  uint64_t from_offset = 0;
  bool end_of_stream = false;
  BatchRole role = BatchRole::kData;
  EventVec events;
};

void EncodeEventBatch(const EventBatchPayload& batch, BinaryWriter* writer);
Result<EventBatchPayload> DecodeEventBatch(BinaryReader* reader);

/// \brief Verbose text encoding of an event batch (Disco wire format):
/// a `batch;from=..;eos=..` header line followed by one text event per
/// line. Reproduces the paper's observation that Disco's string messages
/// cost more network bytes than even raw binary forwarding.
std::string EncodeEventBatchText(const EventBatchPayload& batch);
Result<EventBatchPayload> DecodeEventBatchText(const std::string& text);

}  // namespace deco
