#include "node/actor.h"

#include <chrono>

#include "common/logging.h"

namespace deco {

Status Actor::SendRetryingCrash(Message msg) {
  while (true) {
    Message attempt = msg;  // keep the original for a possible retry
    Status status = Send(std::move(attempt));
    if (!status.IsNodeFailed()) return status;
    // Crashed by the chaos controller: a dead host does not observe its
    // own failed sends. Wait out the downtime, then resend.
    while (fabric_->IsNodeDown(id_)) {
      if (stop_requested()) return Status::OK();
      SleepNanos(200 * kNanosPerMicro);
    }
    if (stop_requested()) return Status::OK();
  }
}

void Actor::SleepNanos(TimeNanos nanos) {
  if (SimScheduler::OnSimTask()) {
    SimScheduler::Current()->SleepFor(nanos);
    return;
  }
  std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
}

void Actor::Start() {
  const auto body = [this] {
    // Register with the in-run profiler on the actor thread itself so the
    // slot's CPU baseline is this thread's CLOCK_THREAD_CPUTIME_ID.
    Profiler* profiler = Profiler::Active();
    if (profiler != nullptr) {
      prof_ = profiler->RegisterThread(fabric_->node_name(id_));
    }
    Status status = Run();
    if (prof_ != nullptr) prof_->Finish();
    if (!status.ok()) {
      DECO_LOG(ERROR) << "actor " << id_ << " ("
                      << fabric_->node_name(id_)
                      << ") failed: " << status.ToString();
    }
    std::lock_guard<std::mutex> lock(status_mu_);
    status_ = std::move(status);
  };
  SimScheduler* sim = fabric_->sim();
  if (sim != nullptr) {
    sim_task_ = sim->AddTask(fabric_->node_name(id_));
    thread_ = std::thread(
        [sim, id = sim_task_, body] { sim->TaskMain(id, body); });
    return;
  }
  thread_ = std::thread(body);
}

void Actor::Join() {
  if (thread_.joinable()) thread_.join();
}

void Actor::RequestStop() {
  stop_.store(true, std::memory_order_release);
  Mailbox* mailbox = fabric_->mailbox(id_);
  if (mailbox != nullptr) mailbox->Close();
}

Status Actor::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_;
}

}  // namespace deco
