#include "node/actor.h"

#include "common/logging.h"

namespace deco {

void Actor::Start() {
  thread_ = std::thread([this] {
    Status status = Run();
    if (!status.ok()) {
      DECO_LOG(ERROR) << "actor " << id_ << " ("
                      << fabric_->node_name(id_)
                      << ") failed: " << status.ToString();
    }
    std::lock_guard<std::mutex> lock(status_mu_);
    status_ = std::move(status);
  });
}

void Actor::Join() {
  if (thread_.joinable()) thread_.join();
}

void Actor::RequestStop() {
  stop_.store(true, std::memory_order_release);
  Mailbox* mailbox = fabric_->mailbox(id_);
  if (mailbox != nullptr) mailbox->Close();
}

Status Actor::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_;
}

}  // namespace deco
