#include "node/query.h"

#include <numeric>

namespace deco {

uint64_t ProtocolWindowLength(const WindowSpec& window) {
  if (window.type == WindowType::kSliding) {
    return std::gcd(window.length, window.slide);
  }
  return window.length;
}

void EncodeQueryConfig(const QueryConfig& config, BinaryWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(config.window.type));
  writer->PutU8(static_cast<uint8_t>(config.window.measure));
  writer->PutU64(config.window.length);
  writer->PutU64(config.window.slide);
  writer->PutI64(config.window.session_gap);
  writer->PutU8(static_cast<uint8_t>(config.aggregate));
  writer->PutDouble(config.quantile_q);
}

Result<QueryConfig> DecodeQueryConfig(BinaryReader* reader) {
  QueryConfig config;
  DECO_ASSIGN_OR_RETURN(uint8_t type, reader->GetU8());
  DECO_ASSIGN_OR_RETURN(uint8_t measure, reader->GetU8());
  config.window.type = static_cast<WindowType>(type);
  config.window.measure = static_cast<WindowMeasure>(measure);
  DECO_ASSIGN_OR_RETURN(config.window.length, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(config.window.slide, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(config.window.session_gap, reader->GetI64());
  DECO_ASSIGN_OR_RETURN(uint8_t agg, reader->GetU8());
  config.aggregate = static_cast<AggregateKind>(agg);
  DECO_ASSIGN_OR_RETURN(config.quantile_q, reader->GetDouble());
  DECO_RETURN_NOT_OK(config.Validate());
  return config;
}

}  // namespace deco
