#include "node/ingest.h"

#include <algorithm>

#include "obs/metric_registry.h"

namespace deco {
namespace {

// Fleet-wide ingress counter the ops plane's status line and watchdogs
// read ("events in"); one relaxed add per pulled batch, not per event.
Counter* EventsIngestedCounter() {
  static Counter* c =
      MetricRegistry::Global()->counter("local.events_ingested");
  return c;
}

}  // namespace

IngestSource::IngestSource(const IngestConfig& config, Clock* clock)
    : config_(config), clock_(clock), streams_(config.streams) {
  if (config_.cpu_events_per_sec > 0) {
    throttle_ =
        std::make_unique<TokenBucket>(config_.cpu_events_per_sec, clock_);
  }
}

size_t IngestSource::Pull(size_t n, EventVec* out,
                          TimeNanos* create_wall_nanos) {
  const uint64_t left = config_.events_to_produce - produced_;
  const size_t take = static_cast<size_t>(
      std::min<uint64_t>(n, left));
  if (take == 0) {
    *create_wall_nanos = clock_->NowNanos();
    return 0;
  }
  if (throttle_ != nullptr) {
    // A surge multiplier > 1 means the device is asked for more events per
    // wall second, i.e. each event costs proportionally fewer throttle
    // tokens.
    const double mult = multiplier();
    const auto cost = static_cast<uint64_t>(
        std::max(1.0, static_cast<double>(take) / std::max(mult, 1e-9)));
    throttle_->AcquireBlocking(cost);
  }
  *create_wall_nanos = clock_->NowNanos();
  streams_.NextBatch(take, out);
  produced_ += take;
  EventsIngestedCounter()->Add(static_cast<int64_t>(take));
  return take;
}

}  // namespace deco
