#include "event/serde.h"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace deco {

Status BinaryReader::ReadRaw(void* out, size_t n) {
  if (pos_ + n > buf_.size()) {
    return Status::OutOfRange("binary buffer underflow: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(buf_.size() - pos_));
  }
  std::memcpy(out, buf_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<uint8_t> BinaryReader::GetU8() {
  uint8_t v;
  DECO_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<uint32_t> BinaryReader::GetU32() {
  uint32_t v;
  DECO_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  uint64_t v;
  DECO_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::GetI64() {
  int64_t v;
  DECO_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<double> BinaryReader::GetDouble() {
  double v;
  DECO_RETURN_NOT_OK(ReadRaw(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::GetString() {
  DECO_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (pos_ + len > buf_.size()) {
    return Status::OutOfRange("string length exceeds buffer");
  }
  std::string s(buf_.data() + pos_, len);
  pos_ += len;
  return s;
}

Result<Event> BinaryReader::GetEvent() {
  Event e;
  DECO_ASSIGN_OR_RETURN(e.id, GetU64());
  DECO_ASSIGN_OR_RETURN(e.stream_id, GetU32());
  DECO_ASSIGN_OR_RETURN(e.value, GetDouble());
  DECO_ASSIGN_OR_RETURN(e.timestamp, GetI64());
  return e;
}

Result<EventVec> BinaryReader::GetEvents() {
  DECO_ASSIGN_OR_RETURN(uint64_t n, GetU64());
  if (n > remaining() / kBinaryEventSize) {
    return Status::OutOfRange("event count exceeds buffer size");
  }
  EventVec events;
  events.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DECO_ASSIGN_OR_RETURN(Event e, GetEvent());
    events.push_back(e);
  }
  return events;
}

std::string EncodeEventText(const Event& event) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "event;id=%llu;stream=%u;value=%.17g;timestamp=%lld",
                static_cast<unsigned long long>(event.id), event.stream_id,
                event.value, static_cast<long long>(event.timestamp));
  return buf;
}

namespace {

// Extracts the value of "key=" from `field`; returns false on mismatch.
bool TakeField(const std::string& field, const char* key, std::string* out) {
  const std::string prefix = std::string(key) + "=";
  if (field.rfind(prefix, 0) != 0) return false;
  *out = field.substr(prefix.size());
  return true;
}

}  // namespace

Result<Event> DecodeEventText(const std::string& text) {
  std::stringstream ss(text);
  std::string field;
  if (!std::getline(ss, field, ';') || field != "event") {
    return Status::InvalidArgument("text event missing 'event' tag: " + text);
  }
  Event e;
  std::string v;
  if (!std::getline(ss, field, ';') || !TakeField(field, "id", &v)) {
    return Status::InvalidArgument("text event missing id");
  }
  e.id = std::strtoull(v.c_str(), nullptr, 10);
  if (!std::getline(ss, field, ';') || !TakeField(field, "stream", &v)) {
    return Status::InvalidArgument("text event missing stream");
  }
  e.stream_id = static_cast<StreamId>(std::strtoul(v.c_str(), nullptr, 10));
  if (!std::getline(ss, field, ';') || !TakeField(field, "value", &v)) {
    return Status::InvalidArgument("text event missing value");
  }
  e.value = std::strtod(v.c_str(), nullptr);
  if (!std::getline(ss, field, ';') || !TakeField(field, "timestamp", &v)) {
    return Status::InvalidArgument("text event missing timestamp");
  }
  e.timestamp = std::strtoll(v.c_str(), nullptr, 10);
  return e;
}

std::string EncodeEventsText(const EventVec& events) {
  std::string out;
  for (const Event& e : events) {
    out += EncodeEventText(e);
    out += '\n';
  }
  return out;
}

Result<EventVec> DecodeEventsText(const std::string& text) {
  EventVec events;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    DECO_ASSIGN_OR_RETURN(Event e, DecodeEventText(line));
    events.push_back(e);
  }
  return events;
}

}  // namespace deco
