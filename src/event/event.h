#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file event.h
/// \brief The stream tuple model of the Deco system (paper §3).
///
/// A data event is the tuple `t = (i, v, τ)`: a per-stream sequential id, a
/// value, and a timestamp assigned by the datastream node. Events are
/// produced in order per sensor, so timestamps increase monotonically within
/// one stream. We additionally carry the originating stream id so the root
/// node can apply the paper's tie-break rule ("when two events share the
/// same timestamp at the count-based window edge, we use the first one")
/// with a stable, deterministic order.

namespace deco {

/// Identifier of a logical data stream (one sensor).
using StreamId = uint32_t;

/// Per-stream sequential event id.
using EventId = uint64_t;

/// Event-time timestamp in nanoseconds.
using EventTime = int64_t;

/// \brief One stream tuple.
struct Event {
  EventId id = 0;
  StreamId stream_id = 0;
  double value = 0.0;
  EventTime timestamp = 0;

  friend bool operator==(const Event& a, const Event& b) {
    return a.id == b.id && a.stream_id == b.stream_id &&
           a.value == b.value && a.timestamp == b.timestamp;
  }
};

/// \brief Strict weak order used wherever the paper sorts buffered events:
/// by timestamp, then stream id, then event id. Stable and total, so sorting
/// is deterministic and the "first one wins" tie-break at window edges is
/// well defined.
struct EventTimestampLess {
  bool operator()(const Event& a, const Event& b) const {
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    if (a.stream_id != b.stream_id) return a.stream_id < b.stream_id;
    return a.id < b.id;
  }
};

/// \brief A batch of events as shipped between nodes. Plain vector wrapper
/// kept for readability at call sites.
using EventVec = std::vector<Event>;

/// \brief Event-time watermark: a promise that no event with
/// `timestamp <= value` will arrive anymore on the emitting channel.
struct Watermark {
  EventTime value = 0;

  friend bool operator==(const Watermark& a, const Watermark& b) {
    return a.value == b.value;
  }
};

/// \brief Renders an event as "(id=.., stream=.., v=.., ts=..)" for logs
/// and test failure messages.
std::string ToString(const Event& event);

}  // namespace deco
