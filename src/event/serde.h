#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"

/// \file serde.h
/// \brief Wire encodings for events and primitive fields.
///
/// Two formats exist on purpose (paper §5.1, network utilization): every
/// scheme except the Disco baseline uses the compact little-endian binary
/// format; the Disco baseline uses a verbose human-readable text format to
/// reproduce the paper's observation that Disco's string messages inflate
/// network cost above even the raw-event-forwarding Central baseline.

namespace deco {

/// \brief Growable byte sink for binary encoding.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// \brief Length-prefixed string.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }

  void PutEvent(const Event& e) {
    PutU64(e.id);
    PutU32(e.stream_id);
    PutDouble(e.value);
    PutI64(e.timestamp);
  }

  void PutEvents(const EventVec& events) {
    PutU64(events.size());
    for (const Event& e : events) PutEvent(e);
  }

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// \brief Bounds-checked reader over an encoded byte buffer.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& buf) : buf_(buf) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<Event> GetEvent();
  Result<EventVec> GetEvents();

  /// \brief Bytes not yet consumed.
  size_t remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return remaining() == 0; }

 private:
  Status ReadRaw(void* out, size_t n);
  const std::string& buf_;
  size_t pos_ = 0;
};

/// \brief Size in bytes of one event in the binary format.
inline constexpr size_t kBinaryEventSize =
    sizeof(uint64_t) + sizeof(uint32_t) + sizeof(double) + sizeof(int64_t);

/// \brief Verbose text encoding of one event, Disco-style:
/// "event;id=<id>;stream=<sid>;value=<v>;timestamp=<ts>".
std::string EncodeEventText(const Event& event);

/// \brief Parses `EncodeEventText` output.
Result<Event> DecodeEventText(const std::string& text);

/// \brief Text-encodes a batch, one event per line.
std::string EncodeEventsText(const EventVec& events);

/// \brief Parses `EncodeEventsText` output.
Result<EventVec> DecodeEventsText(const std::string& text);

}  // namespace deco
