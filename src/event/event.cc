#include "event/event.h"

#include <sstream>

namespace deco {

std::string ToString(const Event& event) {
  std::ostringstream os;
  os << "(id=" << event.id << ", stream=" << event.stream_id
     << ", v=" << event.value << ", ts=" << event.timestamp << ")";
  return os.str();
}

}  // namespace deco
