#pragma once

#include <atomic>
#include <string>

#include "chaos/controller.h"
#include "chaos/schedule.h"
#include "common/result.h"
#include "deco/local_node.h"
#include "deco/root_node.h"
#include "metrics/report.h"
#include "node/query.h"
#include "obs/flight_recorder.h"
#include "obs/governance.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"
#include "serve/registry.h"

/// \file experiment.h
/// \brief One-call experiment driver used by every benchmark, example and
/// integration test: builds a star topology over the in-process fabric,
/// runs one scheme on one workload, and returns the full `RunReport`.

namespace deco {

/// \brief Every approach evaluated in the paper (§5, "Evaluated
/// Approaches") plus the Deco_monlocal microbenchmark variant.
enum class Scheme : uint8_t {
  kCentral = 0,
  kScotty = 1,
  kDisco = 2,
  kApprox = 3,
  kDecoMon = 4,
  kDecoSync = 5,
  kDecoAsync = 6,
  kDecoMonLocal = 7,
};

const char* SchemeToString(Scheme scheme);
Result<Scheme> SchemeFromString(const std::string& name);

/// \brief True for the schemes that aggregate on local nodes.
bool IsDecentralized(Scheme scheme);

/// \brief Live-telemetry options of one experiment run.
///
/// When enabled, the harness installs a process-global trace sink, resets
/// the global metric registry, and runs a background sampler over the
/// fabric for the duration of the run; the collected time series and spans
/// are exported to the configured paths and/or copied into `sink`.
struct TelemetryOptions {
  /// Master switch; off by default so benchmarks measure the undisturbed
  /// system. Setting any output path below implies interest, but `enabled`
  /// still gates collection (the harness enables it when an output is set
  /// via the CLI flags).
  bool enabled = false;

  /// Sampler period (first and last snapshots are always taken).
  TimeNanos sample_interval_nanos = 50 * kNanosPerMilli;

  /// JSON document output path; empty = no file.
  std::string json_out;

  /// CSV output prefix; writes `<prefix>.samples.csv` and
  /// `<prefix>.spans.csv`. Empty = no files.
  std::string csv_prefix;

  /// Chrome-trace-event/Perfetto JSON output path (deco_run
  /// `--trace_out`); empty = no file. Load the result in
  /// https://ui.perfetto.dev.
  std::string perfetto_out;

  /// `TraceSink` retained-event cap, applied separately to spans and hop
  /// records (deco_run `--trace_capacity`); 0 = unbounded. Long runs that
  /// log a truncation warning should raise this.
  size_t trace_capacity = 1 << 20;

  /// If non-null, receives the collected samples, spans and hops
  /// (caller-owned; useful for tests and embedding without file I/O).
  TelemetryLog* sink = nullptr;
};

/// \brief In-run profiler options (DESIGN.md §9, deco_run `--profile`).
///
/// When enabled, the harness installs a process-global `Profiler` for the
/// duration of the run; every actor thread registers with it, and the
/// collected per-thread CPU/alloc profile lands in `RunReport::profile`
/// (and from there in telemetry and bench JSON).
struct ProfilerOptions {
  /// Master switch; off by default so benchmarks measure the undisturbed
  /// system (measured overhead is within ~2% on fig7 either way).
  bool enabled = false;

  /// Also count per-thread allocations via the counting operator-new hook
  /// (no-op if CMake option `DECO_PROFILE_ALLOC` is OFF).
  bool count_allocs = true;
};

/// \brief Window-provenance and accuracy-attribution options (DESIGN.md
/// §10, deco_run `--provenance_out`).
///
/// When active, the harness installs a `ProvenanceTracker` on the root for
/// the duration of the run; every emitted window gets a provenance record
/// (contributing locals with incarnations, expected/received/missing
/// partials, correction rounds, per-partial staleness, state transitions),
/// and — for tumbling queries — the post-run oracle tap attaches a
/// per-window error estimate decomposed into drop / staleness /
/// approximation components that sum to the observed error.
struct ProvenanceOptions {
  /// Master switch. Setting `json_out` or `sink` below also activates
  /// collection, as does enabled telemetry (schema v4 always carries the
  /// provenance section).
  bool enabled = false;

  /// Run the accuracy estimator after the run (tumbling queries only;
  /// silently skipped for sliding queries, which get provenance records
  /// per pane without truth alignment).
  bool estimate = true;

  /// Wall-clock runs estimate only this many reservoir-sampled windows
  /// (the estimator replays the full streams, which is fine in virtual
  /// time but measurable in wall time); sim runs estimate every window.
  /// 0 = every window regardless.
  size_t accuracy_reservoir = 256;

  /// Retained per-window record cap (`ProvenanceLog::windows_dropped`
  /// counts the excess); 0 = unbounded.
  size_t max_windows = 0;

  /// Standalone provenance JSON output path (deco_run
  /// `--provenance_out`); empty = no file.
  std::string json_out;

  /// If non-null, receives the collected log (caller-owned; for tests and
  /// embedding without file I/O).
  ProvenanceLog* sink = nullptr;
};

/// \brief Multi-query serving options (DESIGN.md §11, deco_run
/// `--queries=`).
///
/// A non-empty `queries` list replaces the single `ExperimentConfig::query`
/// with a registry of served queries over the same streams: entry 0 is the
/// primary (it also populates the legacy `RunReport` surfaces), the rest
/// share the primary's protocol via per-pane slot partials. Deco schemes
/// serve the whole set in one pass; the centralized baselines fall back to
/// one sub-run per query (whole-run queries only) so every scheme stays
/// comparable.
struct ServeOptions {
  /// Served queries in admission order; empty = legacy single-query run
  /// (no registry is installed). When non-empty, entry 0 *overrides*
  /// `ExperimentConfig::query` as the primary.
  std::vector<ServedQuery> queries;

  /// Admission budget. `num_locals` is filled from the experiment config;
  /// the other limits reject over-budget registries loudly
  /// (`ResourceExhausted`) before any actor starts.
  ServeAdmission admission;
};

/// \brief Chaos-injection options of one experiment run (DESIGN.md §6).
///
/// A non-empty schedule makes the harness attach a `ChaosController` to the
/// fabric for the duration of the run: per-local ingest-rate handles are
/// registered (so `surge` events work out of the box), the controller
/// starts with the actors, and stops once the root finishes.
struct ChaosOptions {
  /// Fault timeline; empty = no chaos (no controller is created).
  ChaosSchedule schedule;

  /// If non-null, receives the fired-action audit log after the run.
  std::vector<ChaosAuditEntry>* audit = nullptr;
};

/// \brief Live ops plane options (DESIGN.md §12, deco_run `--ops_port`).
///
/// Three independently toggleable pieces share one substrate: the embedded
/// HTTP server (`/metrics`, `/healthz`, `/statusz`), the anomaly watchdog
/// (evaluated on the sampler tick) and the flight recorder (bounded
/// black-box ring dumped on watchdog trip, fatal signal, interrupt or on
/// demand). Any of them being on makes the harness run a sampler even when
/// telemetry is otherwise disabled.
struct OpsOptions {
  /// HTTP server port on 127.0.0.1: -1 = off, 0 = ephemeral (the bound
  /// port is logged and written to `bound_port`).
  int ops_port = -1;

  /// If non-null, receives the actually bound port once the server is up.
  int* bound_port = nullptr;

  /// One-line stderr progress heartbeat interval; 0 = off.
  TimeNanos status_interval_nanos = 0;

  /// Anomaly watchdog master switch (also turned on by `ops_port >= 0`).
  bool watchdog = false;
  WatchdogOptions watchdog_options;

  /// Flight recorder master switch (also turned on by `watchdog` — alert
  /// trips want a black box to dump).
  bool flight_recorder = false;
  FlightRecorder::Options flight_recorder_options;

  /// Dump path for the flight recorder; empty = `deco_flight_<nanos>.json`
  /// next to the working directory when a dump triggers.
  std::string flight_recorder_out;

  /// Always dump the flight recorder at the end of the run (deco_run
  /// `--dump_flight_recorder`), not only on a trip/crash/interrupt.
  bool dump_flight_recorder = false;

  /// Install SIGSEGV/SIGABRT handlers that dump the flight recorder
  /// before re-raising (deco_run turns this on with the recorder).
  bool crash_handler = false;

  /// Cooperative-interrupt flag (deco_run's SIGINT/SIGTERM handlers set
  /// it): when it flips to true mid-run, the harness stops the actors,
  /// dumps the flight recorder, and still flushes every exporter —
  /// the report notes `interrupted`. Null = not interruptible.
  std::atomic<bool>* interrupt = nullptr;

  /// If non-null, receives the fired-alert history after the run (also
  /// exported in telemetry JSON schema v6).
  std::vector<Alert>* alerts = nullptr;

  /// Final `/metrics` Prometheus exposition output path (deco_run
  /// `--metrics_out`), rendered once after the run; empty = no file. Works
  /// without an HTTP port — the renderer needs no socket.
  std::string metrics_out;

  /// If non-null, receives the final `/metrics` exposition text
  /// (caller-owned; for tests and benches without file I/O).
  std::string* metrics_sink = nullptr;

  /// True when any live-ops piece is requested.
  bool Any() const {
    return ops_port >= 0 || status_interval_nanos > 0 || watchdog ||
           flight_recorder || dump_flight_recorder ||
           interrupt != nullptr || !metrics_out.empty() ||
           metrics_sink != nullptr;
  }
};

/// \brief Full description of one experiment run.
struct ExperimentConfig {
  Scheme scheme = Scheme::kDecoAsync;

  /// The streamed query (window + aggregate). Deco schemes support
  /// count-based tumbling windows with decomposable aggregates; Central /
  /// Scotty / Disco additionally run sliding count windows; holistic
  /// aggregates require Central (paper footnote 2).
  QueryConfig query;

  /// Topology: `num_locals` local nodes, each ingesting
  /// `streams_per_local` sensor streams.
  size_t num_locals = 2;
  size_t streams_per_local = 4;

  /// Events each local node produces before end-of-stream.
  uint64_t events_per_local = 1'000'000;

  /// Nominal per-local-node event rate (events/second of event time),
  /// split evenly across its streams.
  double base_rate = 1'000'000.0;

  /// Per-local-node rate multiplier spread: local node `i` runs at
  /// `base_rate * (1 + rate_skew * i)`. 0 = homogeneous.
  double rate_skew = 0.0;

  /// The paper's event-rate-change parameter (e.g. 0.01 for "1%").
  double rate_change = 0.01;

  /// Events between instantaneous-rate redraws; 0 = derive from the
  /// window size (a few redraws per local window).
  uint64_t rate_epoch_events = 0;

  /// Ingestion batch granularity (events per data-plane message).
  size_t batch_size = 4096;

  /// IoT emulation (paper §5.3): per-local-node CPU cap in events/sec and
  /// egress bandwidth cap in bytes/sec; 0 = unconstrained.
  uint64_t cpu_events_per_sec = 0;
  uint64_t egress_bytes_per_sec = 0;

  /// One-way link latency between root and locals, nanoseconds.
  TimeNanos link_latency_nanos = 0;

  /// Probability of dropping any message (unreliable-network injection).
  double drop_probability = 0.0;

  /// Base PRNG seed; all stream seeds derive from it deterministically.
  uint64_t seed = 42;

  /// Deterministic simulation mode (DESIGN.md §8, deco_run `--sim`). The
  /// run executes under a single-runnable-thread virtual-time scheduler
  /// seeded with `seed`: link latency, shaping, mailbox wakeups, chaos
  /// actions and telemetry ticks all become events on one priority queue,
  /// so the whole run — message order, reports, byte counters — replays
  /// byte-identically from `(config, seed)` and sleeps cost no wall time.
  /// Note: virtual time only advances through waits, so chaos offsets only
  /// land mid-stream if the run is paced (set `cpu_events_per_sec`).
  bool sim = false;

  /// Sim mode only: abort with an error once virtual time would exceed
  /// this (0 = unlimited). Guards fuzz tests against virtual livelock.
  TimeNanos sim_time_limit_nanos = 0;

  /// Deco tuning knobs.
  DecoRootOptions root_options;
  DecoLocalOptions local_options;

  /// Live telemetry (sampler + tracing + export).
  TelemetryOptions telemetry;

  /// Per-thread CPU/allocation profiling.
  ProfilerOptions profile;

  /// Window provenance records + live accuracy attribution.
  ProvenanceOptions provenance;

  /// Scheduled fault injection (crash/restart/drop/lag/partition/surge).
  ChaosOptions chaos;

  /// Multi-query serving layer (registry + admission budget).
  ServeOptions serve;

  /// Live ops plane (HTTP endpoints + watchdog + flight recorder).
  OpsOptions ops;

  /// Cardinality governance of every observability surface (DESIGN.md
  /// §13, deco_run `--obs_node_detail_limit`): above
  /// `node_detail_limit` locals, per-node telemetry/metrics/provenance
  /// detail collapses into fleet aggregates plus top-k offenders.
  /// `node_detail_limit = 0` disables governance (unlimited detail);
  /// at or below the limit every surface is byte-identical to the
  /// ungoverned output.
  ObsGovernance obs_governance;

  Status Validate() const;
};

/// \brief Runs one experiment to completion and returns its measurements.
Result<RunReport> RunExperiment(const ExperimentConfig& config);

/// \brief Builds the ingest configuration of local node `ordinal` under
/// `config` (exposed for tests).
IngestConfig MakeIngestConfig(const ExperimentConfig& config,
                              size_t ordinal);

}  // namespace deco
