#pragma once

#include <vector>

#include "harness/experiment.h"
#include "obs/provenance.h"

/// \file oracle.h
/// \brief Single-threaded reference oracle for differential testing.
///
/// `ComputeOracleReference` replays the exact event streams an
/// `ExperimentConfig` describes — the same `MakeIngestConfig` seeds, the
/// same per-node `StreamSet` merge, the same root-side k-way merge — with
/// no threads, no fabric and no scheduler, and windows them with the
/// library's own window operator. The result is the Central ground truth
/// computed by construction rather than by running the Central scheme,
/// which makes it an *independent* witness: a bug that breaks Central and
/// a distributed scheme the same way still diverges from the oracle.
///
/// The differential test (tests/differential_test.cc) runs every scheme in
/// sim mode against this reference: exact schemes must reproduce the
/// oracle's windows and consumption; approximate schemes must stay within
/// their documented error bounds.

namespace deco {

/// \brief Ground-truth result of one experiment configuration.
struct OracleReference {
  /// Windows in global `(timestamp, stream, id)` order; `value`,
  /// `event_count` and `end_ts` are filled, latency fields are zero (the
  /// oracle has no notion of processing time).
  std::vector<GlobalWindowRecord> windows;

  /// Per-window, per-node consumed counts, bookkept exactly the way
  /// `CentralizedRoot` does (counts reset at every window close).
  ConsumptionLog consumption;

  /// Events covered by the emitted windows.
  uint64_t events_processed = 0;
};

/// \brief Computes the reference result for `config` single-threadedly.
/// Only `config`'s query/topology/stream fields matter; `scheme`, network
/// shaping and chaos are ignored (the oracle models a perfect network).
Result<OracleReference> ComputeOracleReference(const ExperimentConfig& config);

/// \brief Ground truth for one query of a served set (DESIGN.md §11):
/// replays the merged global event order, cuts it into protocol panes of
/// `pane_length` events, and composes `query`'s windows from the panes in
/// `[start_pane, end_pane)` exactly the way the root's `QueryComposer`
/// does — window `j` covers panes `[start_pane + j*pps, … + ppw)`. Pass
/// the *effective* panes the run reports (`QueryRunResult::start_pane` /
/// `end_pane`), not the requested schedule: the root activates at or after
/// the requested pane. Only complete panes count; a partial tail pane at
/// end-of-stream never feeds a window (matching the protocol).
Result<std::vector<GlobalWindowRecord>> ComputeQueryOracle(
    const ExperimentConfig& config, const QueryConfig& query,
    uint64_t pane_length, uint64_t start_pane = 0,
    uint64_t end_pane = UINT64_MAX);

/// \brief Recomputes each window's aggregate from a run's own consumption
/// log: window `w`'s value is re-derived by pulling exactly
/// `consumption.window(w)[n]` events from node `n`'s regenerated stream, in
/// stream order. For tumbling count windows this checks a run's
/// *self-consistency* — the reported value must be the aggregate of the
/// events the run claims to have consumed — independently of whether those
/// events match the oracle's window boundaries. This is the exactness
/// notion that applies to Deco-async, whose window boundaries may legally
/// deviate from the global order while every reported value must still be
/// the true aggregate of a contiguous per-node consumption.
Result<std::vector<double>> RecomputeWindowValues(
    const ExperimentConfig& config, const ConsumptionLog& consumption);

/// \brief Options of `AttributeWindowError`.
struct AttributionOptions {
  /// When > 0, only a deterministic seeded reservoir of this many windows
  /// gets an accuracy estimate (wall-clock runs, where estimating every
  /// window would cost more than the run). 0 = estimate every window (the
  /// sim default; structural work is O(windows · nodes) either way, the
  /// reservoir only bounds the emitted records).
  size_t reservoir = 0;

  /// Reservoir PRNG seed; typically the experiment seed so the sampled
  /// window set replays deterministically.
  uint64_t seed = 0;
};

/// \brief Live accuracy attribution (DESIGN.md §10): decomposes each
/// emitted tumbling window's observed error `emitted − truth` into three
/// components that sum to it exactly:
///
///  - `drop_error`      — oracle-window events the run *never* consumed
///                        (crashed nodes, removed nodes, truncated tails);
///  - `staleness_error` — events consumed in a *different* window than the
///                        oracle placed them (asynchronous boundary shift:
///                        shifted-in minus shifted-out contributions);
///  - `approx_error`    — `emitted − recomputed`: any difference between
///                        the reported value and the exact aggregate of
///                        the events the run claims to have consumed. For
///                        `Scheme::kApprox` the shift component is folded
///                        in here too: the fixed-share apportionment *is*
///                        the approximation mechanism.
///
/// Every scheme consumes each node's stream as a contiguous prefix, so the
/// oracle/run window memberships are interval overlaps on per-node
/// cumulative positions (same observation as `CompareConsumption`); value
/// sums over those intervals come from per-node prefix sums captured at
/// the interval boundaries in one streaming pass. For `sum`/`count` the
/// per-component values are exact; for nonlinear aggregates the membership
/// deltas are computed in sum-space and `recomputed − truth` is split
/// proportionally between drop and staleness (the sum stays exact by
/// construction). Sliding windows are rejected (per-pane provenance
/// records carry no truth alignment).
Result<std::vector<WindowAccuracy>> AttributeWindowError(
    const ExperimentConfig& config, const RunReport& report,
    const AttributionOptions& options = {});

}  // namespace deco
