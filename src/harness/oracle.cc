#include "harness/oracle.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "baseline/root_merger.h"
#include "node/stream_set.h"
#include "window/window.h"

namespace deco {

namespace {

// Every local node's full event budget, regenerated from the config's
// seeds. Index = node ordinal; events are in the node's local merged order
// (the order every scheme consumes them in).
Result<std::vector<EventVec>> RegenerateLocalStreams(
    const ExperimentConfig& config) {
  std::vector<EventVec> locals(config.num_locals);
  for (size_t i = 0; i < config.num_locals; ++i) {
    const IngestConfig ingest = MakeIngestConfig(config, i);
    StreamSet streams(ingest.streams);
    locals[i].reserve(static_cast<size_t>(config.events_per_local));
    streams.NextBatch(static_cast<size_t>(config.events_per_local),
                      &locals[i]);
  }
  return locals;
}

}  // namespace

Result<OracleReference> ComputeOracleReference(
    const ExperimentConfig& config) {
  DECO_ASSIGN_OR_RETURN(
      auto func, MakeAggregate(config.query.aggregate, config.query.quantile_q));
  DECO_ASSIGN_OR_RETURN(auto windower,
                        MakeWindower(config.query.window, func.get()));
  DECO_ASSIGN_OR_RETURN(std::vector<EventVec> locals,
                        RegenerateLocalStreams(config));

  RootMerger merger(config.num_locals);
  for (size_t i = 0; i < config.num_locals; ++i) {
    merger.Append(i, std::move(locals[i]), 0.0);
    merger.MarkEos(i);
  }

  OracleReference ref;
  ref.consumption = ConsumptionLog(config.num_locals);
  std::vector<uint64_t> node_counts(config.num_locals, 0);
  std::vector<WindowResult> closed;
  Event event;
  double create_nanos = 0.0;
  size_t from_node = 0;
  while (merger.PopNext(&event, &create_nanos, &from_node)) {
    ++node_counts[from_node];
    closed.clear();
    DECO_RETURN_NOT_OK(windower->Add(event, &closed));
    for (const WindowResult& result : closed) {
      GlobalWindowRecord record;
      record.window_index = ref.windows.size();
      record.value = result.value;
      record.event_count = result.event_count;
      record.end_ts = result.end_time;
      ref.windows.push_back(record);
      ref.consumption.AddWindow(node_counts);
      std::fill(node_counts.begin(), node_counts.end(), 0);
      ref.events_processed += result.event_count;
    }
  }
  return ref;
}

Result<std::vector<GlobalWindowRecord>> ComputeQueryOracle(
    const ExperimentConfig& config, const QueryConfig& query,
    uint64_t pane_length, uint64_t start_pane, uint64_t end_pane) {
  if (pane_length == 0) {
    return Status::InvalidArgument("pane_length must be positive");
  }
  const uint64_t protocol = ProtocolWindowLength(query.window);
  if (protocol % pane_length != 0) {
    return Status::InvalidArgument(
        "pane_length must divide the query's protocol window length");
  }
  DECO_ASSIGN_OR_RETURN(
      auto func, MakeAggregate(query.aggregate, query.quantile_q));
  // Stream regeneration must mirror the harness exactly: a served run
  // replaces `config.query` with the registry's primary before building
  // ingest configs (whose rate epochs derive from the query window), so
  // an un-normalized caller config would regenerate different streams.
  ExperimentConfig stream_config = config;
  if (!config.serve.queries.empty()) {
    stream_config.query = config.serve.queries[0].query;
  }
  DECO_ASSIGN_OR_RETURN(std::vector<EventVec> locals,
                        RegenerateLocalStreams(stream_config));

  // The same k-way merge every root performs, flattened.
  RootMerger merger(config.num_locals);
  for (size_t i = 0; i < config.num_locals; ++i) {
    merger.Append(i, std::move(locals[i]), 0.0);
    merger.MarkEos(i);
  }
  EventVec global;
  global.reserve(config.num_locals *
                 static_cast<size_t>(config.events_per_local));
  Event event;
  double create_nanos = 0.0;
  size_t from_node = 0;
  while (merger.PopNext(&event, &create_nanos, &from_node)) {
    global.push_back(event);
  }

  const uint64_t full_panes = global.size() / pane_length;
  const uint64_t ppw = query.window.length / pane_length;
  const uint64_t pps = query.window.type == WindowType::kSliding
                           ? query.window.slide / pane_length
                           : ppw;
  const uint64_t limit = std::min(end_pane, full_panes);

  std::vector<GlobalWindowRecord> out;
  for (uint64_t ws = start_pane; ws + ppw <= limit; ws += pps) {
    Partial partial = func->CreatePartial();
    const uint64_t lo = ws * pane_length;
    const uint64_t hi = (ws + ppw) * pane_length;
    for (uint64_t i = lo; i < hi; ++i) {
      func->Accumulate(&partial, global[static_cast<size_t>(i)].value);
    }
    GlobalWindowRecord record;
    record.window_index = out.size();
    record.value = func->Finalize(partial);
    record.event_count = hi - lo;
    record.end_ts = global[static_cast<size_t>(hi) - 1].timestamp;
    out.push_back(record);
  }
  return out;
}

Result<std::vector<double>> RecomputeWindowValues(
    const ExperimentConfig& config, const ConsumptionLog& consumption) {
  if (consumption.num_nodes() != config.num_locals) {
    return Status::InvalidArgument(
        "consumption log width does not match the config's node count");
  }
  DECO_ASSIGN_OR_RETURN(
      auto func, MakeAggregate(config.query.aggregate, config.query.quantile_q));
  DECO_ASSIGN_OR_RETURN(std::vector<EventVec> locals,
                        RegenerateLocalStreams(config));

  std::vector<size_t> position(config.num_locals, 0);
  std::vector<double> values;
  values.reserve(consumption.num_windows());
  for (size_t w = 0; w < consumption.num_windows(); ++w) {
    Partial partial = func->CreatePartial();
    const std::vector<uint64_t>& counts = consumption.window(w);
    for (size_t n = 0; n < config.num_locals; ++n) {
      if (position[n] + counts[n] > locals[n].size()) {
        return Status::InvalidArgument(
            "consumption log claims more events than node " +
            std::to_string(n) + " ever produced");
      }
      for (uint64_t k = 0; k < counts[n]; ++k) {
        func->Accumulate(&partial, locals[n][position[n]++].value);
      }
    }
    values.push_back(func->Finalize(partial));
  }
  return values;
}

namespace {

// Per-node prefix sums of event contributions ("weight"), captured only at
// the positions attribution actually evaluates — O(#windows) memory per
// node instead of O(#events).
class BoundarySums {
 public:
  BoundarySums(std::vector<uint64_t> positions, const EventVec& events,
               bool count_space) {
    std::sort(positions.begin(), positions.end());
    positions.erase(std::unique(positions.begin(), positions.end()),
                    positions.end());
    positions_ = std::move(positions);
    sums_.reserve(positions_.size());
    double running = 0.0;
    size_t pos = 0;
    for (uint64_t boundary : positions_) {
      const size_t clamped =
          std::min(static_cast<size_t>(boundary), events.size());
      for (; pos < clamped; ++pos) {
        running += count_space ? 1.0 : events[pos].value;
      }
      sums_.push_back(running);
    }
  }

  /// Contribution sum over positions `[a, b)`. Both must be boundaries.
  double Range(uint64_t a, uint64_t b) const {
    if (b <= a) return 0.0;
    return At(b) - At(a);
  }

 private:
  double At(uint64_t position) const {
    const auto it =
        std::lower_bound(positions_.begin(), positions_.end(), position);
    // Callers only evaluate positions they registered.
    return sums_[static_cast<size_t>(it - positions_.begin())];
  }

  std::vector<uint64_t> positions_;
  std::vector<double> sums_;
};

// Deterministic reservoir of `k` window indices out of `n` (Algorithm R
// with a splitmix64 PRNG): wall-clock runs cap the emitted accuracy
// records without biasing toward either end of the run.
std::vector<bool> SampleWindows(size_t n, size_t k, uint64_t seed) {
  std::vector<bool> sampled(n, true);
  if (k == 0 || n <= k) return sampled;
  uint64_t state = seed ^ 0x9e3779b97f4a7c15ull;
  const auto next = [&state]() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  std::vector<size_t> reservoir(k);
  for (size_t i = 0; i < k; ++i) reservoir[i] = i;
  for (size_t i = k; i < n; ++i) {
    const size_t j = static_cast<size_t>(next() % (i + 1));
    if (j < k) reservoir[j] = i;
  }
  std::fill(sampled.begin(), sampled.end(), false);
  for (size_t idx : reservoir) sampled[idx] = true;
  return sampled;
}

}  // namespace

Result<std::vector<WindowAccuracy>> AttributeWindowError(
    const ExperimentConfig& config, const RunReport& report,
    const AttributionOptions& options) {
  if (config.query.window.type == WindowType::kSliding) {
    return Status::InvalidArgument(
        "accuracy attribution supports tumbling windows only (sliding "
        "queries get per-pane provenance records without truth alignment)");
  }
  const ConsumptionLog& run = report.consumption;
  if (run.num_nodes() != config.num_locals) {
    return Status::InvalidArgument(
        "run consumption log width does not match the config");
  }
  DECO_ASSIGN_OR_RETURN(OracleReference ref, ComputeOracleReference(config));
  DECO_ASSIGN_OR_RETURN(std::vector<double> recomputed,
                        RecomputeWindowValues(config, run));
  DECO_ASSIGN_OR_RETURN(std::vector<EventVec> locals,
                        RegenerateLocalStreams(config));

  const size_t windows =
      std::min({report.windows.size(), ref.windows.size(),
                run.num_windows(), recomputed.size()});
  const std::vector<bool> sampled =
      SampleWindows(windows, options.reservoir, options.seed);

  const bool count_space = config.query.aggregate == AggregateKind::kCount;
  const bool exact_split =
      config.query.aggregate == AggregateKind::kSum || count_space;

  const size_t m = config.num_locals;
  std::vector<uint64_t> run_total(m, 0);
  for (size_t n = 0; n < m; ++n) {
    run_total[n] = run.CumulativeBefore(run.num_windows(), n);
  }
  std::vector<BoundarySums> sums;
  sums.reserve(m);
  for (size_t n = 0; n < m; ++n) {
    std::vector<uint64_t> boundaries;
    boundaries.reserve(2 * windows + 3);
    for (size_t w = 0; w <= windows; ++w) {
      boundaries.push_back(run.CumulativeBefore(w, n));
      boundaries.push_back(ref.consumption.CumulativeBefore(w, n));
    }
    boundaries.push_back(run_total[n]);
    sums.emplace_back(std::move(boundaries), locals[n], count_space);
  }

  std::vector<WindowAccuracy> out;
  out.reserve(options.reservoir > 0
                  ? std::min(windows, options.reservoir)
                  : windows);
  for (size_t w = 0; w < windows; ++w) {
    if (!sampled[w]) continue;
    double dropped_sum = 0.0;
    double shifted_in_sum = 0.0;
    double shifted_out_sum = 0.0;
    WindowAccuracy acc;
    acc.window_index = w;
    for (size_t n = 0; n < m; ++n) {
      const uint64_t oa = ref.consumption.CumulativeBefore(w, n);
      const uint64_t ob = ref.consumption.CumulativeBefore(w + 1, n);
      const uint64_t ra = run.CumulativeBefore(w, n);
      const uint64_t rb = run.CumulativeBefore(w + 1, n);
      const uint64_t total = run_total[n];
      // Oracle events the run never consumed at all (positions past the
      // node's final consumed prefix).
      const uint64_t drop_lo = std::max(oa, total);
      if (ob > drop_lo) {
        dropped_sum += sums[n].Range(drop_lo, ob);
        acc.dropped_events += ob - drop_lo;
      }
      // Oracle events consumed, but by some *other* window: O \ R clipped
      // to the consumed prefix. O \ R is at most two intervals.
      const auto shifted_out = [&](uint64_t lo, uint64_t hi) {
        hi = std::min(hi, total);
        if (hi > lo) {
          shifted_out_sum += sums[n].Range(lo, hi);
          acc.shifted_out_events += hi - lo;
        }
      };
      shifted_out(oa, std::min(ob, ra));
      shifted_out(std::max(oa, rb), ob);
      // Run events the oracle placed elsewhere: R \ O (consumed by
      // construction).
      const auto shifted_in = [&](uint64_t lo, uint64_t hi) {
        if (hi > lo) {
          shifted_in_sum += sums[n].Range(lo, hi);
          acc.shifted_in_events += hi - lo;
        }
      };
      shifted_in(ra, std::min(rb, oa));
      shifted_in(std::max(ra, ob), rb);
    }
    const double emitted = report.windows[w].value;
    const double truth = ref.windows[w].value;
    const double recomputed_value = recomputed[w];
    acc.emitted_value = emitted;
    acc.truth_value = truth;
    acc.recomputed_value = recomputed_value;
    acc.observed_error = emitted - truth;
    acc.approx_error = emitted - recomputed_value;
    const double membership = recomputed_value - truth;
    if (exact_split) {
      // sum/count: membership error is exactly the sum-space delta;
      // assign the drop part directly and let staleness absorb the
      // floating-point residue so the three components always add up.
      acc.drop_error = -dropped_sum;
    } else {
      // Nonlinear aggregate: split `recomputed − truth` proportionally to
      // the sum-space magnitudes of the two mechanisms.
      const double drop_mag = std::fabs(dropped_sum);
      const double shift_mag = std::fabs(shifted_in_sum - shifted_out_sum);
      acc.drop_error = drop_mag + shift_mag > 0.0
                           ? membership * drop_mag / (drop_mag + shift_mag)
                           : 0.0;
    }
    acc.staleness_error = membership - acc.drop_error;
    if (config.scheme == Scheme::kApprox) {
      // Approx's only mechanism is the fixed-share apportionment; what
      // looks like boundary shift *is* the approximation error.
      acc.approx_error += acc.staleness_error;
      acc.staleness_error = 0.0;
    }
    out.push_back(acc);
  }
  return out;
}

}  // namespace deco
