#include "harness/oracle.h"

#include <algorithm>
#include <utility>

#include "baseline/root_merger.h"
#include "node/stream_set.h"
#include "window/window.h"

namespace deco {

namespace {

// Every local node's full event budget, regenerated from the config's
// seeds. Index = node ordinal; events are in the node's local merged order
// (the order every scheme consumes them in).
Result<std::vector<EventVec>> RegenerateLocalStreams(
    const ExperimentConfig& config) {
  std::vector<EventVec> locals(config.num_locals);
  for (size_t i = 0; i < config.num_locals; ++i) {
    const IngestConfig ingest = MakeIngestConfig(config, i);
    StreamSet streams(ingest.streams);
    locals[i].reserve(static_cast<size_t>(config.events_per_local));
    streams.NextBatch(static_cast<size_t>(config.events_per_local),
                      &locals[i]);
  }
  return locals;
}

}  // namespace

Result<OracleReference> ComputeOracleReference(
    const ExperimentConfig& config) {
  DECO_ASSIGN_OR_RETURN(
      auto func, MakeAggregate(config.query.aggregate, config.query.quantile_q));
  DECO_ASSIGN_OR_RETURN(auto windower,
                        MakeWindower(config.query.window, func.get()));
  DECO_ASSIGN_OR_RETURN(std::vector<EventVec> locals,
                        RegenerateLocalStreams(config));

  RootMerger merger(config.num_locals);
  for (size_t i = 0; i < config.num_locals; ++i) {
    merger.Append(i, std::move(locals[i]), 0.0);
    merger.MarkEos(i);
  }

  OracleReference ref;
  ref.consumption = ConsumptionLog(config.num_locals);
  std::vector<uint64_t> node_counts(config.num_locals, 0);
  std::vector<WindowResult> closed;
  Event event;
  double create_nanos = 0.0;
  size_t from_node = 0;
  while (merger.PopNext(&event, &create_nanos, &from_node)) {
    ++node_counts[from_node];
    closed.clear();
    DECO_RETURN_NOT_OK(windower->Add(event, &closed));
    for (const WindowResult& result : closed) {
      GlobalWindowRecord record;
      record.window_index = ref.windows.size();
      record.value = result.value;
      record.event_count = result.event_count;
      record.end_ts = result.end_time;
      ref.windows.push_back(record);
      ref.consumption.AddWindow(node_counts);
      std::fill(node_counts.begin(), node_counts.end(), 0);
      ref.events_processed += result.event_count;
    }
  }
  return ref;
}

Result<std::vector<double>> RecomputeWindowValues(
    const ExperimentConfig& config, const ConsumptionLog& consumption) {
  if (consumption.num_nodes() != config.num_locals) {
    return Status::InvalidArgument(
        "consumption log width does not match the config's node count");
  }
  DECO_ASSIGN_OR_RETURN(
      auto func, MakeAggregate(config.query.aggregate, config.query.quantile_q));
  DECO_ASSIGN_OR_RETURN(std::vector<EventVec> locals,
                        RegenerateLocalStreams(config));

  std::vector<size_t> position(config.num_locals, 0);
  std::vector<double> values;
  values.reserve(consumption.num_windows());
  for (size_t w = 0; w < consumption.num_windows(); ++w) {
    Partial partial = func->CreatePartial();
    const std::vector<uint64_t>& counts = consumption.window(w);
    for (size_t n = 0; n < config.num_locals; ++n) {
      if (position[n] + counts[n] > locals[n].size()) {
        return Status::InvalidArgument(
            "consumption log claims more events than node " +
            std::to_string(n) + " ever produced");
      }
      for (uint64_t k = 0; k < counts[n]; ++k) {
        func->Accumulate(&partial, locals[n][position[n]++].value);
      }
    }
    values.push_back(func->Finalize(partial));
  }
  return values;
}

}  // namespace deco
