#include "harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "baseline/approx.h"
#include "baseline/centralized_root.h"
#include "baseline/forwarding_local.h"
#include "common/json.h"
#include "common/logging.h"
#include "harness/oracle.h"
#include "node/runtime.h"
#include "obs/export.h"
#include "obs/metric_registry.h"
#include "obs/ops_server.h"
#include "obs/perfetto_export.h"
#include "obs/profiler.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace deco {

const char* SchemeToString(Scheme scheme) {
  switch (scheme) {
    case Scheme::kCentral:
      return "central";
    case Scheme::kScotty:
      return "scotty";
    case Scheme::kDisco:
      return "disco";
    case Scheme::kApprox:
      return "approx";
    case Scheme::kDecoMon:
      return "deco-mon";
    case Scheme::kDecoSync:
      return "deco-sync";
    case Scheme::kDecoAsync:
      return "deco-async";
    case Scheme::kDecoMonLocal:
      return "deco-monlocal";
  }
  return "unknown";
}

Result<Scheme> SchemeFromString(const std::string& name) {
  std::string canonical = name;  // accept deco_async for deco-async etc.
  std::replace(canonical.begin(), canonical.end(), '_', '-');
  for (int i = 0; i <= static_cast<int>(Scheme::kDecoMonLocal); ++i) {
    const Scheme scheme = static_cast<Scheme>(i);
    if (canonical == SchemeToString(scheme)) return scheme;
  }
  return Status::InvalidArgument("unknown scheme: " + name);
}

bool IsDecentralized(Scheme scheme) {
  switch (scheme) {
    case Scheme::kCentral:
    case Scheme::kScotty:
    case Scheme::kDisco:
      return false;
    default:
      return true;
  }
}

namespace {

/// Per-query restrictions shared by the single-query path and every entry
/// of a served set (the harness drives count windows; scheme limits apply
/// to each query a scheme will actually execute).
Status ValidateServedQuery(Scheme scheme, const QueryConfig& query) {
  DECO_RETURN_NOT_OK(query.Validate());
  if (query.window.measure != WindowMeasure::kCount) {
    return Status::NotSupported(
        "the experiment harness drives count-based windows (the paper's "
        "subject); use the windowing library directly for time windows");
  }
  if (query.window.type == WindowType::kSession) {
    return Status::NotSupported(
        "session windows have no fixed size; the harness drives count "
        "windows (use the windowing library directly)");
  }
  if (scheme == Scheme::kApprox &&
      query.window.type == WindowType::kSliding) {
    return Status::NotSupported(
        "the approx baseline estimates tumbling window boundaries only; a "
        "sliding spec would silently degrade to tumbling (found by "
        "tests/differential_test.cc)");
  }
  const auto agg = MakeAggregate(query.aggregate, query.quantile_q);
  DECO_RETURN_NOT_OK(agg.status());
  if (IsDecentralized(scheme) && !(*agg)->IsDecomposable()) {
    return Status::NotSupported(
        "holistic aggregates are processed centrally (paper footnote 2); "
        "use the central scheme");
  }
  return Status::OK();
}

/// True for the schemes whose root/local nodes execute the serving layer
/// natively (shared slice store + runtime add/remove protocol). The other
/// schemes serve query sets via the loop-per-query fallback.
bool ServesNatively(Scheme scheme) {
  switch (scheme) {
    case Scheme::kDecoMon:
    case Scheme::kDecoSync:
    case Scheme::kDecoAsync:
    case Scheme::kDecoMonLocal:
      return true;
    default:
      return false;
  }
}

}  // namespace

Status ExperimentConfig::Validate() const {
  DECO_RETURN_NOT_OK(ValidateServedQuery(
      scheme, serve.queries.empty() ? query : serve.queries[0].query));
  if (!serve.queries.empty()) {
    bool runtime_schedule = false;
    for (const ServedQuery& q : serve.queries) {
      DECO_RETURN_NOT_OK(ValidateServedQuery(scheme, q.query));
      if (q.add_pane != 0 || q.remove_pane != kServePaneNever) {
        runtime_schedule = true;
      }
    }
    if (runtime_schedule && !(scheme == Scheme::kDecoMon ||
                              scheme == Scheme::kDecoSync ||
                              scheme == Scheme::kDecoAsync)) {
      return Status::NotSupported(
          "runtime query add/remove rides the root's assignment protocol; "
          "it needs a root-coordinated Deco scheme (deco-mon, deco-sync or "
          "deco-async)");
    }
    if (serve.queries.size() > 1 && !ServesNatively(scheme) &&
        !chaos.schedule.empty()) {
      return Status::NotSupported(
          "baseline schemes serve query sets as one sub-run per query; a "
          "chaos schedule would be replayed per sub-run and the summed "
          "costs would be meaningless — use a Deco scheme");
    }
  }
  if (num_locals == 0) {
    return Status::InvalidArgument("need at least one local node");
  }
  if (streams_per_local == 0) {
    return Status::InvalidArgument("need at least one stream per local");
  }
  if (events_per_local == 0) {
    return Status::InvalidArgument("events_per_local must be positive");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (!(base_rate > 0.0)) {
    return Status::InvalidArgument("base_rate must be positive");
  }
  if (rate_change < 0.0) {
    return Status::InvalidArgument("rate_change must be non-negative");
  }
  if (!chaos.schedule.empty()) {
    DECO_RETURN_NOT_OK(chaos.schedule.Validate());
    size_t crashes = 0;
    size_t restarts = 0;
    for (const FaultEvent& event : chaos.schedule.events()) {
      if (event.kind == FaultKind::kCrash) ++crashes;
      if (event.kind == FaultKind::kRestart) ++restarts;
    }
    if (crashes > 0) {
      if (scheme == Scheme::kDecoMonLocal) {
        return Status::NotSupported(
            "deco-monlocal peers deadlock on a crashed peer's rate "
            "broadcast; crash chaos needs a root-coordinated scheme");
      }
      const bool deco = scheme == Scheme::kDecoMon ||
                        scheme == Scheme::kDecoSync ||
                        scheme == Scheme::kDecoAsync;
      if (deco && root_options.node_timeout_nanos <= 0) {
        return Status::InvalidArgument(
            "crash chaos against a Deco scheme requires failure detection: "
            "set root_options.node_timeout_nanos (paper 4.3.4)");
      }
      if (!deco && restarts < crashes) {
        return Status::InvalidArgument(
            "baseline locals have no removal path: every crash needs a "
            "matching restart or the run never finishes");
      }
    }
  }
  return Status::OK();
}

IngestConfig MakeIngestConfig(const ExperimentConfig& config,
                              size_t ordinal) {
  IngestConfig ingest;
  ingest.events_to_produce = config.events_per_local;
  ingest.batch_size = config.batch_size;
  ingest.cpu_events_per_sec = config.cpu_events_per_sec;

  uint64_t rate_epoch = config.rate_epoch_events;
  if (rate_epoch == 0) {
    // The paper's rates "change mildly but frequently": many redraws per
    // local window, so consecutive windows see comparable drift and the
    // delta predictor has a meaningful signal (long flat stretches would
    // collapse the delta and turn every step into a correction).
    rate_epoch = std::max<uint64_t>(
        64, config.query.window.length /
                std::max<size_t>(1, config.num_locals) / 16);
  }

  const double node_rate =
      config.base_rate * (1.0 + config.rate_skew * static_cast<double>(
                                    ordinal));
  for (size_t s = 0; s < config.streams_per_local; ++s) {
    StreamConfig stream;
    stream.stream_id = static_cast<StreamId>(
        ordinal * config.streams_per_local + s);
    stream.rate.base_rate =
        node_rate / static_cast<double>(config.streams_per_local);
    stream.rate.change_fraction = config.rate_change;
    stream.rate.epoch_events =
        std::max<uint64_t>(1, rate_epoch / config.streams_per_local);
    stream.value.phase =
        0.37 * static_cast<double>(stream.stream_id);  // replay offsets
    stream.start_time = 0;
    stream.seed = config.seed * 1'000'003 + stream.stream_id * 7919 + 13;
    ingest.streams.push_back(stream);
  }
  return ingest;
}

namespace {

/// Baseline fallback for served query sets: one full sub-run per query
/// (declared below RunExperiment, which it recurses into).
Result<RunReport> RunServeFallback(const ExperimentConfig& input,
                                   const QueryRegistry& registry);

}  // namespace

Result<RunReport> RunExperiment(const ExperimentConfig& input) {
  DECO_RETURN_NOT_OK(input.Validate());

  // Multi-query serving (DESIGN.md §11): build the registry (admission
  // control rejects over-budget sets loudly, before any actor exists).
  // Entry 0 overrides `input.query` as the primary for the whole run.
  const bool serving = !input.serve.queries.empty();
  ServeAdmission admission = input.serve.admission;
  admission.num_locals = input.num_locals;
  QueryRegistry registry(admission);
  if (serving) {
    for (const ServedQuery& q : input.serve.queries) {
      DECO_RETURN_NOT_OK(registry.Add(q));
    }
    if (!ServesNatively(input.scheme) && registry.queries().size() > 1) {
      // Baselines have no shared slice store: loop-per-query fallback.
      return RunServeFallback(input, registry);
    }
  }
  ExperimentConfig config = input;
  if (serving) config.query = registry.queries()[0].query;

  // Sim mode: one scheduler owns the virtual clock and every scheduling
  // decision. Declared before the fabric so it outlives it (the fabric may
  // hold queued delivery events referencing fabric state).
  std::unique_ptr<SimScheduler> sim;
  Clock* clock = SystemClock::Default();
  if (config.sim) {
    sim = std::make_unique<SimScheduler>(config.seed);
    if (config.sim_time_limit_nanos > 0) {
      sim->SetVirtualTimeLimit(config.sim_time_limit_nanos);
    }
    clock = sim->clock();
  }
  NetworkFabric fabric(clock, config.seed);
  if (sim != nullptr) fabric.SetSimScheduler(sim.get());

  Topology topology;
  topology.root = fabric.RegisterNode("root");
  for (size_t i = 0; i < config.num_locals; ++i) {
    topology.locals.push_back(
        fabric.RegisterNode("local-" + std::to_string(i)));
  }

  // Link shaping.
  for (NodeId local : topology.locals) {
    if (config.link_latency_nanos > 0 || config.drop_probability > 0.0) {
      LinkConfig link;
      link.latency_nanos = config.link_latency_nanos;
      link.drop_probability = config.drop_probability;
      DECO_RETURN_NOT_OK(fabric.SetLinkConfig(local, topology.root, link));
      DECO_RETURN_NOT_OK(fabric.SetLinkConfig(topology.root, local, link));
    }
    if (config.egress_bytes_per_sec > 0) {
      NodeNetConfig net;
      net.egress_bytes_per_sec = config.egress_bytes_per_sec;
      DECO_RETURN_NOT_OK(fabric.SetNodeNetConfig(local, net));
    }
  }

  // Chaos: compile the fault timeline against the registered node names and
  // hand every local an ingest-rate handle so `surge` events can scale its
  // input at runtime. The controller thread starts with the actors below.
  std::unique_ptr<ChaosController> chaos;
  std::vector<std::shared_ptr<std::atomic<double>>> rate_handles;
  if (!config.chaos.schedule.empty()) {
    chaos = std::make_unique<ChaosController>(&fabric, clock);
    if (sim != nullptr) chaos->SetSimScheduler(sim.get());
    for (size_t i = 0; i < config.num_locals; ++i) {
      rate_handles.push_back(std::make_shared<std::atomic<double>>(1.0));
      chaos->AddRateHandle("local-" + std::to_string(i), rate_handles[i]);
    }
    DECO_RETURN_NOT_OK(chaos->Prepare(config.chaos.schedule));
  }
  auto ingest_for = [&](size_t ordinal) {
    IngestConfig ingest = MakeIngestConfig(config, ordinal);
    if (ordinal < rate_handles.size()) {
      ingest.rate_multiplier = rate_handles[ordinal];
    }
    return ingest;
  };

  RunReport report;
  report.scheme = SchemeToString(config.scheme);

  // Provenance collection (DESIGN.md §10). Enabled telemetry implies it:
  // schema v4 always carries the provenance section. The tracker lives on
  // the harness but is driven exclusively from the root actor thread; it
  // is read back only after the joins below.
  std::unique_ptr<ProvenanceTracker> provenance_tracker;
  const bool provenance_on =
      config.provenance.enabled || config.provenance.sink != nullptr ||
      !config.provenance.json_out.empty() || config.telemetry.enabled;
  if (provenance_on) {
    const uint64_t regions_per_window =
        config.scheme == Scheme::kDecoAsync ? 3
        : config.scheme == Scheme::kDecoMon ||
                config.scheme == Scheme::kDecoSync ||
                config.scheme == Scheme::kDecoMonLocal
            ? 2
            : 1;
    provenance_tracker = std::make_unique<ProvenanceTracker>(
        config.num_locals, regions_per_window);
    provenance_tracker->SetGovernance(config.obs_governance);
    provenance_tracker->SetFabric(&fabric, topology.locals);
    if (config.provenance.max_windows > 0) {
      provenance_tracker->set_max_windows(config.provenance.max_windows);
    }
  }

  Runtime runtime(&fabric);
  Actor* root_actor = nullptr;

  auto add_root = [&](std::unique_ptr<Actor> actor) {
    root_actor = actor.get();
    runtime.AddActor(std::move(actor));
  };

  switch (config.scheme) {
    case Scheme::kCentral:
    case Scheme::kScotty:
    case Scheme::kDisco: {
      const CentralizedMode mode =
          config.scheme == Scheme::kCentral  ? CentralizedMode::kCentral
          : config.scheme == Scheme::kScotty ? CentralizedMode::kScotty
                                             : CentralizedMode::kDisco;
      const WireFormat format = config.scheme == Scheme::kDisco
                                    ? WireFormat::kText
                                    : WireFormat::kBinary;
      auto central = std::make_unique<CentralizedRoot>(
          &fabric, topology.root, clock, topology, config.query, mode,
          &report);
      central->set_provenance(provenance_tracker.get());
      add_root(std::move(central));
      for (size_t i = 0; i < config.num_locals; ++i) {
        runtime.AddActor(std::make_unique<ForwardingLocalNode>(
            &fabric, topology.locals[i], clock, topology, ingest_for(i),
            format));
      }
      break;
    }
    case Scheme::kApprox: {
      auto approx = std::make_unique<ApproxRoot>(
          &fabric, topology.root, clock, topology, config.query, &report);
      approx->set_provenance(provenance_tracker.get());
      add_root(std::move(approx));
      for (size_t i = 0; i < config.num_locals; ++i) {
        runtime.AddActor(std::make_unique<ApproxLocalNode>(
            &fabric, topology.locals[i], clock, topology, ingest_for(i),
            config.query));
      }
      break;
    }
    case Scheme::kDecoMon:
    case Scheme::kDecoSync:
    case Scheme::kDecoAsync:
    case Scheme::kDecoMonLocal: {
      DecoScheme scheme = DecoScheme::kSync;
      if (config.scheme == Scheme::kDecoMon ||
          config.scheme == Scheme::kDecoMonLocal) {
        scheme = DecoScheme::kMon;
      } else if (config.scheme == Scheme::kDecoAsync) {
        scheme = DecoScheme::kAsync;
      }
      DecoRootOptions root_options = config.root_options;
      DecoLocalOptions local_options = config.local_options;
      if (config.scheme == Scheme::kDecoMonLocal) {
        root_options.peer_rate_exchange = true;
        local_options.peer_rate_exchange = true;
      }
      auto deco_root = std::make_unique<DecoRootNode>(
          &fabric, topology.root, clock, topology, config.query, scheme,
          &report, root_options);
      deco_root->set_provenance(provenance_tracker.get());
      if (serving) deco_root->set_serve(&registry);
      add_root(std::move(deco_root));
      for (size_t i = 0; i < config.num_locals; ++i) {
        auto local = std::make_unique<DecoLocalNode>(
            &fabric, topology.locals[i], clock, topology, ingest_for(i),
            config.query, scheme, local_options);
        if (serving) local->set_serve(&registry);
        runtime.AddActor(std::move(local));
      }
      break;
    }
  }

  // Live telemetry: reset the process-global registry so counters cover
  // this run only, install a trace sink for the window-lifecycle spans, and
  // sample the fabric in the background for the duration of the run. The
  // live ops plane (DESIGN.md §12) shares the substrate: any ops piece
  // being on also resets the registry and runs the sampler (without a
  // trace sink) so the watchdog has a tick and the endpoints fresh state.
  const bool ops_on = config.ops.Any();
  const bool watchdog_on =
      ops_on && (config.ops.watchdog || config.ops.ops_port >= 0);
  const bool recorder_on =
      ops_on && (config.ops.flight_recorder ||
                 config.ops.dump_flight_recorder || watchdog_on ||
                 config.ops.crash_handler);
  const std::string flight_path = config.ops.flight_recorder_out.empty()
                                      ? "deco_flight_recorder.json"
                                      : config.ops.flight_recorder_out;
  std::unique_ptr<TraceSink> trace_sink;
  std::unique_ptr<Sampler> sampler;
  if (config.telemetry.enabled || ops_on) {
    MetricRegistry::Global()->Reset();
    sampler = std::make_unique<Sampler>(
        clock, &fabric, MetricRegistry::Global(),
        config.telemetry.sample_interval_nanos, sim.get());
    sampler->SetGovernance(config.obs_governance);
  }
  if (config.telemetry.enabled) {
    trace_sink =
        std::make_unique<TraceSink>(clock, config.telemetry.trace_capacity);
    TraceSink::Install(trace_sink.get());
  }

  std::unique_ptr<FlightRecorder> flight_recorder;
  if (recorder_on) {
    flight_recorder = std::make_unique<FlightRecorder>(
        clock, config.ops.flight_recorder_options);
    FlightRecorder::Install(flight_recorder.get());
    if (config.ops.crash_handler) {
      FlightRecorder::InstallCrashHandler(flight_path);
    }
  }
  std::unique_ptr<Watchdog> watchdog;
  if (watchdog_on) {
    watchdog = std::make_unique<Watchdog>(config.ops.watchdog_options,
                                          MetricRegistry::Global());
    if (flight_recorder != nullptr) {
      watchdog->SetFlightRecorder(flight_recorder.get(), flight_path);
    }
    sampler->SetObserver([w = watchdog.get()](const TelemetrySample& s) {
      w->OnSample(s);
    });
  }
  if (sampler != nullptr) sampler->Start();

  // The HTTP endpoints read shared state only; the serve registry and the
  // chaos controller arrive as an opaque JSON fragment because this layer
  // sits above the obs library in the dependency graph.
  // The server object is also built port-less when only a final /metrics
  // render is requested (`metrics_out` / `metrics_sink`): the renderers
  // need no socket.
  const bool metrics_render_on = !config.ops.metrics_out.empty() ||
                                 config.ops.metrics_sink != nullptr;
  std::unique_ptr<OpsServer> ops_server;
  if (config.ops.ops_port >= 0 || metrics_render_on) {
    OpsServer::Options server_options;
    server_options.port = std::max(config.ops.ops_port, 0);
    server_options.clock = clock;
    server_options.fabric = &fabric;
    server_options.registry = MetricRegistry::Global();
    server_options.watchdog = watchdog.get();
    server_options.sim = config.sim;
    server_options.governance = config.obs_governance;
    server_options.sampler = sampler.get();
    const QueryRegistry* serve_registry = serving ? &registry : nullptr;
    ChaosController* chaos_ptr = chaos.get();
    server_options.statusz_extra = [serve_registry, chaos_ptr]() {
      std::string out = "\"serving\":{\"enabled\":";
      out += serve_registry != nullptr ? "true" : "false";
      if (serve_registry != nullptr) {
        out += ",\"queries\":[";
        const auto& queries = serve_registry->queries();
        for (size_t i = 0; i < queries.size(); ++i) {
          if (i != 0) out += ",";
          out += "{\"id\":";
          JsonAppendU64(&out, queries[i].id);
          out += ",\"tenant\":";
          JsonAppendString(&out, queries[i].tenant);
          out += "}";
        }
        out += "],\"pane_length\":";
        JsonAppendU64(&out, serve_registry->PaneLength());
        out += ",\"slots\":";
        JsonAppendU64(&out, serve_registry->slots().size());
      }
      out += "},\"chaos\":{\"enabled\":";
      out += chaos_ptr != nullptr ? "true" : "false";
      if (chaos_ptr != nullptr) {
        out += ",\"actions\":";
        JsonAppendU64(&out, chaos_ptr->action_count());
        out += ",\"fired\":";
        JsonAppendU64(&out, chaos_ptr->fired_count());
      }
      out += "}";
      return out;
    };
    ops_server = std::make_unique<OpsServer>(std::move(server_options));
    if (config.ops.ops_port >= 0) {
      const Status server_started = ops_server->Start();
      if (!server_started.ok()) {
        if (trace_sink != nullptr) TraceSink::Install(nullptr);
        if (flight_recorder != nullptr) FlightRecorder::Install(nullptr);
        return server_started;
      }
      if (config.ops.bound_port != nullptr) {
        *config.ops.bound_port = ops_server->port();
      }
    }
  }

  // One-line stderr heartbeat (deco_run --status_interval_ms). Counter
  // pointers are stable, so hoist the lookups out of the tick.
  std::unique_ptr<StatusTicker> status_ticker;
  if (config.ops.status_interval_nanos > 0) {
    MetricRegistry* reg = MetricRegistry::Global();
    Counter* events_in = reg->counter("local.events_ingested");
    Counter* panes = reg->counter("local.windows_produced");
    Counter* windows = reg->counter("root.windows_emitted");
    Counter* corrections = reg->counter("root.corrections");
    Watchdog* wd = watchdog.get();
    const TimeNanos t0 = clock->NowNanos();
    status_ticker = std::make_unique<StatusTicker>(
        config.ops.status_interval_nanos,
        [clock, t0, events_in, panes, windows, corrections, wd]() {
          std::ostringstream line;
          line << "[deco] t=" << std::fixed << std::setprecision(1)
               << static_cast<double>(clock->NowNanos() - t0) / 1e9
               << "s events_in=" << events_in->value()
               << " panes=" << panes->value()
               << " windows=" << windows->value()
               << " corrections=" << corrections->value();
          if (wd != nullptr) {
            line << " alerts=" << wd->fired_count();
          }
          return line.str();
        });
    status_ticker->Start();
  }

  // Cooperative interrupt (deco_run SIGINT/SIGTERM): a watcher thread
  // polls the flag and, once set, stops the actors and closes the fabric
  // so the joins below unblock — after which the normal export path runs.
  std::atomic<bool> interrupted{false};
  std::atomic<bool> run_done{false};
  std::thread interrupt_watcher;
  if (config.ops.interrupt != nullptr) {
    std::atomic<bool>* flag = config.ops.interrupt;
    interrupt_watcher = std::thread([&runtime, &fabric, &interrupted,
                                     &run_done, flag] {
      while (!run_done.load(std::memory_order_acquire)) {
        if (flag->load(std::memory_order_acquire)) {
          interrupted.store(true, std::memory_order_release);
          DECO_LOG(WARNING)
              << "interrupt: stopping actors, flushing telemetry";
          runtime.StopAll();
          fabric.Shutdown();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  // In-run profiler: installed before the actors start so every actor
  // thread registers its slot in Start's body; collected after the joins
  // below so every slot has finished.
  std::unique_ptr<Profiler> profiler;
  if (config.profile.enabled) {
    profiler = std::make_unique<Profiler>(config.profile.count_allocs);
    Profiler::Install(profiler.get());
  }

  // Per-tenant accounting baseline: the `serve.tenant.*` counters live in
  // the process-global registry (so telemetry samples see them), which
  // accumulates across runs in one process — diff a before/after reading
  // to isolate this run. Hoisted after the telemetry Reset above.
  struct TenantBaseline {
    Counter* bytes = nullptr;
    Counter* agg_ops = nullptr;
    int64_t bytes_before = 0;
    int64_t agg_ops_before = 0;
  };
  std::vector<TenantBaseline> tenant_baselines;
  if (serving) {
    for (const std::string& tenant : registry.tenants()) {
      TenantBaseline b;
      b.bytes = MetricRegistry::Global()->counter(
          "serve.tenant." + tenant + ".bytes");
      b.agg_ops = MetricRegistry::Global()->counter(
          "serve.tenant." + tenant + ".agg_ops");
      b.bytes_before = b.bytes->value();
      b.agg_ops_before = b.agg_ops->value();
      tenant_baselines.push_back(b);
    }
  }

  const TimeNanos start = clock->NowNanos();
  runtime.StartAll();
  if (chaos != nullptr) {
    const Status chaos_started = chaos->Start();
    if (!chaos_started.ok()) {
      // The profiler, trace sink and flight recorder are process-global;
      // never leave a dangling install. The ops surfaces reference the
      // fabric, so they stop here too.
      if (profiler != nullptr) Profiler::Install(nullptr);
      if (trace_sink != nullptr) TraceSink::Install(nullptr);
      if (flight_recorder != nullptr) FlightRecorder::Install(nullptr);
      run_done.store(true, std::memory_order_release);
      if (interrupt_watcher.joinable()) interrupt_watcher.join();
      if (status_ticker != nullptr) status_ticker->Stop();
      if (ops_server != nullptr) ops_server->Stop();
      return chaos_started;
    }
  }
  Status sim_run = Status::OK();
  if (sim != nullptr) {
    // Drive the simulation until the root finishes. On a sim error
    // (deadlock, virtual-time limit) the root task never completes, so its
    // thread must not be joined before the teardown below unblocks it.
    sim_run = sim->RunUntilTaskDone(root_actor->sim_task());
    if (sim_run.ok()) root_actor->Join();
  } else {
    root_actor->Join();
  }
  const TimeNanos end = clock->NowNanos();

  // Stop fault injection before tearing the topology down: a crash fired
  // during shutdown would wedge the joins below.
  if (chaos != nullptr) chaos->Stop();

  // Uninstall before the sink can go out of scope on any early return;
  // straggler threads then see a null sink and skip recording.
  if (sampler != nullptr) sampler->Stop();
  if (trace_sink != nullptr) TraceSink::Install(nullptr);

  runtime.StopAll();
  fabric.Shutdown();
  if (sim != nullptr) {
    // Wind the surviving tasks down in virtual time. Every remaining wait
    // is unblockable by now — mailboxes closed, stop flags set, sleeps
    // carry finite virtual deadlines — so the drain always terminates.
    const Status drained = sim->DrainAll();
    if (sim_run.ok() && !drained.ok()) sim_run = drained;
  }
  Status joined = runtime.JoinAll();
  // Collect after every actor thread has joined (so each slot is final)
  // but before the error returns below: a failed run still uninstalls.
  if (profiler != nullptr) {
    Profiler::Install(nullptr);
    report.profile = profiler->Collect();
  }

  // Ops-plane teardown: the run is over, so retire the watcher and the
  // live surfaces, dump the black box if asked (a watchdog trip already
  // dumped once on its own), and uninstall the global recorder.
  run_done.store(true, std::memory_order_release);
  if (interrupt_watcher.joinable()) interrupt_watcher.join();
  if (status_ticker != nullptr) status_ticker->Stop();
  if (ops_server != nullptr) ops_server->Stop();
  if (flight_recorder != nullptr) {
    FlightRecorder::Install(nullptr);
    if (config.ops.dump_flight_recorder || interrupted.load()) {
      flight_recorder->DumpJson(
          flight_path, interrupted.load() ? "interrupt" : "requested");
      DECO_LOG(INFO) << "flight recorder dumped to " << flight_path;
    }
  }
  if (config.ops.alerts != nullptr && watchdog != nullptr) {
    *config.ops.alerts = watchdog->Alerts();
  }
  // Final /metrics render (deco_run --metrics_out): the fabric object and
  // the registry outlive the shutdown above, so a port-less render here
  // sees the run's final counters.
  if (ops_server != nullptr && metrics_render_on) {
    const std::string exposition = ops_server->RenderMetrics();
    if (config.ops.metrics_sink != nullptr) {
      *config.ops.metrics_sink = exposition;
    }
    if (!config.ops.metrics_out.empty()) {
      std::FILE* f = std::fopen(config.ops.metrics_out.c_str(), "w");
      if (f == nullptr) {
        return Status::IOError("cannot open " + config.ops.metrics_out +
                               " for writing");
      }
      const size_t written =
          std::fwrite(exposition.data(), 1, exposition.size(), f);
      const bool close_ok = std::fclose(f) == 0;
      if (written != exposition.size() || !close_ok) {
        return Status::IOError("short write to " + config.ops.metrics_out);
      }
    }
  }
  if (interrupted.load()) {
    // An interrupted run tears the fabric down under the actors: their
    // cancelled sends and closed mailboxes surface as errors that would
    // normally fail the run. The whole point of cooperative shutdown is
    // to still flush every exporter, so downgrade them to warnings.
    if (!joined.ok()) {
      DECO_LOG(WARNING) << "interrupted run: ignoring actor error: "
                        << joined.ToString();
      joined = Status::OK();
    }
    if (!sim_run.ok()) {
      DECO_LOG(WARNING) << "interrupted run: ignoring sim error: "
                        << sim_run.ToString();
      sim_run = Status::OK();
    }
  }
  DECO_RETURN_NOT_OK(sim_run);
  DECO_RETURN_NOT_OK(joined);

  report.scheme = SchemeToString(config.scheme);
  report.wall_seconds = static_cast<double>(end - start) /
                        static_cast<double>(kNanosPerSecond);
  report.throughput_eps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.events_processed) /
                report.wall_seconds
          : 0.0;
  report.network = fabric.Stats();
  report.delivery_hash = fabric.delivery_hash();

  // Serving summary + per-tenant accounting (counter diff; CPU estimated
  // by scaling the profiler's measured local-node CPU by each tenant's
  // share of aggregate ops — an attribution, not a measurement).
  if (serving) {
    report.serving.enabled = true;
    report.serving.pane_length = registry.PaneLength();
    report.serving.queries = registry.queries().size();
    report.serving.slots = registry.slots().size();
    for (const QueryRunResult& qr : report.query_results) {
      report.serving.total_query_windows += qr.windows.size();
    }
    uint64_t local_cpu_nanos = 0;
    for (const ThreadProfile& t : report.profile.threads) {
      if (t.name.rfind("local-", 0) == 0) local_cpu_nanos += t.cpu_nanos;
    }
    uint64_t total_ops = 0;
    std::vector<TenantUsage> usages;
    for (size_t t = 0; t < tenant_baselines.size(); ++t) {
      const TenantBaseline& b = tenant_baselines[t];
      TenantUsage usage;
      usage.tenant = registry.tenants()[t];
      usage.bytes = static_cast<uint64_t>(
          std::max<int64_t>(0, b.bytes->value() - b.bytes_before));
      usage.agg_ops = static_cast<uint64_t>(
          std::max<int64_t>(0, b.agg_ops->value() - b.agg_ops_before));
      total_ops += usage.agg_ops;
      for (const ServedQuery& q : registry.queries()) {
        if (q.tenant == usage.tenant) ++usage.queries;
      }
      usages.push_back(std::move(usage));
    }
    for (TenantUsage& usage : usages) {
      if (total_ops > 0 && local_cpu_nanos > 0) {
        usage.cpu_nanos_est = static_cast<uint64_t>(
            static_cast<double>(local_cpu_nanos) *
            (static_cast<double>(usage.agg_ops) /
             static_cast<double>(total_ops)));
      }
      report.serving.tenants.push_back(std::move(usage));
    }
  }

  // Provenance post-pass: attach the accuracy estimates (oracle tap) and
  // fold the summary into the report before any exporter runs.
  ProvenanceLog provenance_log;
  if (provenance_tracker != nullptr) {
    provenance_log = provenance_tracker->TakeLog();
    // The oracle tap replays the primary query against the pane-level
    // provenance records; it only lines up when panes and primary windows
    // coincide (tumbling primary, no smaller-gcd co-query).
    if (config.provenance.estimate &&
        config.query.window.type != WindowType::kSliding &&
        (!serving ||
         registry.PaneLength() == config.query.window.length)) {
      AttributionOptions attribution;
      // Sim runs estimate every window (virtual time makes the replay
      // free); wall-clock runs cap the emitted records by reservoir.
      attribution.reservoir =
          config.sim ? 0 : config.provenance.accuracy_reservoir;
      attribution.seed = config.seed;
      Result<std::vector<WindowAccuracy>> accuracy =
          AttributeWindowError(config, report, attribution);
      if (accuracy.ok()) {
        provenance_log.accuracy = std::move(*accuracy);
      } else {
        DECO_LOG(WARNING) << "accuracy attribution failed: "
                          << accuracy.status().ToString();
      }
    }
    report.provenance = ComputeProvenanceSummary(provenance_log);
    if (!config.provenance.json_out.empty()) {
      DECO_RETURN_NOT_OK(WriteProvenanceJson(config.provenance.json_out,
                                             report.scheme,
                                             provenance_log));
    }
  }

  if (config.telemetry.enabled) {
    TelemetryLog log;
    log.samples = sampler->Samples();
    log.spans = trace_sink->Drain();
    log.spans_dropped = trace_sink->dropped();
    log.hops = trace_sink->DrainHops();
    log.hops_dropped = trace_sink->hops_dropped();
    log.provenance = provenance_log;
    // Schema v6: the alert history rides the telemetry document whenever
    // both telemetry and the watchdog were on.
    log.alerts_enabled = watchdog != nullptr;
    if (watchdog != nullptr) log.alerts = watchdog->Alerts();
    // Schema v7: the plane's self-metering. The wall-clock nanos fields
    // here are the document's only non-replayable values under --sim.
    log.obs_self.enabled = true;
    log.obs_self.sampler = sampler->SelfStats();
    if (ops_server != nullptr) {
      log.obs_self.scrapes = ops_server->requests_served();
      const QuantileSketch scrape_latency = ops_server->ScrapeLatency();
      log.obs_self.scrape_nanos_mean =
          scrape_latency.count() == 0
              ? 0.0
              : scrape_latency.sum() /
                    static_cast<double>(scrape_latency.count());
      log.obs_self.scrape_nanos_p99 = scrape_latency.Quantile(0.99);
      log.obs_self.exposition_bytes = ops_server->last_exposition_bytes();
    }
    log.obs_self.node_detail_limit = config.obs_governance.node_detail_limit;
    log.obs_self.top_k = config.obs_governance.top_k;
    if (log.spans_dropped > 0 || log.hops_dropped > 0) {
      DECO_LOG(WARNING) << "telemetry truncated: " << log.spans_dropped
                        << " spans and " << log.hops_dropped
                        << " hop records dropped at the TraceSink capacity ("
                        << config.telemetry.trace_capacity
                        << "); raise --trace_capacity";
    }
    if (!config.telemetry.json_out.empty()) {
      DECO_RETURN_NOT_OK(
          WriteTelemetryJson(config.telemetry.json_out, report, log));
    }
    if (!config.telemetry.csv_prefix.empty()) {
      DECO_RETURN_NOT_OK(WriteSamplesCsv(
          config.telemetry.csv_prefix + ".samples.csv", log));
      DECO_RETURN_NOT_OK(WriteSpansCsv(
          config.telemetry.csv_prefix + ".spans.csv", log));
    }
    if (!config.telemetry.perfetto_out.empty()) {
      DECO_RETURN_NOT_OK(
          WritePerfettoTrace(config.telemetry.perfetto_out, log));
    }
    if (config.telemetry.sink != nullptr) {
      *config.telemetry.sink = std::move(log);
    }
  }
  if (config.provenance.sink != nullptr) {
    *config.provenance.sink = std::move(provenance_log);
  }
  if (chaos != nullptr && config.chaos.audit != nullptr) {
    *config.chaos.audit = chaos->AuditLog();
  }
  return report;
}

namespace {

Result<RunReport> RunServeFallback(const ExperimentConfig& input,
                                   const QueryRegistry& registry) {
  // The centralized baselines have no shared slice store, so a served set
  // costs them one full pass over the streams *per query*: the primary
  // sub-run keeps the caller's observability options, every other query
  // runs stripped (no telemetry/profiling/provenance), and the cost
  // counters are summed so BytesPerEvent reflects what the baseline
  // actually spends serving the whole set (events_processed stays the
  // primary's — the marginal-cost comparison divides by one stream pass).
  ExperimentConfig primary_cfg = input;
  primary_cfg.serve = ServeOptions{};
  primary_cfg.query = registry.queries()[0].query;
  DECO_ASSIGN_OR_RETURN(RunReport report, RunExperiment(primary_cfg));
  report.query_results.clear();

  std::map<std::string, TenantUsage> usage_by_tenant;
  for (size_t i = 0; i < registry.queries().size(); ++i) {
    const ServedQuery& q = registry.queries()[i];
    QueryRunResult qr;
    qr.query_id = q.id;
    qr.tenant = q.tenant;
    qr.spec = q.spec;
    qr.activated = true;
    uint64_t query_bytes = 0;
    if (i == 0) {
      qr.windows = report.windows;
      query_bytes = report.network.total_bytes;
    } else {
      ExperimentConfig sub_cfg = primary_cfg;
      sub_cfg.query = q.query;
      if (sub_cfg.rate_epoch_events == 0) {
        // Ingest rate epochs derive from the query window when unset;
        // pin them to the primary's derivation so every sub-run consumes
        // the identical stream (one logical input, many queries).
        sub_cfg.rate_epoch_events = std::max<uint64_t>(
            64, primary_cfg.query.window.length /
                    std::max<size_t>(1, primary_cfg.num_locals) / 16);
      }
      sub_cfg.telemetry = TelemetryOptions{};
      sub_cfg.profile = ProfilerOptions{};
      sub_cfg.provenance = ProvenanceOptions{};
      sub_cfg.provenance.estimate = false;
      DECO_ASSIGN_OR_RETURN(RunReport sub, RunExperiment(sub_cfg));
      report.network.total_messages += sub.network.total_messages;
      report.network.total_bytes += sub.network.total_bytes;
      report.network.total_dropped += sub.network.total_dropped;
      report.correction_steps += sub.correction_steps;
      query_bytes = sub.network.total_bytes;
      qr.windows = std::move(sub.windows);
    }
    TenantUsage& usage = usage_by_tenant[q.tenant];
    usage.tenant = q.tenant;
    usage.bytes += query_bytes;
    ++usage.queries;
    report.serving.total_query_windows += qr.windows.size();
    report.query_results.push_back(std::move(qr));
  }

  report.serving.enabled = true;
  report.serving.pane_length = registry.PaneLength();
  report.serving.queries = registry.queries().size();
  report.serving.slots = registry.slots().size();
  // Registry tenant order keeps the report deterministic.
  for (const std::string& tenant : registry.tenants()) {
    report.serving.tenants.push_back(usage_by_tenant[tenant]);
  }
  return report;
}

}  // namespace

}  // namespace deco
