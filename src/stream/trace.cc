#include "stream/trace.h"

#include "common/clock.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace deco {

Status WriteTraceFile(const std::string& path, const EventVec& events) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open trace file for writing: " + path);
  }
  out << "# deco event trace: id,stream,value,timestamp\n";
  for (const Event& e : events) {
    out << e.id << ',' << e.stream_id << ',';
    char value[64];
    std::snprintf(value, sizeof(value), "%.17g", e.value);
    out << value << ',' << e.timestamp << '\n';
  }
  out.flush();
  if (!out.good()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<Event> ParseTraceLine(const std::string& line) {
  if (line.empty() || line[0] == '#') {
    return Status::NotFound("skip line");
  }
  std::stringstream ss(line);
  std::string field;
  Event e;
  if (!std::getline(ss, field, ',')) {
    return Status::InvalidArgument("trace line missing id: " + line);
  }
  e.id = std::strtoull(field.c_str(), nullptr, 10);
  if (!std::getline(ss, field, ',')) {
    return Status::InvalidArgument("trace line missing stream: " + line);
  }
  e.stream_id = static_cast<StreamId>(std::strtoul(field.c_str(), nullptr,
                                                   10));
  if (!std::getline(ss, field, ',')) {
    return Status::InvalidArgument("trace line missing value: " + line);
  }
  char* end = nullptr;
  e.value = std::strtod(field.c_str(), &end);
  if (end == field.c_str()) {
    return Status::InvalidArgument("trace line bad value: " + line);
  }
  if (!std::getline(ss, field, ',')) {
    return Status::InvalidArgument("trace line missing timestamp: " + line);
  }
  e.timestamp = std::strtoll(field.c_str(), nullptr, 10);
  return e;
}

Result<EventVec> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open trace file: " + path);
  }
  EventVec events;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto parsed = ParseTraceLine(line);
    if (parsed.ok()) {
      events.push_back(*parsed);
    } else if (!parsed.status().IsNotFound()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": " +
          parsed.status().message());
    }
  }
  return events;
}

TraceSource::TraceSource(EventVec events, StreamId stream_id,
                         size_t start_offset)
    : trace_(std::move(events)),
      stream_id_(stream_id),
      position_(trace_.empty() ? 0 : start_offset % trace_.size()) {}

Result<TraceSource> TraceSource::Create(EventVec events, StreamId stream_id,
                                        size_t start_offset) {
  if (events.empty()) {
    return Status::InvalidArgument("trace must not be empty");
  }
  if (!std::is_sorted(events.begin(), events.end(),
                      [](const Event& a, const Event& b) {
                        return a.timestamp < b.timestamp;
                      })) {
    return Status::InvalidArgument("trace must be sorted by timestamp");
  }
  return TraceSource(std::move(events), stream_id, start_offset);
}

Event TraceSource::Next() {
  const Event& base = trace_[position_];
  Event e;
  e.id = emitted_++;
  e.stream_id = stream_id_;
  e.value = base.value;
  e.timestamp = base.timestamp + time_shift_;
  if (e.timestamp <= last_ts_) e.timestamp = last_ts_ + 1;
  last_ts_ = e.timestamp;

  ++position_;
  if (position_ == trace_.size()) {
    // Loop: shift subsequent replays past the last emitted timestamp plus
    // one mean gap, keeping time strictly monotonic.
    position_ = 0;
    const EventTime span =
        trace_.back().timestamp - trace_.front().timestamp;
    const EventTime gap =
        trace_.size() > 1
            ? std::max<EventTime>(1, span / static_cast<EventTime>(
                                             trace_.size() - 1))
            : 1;
    time_shift_ = last_ts_ + gap - trace_.front().timestamp;
  }
  return e;
}

void TraceSource::NextBatch(size_t n, EventVec* out) {
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) out->push_back(Next());
}

double TraceSource::MeanRate() const {
  if (trace_.size() < 2) return 1.0;
  const EventTime span = trace_.back().timestamp - trace_.front().timestamp;
  if (span <= 0) return 1.0;
  return static_cast<double>(trace_.size() - 1) *
         static_cast<double>(kNanosPerSecond) / static_cast<double>(span);
}

}  // namespace deco
