#include "stream/rate_model.h"

#include <algorithm>
#include <cmath>

namespace deco {
namespace {

// Rates below this floor would stall event time; the 100% change sweep in
// the paper's Fig. 10 can draw rates arbitrarily close to zero otherwise.
constexpr double kMinRate = 1e-3;

}  // namespace

Status RateModelConfig::Validate() const {
  if (!(base_rate > 0.0)) {
    return Status::InvalidArgument("base_rate must be positive");
  }
  if (change_fraction < 0.0) {
    return Status::InvalidArgument("change_fraction must be non-negative");
  }
  if (epoch_events == 0) {
    return Status::InvalidArgument("epoch_events must be positive");
  }
  return Status::OK();
}

RateModel::RateModel(const RateModelConfig& config, uint64_t seed)
    : config_(config), rng_(seed), rate_(config.base_rate) {
  Redraw();
}

void RateModel::Redraw() {
  const double lo = config_.base_rate * (1.0 - config_.change_fraction);
  const double hi = config_.base_rate * (1.0 + config_.change_fraction);
  rate_ = std::max(kMinRate, rng_.NextDouble(lo, hi));
}

TimeNanos RateModel::NextGapNanos() {
  if (events_in_epoch_ == config_.epoch_events) {
    events_in_epoch_ = 0;
    Redraw();
  }
  ++events_in_epoch_;
  const double gap = static_cast<double>(kNanosPerSecond) / rate_;
  return std::max<TimeNanos>(1, static_cast<TimeNanos>(std::llround(gap)));
}

}  // namespace deco
