#pragma once

#include <cstdint>

#include "common/random.h"
#include "event/event.h"
#include "stream/rate_model.h"

/// \file generator.h
/// \brief Synthetic data-stream generator (paper §5, "Data Generators").
///
/// The paper replays the DEBS 2013 soccer real-time-locating-system dataset
/// from different offsets per stream. We do not ship that dataset; instead
/// `SensorValueModel` synthesizes values with the same character — smooth
/// periodic motion (player/ball trajectories) plus sensor noise — and each
/// stream starts from a different phase offset, mirroring the paper's
/// offset-replay trick. All evaluation results depend on event *rates* and
/// *counts*, not value content (see DESIGN.md substitution table), so this
/// preserves the measured behaviour.

namespace deco {

/// \brief Configuration of a synthetic sensor value series.
struct SensorValueConfig {
  double amplitude = 100.0;   ///< trajectory amplitude
  double period_seconds = 10; ///< trajectory period
  double noise_stddev = 1.0;  ///< gaussian measurement noise
  double phase = 0.0;         ///< per-stream replay offset, radians
};

/// \brief DEBS-like value series: `A * sin(2π t / T + φ) + N(0, σ)`.
class SensorValueModel {
 public:
  SensorValueModel(const SensorValueConfig& config, uint64_t seed)
      : config_(config), rng_(seed) {}

  /// \brief Value at event-time `t` (nanoseconds).
  double ValueAt(EventTime t);

 private:
  SensorValueConfig config_;
  Rng rng_;
};

/// \brief Configuration of one logical data stream.
struct StreamConfig {
  StreamId stream_id = 0;
  RateModelConfig rate;
  SensorValueConfig value;
  EventTime start_time = 0;  ///< event-time of the first event
  uint64_t seed = 42;
};

/// \brief One ordered data stream: events with sequential ids, monotonically
/// increasing timestamps derived from the rate model, and synthetic values.
///
/// This is the paper's *datastream node* payload: a weak sensor that only
/// produces data.
class StreamSource {
 public:
  explicit StreamSource(const StreamConfig& config);

  /// \brief Produces the next event of the stream.
  Event Next();

  /// \brief Appends `n` events to `out`.
  void NextBatch(size_t n, EventVec* out);

  /// \brief Instantaneous configured rate of the underlying rate model, in
  /// events per second. This is what local nodes poll to report event rates
  /// to the root (paper §4.3.3).
  double current_rate() const { return rate_.current_rate(); }

  StreamId stream_id() const { return config_.stream_id; }

  /// \brief Event-time of the most recently emitted event.
  EventTime last_timestamp() const { return now_; }

  /// \brief Number of events emitted so far.
  uint64_t emitted() const { return next_id_; }

 private:
  StreamConfig config_;
  RateModel rate_;
  SensorValueModel value_;
  EventTime now_;
  EventId next_id_ = 0;
};

/// \brief Wraps a source and perturbs the emission order to create
/// out-of-order (late) events, for testing the ordering machinery.
///
/// Each event is delayed past up to `max_displacement` successors with
/// probability `lateness_probability`. Timestamps are untouched — events
/// simply leave the injector out of timestamp order, exactly how network
/// and scheduling delays reorder IoT streams.
class DisorderInjector {
 public:
  DisorderInjector(StreamSource* source, double lateness_probability,
                   size_t max_displacement, uint64_t seed);

  Event Next();

 private:
  StreamSource* source_;
  double probability_;
  size_t max_displacement_;
  Rng rng_;
  EventVec held_;  // events postponed past their slot
  size_t since_hold_ = 0;
};

}  // namespace deco
