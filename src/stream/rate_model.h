#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"

/// \file rate_model.h
/// \brief Event-rate model of a data stream (paper §5, data generators).
///
/// The paper's generator "provides a parameter to define the event rate
/// change, e.g., the event rate is 100 events/s, and it changes between 95
/// to 105 events/s if the parameter is 5%". This model reproduces that: the
/// instantaneous rate is redrawn uniformly from
/// `[base * (1 - change), base * (1 + change)]` every `epoch_events` events,
/// and inter-event gaps are `1 / rate` seconds.

namespace deco {

/// \brief Configuration of a `RateModel`.
struct RateModelConfig {
  /// Nominal event rate in events per second. Must be > 0.
  double base_rate = 1000.0;

  /// Rate-change parameter as a fraction, e.g. 0.01 for the paper's "1%".
  /// May exceed 1.0 (the paper sweeps up to 100%); the redrawn rate is
  /// clamped to a small positive floor so time always advances.
  double change_fraction = 0.0;

  /// The instantaneous rate is redrawn after this many events.
  uint64_t epoch_events = 1000;

  Status Validate() const;
};

/// \brief Deterministic per-stream rate process.
class RateModel {
 public:
  /// \param config validated with `RateModelConfig::Validate`
  /// \param seed PRNG seed; identical seeds give identical rate paths
  RateModel(const RateModelConfig& config, uint64_t seed);

  /// \brief Nanoseconds between the previous event and the next one at the
  /// current instantaneous rate; advances the epoch counter and redraws the
  /// rate at epoch boundaries.
  TimeNanos NextGapNanos();

  /// \brief Current instantaneous rate in events per second.
  double current_rate() const { return rate_; }

  const RateModelConfig& config() const { return config_; }

 private:
  void Redraw();

  RateModelConfig config_;
  Rng rng_;
  double rate_;
  uint64_t events_in_epoch_ = 0;
};

}  // namespace deco
