#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"

/// \file trace.h
/// \brief Event-trace files: record synthetic streams to disk and replay
/// them as sources.
///
/// The paper replays the DEBS 2013 grand-challenge dataset; this module is
/// the hook for doing the same with any recorded trace. The format is a
/// simple CSV (`id,stream,value,timestamp` per line, `#` comments allowed)
/// so traces can be produced and inspected with standard tools.

namespace deco {

/// \brief Writes events to a CSV trace file. Overwrites existing files.
Status WriteTraceFile(const std::string& path, const EventVec& events);

/// \brief Loads a whole CSV trace file into memory.
Result<EventVec> ReadTraceFile(const std::string& path);

/// \brief Parses one CSV trace line; `#`-prefixed and blank lines yield
/// `NotFound` (skip markers), malformed lines `InvalidArgument`.
Result<Event> ParseTraceLine(const std::string& line);

/// \brief An ordered event source backed by an in-memory trace, with the
/// same interface shape as `StreamSource` (paper §5: local nodes "replay
/// the dataset from different positions").
///
/// Replays can loop: when the trace is exhausted the source restarts from
/// the beginning with timestamps shifted past the previous pass, keeping
/// the stream infinite and timestamps strictly monotonic, which is how the
/// evaluation replays a finite dataset indefinitely.
class TraceSource {
 public:
  /// \param events the trace, must be sorted by timestamp and non-empty
  /// \param stream_id stream id stamped on replayed events
  /// \param start_offset index into the trace to start from (the paper's
  ///        per-node replay offset)
  TraceSource(EventVec events, StreamId stream_id, size_t start_offset = 0);

  /// \brief Validates constructor arguments; factory preferred over the
  /// raw constructor in fallible contexts.
  static Result<TraceSource> Create(EventVec events, StreamId stream_id,
                                    size_t start_offset = 0);

  /// \brief Next replayed event: sequential ids, monotonic timestamps.
  Event Next();

  /// \brief Appends `n` events to `out`.
  void NextBatch(size_t n, EventVec* out);

  /// \brief Mean event rate of one pass over the trace, events/second —
  /// what a local node reports for rate-based apportioning.
  double MeanRate() const;

  uint64_t emitted() const { return emitted_; }

 private:
  EventVec trace_;
  StreamId stream_id_;
  size_t position_;
  uint64_t emitted_ = 0;
  EventTime time_shift_ = 0;  // accumulated shift across replay loops
  EventTime last_ts_ = 0;
};

}  // namespace deco
