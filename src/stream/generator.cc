#include "stream/generator.h"

#include <cmath>

namespace deco {

double SensorValueModel::ValueAt(EventTime t) {
  const double seconds =
      static_cast<double>(t) / static_cast<double>(kNanosPerSecond);
  const double base =
      config_.amplitude *
      std::sin(2.0 * M_PI * seconds / config_.period_seconds + config_.phase);
  return base + config_.noise_stddev * rng_.NextGaussian();
}

StreamSource::StreamSource(const StreamConfig& config)
    : config_(config),
      rate_(config.rate, config.seed),
      value_(config.value, config.seed ^ 0x9e3779b97f4a7c15ULL),
      now_(config.start_time) {}

Event StreamSource::Next() {
  now_ += rate_.NextGapNanos();
  Event e;
  e.id = next_id_++;
  e.stream_id = config_.stream_id;
  e.timestamp = now_;
  e.value = value_.ValueAt(now_);
  return e;
}

void StreamSource::NextBatch(size_t n, EventVec* out) {
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) out->push_back(Next());
}

DisorderInjector::DisorderInjector(StreamSource* source,
                                   double lateness_probability,
                                   size_t max_displacement, uint64_t seed)
    : source_(source),
      probability_(lateness_probability),
      max_displacement_(max_displacement),
      rng_(seed) {}

Event DisorderInjector::Next() {
  // Release a held event once it has been displaced far enough.
  if (!held_.empty() && since_hold_ >= max_displacement_) {
    Event e = held_.front();
    held_.erase(held_.begin());
    since_hold_ = 0;
    return e;
  }
  Event e = source_->Next();
  if (rng_.NextBool(probability_)) {
    // Postpone this event and emit the next one in its place.
    held_.push_back(e);
    since_hold_ = 0;
    e = source_->Next();
  }
  ++since_hold_;
  return e;
}

}  // namespace deco
