#include "agg/aggregate.h"

#include <algorithm>
#include <cmath>

namespace deco {

Result<AggregateKind> AggregateKindFromString(std::string_view name) {
  if (name == "sum") return AggregateKind::kSum;
  if (name == "count") return AggregateKind::kCount;
  if (name == "min") return AggregateKind::kMin;
  if (name == "max") return AggregateKind::kMax;
  if (name == "avg") return AggregateKind::kAvg;
  if (name == "median") return AggregateKind::kMedian;
  if (name == "quantile") return AggregateKind::kQuantile;
  return Status::InvalidArgument("unknown aggregate: " + std::string(name));
}

std::string_view AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kAvg:
      return "avg";
    case AggregateKind::kMedian:
      return "median";
    case AggregateKind::kQuantile:
      return "quantile";
  }
  return "unknown";
}

size_t Partial::WireSize() const {
  // kind + sum + count + min + max + values size + values.
  return 1 + 8 + 8 + 8 + 8 + 8 + values.size() * sizeof(double);
}

void EncodePartial(const Partial& partial, BinaryWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(partial.kind));
  writer->PutDouble(partial.sum);
  writer->PutU64(partial.count);
  writer->PutDouble(partial.min);
  writer->PutDouble(partial.max);
  writer->PutU64(partial.values.size());
  for (double v : partial.values) writer->PutDouble(v);
}

Result<Partial> DecodePartial(BinaryReader* reader) {
  Partial p;
  DECO_ASSIGN_OR_RETURN(uint8_t kind, reader->GetU8());
  if (kind > static_cast<uint8_t>(AggregateKind::kQuantile)) {
    return Status::InvalidArgument("bad aggregate kind byte");
  }
  p.kind = static_cast<AggregateKind>(kind);
  DECO_ASSIGN_OR_RETURN(p.sum, reader->GetDouble());
  DECO_ASSIGN_OR_RETURN(p.count, reader->GetU64());
  DECO_ASSIGN_OR_RETURN(p.min, reader->GetDouble());
  DECO_ASSIGN_OR_RETURN(p.max, reader->GetDouble());
  DECO_ASSIGN_OR_RETURN(uint64_t n, reader->GetU64());
  if (n > reader->remaining() / sizeof(double)) {
    return Status::OutOfRange("partial value list exceeds buffer");
  }
  p.values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DECO_ASSIGN_OR_RETURN(double v, reader->GetDouble());
    p.values.push_back(v);
  }
  return p;
}

Partial AggregateFunction::CreatePartial() const {
  Partial p;
  p.kind = kind();
  return p;
}

Status AggregateFunction::Merge(Partial* dst, const Partial& src) const {
  if (dst->kind != src.kind) {
    return Status::InvalidArgument("cannot merge partials of different kinds");
  }
  dst->sum += src.sum;
  dst->count += src.count;
  dst->min = std::min(dst->min, src.min);
  dst->max = std::max(dst->max, src.max);
  if (!src.values.empty()) {
    dst->values.insert(dst->values.end(), src.values.begin(),
                       src.values.end());
  }
  return Status::OK();
}

namespace {

class SumAggregate final : public AggregateFunction {
 public:
  AggregateKind kind() const override { return AggregateKind::kSum; }
  Decomposability decomposability() const override {
    return Decomposability::kDistributive;
  }
  void Accumulate(Partial* p, double v) const override {
    p->sum += v;
    p->count += 1;
  }
  double Finalize(const Partial& p) const override { return p.sum; }
};

class CountAggregate final : public AggregateFunction {
 public:
  AggregateKind kind() const override { return AggregateKind::kCount; }
  Decomposability decomposability() const override {
    return Decomposability::kDistributive;
  }
  void Accumulate(Partial* p, double) const override { p->count += 1; }
  double Finalize(const Partial& p) const override {
    return static_cast<double>(p.count);
  }
};

class MinAggregate final : public AggregateFunction {
 public:
  AggregateKind kind() const override { return AggregateKind::kMin; }
  Decomposability decomposability() const override {
    return Decomposability::kDistributive;
  }
  void Accumulate(Partial* p, double v) const override {
    p->min = std::min(p->min, v);
    p->count += 1;
  }
  double Finalize(const Partial& p) const override { return p.min; }
};

class MaxAggregate final : public AggregateFunction {
 public:
  AggregateKind kind() const override { return AggregateKind::kMax; }
  Decomposability decomposability() const override {
    return Decomposability::kDistributive;
  }
  void Accumulate(Partial* p, double v) const override {
    p->max = std::max(p->max, v);
    p->count += 1;
  }
  double Finalize(const Partial& p) const override { return p.max; }
};

class AvgAggregate final : public AggregateFunction {
 public:
  AggregateKind kind() const override { return AggregateKind::kAvg; }
  Decomposability decomposability() const override {
    return Decomposability::kAlgebraic;
  }
  void Accumulate(Partial* p, double v) const override {
    p->sum += v;
    p->count += 1;
  }
  double Finalize(const Partial& p) const override {
    if (p.count == 0) return std::nan("");
    return p.sum / static_cast<double>(p.count);
  }
};

// Shared implementation for median / arbitrary quantile. Holistic: keeps
// every value; `Finalize` uses nth_element with linear interpolation.
class QuantileAggregate final : public AggregateFunction {
 public:
  QuantileAggregate(AggregateKind kind, double q) : kind_(kind), q_(q) {}

  AggregateKind kind() const override { return kind_; }
  Decomposability decomposability() const override {
    return Decomposability::kHolistic;
  }
  void Accumulate(Partial* p, double v) const override {
    p->values.push_back(v);
    p->count += 1;
  }
  double Finalize(const Partial& p) const override {
    if (p.values.empty()) return std::nan("");
    std::vector<double> sorted = p.values;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q_ * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

 private:
  AggregateKind kind_;
  double q_;
};

}  // namespace

Result<std::unique_ptr<AggregateFunction>> MakeAggregate(AggregateKind kind,
                                                         double quantile_q) {
  switch (kind) {
    case AggregateKind::kSum:
      return std::unique_ptr<AggregateFunction>(new SumAggregate());
    case AggregateKind::kCount:
      return std::unique_ptr<AggregateFunction>(new CountAggregate());
    case AggregateKind::kMin:
      return std::unique_ptr<AggregateFunction>(new MinAggregate());
    case AggregateKind::kMax:
      return std::unique_ptr<AggregateFunction>(new MaxAggregate());
    case AggregateKind::kAvg:
      return std::unique_ptr<AggregateFunction>(new AvgAggregate());
    case AggregateKind::kMedian:
      return std::unique_ptr<AggregateFunction>(
          new QuantileAggregate(AggregateKind::kMedian, 0.5));
    case AggregateKind::kQuantile:
      if (!(quantile_q > 0.0 && quantile_q < 1.0)) {
        return Status::InvalidArgument("quantile q must be in (0, 1)");
      }
      return std::unique_ptr<AggregateFunction>(
          new QuantileAggregate(AggregateKind::kQuantile, quantile_q));
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

}  // namespace deco
