#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "event/serde.h"

/// \file aggregate.h
/// \brief Aggregation functions and partial aggregates (paper §2.3).
///
/// Following Gray et al. (Data Cube) and Jesus et al., functions are
/// classified as:
///  - distributive / self-decomposable: `sum`, `count`, `min`, `max` — the
///    partial state is one machine word and merging is associative;
///  - algebraic / decomposable: `avg` — computed from a fixed-size tuple of
///    distributive partials (sum, count);
///  - holistic / non-decomposable: `median`, quantiles — the partial state
///    is the full multiset of values; Deco processes these centrally
///    (footnote 2 of the paper), which the harness enforces.
///
/// The decomposable framework is: create a `Partial`, `Accumulate` events
/// into it on local nodes, ship it, `Merge` partials on the root, and
/// `Finalize` to a scalar when the global window closes.

namespace deco {

/// \brief Which aggregation a query computes.
enum class AggregateKind : uint8_t {
  kSum = 0,
  kCount = 1,
  kMin = 2,
  kMax = 3,
  kAvg = 4,
  kMedian = 5,
  kQuantile = 6,
};

/// \brief Gray et al. classification of an aggregate.
enum class Decomposability : uint8_t {
  kDistributive = 0,  ///< partial merge yields exact results (sum, min, ...)
  kAlgebraic = 1,     ///< finite tuple of distributive partials (avg)
  kHolistic = 2,      ///< needs all raw values (median, quantile)
};

/// \brief Parses "sum", "count", "min", "max", "avg", "median", "quantile".
Result<AggregateKind> AggregateKindFromString(std::string_view name);

/// \brief Canonical lowercase name of a kind.
std::string_view AggregateKindToString(AggregateKind kind);

/// \brief Mergeable partial aggregation state.
///
/// One struct covers all supported kinds; only the fields relevant to
/// `kind` are meaningful. Holistic kinds carry the raw value multiset,
/// which is exactly why they cannot be decentralized cheaply.
struct Partial {
  AggregateKind kind = AggregateKind::kSum;
  double sum = 0.0;
  uint64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::vector<double> values;  ///< holistic kinds only

  /// \brief Serialized size in bytes (matches `EncodePartial`).
  size_t WireSize() const;
};

/// \brief Writes a partial into `writer` in the binary wire format.
void EncodePartial(const Partial& partial, BinaryWriter* writer);

/// \brief Reads a partial previously written by `EncodePartial`.
Result<Partial> DecodePartial(BinaryReader* reader);

/// \brief An aggregation function: stateless strategy object over `Partial`.
///
/// Implementations are immutable and thread-safe; one instance can serve
/// every node in a topology.
class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  virtual AggregateKind kind() const = 0;
  virtual Decomposability decomposability() const = 0;

  /// \brief True when partial aggregation on local nodes is exact, i.e. the
  /// function is distributive or algebraic.
  bool IsDecomposable() const {
    return decomposability() != Decomposability::kHolistic;
  }

  /// \brief Fresh identity partial.
  virtual Partial CreatePartial() const;

  /// \brief Folds one value into a partial.
  virtual void Accumulate(Partial* partial, double value) const = 0;

  /// \brief Merges `src` into `dst`. Associative and commutative for all
  /// supported kinds.
  virtual Status Merge(Partial* dst, const Partial& src) const;

  /// \brief Produces the scalar result of a closed window.
  virtual double Finalize(const Partial& partial) const = 0;
};

/// \brief Factory for the built-in aggregate functions.
///
/// \param kind which aggregate to construct
/// \param quantile_q for `kQuantile`: the quantile in (0, 1); ignored
///        otherwise
Result<std::unique_ptr<AggregateFunction>> MakeAggregate(
    AggregateKind kind, double quantile_q = 0.5);

}  // namespace deco
