#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

/// \file flags.h
/// \brief Tiny `--key=value` command-line parser for benchmark and example
/// binaries. Not a general-purpose flags library; just enough to let every
/// bench accept scale knobs.

namespace deco {

/// \brief Parses `--key=value` / `--flag` style arguments.
///
/// Unknown keys are kept (benchmark binaries forward leftover args to
/// google-benchmark). Typed getters return the stored value or the supplied
/// default.
class Flags {
 public:
  /// \brief Parses argv; arguments not of the form `--k[=v]` are collected
  /// as positional.
  static Flags Parse(int argc, char** argv);

  /// \brief True if the flag was present at all (with or without value).
  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// \brief Comma-separated list of integers, e.g. `--nodes=1,2,4,8`.
  std::vector<int64_t> GetIntList(const std::string& key,
                                  std::vector<int64_t> fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace deco
