#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace deco {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kNetworkError:
      return "network-error";
    case StatusCode::kNodeFailed:
      return "node-failed";
    case StatusCode::kNotSupported:
      return "not-supported";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieOnStatus(const Status& status, const char* file, int line,
                 const char* expr) {
  std::fprintf(stderr, "%s:%d: DECO_CHECK_OK(%s) failed: %s\n", file, line,
               expr, status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace deco
