#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace deco {

void JsonAppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  *out += buf;
}

void JsonAppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

void JsonAppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void JsonAppendString(std::string* out, const std::string& s) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace deco
