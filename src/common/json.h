#pragma once

#include <cstdint>
#include <string>

/// \file json.h
/// \brief Deterministic JSON rendering primitives shared by every JSON
/// emitter in the repo (run reports, telemetry export, bench records).
///
/// All emitters build documents by appending to a std::string with these
/// helpers — fixed key order, no map iteration, no locale dependence — so
/// equal inputs render byte-identically. The sim determinism test and the
/// bench baseline diff both rely on that property.

namespace deco {

/// \brief Appends a decimal rendering of `v`.
void JsonAppendU64(std::string* out, uint64_t v);

/// \brief Appends a decimal rendering of `v`.
void JsonAppendI64(std::string* out, int64_t v);

/// \brief Appends `v` with %.17g — round-trip exact, so equal doubles (and
/// only equal doubles) render identically. Non-finite values have no JSON
/// literal and render as `null`.
void JsonAppendDouble(std::string* out, double v);

/// \brief Appends `s` as a quoted JSON string, escaping the characters
/// JSON requires (quote, backslash, control characters).
void JsonAppendString(std::string* out, const std::string& s);

}  // namespace deco
