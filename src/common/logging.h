#pragma once

#include <sstream>
#include <string>

#include "common/result.h"

/// \file logging.h
/// \brief Minimal leveled logger with a process-global level and stream-style
/// usage: `DECO_LOG(INFO) << "started node " << id;`.
///
/// Each line is prefixed with the level, a monotonic timestamp (seconds
/// since the first log statement of the process) and a compact thread id,
/// so interleaved node-actor output can be correlated with the telemetry
/// time series.
///
/// Logging is off the hot path everywhere in the library; per-event code
/// never logs. The default level is WARNING so tests and benchmarks stay
/// quiet unless something is wrong.

namespace deco {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// \brief Sets the process-global minimum level that will be emitted.
void SetLogLevel(LogLevel level);

/// \brief Returns the current process-global minimum level.
LogLevel GetLogLevel();

/// \brief Parses "debug" / "info" / "warning" (or "warn") / "error" /
/// "fatal" (case-insensitive) into a level; InvalidArgument otherwise.
Result<LogLevel> LogLevelFromString(const std::string& name);

namespace internal {

/// \brief One log statement; flushes to stderr on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DECO_LOG_DEBUG ::deco::LogLevel::kDebug
#define DECO_LOG_INFO ::deco::LogLevel::kInfo
#define DECO_LOG_WARNING ::deco::LogLevel::kWarning
#define DECO_LOG_ERROR ::deco::LogLevel::kError
#define DECO_LOG_FATAL ::deco::LogLevel::kFatal

/// \brief Emits a log line at the given level (DEBUG/INFO/WARNING/ERROR/
/// FATAL) when it meets the global minimum; the check happens when the
/// statement completes. FATAL always emits and aborts.
#define DECO_LOG(level) \
  ::deco::internal::LogMessage(DECO_LOG_##level, __FILE__, __LINE__)

}  // namespace deco
