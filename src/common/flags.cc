#include "common/flags.h"

#include <cstdlib>
#include <sstream>

namespace deco {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags.values_[arg.substr(2)] = "";
      } else {
        flags.values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      flags.positional_.push_back(std::move(arg));
    }
  }
  return flags;
}

bool Flags::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

std::vector<int64_t> Flags::GetIntList(const std::string& key,
                                       std::vector<int64_t> fallback) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  std::vector<int64_t> out;
  std::stringstream ss(it->second);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(std::strtoll(token.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace deco
