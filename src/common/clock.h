#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

/// \file clock.h
/// \brief Clock abstraction: a monotonic nanosecond source that can be the
/// real system clock or a manually advanced test clock.
///
/// Everything time-dependent in the library (event timestamps, timeouts,
/// latency measurement, rate control) reads time through a `Clock*` so that
/// unit tests can run deterministically with `ManualClock`.

namespace deco {

/// Nanoseconds since an arbitrary epoch (monotonic).
using TimeNanos = int64_t;

inline constexpr TimeNanos kNanosPerMicro = 1'000;
inline constexpr TimeNanos kNanosPerMilli = 1'000'000;
inline constexpr TimeNanos kNanosPerSecond = 1'000'000'000;

/// \brief Monotonic time source.
class Clock {
 public:
  virtual ~Clock() = default;

  /// \brief Current monotonic time in nanoseconds.
  virtual TimeNanos NowNanos() const = 0;

  /// \brief Convenience: current time in whole milliseconds.
  TimeNanos NowMillis() const { return NowNanos() / kNanosPerMilli; }
};

/// \brief Real monotonic clock backed by `std::chrono::steady_clock`.
class SystemClock final : public Clock {
 public:
  TimeNanos NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// \brief Process-wide shared instance.
  static SystemClock* Default();
};

/// \brief Virtual clock owned by the deterministic simulation scheduler
/// (`SimScheduler`, src/sim). Time never flows on its own: the scheduler
/// advances it to the timestamp of the next due event when no task is
/// runnable, which is what makes a simulated run independent of wall time.
///
/// Only the scheduler calls `AdvanceTo`; everything else reads it through
/// the `Clock` interface exactly like `SystemClock`.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimeNanos start = 0) : now_(start) {}

  TimeNanos NowNanos() const override {
    return now_.load(std::memory_order_acquire);
  }

  /// \brief Jumps to an absolute time; ignored if `t` is in the past so the
  /// clock stays monotone.
  void AdvanceTo(TimeNanos t) {
    TimeNanos current = now_.load(std::memory_order_relaxed);
    while (t > current &&
           !now_.compare_exchange_weak(current, t,
                                       std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<TimeNanos> now_;
};

/// \brief Manually advanced clock for deterministic tests.
///
/// Thread-safe: `Advance` and `NowNanos` may race; readers observe a
/// monotonically non-decreasing value.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimeNanos start = 0) : now_(start) {}

  TimeNanos NowNanos() const override {
    return now_.load(std::memory_order_acquire);
  }

  /// \brief Moves time forward by `delta` nanoseconds (must be >= 0).
  void Advance(TimeNanos delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }

  /// \brief Jumps to an absolute time (must not move backwards).
  void SetNanos(TimeNanos t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<TimeNanos> now_;
};

}  // namespace deco
