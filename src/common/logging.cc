#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/clock.h"

namespace deco {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

// Serializes whole lines so concurrent node threads do not interleave.
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

// Monotonic origin of log timestamps: the first log statement anchors 0.
TimeNanos LogUptimeNanos() {
  static const TimeNanos origin = SystemClock::Default()->NowNanos();
  return SystemClock::Default()->NowNanos() - origin;
}

// Compact dense thread id (T0, T1, ...) in statement order of first log.
int ThisThreadLogId() {
  static std::atomic<int> next{0};
  static thread_local const int id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

Result<LogLevel> LogLevelFromString(const std::string& name) {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  if (lower == "fatal") return LogLevel::kFatal;
  return Status::InvalidArgument("unknown log level: " + name);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const double uptime_seconds =
      static_cast<double>(LogUptimeNanos()) / kNanosPerSecond;
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "%.6f T%d", uptime_seconds,
                ThisThreadLogId());
  stream_ << "[" << LevelName(level) << " " << prefix << " " << file << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  const bool enabled = static_cast<int>(level_) >=
                       g_log_level.load(std::memory_order_relaxed);
  if (enabled || level_ == LogLevel::kFatal) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace deco
