#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace deco {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

// Serializes whole lines so concurrent node threads do not interleave.
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const bool enabled = static_cast<int>(level_) >=
                       g_log_level.load(std::memory_order_relaxed);
  if (enabled || level_ == LogLevel::kFatal) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace deco
