#pragma once

#include <cstdint>
#include <limits>

/// \file random.h
/// \brief Small, fast, seedable PRNG (xoshiro256**) used by the stream
/// generators and failure injectors.
///
/// Benchmarks and tests always construct `Rng` with an explicit seed so runs
/// are reproducible; there is intentionally no "random seed" helper.

namespace deco {

/// \brief xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
/// reimplemented here. Not cryptographically secure.
class Rng {
 public:
  /// \brief Seeds the generator deterministically from a 64-bit seed using
  /// splitmix64 to fill the state.
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// \brief Re-seeds in place.
  void Seed(uint64_t seed);

  /// \brief Next raw 64-bit value.
  uint64_t NextUint64();

  /// \brief Uniform in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform integer in the closed interval [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// \brief Standard normal via Box-Muller (one value per call; the pair's
  /// second value is cached).
  double NextGaussian();

  /// \brief Bernoulli trial with probability `p` of returning true.
  bool NextBool(double p);

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace deco
