#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

/// \file status.h
/// \brief Arrow/RocksDB-style status object used as the error model across
/// the Deco codebase.
///
/// Core library code does not throw exceptions. Every fallible public API
/// returns either a `Status` or a `Result<T>` (see result.h). The OK path is
/// allocation-free: an OK status carries no state beyond its code.

namespace deco {

/// \brief Machine-readable category of a `Status`.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kTimeout = 5,
  kNetworkError = 6,
  kNodeFailed = 7,
  kNotSupported = 8,
  kResourceExhausted = 9,
  kCancelled = 10,
  kIOError = 11,
  kInternal = 12,
};

/// \brief Returns the canonical lowercase name of a status code, e.g.
/// "invalid-argument".
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: a code plus an optional human-readable
/// message.
///
/// `Status` is cheap to copy in the OK case and cheap to move always. Use
/// the static factory functions (`Status::InvalidArgument(...)` etc.) to
/// construct errors, and `Status::OK()` for success.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \brief The canonical success value.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status NodeFailed(std::string msg) {
    return Status(StatusCode::kNodeFailed, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// \brief True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsNetworkError() const { return code_ == StatusCode::kNetworkError; }
  bool IsNodeFailed() const { return code_ == StatusCode::kNodeFailed; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// \brief Renders as "OK" or "<code>: <message>".
  std::string ToString() const;

  /// \brief Equality compares code and message.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Propagates a non-OK status to the caller.
#define DECO_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::deco::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

/// \brief Aborts the process if `expr` yields a non-OK status. Only for use
/// in tests, examples and benchmark drivers where failure is unrecoverable.
#define DECO_CHECK_OK(expr)                                            \
  do {                                                                 \
    ::deco::Status _st = (expr);                                       \
    if (!_st.ok()) {                                                   \
      ::deco::internal::DieOnStatus(_st, __FILE__, __LINE__, #expr);   \
    }                                                                  \
  } while (false)

namespace internal {
[[noreturn]] void DieOnStatus(const Status& status, const char* file, int line,
                              const char* expr);
}  // namespace internal

}  // namespace deco
