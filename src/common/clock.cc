#include "common/clock.h"

namespace deco {

SystemClock* SystemClock::Default() {
  static SystemClock clock;
  return &clock;
}

}  // namespace deco
