#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

/// \file queue.h
/// \brief Blocking multi-producer queues used as actor mailboxes and channel
/// backends.
///
/// Two flavours:
///  - `BlockingQueue<T>`: unbounded MPMC queue with close semantics;
///  - `BoundedQueue<T>`: capacity-bounded variant that blocks producers,
///    which is how backpressure propagates through the node runtime
///    (Section 4.3.1 of the paper: queue like Kafka, trade delay for
///    correctness).

namespace deco {

/// \brief Unbounded blocking queue. `Close()` wakes all waiters; `Pop` on a
/// closed, drained queue returns `std::nullopt`.
template <typename T>
class BlockingQueue {
 public:
  /// \brief Enqueues one item. Returns false iff the queue is closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// \brief Blocks until an item is available or the queue is closed and
  /// drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// \brief Like `Pop` but gives up after `timeout`; `std::nullopt` then
  /// means either timeout or closed-and-drained (check `closed()`).
  std::optional<T> PopWithTimeout(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// \brief Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// \brief Moves every currently queued item into `out`; returns the count.
  size_t DrainInto(std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = items_.size();
    for (auto& item : items_) out->push_back(std::move(item));
    items_.clear();
    return n;
  }

  /// \brief Discards every currently queued item; returns the count. Used
  /// when a crashed node's mailbox is purged on restart (a rebooted host
  /// has lost its pre-crash receive buffers).
  size_t Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = items_.size();
    items_.clear();
    return n;
  }

  /// \brief Closes the queue: future pushes fail, waiters wake. Items
  /// already queued can still be popped.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// \brief Capacity-bounded blocking queue. `Push` blocks while full, which
/// is the library's backpressure mechanism.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// \brief Blocks until space is available; returns false iff closed.
  bool Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// \brief Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// \brief Blocks until an item is available or closed-and-drained.
  std::optional<T> Pop() {
    std::optional<T> item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace deco
