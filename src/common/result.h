#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

/// \file result.h
/// \brief `Result<T>`: value-or-status, the return type of fallible
/// value-producing APIs (Arrow-style).

namespace deco {

/// \brief Holds either a `T` or a non-OK `Status`.
///
/// Invariant: a `Result` never holds an OK status without a value; the
/// status alternative always carries an error.
template <typename T>
class Result {
 public:
  /// Constructs a successful result from a value (implicit on purpose, so
  /// `return value;` works in functions returning `Result<T>`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status (implicit on purpose,
  /// so `return Status::InvalidArgument(...)` works).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// \brief Access the held value; undefined behaviour unless `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value, or `fallback` if this result is an error.
  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<T, Status> repr_;
};

/// \brief Assigns the value of a `Result` expression to `lhs`, or returns its
/// error status from the current function.
#define DECO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define DECO_ASSIGN_OR_RETURN(lhs, expr)                                     \
  DECO_ASSIGN_OR_RETURN_IMPL(DECO_CONCAT_(_deco_result_, __LINE__), lhs, expr)

#define DECO_CONCAT_INNER_(a, b) a##b
#define DECO_CONCAT_(a, b) DECO_CONCAT_INNER_(a, b)

}  // namespace deco
