#include "deco/local_node.h"

#include <algorithm>

#include "common/logging.h"
#include "node/apportion.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"

namespace deco {
namespace {

Counter* LocalWindowsProducedCounter() {
  static Counter* c =
      MetricRegistry::Global()->counter("local.windows_produced");
  return c;
}
Counter* LocalCorrectionRepliesCounter() {
  static Counter* c =
      MetricRegistry::Global()->counter("local.correction_replies");
  return c;
}

}  // namespace

const char* DecoSchemeToString(DecoScheme scheme) {
  switch (scheme) {
    case DecoScheme::kMon:
      return "deco-mon";
    case DecoScheme::kSync:
      return "deco-sync";
    case DecoScheme::kAsync:
      return "deco-async";
  }
  return "deco-?";
}

DecoLocalNode::DecoLocalNode(NetworkFabric* fabric, NodeId id, Clock* clock,
                             const Topology& topology,
                             const IngestConfig& ingest,
                             const QueryConfig& query, DecoScheme scheme,
                             DecoLocalOptions options)
    : Actor(fabric, id, clock),
      topology_(topology),
      ingest_config_(ingest),
      query_(query),
      scheme_(scheme),
      options_(options) {}

Status DecoLocalNode::SendOrCrash(Message msg) {
  Status status = Send(std::move(msg));
  if (status.IsNodeFailed()) {
    // The chaos controller took this node down. A dead host doesn't see
    // its own failed sends; enter crash limbo instead of erroring out.
    crashed_ = true;
    return Status::OK();
  }
  return status;
}

Status DecoLocalNode::HandleCrash() {
  DECO_LOG(DEBUG) << "local " << id_ << ": down, entering crash limbo";
  // A dead process consumes nothing: the mailbox fills (and is purged by
  // the fabric on revival); we only poll for the revival itself.
  while (fabric_->IsNodeDown(id_)) {
    if (stop_requested() || fabric_->mailbox(id_)->closed()) {
      done_ = true;
      return Status::OK();
    }
    SleepNanos(200 * kNanosPerMicro);
  }

  // Revived. Volatile protocol state is gone; the durable upstream queue
  // (`retained_`, the paper's §4.3.1 "queue like Kafka") and the ingest
  // position survive the reboot.
  cursor_ = 0;
  have_assignment_ = false;
  rolled_back_ = false;
  pending_size_adjust_ = 0;
  need_slack_window_ = true;
  eos_sent_ = false;
  peer_rates_.clear();
  peer_rates_received_.clear();
  crashed_ = false;
  awaiting_rejoin_ = true;

  // Announce the restart; the root re-admits us and starts a correction,
  // whose epoch bump is the signal that re-synchronizes planning.
  RateReport report;
  report.window_index = last_assignment_window_;
  report.event_rate = source_->TotalRate();
  report.stream_position = source_->position();
  report.incarnation = fabric_->node_incarnation(id_);
  BinaryWriter writer;
  EncodeRateReport(report, &writer);
  Message msg;
  msg.type = MessageType::kRejoin;
  msg.dst = topology_.root;
  msg.epoch = epoch_;
  msg.payload = writer.Release();
  DECO_LOG(DEBUG) << "local " << id_ << ": revived, announcing rejoin";
  return SendOrCrash(std::move(msg));
}

bool DecoLocalNode::PullIntoRetained() {
  if (source_->exhausted()) return false;
  EventVec batch;
  TimeNanos create_time = 0;
  const size_t pulled =
      source_->Pull(ingest_config_.batch_size, &batch, &create_time);
  if (pulled == 0) return false;
  for (const Event& e : batch) {
    retained_.push_back(TimedEvent{e, static_cast<double>(create_time)});
  }
  return true;
}

size_t DecoLocalNode::TakeRegion(size_t want, std::vector<TimedEvent>* out) {
  size_t served = 0;
  while (served < want) {
    if (cursor_ == retained_.size() && !PullIntoRetained()) break;
    out->push_back(retained_[cursor_]);
    ++cursor_;
    ++served;
  }
  return served;
}

Status DecoLocalNode::BroadcastPeerRate(uint64_t w, bool end_of_stream) {
  RateReport report;
  report.window_index = w;
  report.event_rate = end_of_stream ? 0.0 : source_->TotalRate();
  report.stream_position = source_->position();
  report.end_of_stream = end_of_stream;
  report.incarnation = fabric_->node_incarnation(id_);
  BinaryWriter writer;
  EncodeRateReport(report, &writer);
  const std::string payload = writer.buffer();
  // Record our own rate so the local apportionment covers all nodes.
  auto& row = peer_rates_[w];
  if (row.empty()) row.assign(topology_.num_locals(), 0.0);
  row[self_ordinal_] = report.event_rate;
  auto& got = peer_rates_received_[w];
  if (got.empty()) got.assign(topology_.num_locals(), false);
  got[self_ordinal_] = true;
  for (size_t n = 0; n < topology_.num_locals(); ++n) {
    if (n == self_ordinal_) continue;
    Message msg;
    msg.type = MessageType::kRateExchange;
    msg.dst = topology_.locals[n];
    msg.window_index = w;
    msg.epoch = epoch_;
    msg.payload = payload;
    DECO_RETURN_NOT_OK(SendOrCrash(std::move(msg)));
  }
  return Status::OK();
}

bool DecoLocalNode::PeerRatesComplete(uint64_t w) const {
  auto it = peer_rates_received_.find(w);
  for (size_t n = 0; n < topology_.num_locals(); ++n) {
    const bool reported =
        it != peer_rates_received_.end() && it->second[n];
    if (!reported && !peer_eos_[n]) return false;
  }
  return true;
}

Status DecoLocalNode::SendRateReport(uint64_t w) {
  RateReport report;
  report.window_index = w;
  report.event_rate = source_->TotalRate();
  report.stream_position = source_->position();
  report.incarnation = fabric_->node_incarnation(id_);
  BinaryWriter writer;
  EncodeRateReport(report, &writer);
  Message msg;
  msg.type = MessageType::kEventRate;
  msg.dst = topology_.root;
  msg.window_index = w;
  msg.epoch = epoch_;
  msg.payload = writer.Release();
  return SendOrCrash(std::move(msg));
}

Status DecoLocalNode::ProduceWindow(uint64_t w, const SlicePlan& plan) {
  DECO_TRACE_SPAN_MSG(id_, TracePhase::kWindowOpen, w,
                      static_cast<int64_t>(plan.front_buffer + plan.slice +
                                           plan.end_buffer),
                      assignment_msg_id_);
  LocalWindowsProducedCounter()->Increment();
  // Front buffer (async layout only; empty plans ship nothing).
  if (plan.front_buffer > 0) {
    std::vector<TimedEvent> front;
    TakeRegion(plan.front_buffer, &front);
    EventBatchPayload payload;
    payload.role = BatchRole::kFront;
    payload.from_offset = 0;
    payload.events.reserve(front.size());
    Message msg;
    double create_sum = 0.0;
    for (const TimedEvent& te : front) {
      payload.events.push_back(te.event);
      create_sum += te.create_nanos;
    }
    if (!front.empty()) {
      msg.MergeLatencyMeta(create_sum / static_cast<double>(front.size()),
                           front.size());
    }
    BinaryWriter writer;
    EncodeEventBatch(payload, &writer);
    msg.type = MessageType::kEventBatch;
    msg.dst = topology_.root;
    msg.window_index = w;
    msg.epoch = epoch_;
    msg.payload = writer.Release();
    DECO_RETURN_NOT_OK(SendOrCrash(std::move(msg)));
  }

  // Slice: incremental local aggregation (the decentralized work). With a
  // serving registry the shared slice store computes every active
  // aggregate slot in the same pass; slot 0 rides in the summary's
  // `partial` exactly as before, the others travel as tagged extras.
  {
    std::vector<TimedEvent> slice_events;
    slice_events.reserve(plan.slice);
    TakeRegion(plan.slice, &slice_events);
    SliceSummary summary;
    Message msg;
    double create_sum = 0.0;
    if (serve_ != nullptr) {
      slice_store_.BeginPane(w);
      for (const TimedEvent& te : slice_events) {
        slice_store_.Accumulate(te.event.value);
        create_sum += te.create_nanos;
      }
      summary.partial = slice_store_.primary();
      summary.extras = slice_store_.TakeExtras();
    } else {
      summary.partial = func_->CreatePartial();
      for (const TimedEvent& te : slice_events) {
        func_->Accumulate(&summary.partial, te.event.value);
        create_sum += te.create_nanos;
      }
    }
    if (!slice_events.empty()) {
      msg.MergeLatencyMeta(
          create_sum / static_cast<double>(slice_events.size()),
          slice_events.size());
    }
    summary.event_count = slice_events.size();
    if (!slice_events.empty()) {
      summary.min_ts = slice_events.front().event.timestamp;
      const Event& last = slice_events.back().event;
      summary.max_ts = last.timestamp;
      summary.max_stream_id = last.stream_id;
      summary.max_event_id = last.id;
    }
    summary.event_rate = source_->TotalRate();
    BinaryWriter writer;
    EncodeSliceSummary(summary, &writer);
    if (serve_ != nullptr) {
      size_t extras_bytes = 0;
      for (const SlotPartial& extra : summary.extras) {
        extras_bytes += SlotPartialWireSize(extra);
      }
      accounting_.OnSlice(w, writer.buffer().size() - extras_bytes,
                          slice_events.size(), summary.extras);
    }
    msg.type = MessageType::kPartialResult;
    msg.dst = topology_.root;
    msg.window_index = w;
    msg.epoch = epoch_;
    msg.payload = writer.Release();
    DECO_RETURN_NOT_OK(SendOrCrash(std::move(msg)));
  }

  // End buffer: raw edge region for exact cut resolution at the root.
  {
    std::vector<TimedEvent> end;
    TakeRegion(plan.end_buffer, &end);
    EventBatchPayload payload;
    payload.role = BatchRole::kEnd;
    payload.events.reserve(end.size());
    Message msg;
    double create_sum = 0.0;
    for (const TimedEvent& te : end) {
      payload.events.push_back(te.event);
      create_sum += te.create_nanos;
    }
    if (!end.empty()) {
      msg.MergeLatencyMeta(create_sum / static_cast<double>(end.size()),
                           end.size());
    }
    BinaryWriter writer;
    EncodeEventBatch(payload, &writer);
    msg.type = MessageType::kEventBatch;
    msg.dst = topology_.root;
    msg.window_index = w;
    msg.epoch = epoch_;
    msg.payload = writer.Release();
    DECO_RETURN_NOT_OK(SendOrCrash(std::move(msg)));
  }

  // End-of-stream marker once the budget is exhausted and fully shipped.
  if (source_->exhausted() && cursor_ == retained_.size() && !eos_sent_) {
    eos_sent_ = true;
    Message msg;
    msg.type = MessageType::kShutdown;
    msg.dst = topology_.root;
    msg.epoch = epoch_;
    DECO_RETURN_NOT_OK(SendOrCrash(std::move(msg)));
  }
  return Status::OK();
}

Status DecoLocalNode::HandleControl(const Message& msg) {
  switch (msg.type) {
    case MessageType::kWindowAssignment: {
      BinaryReader reader(msg.payload);
      DECO_ASSIGN_OR_RETURN(WindowAssignment assignment,
                            DecodeWindowAssignment(&reader));
      const EventKey wm{assignment.wm_ts, assignment.wm_stream,
                        assignment.wm_id};
      if (awaiting_rejoin_ && msg.epoch <= epoch_) {
        // Pre-crash straggler: this assignment was computed before the
        // root learned of our restart. Our cursor was reset, so acting on
        // it would re-produce events the root already holds. The rejoin
        // always triggers a correction, whose epoch bump ends the wait.
        DECO_LOG(DEBUG) << "local " << id_
                        << ": ignoring same-epoch assignment while "
                           "awaiting rejoin";
        return Status::OK();
      }
      if (msg.epoch > epoch_) {
        awaiting_rejoin_ = false;
        // Correction rollback (paper Â§4.3.2): the corrected window was
        // assembled from the *complete* candidate streams, so every
        // retained event at or below its watermark was consumed exactly
        // once and must be dropped; everything after it is re-planned
        // from scratch.
        while (!retained_.empty() &&
               EventKey::Of(retained_.front().event) <= wm) {
          retained_.pop_front();
        }
        epoch_ = msg.epoch;
        cursor_ = 0;
        rolled_back_ = true;
        need_slack_window_ = true;
        eos_sent_ = false;  // re-announce once everything is re-produced
        // The slack window re-establishes the carryover at the recentering
        // target by itself; stale adjustments would overshoot it.
        pending_size_adjust_ = 0;
        resume_window_ = assignment.window_index;
      } else {
        // Normal verification watermark: drop covered events. Only events
        // already produced into regions (index < cursor_) may be dropped —
        // an event at or below the watermark that was never shipped would
        // be lost for future correction resends. For a verified window the
        // cut-bounding checks guarantee no such event exists, so the guard
        // is a defensive invariant.
        size_t dropped = 0;
        while (!retained_.empty() && dropped < cursor_ &&
               EventKey::Of(retained_.front().event) <= wm) {
          retained_.pop_front();
          ++dropped;
        }
        if (!retained_.empty() && dropped == cursor_ &&
            EventKey::Of(retained_.front().event) <= wm) {
          DECO_LOG(DEBUG) << "local " << id_
                          << ": watermark reaches beyond produced events";
        }
        cursor_ -= dropped;
      }
      assigned_size_ = assignment.local_window_size;
      assigned_delta_ = assignment.delta;
      // Accumulate rather than overwrite: several assignments may arrive
      // between two produced windows (the async pipeline runs ahead), and
      // each carries an incremental recentering step.
      pending_size_adjust_ += assignment.size_adjust;
      last_assignment_window_ = assignment.window_index;
      have_assignment_ = true;
      assignment_msg_id_ = MessageCausalId(msg);
      return Status::OK();
    }
    case MessageType::kCorrectionRequest:
      return HandleCorrectionRequest(msg);
    case MessageType::kQueryAdd:
    case MessageType::kQueryRemove: {
      if (serve_ == nullptr) return Status::OK();
      BinaryReader reader(msg.payload);
      DECO_ASSIGN_OR_RETURN(QueryUpdate update, DecodeQueryUpdate(&reader));
      // Not epoch-gated: the schedule is keyed by absolute pane indices,
      // which survive correction rollbacks, and activation/retirement are
      // idempotent — a stale or replayed update cannot corrupt it.
      slice_store_.ApplyUpdate(update);
      DECO_LOG(DEBUG) << "local " << id_ << ": query " << update.query_id
                      << (update.add ? " adds" : " removes") << " slot "
                      << update.slot << " at pane " << update.effective_pane;
      return Status::OK();
    }
    case MessageType::kQueryConfig: {
      if (serve_ == nullptr) return Status::OK();
      BinaryReader reader(msg.payload);
      DECO_ASSIGN_OR_RETURN(ServeSnapshot snapshot,
                            DecodeServeSnapshot(&reader));
      slice_store_.ApplySnapshot(snapshot);
      return Status::OK();
    }
    case MessageType::kRateExchange: {
      BinaryReader reader(msg.payload);
      DECO_ASSIGN_OR_RETURN(RateReport report, DecodeRateReport(&reader));
      DECO_ASSIGN_OR_RETURN(size_t ordinal, topology_.OrdinalOf(msg.src));
      auto& row = peer_rates_[report.window_index];
      if (row.empty()) row.assign(topology_.num_locals(), 0.0);
      row[ordinal] = report.event_rate;
      auto& got = peer_rates_received_[report.window_index];
      if (got.empty()) got.assign(topology_.num_locals(), false);
      got[ordinal] = true;
      if (report.end_of_stream) peer_eos_[ordinal] = true;
      return Status::OK();
    }
    case MessageType::kShutdown:
      done_ = true;
      return Status::OK();
    default:
      DECO_LOG(WARNING) << "local node " << id_ << " ignoring "
                        << MessageTypeToString(msg.type);
      return Status::OK();
  }
}

Status DecoLocalNode::HandleCorrectionRequest(const Message& msg) {
  BinaryReader reader(msg.payload);
  DECO_ASSIGN_OR_RETURN(CorrectionRequest request,
                        DecodeCorrectionRequest(&reader));
  // Drop retained events the root's watermark already covers. For a
  // healthy local this is a no-op (the assignment watermark dropped them
  // first); for a rejoining local it is essential — the root emitted
  // windows from our pre-crash contributions, so resending events at or
  // below the watermark would double-count them.
  const EventKey wm{request.wm_ts, request.wm_stream, request.wm_id};
  size_t wm_dropped = 0;
  while (!retained_.empty() &&
         EventKey::Of(retained_.front().event) <= wm) {
    retained_.pop_front();
    ++wm_dropped;
  }
  if (wm_dropped > 0) {
    cursor_ = cursor_ > wm_dropped ? cursor_ - wm_dropped : 0;
    DECO_LOG(DEBUG) << "local " << id_ << ": correction watermark dropped "
                    << wm_dropped << " retained events";
  }
  CorrectionResponse response;
  response.window_index = request.window_index;
  response.round = request.round;
  Message out;
  if (request.topup_events == 0) {
    DECO_LOG(DEBUG) << "local " << id_ << ": correction w"
                    << request.window_index << " resend retained="
                    << retained_.size() << " cursor=" << cursor_
                    << " pos=" << source_->position();
    // Full retained region of the unverified windows.
    response.from_offset = source_->position() - retained_.size();
    response.events.reserve(retained_.size());
    double create_sum = 0.0;
    for (const TimedEvent& te : retained_) {
      response.events.push_back(te.event);
      create_sum += te.create_nanos;
    }
    if (!retained_.empty()) {
      out.MergeLatencyMeta(
          create_sum / static_cast<double>(retained_.size()),
          retained_.size());
    }
  } else {
    // Top-up: extend the retained region with fresh events.
    response.from_offset = source_->position();
    const size_t before = retained_.size();
    while (retained_.size() - before < request.topup_events) {
      if (!PullIntoRetained()) break;
    }
    const size_t added =
        std::min<size_t>(retained_.size() - before, request.topup_events);
    // Note: PullIntoRetained adds whole ingest batches; ship everything
    // that was added so the root's candidate list mirrors `retained_`.
    (void)added;
    for (size_t i = before; i < retained_.size(); ++i) {
      response.events.push_back(retained_[i].event);
      out.MergeLatencyMeta(retained_[i].create_nanos, 1);
    }
  }
  response.end_of_stream = source_->exhausted();
  DECO_TRACE_SPAN_MSG(id_, TracePhase::kCorrect, request.window_index,
                      static_cast<int64_t>(response.events.size()),
                      MessageCausalId(msg));
  LocalCorrectionRepliesCounter()->Increment();
  BinaryWriter writer;
  EncodeCorrectionResponse(response, &writer);
  out.type = MessageType::kCorrectionResult;
  out.dst = topology_.root;
  out.window_index = request.window_index;
  // Echo the request's epoch: the same window index can be corrected more
  // than once, and the root must be able to discard responses that belong
  // to a superseded correction round.
  out.epoch = msg.epoch;
  out.payload = writer.Release();
  return SendOrCrash(std::move(out));
}

template <typename Pred>
Status DecoLocalNode::BlockUntil(Pred predicate) {
  TimeNanos last_heard = NowNanos();
  while (!predicate() && !done_ && !stop_requested() && !crashed_) {
    // Poll rather than block indefinitely: a chaos crash is only visible
    // through the fabric flag (messages to a down node never arrive), so a
    // blocked receive would sleep through its own death.
    std::optional<Message> msg =
        ReceiveWithTimeout(2 * kNanosPerMilli);
    if (!msg.has_value()) {
      if (fabric_->mailbox(id_)->closed()) {
        done_ = true;
        break;
      }
      if (fabric_->IsNodeDown(id_)) crashed_ = true;
      if (!crashed_ && options_.heartbeat_nanos > 0 &&
          NowNanos() - last_heard >= options_.heartbeat_nanos) {
        // Prolonged silence: either the root is mid-correction (harmless
        // to ping) or it removed this node on a false suspicion and will
        // only re-admit it when it hears from it.
        last_heard = NowNanos();
        DECO_RETURN_NOT_OK(SendRateReport(last_assignment_window_));
      }
      continue;
    }
    last_heard = NowNanos();
    DECO_RETURN_NOT_OK(HandleControl(*msg));
  }
  return Status::OK();
}

Status DecoLocalNode::Run() {
  source_ = std::make_unique<IngestSource>(ingest_config_, clock_);
  DECO_ASSIGN_OR_RETURN(func_,
                        MakeAggregate(query_.aggregate, query_.quantile_q));
  if (serve_ != nullptr) {
    DECO_RETURN_NOT_OK(slice_store_.Init(serve_));
    DECO_RETURN_NOT_OK(accounting_.Init(serve_));
    pane_length_ = serve_->PaneLength();
  } else {
    pane_length_ = ProtocolWindowLength(query_.window);
  }
  DECO_ASSIGN_OR_RETURN(self_ordinal_, topology_.OrdinalOf(id_));
  peer_eos_.assign(topology_.num_locals(), false);

  // Initialization: report the observed rate so the root can apportion the
  // first global window (all schemes; Deco_mon repeats this per window).
  DECO_RETURN_NOT_OK(SendRateReport(0));
  if (options_.peer_rate_exchange) DECO_RETURN_NOT_OK(BroadcastPeerRate(0));

  uint64_t w = 0;
  // Wait for the first assignment.
  DECO_RETURN_NOT_OK(BlockUntil([&] { return have_assignment_; }));

  while (!done_ && !stop_requested()) {
    if (crashed_) {
      DECO_RETURN_NOT_OK(HandleCrash());
      if (done_ || stop_requested()) break;
      if (crashed_) continue;  // went down again mid-announcement
      // Hold until the root's epoch-advancing response (correction plus
      // rollback assignment) re-synchronizes planning; corrections are
      // answered from inside the wait.
      DECO_RETURN_NOT_OK(BlockUntil([&] { return rolled_back_; }));
      continue;
    }
    if (rolled_back_) {
      w = resume_window_;
      rolled_back_ = false;
    }

    // Drain pending control messages (async corrections / updates).
    while (true) {
      std::optional<Message> msg = TryReceive();
      if (!msg.has_value()) break;
      DECO_RETURN_NOT_OK(HandleControl(*msg));
    }
    if (done_ || stop_requested()) break;
    if (crashed_ || rolled_back_) continue;

    if (scheme_ == DecoScheme::kAsync) {
      // Memory bound: do not run more than `max_unverified_windows` ahead
      // of the root's verification.
      const uint64_t last = last_assignment_window_;
      if (w > last && w - last > options_.max_unverified_windows) {
        DECO_RETURN_NOT_OK(BlockUntil([&] {
          return rolled_back_ ||
                 w - last_assignment_window_ <=
                     options_.max_unverified_windows;
        }));
        if (done_ || stop_requested()) break;
        if (crashed_ || rolled_back_) continue;
      }
    } else {
      // Synchronous schemes: wait for this window's assignment.
      DECO_RETURN_NOT_OK(BlockUntil([&] {
        return rolled_back_ || last_assignment_window_ >= w;
      }));
      if (done_ || stop_requested()) break;
      if (crashed_ || rolled_back_) continue;
    }

    if (source_->exhausted() && cursor_ == retained_.size()) {
      // Everything produced and shipped; tell the root and stay responsive
      // for corrections until it shuts us down.
      if (options_.peer_rate_exchange && !peer_eos_sent_) {
        // Final broadcast: peers must not wait on rate reports from a
        // node that will never send another one.
        peer_eos_sent_ = true;
        DECO_RETURN_NOT_OK(BroadcastPeerRate(w, /*end_of_stream=*/true));
      }
      if (!eos_sent_) {
        eos_sent_ = true;
        Message msg;
        msg.type = MessageType::kShutdown;
        msg.dst = topology_.root;
        msg.epoch = epoch_;
        DECO_RETURN_NOT_OK(SendOrCrash(std::move(msg)));
      }
      DECO_LOG(DEBUG) << "local " << id_ << ": eos, staying responsive";
      DECO_RETURN_NOT_OK(BlockUntil([&] { return rolled_back_; }));
      if (crashed_ || rolled_back_) continue;
      break;
    }

    uint64_t size = assigned_size_;
    uint64_t delta = assigned_delta_;
    if (scheme_ == DecoScheme::kAsync && w > last_assignment_window_) {
      // The prediction is applied `lag` windows after the root computed
      // it; drift accumulates roughly linearly with the lag, so widen the
      // raw regions accordingly (bounded by the quarter window to keep
      // the slice meaningful).
      const uint64_t lag = w - last_assignment_window_;
      delta = std::min(delta * lag, size / 4 + 1);
    }
    if (pending_size_adjust_ != 0) {
      const int64_t adjusted =
          static_cast<int64_t>(size) + pending_size_adjust_;
      size = adjusted > 0 ? static_cast<uint64_t>(adjusted) : 0;
      pending_size_adjust_ = 0;
    }
    if (options_.peer_rate_exchange) {
      // Deco_monlocal: every local node computes the split itself from the
      // exchanged peer rates (paper §5.1 microbenchmark).
      DECO_RETURN_NOT_OK(
          BlockUntil([&] { return rolled_back_ || PeerRatesComplete(w); }));
      if (done_ || stop_requested()) break;
      if (crashed_ || rolled_back_) continue;
      DECO_ASSIGN_OR_RETURN(
          std::vector<uint64_t> shares,
          ApportionWindow(pane_length_, peer_rates_[w]));
      // In peer mode the root's assignment carries this node's leftover
      // (events already buffered at the root) in `local_window_size`.
      const uint64_t leftover = assigned_size_;
      size = shares[self_ordinal_] > leftover
                 ? shares[self_ordinal_] - leftover
                 : 0;
      delta = std::max<uint64_t>(1, shares[self_ordinal_] /
                                        options_.peer_delta_divisor);
      peer_rates_.erase(w);
      peer_rates_received_.erase(w);
    }

    SlicePlan plan;
    if (scheme_ != DecoScheme::kAsync) {
      plan = PlanSync(size, delta);
    } else if (need_slack_window_) {
      plan = PlanAsyncSlack(size, delta);
      need_slack_window_ = false;
    } else {
      plan = PlanAsync(size, delta);
    }
    DECO_LOG(DEBUG) << "local " << id_ << ": window " << w << " plan f/s/e="
                    << plan.front_buffer << "/" << plan.slice << "/"
                    << plan.end_buffer;
    DECO_RETURN_NOT_OK(ProduceWindow(w, plan));
    ++w;

    // Deco_mon: report the fresh rate for the next window before blocking
    // (initialization step of window w+1, paper Fig. 3).
    if (scheme_ == DecoScheme::kMon) {
      DECO_RETURN_NOT_OK(SendRateReport(w));
      if (options_.peer_rate_exchange) {
        DECO_RETURN_NOT_OK(BroadcastPeerRate(w));
      }
    }
  }
  return Status::OK();
}

}  // namespace deco
