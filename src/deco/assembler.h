#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "agg/aggregate.h"
#include "common/result.h"
#include "event/event.h"
#include "net/message.h"
#include "node/protocol.h"
#include "serve/slice_store.h"

/// \file assembler.h
/// \brief Root-side assembly of global count windows from local slices and
/// raw edge regions — the heart of Deco's verification step
/// (paper §4.2.2/§4.2.3, Algorithms 3 and 5; exact semantics per
/// DESIGN.md §4.1).
///
/// For global window `w` the root holds, per local node, in the node's
/// stream order:
///
///   [ leftover raw (carried from window w-1) | Fbuffer raw | slice | Ebuffer raw ]
///   `------------------ forced -------------------------'   `- selectable -'
///
/// Forced events *must* belong to window `w` (the aggregated slice cannot
/// be split, and everything before it in the node's stream precedes it).
/// The remaining `l_global − forced` events are selected from the
/// selectable raw regions in the deterministic global order. The window is
/// *verified* — provably identical to the Central ground truth — iff
///  (1) `forced <= l_global`                          (Eq. 6 / Eq. 14),
///  (2) enough selectable events exist                (Eq. 5 / Eq. 15),
///  (3) every non-finished node keeps at least one selectable event
///      excluded (the cut is bounded below the node's unshipped stream),
///  (4) the largest forced key precedes the first excluded key (the cut
///      did not fall inside any slice or forced region).
/// Any violation is a prediction error and triggers the correction step.

namespace deco {

class ProvenanceTracker;

/// \brief Total-order key of an event: `(timestamp, stream, id)`.
struct EventKey {
  EventTime ts = INT64_MIN;
  StreamId stream = 0;
  EventId id = 0;

  static EventKey Of(const Event& e) {
    return EventKey{e.timestamp, e.stream_id, e.id};
  }

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.stream != b.stream) return a.stream < b.stream;
    return a.id < b.id;
  }
  friend bool operator==(const EventKey& a, const EventKey& b) {
    return a.ts == b.ts && a.stream == b.stream && a.id == b.id;
  }
  friend bool operator<=(const EventKey& a, const EventKey& b) {
    return a < b || a == b;
  }
};

/// \brief Raw event plus its latency side-channel creation time.
struct TimedEvent {
  Event event;
  double create_nanos = 0.0;
};

/// \brief A fully assembled (verified or corrected) global window.
struct WindowAssembly {
  Partial partial;

  /// Per-slot partials of the multi-query serving layer (DESIGN.md §11);
  /// empty unless a `SlotBank` is installed. `slots[0]` mirrors `partial`;
  /// slots inactive at this window hold an empty partial.
  std::vector<Partial> slots;

  uint64_t event_count = 0;

  /// Events consumed from each local node (the "actual local window
  /// sizes" l_{a,Gi} of the paper).
  std::vector<uint64_t> consumed;

  /// Key of the window's last event — becomes the watermark sent to the
  /// local nodes.
  EventKey watermark;

  /// Latency side-channel: weighted mean creation time of covered events
  /// and the number of events with meta available.
  double create_mean = 0.0;
  uint64_t create_count = 0;
};

/// \brief Streaming assembler for consecutive global windows.
///
/// Inputs arrive tagged with their global window index; `TryAssemble`
/// processes windows strictly in order. Not thread-safe (lives on the root
/// actor thread).
class WindowAssembler {
 public:
  /// \param num_nodes local node count
  /// \param func aggregation function; not owned
  /// \param global_size the query's global window length in events
  WindowAssembler(size_t num_nodes, const AggregateFunction* func,
                  uint64_t global_size);

  /// \brief Adds the slice summary of node `node` for window `w`.
  Status AddSlice(uint64_t w, size_t node, SliceSummary slice,
                  double create_mean);

  /// \brief Adds raw events of the given role for window `w`. An empty
  /// vector still marks the region as received.
  Status AddRaw(uint64_t w, size_t node, BatchRole role, EventVec events,
                double create_mean);

  /// \brief Marks a node as end-of-stream: missing regions no longer block
  /// assembly and the cut-bounding check is waived for it.
  void MarkEos(size_t node);

  /// \brief Removes a failed node: pending contributions and leftovers are
  /// dropped; subsequent windows are assembled from the remaining nodes.
  void RemoveNode(size_t node);

  /// \brief Re-admits a previously removed node (rejoin protocol,
  /// DESIGN.md §6): clears its removed/EOS flags and discards any stale
  /// per-window state so the correction step rebuilds its contribution
  /// from the node's full retained resend.
  void ReadmitNode(size_t node);

  bool IsEos(size_t node) const { return eos_[node]; }
  bool IsRemoved(size_t node) const { return removed_[node]; }

  /// \brief Index of the next window to assemble.
  uint64_t next_window() const { return next_window_; }

  /// \brief True when node `node` has delivered its slice and end region
  /// for the window currently being assembled — used by failure detection
  /// to distinguish a dead node (missing inputs) from a merely idle one.
  bool HasWindowInputs(size_t node) const {
    auto it = pending_.find(next_window_);
    if (it == pending_.end() || it->second.nodes.empty()) return false;
    const NodeWindowState& st = it->second.nodes[node];
    return st.slice.has_value() && st.end_done;
  }

  /// \brief Declares that local nodes ship front buffers (Deco_async):
  /// the selectable cut region of window `w` then extends into window
  /// `w+1`'s front buffer, and assembly waits for it when the cut cannot
  /// be bounded otherwise.
  void set_expect_front(bool expect) { expect_front_ = expect; }

  enum class Outcome {
    kNotReady,         ///< waiting for more input
    kAssembled,        ///< verified window produced
    kNeedCorrection,   ///< prediction error (paper Eq. 5/6/14/15 violated)
    kEndOfStream,      ///< all nodes EOS; remaining events < one window
  };

  /// \brief Attempts to assemble and verify `next_window()`. On
  /// `kAssembled` the internal state advances (leftovers carried over,
  /// window counter incremented).
  Outcome TryAssemble(WindowAssembly* out);

  // --- Correction step (paper §4.3.1/§4.3.2) ---------------------------

  /// \brief Enters correction mode for `next_window()`: all pending
  /// per-window inputs and leftovers are discarded (local nodes will
  /// resend the full raw region and re-plan subsequent windows).
  void BeginCorrection();

  /// \brief Installs node `node`'s full retained raw region (its
  /// `CorrectionResponse`). Appends on repeated calls (top-ups).
  Status AddCandidates(size_t node, const EventVec& events,
                       double create_mean);

  /// \brief Declares that node `node`'s candidate list is its complete
  /// remaining stream (its budget is exhausted): no top-up can extend it,
  /// and the cut-bounding requirement is waived for it. Scoped to the
  /// current correction.
  void MarkCandidatesComplete(size_t node);

  /// \brief Discards node `node`'s candidate state so the root can
  /// re-solicit its full retained region after a lost request/response
  /// (drop or partition chaos); the fresh full response replaces, not
  /// appends to, whatever this round had accumulated.
  void ClearCandidates(size_t node);

  enum class CorrectionOutcome {
    kAssembled,  ///< exact window produced
    kNeedMore,   ///< request top-up batches from the nodes in `need_more`
    kEndOfStream,///< all nodes EOS; cannot fill a window
  };

  /// \brief Attempts the centralized fallback assembly from candidates.
  /// On `kNeedMore`, `need_more` lists nodes whose candidate list must be
  /// extended (they have no excluded event bounding the cut).
  CorrectionOutcome TryAssembleCorrected(WindowAssembly* out,
                                         std::vector<size_t>* need_more);

  /// \brief True when in correction mode.
  bool correcting() const { return correcting_; }

  /// \brief Events currently buffered at the root (leftovers + pending raw
  /// + candidates); memory accounting for tests.
  size_t buffered_events() const;

  /// \brief Raw events of `node` carried over into the next window (the
  /// paper's per-node share of the previous root buffer). The root
  /// subtracts this from the node's next assignment: those events are
  /// already at the root, so the local node must only supply the rest.
  uint64_t leftover_size(size_t node) const {
    return node < leftover_.size() ? leftover_[node].size() : 0;
  }

  /// \brief Fabric id the assembler's trace spans are attributed to (the
  /// owning root node). Defaults to node 0, the harness's root id.
  void set_trace_node(NodeId node) { trace_node_ = node; }

  /// \brief Causal id of the message the owning root is currently
  /// processing; assemble spans carry it (critical-path join key).
  void set_causal_msg_id(uint64_t msg_id) { causal_msg_id_ = msg_id; }

  /// \brief Installs the multi-query slot bank (serve layer, DESIGN.md
  /// §11); may be null (the default — single-aggregate assembly, `slots`
  /// left empty). Not owned. When set, every verified or corrected window
  /// also carries per-slot partials: raw events are accumulated into every
  /// slot active at the window's pane, slice extras are merged into their
  /// slots, and a slice missing an expected active slot triggers the
  /// correction fallback (which recomputes every slot exactly from raws).
  void set_slot_bank(const SlotBank* bank) { slot_bank_ = bank; }

  /// \brief Provenance collection point (src/obs/provenance.h); may be
  /// null (the default — no recording). Not owned. Region acceptance,
  /// duplicates, EOS, removal/readmission and correction restarts are
  /// reported exactly where this assembler acts on them, so a provenance
  /// record can never claim an input the assembly did not use.
  void set_provenance(ProvenanceTracker* tracker) { provenance_ = tracker; }

  /// \brief Signed carryover of `node` after the last assembled window:
  /// positive = unselected end events held at the root; negative = the cut
  /// extended into the next window's front buffer by that many events.
  /// The async recentering control uses this uncensored value.
  int64_t carry(size_t node) const {
    return node < carry_.size() ? carry_[node] : 0;
  }

 private:
  struct NodeWindowState {
    std::optional<SliceSummary> slice;
    double slice_create = 0.0;
    bool front_done = false;
    std::vector<TimedEvent> front;
    double front_create = 0.0;
    bool end_done = false;
    std::vector<TimedEvent> end;
    double end_create = 0.0;
  };

  struct PendingWindow {
    std::vector<NodeWindowState> nodes;
  };

  PendingWindow& GetWindow(uint64_t w);

  size_t num_nodes_;
  const AggregateFunction* func_;
  uint64_t global_size_;
  uint64_t next_window_ = 0;
  bool expect_front_ = false;
  NodeId trace_node_ = 0;
  uint64_t causal_msg_id_ = 0;
  ProvenanceTracker* provenance_ = nullptr;
  const SlotBank* slot_bank_ = nullptr;

  std::vector<std::deque<TimedEvent>> leftover_;
  std::vector<int64_t> carry_;
  std::map<uint64_t, PendingWindow> pending_;
  std::vector<bool> eos_;
  std::vector<bool> removed_;

  // Correction state.
  bool correcting_ = false;
  std::vector<std::vector<TimedEvent>> candidates_;
  std::vector<bool> candidates_present_;
  std::vector<bool> candidates_complete_;
};

}  // namespace deco
