#include "deco/assembler.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace deco {
namespace {

struct HeadEntry {
  EventKey key;
  size_t node;
};
struct HeadGreater {
  bool operator()(const HeadEntry& a, const HeadEntry& b) const {
    return b.key < a.key;
  }
};

}  // namespace

WindowAssembler::WindowAssembler(size_t num_nodes,
                                 const AggregateFunction* func,
                                 uint64_t global_size)
    : num_nodes_(num_nodes),
      func_(func),
      global_size_(global_size),
      leftover_(num_nodes),
      carry_(num_nodes, 0),
      eos_(num_nodes, false),
      removed_(num_nodes, false),
      candidates_(num_nodes),
      candidates_present_(num_nodes, false),
      candidates_complete_(num_nodes, false) {}

WindowAssembler::PendingWindow& WindowAssembler::GetWindow(uint64_t w) {
  PendingWindow& pw = pending_[w];
  if (pw.nodes.empty()) pw.nodes.resize(num_nodes_);
  return pw;
}

Status WindowAssembler::AddSlice(uint64_t w, size_t node, SliceSummary slice,
                                 double create_mean) {
  if (node >= num_nodes_) {
    return Status::InvalidArgument("slice from unknown node");
  }
  if (correcting_ || w < next_window_ || removed_[node]) {
    return Status::OK();  // stale input, dropped
  }
  NodeWindowState& st = GetWindow(w).nodes[node];
  if (st.slice.has_value()) {
    if (provenance_ != nullptr) {
      provenance_->OnDuplicate(w, node, ProvRegion::kSlice);
    }
    return Status::Internal("duplicate slice for window " +
                            std::to_string(w));
  }
  st.slice = std::move(slice);
  st.slice_create = create_mean;
  if (provenance_ != nullptr) {
    provenance_->OnRegion(w, node, ProvRegion::kSlice, create_mean);
  }
  return Status::OK();
}

Status WindowAssembler::AddRaw(uint64_t w, size_t node, BatchRole role,
                               EventVec events, double create_mean) {
  if (node >= num_nodes_) {
    return Status::InvalidArgument("raw batch from unknown node");
  }
  if (role == BatchRole::kData) {
    return Status::InvalidArgument(
        "assembler only accepts front/end raw regions");
  }
  if (correcting_ || w < next_window_ || removed_[node]) {
    return Status::OK();  // stale input, dropped
  }
  NodeWindowState& st = GetWindow(w).nodes[node];
  auto* region = role == BatchRole::kFront ? &st.front : &st.end;
  bool* done = role == BatchRole::kFront ? &st.front_done : &st.end_done;
  const ProvRegion prov_region =
      role == BatchRole::kFront ? ProvRegion::kFront : ProvRegion::kEnd;
  if (*done) {
    if (provenance_ != nullptr) provenance_->OnDuplicate(w, node, prov_region);
    return Status::Internal("duplicate raw region for window " +
                            std::to_string(w));
  }
  region->reserve(events.size());
  for (const Event& e : events) {
    region->push_back(TimedEvent{e, create_mean});
  }
  *done = true;
  if (provenance_ != nullptr) {
    provenance_->OnRegion(w, node, prov_region, create_mean);
  }
  return Status::OK();
}

void WindowAssembler::MarkEos(size_t node) {
  if (node >= num_nodes_) return;
  eos_[node] = true;
  if (provenance_ != nullptr) provenance_->OnEos(node);
}

void WindowAssembler::RemoveNode(size_t node) {
  if (node >= num_nodes_) return;
  if (provenance_ != nullptr) provenance_->OnNodeRemoved(node);
  removed_[node] = true;
  leftover_[node].clear();
  candidates_[node].clear();
  candidates_present_[node] = false;
  for (auto& [w, pw] : pending_) {
    if (!pw.nodes.empty()) pw.nodes[node] = NodeWindowState{};
  }
}

void WindowAssembler::ReadmitNode(size_t node) {
  if (node >= num_nodes_) return;
  if (provenance_ != nullptr) provenance_->OnNodeRejoined(node);
  removed_[node] = false;
  eos_[node] = false;
  leftover_[node].clear();
  carry_[node] = 0;
  candidates_[node].clear();
  candidates_present_[node] = false;
  candidates_complete_[node] = false;
  for (auto& [w, pw] : pending_) {
    if (!pw.nodes.empty()) pw.nodes[node] = NodeWindowState{};
  }
}

WindowAssembler::Outcome WindowAssembler::TryAssemble(WindowAssembly* out) {
  if (correcting_) return Outcome::kNotReady;
  auto it = pending_.find(next_window_);
  PendingWindow* pw = it == pending_.end() ? nullptr : &it->second;

  // Readiness: every live node must have delivered slice + raw regions.
  bool all_eos = true;
  for (size_t n = 0; n < num_nodes_; ++n) {
    if (removed_[n]) continue;
    if (!eos_[n]) {
      all_eos = false;
      if (pw == nullptr) return Outcome::kNotReady;
      const NodeWindowState& st = pw->nodes[n];
      if (!st.slice.has_value() || !st.end_done) return Outcome::kNotReady;
      // Front regions are only shipped by schemes that use them; a window
      // whose slice arrived without a front region simply has none.
    }
  }

  // Forced contribution: leftovers, front regions, slices.
  uint64_t forced = 0;
  EventKey forced_max;  // defaults to minimal key
  double create_mean = 0.0;
  uint64_t create_count = 0;
  auto fold_create = [&](double mean, uint64_t count) {
    if (count == 0) return;
    const uint64_t total = create_count + count;
    create_mean = (create_mean * static_cast<double>(create_count) +
                   mean * static_cast<double>(count)) /
                  static_cast<double>(total);
    create_count = total;
  };

  for (size_t n = 0; n < num_nodes_; ++n) {
    if (removed_[n]) continue;
    forced += leftover_[n].size();
    if (!leftover_[n].empty()) {
      forced_max =
          std::max(forced_max, EventKey::Of(leftover_[n].back().event),
                   [](const EventKey& a, const EventKey& b) { return a < b; });
    }
    if (pw == nullptr) continue;
    const NodeWindowState& st = pw->nodes[n];
    forced += st.front.size();
    if (!st.front.empty()) {
      forced_max =
          std::max(forced_max, EventKey::Of(st.front.back().event),
                   [](const EventKey& a, const EventKey& b) { return a < b; });
    }
    if (st.slice.has_value() && st.slice->event_count > 0) {
      forced += st.slice->event_count;
      const EventKey slice_max{st.slice->max_ts, st.slice->max_stream_id,
                               st.slice->max_event_id};
      forced_max =
          std::max(forced_max, slice_max,
                   [](const EventKey& a, const EventKey& b) { return a < b; });
    }
  }

  if (forced > global_size_) {
    DECO_LOG(DEBUG) << "assembler w" << next_window_
                    << ": overestimate, forced=" << forced << " > "
                    << global_size_;
    return Outcome::kNeedCorrection;
  }

  // Selectable region per node: this window's end buffer, extended by the
  // NEXT window's front buffer when the scheme ships one (Deco_async).
  // The two regions are contiguous in the node's stream, so the cut may
  // legally fall anywhere inside their union; the extension doubles the
  // slack around the predicted cut without changing steady-state volumes.
  auto next_it = pending_.find(next_window_ + 1);
  PendingWindow* pw_next =
      next_it == pending_.end() ? nullptr : &next_it->second;
  auto next_front = [&](size_t n) -> std::vector<TimedEvent>* {
    if (!expect_front_ || pw_next == nullptr) return nullptr;
    NodeWindowState& st = pw_next->nodes[n];
    return st.front_done ? &st.front : nullptr;
  };
  auto avail_count = [&](size_t n) -> size_t {
    if (removed_[n] || pw == nullptr) return 0;
    size_t total = pw->nodes[n].end.size();
    const auto* front = next_front(n);
    if (front != nullptr) total += front->size();
    return total;
  };
  auto avail_event = [&](size_t n, size_t i) -> const TimedEvent& {
    const auto& end = pw->nodes[n].end;
    if (i < end.size()) return end[i];
    return (*next_front(n))[i - end.size()];
  };
  // True when node n could still extend its selectable region (its next
  // front buffer has not arrived yet).
  auto can_extend = [&](size_t n) {
    return expect_front_ && !eos_[n] && !removed_[n] &&
           next_front(n) == nullptr;
  };

  uint64_t selectable = 0;
  for (size_t n = 0; n < num_nodes_; ++n) selectable += avail_count(n);
  if (forced + selectable < global_size_) {
    if (all_eos) {
      // End of stream only if the missing events do not exist anywhere —
      // later-tagged pending windows may still hold them (local plans can
      // split the tail differently from the root's window numbering), in
      // which case a correction reassembles the tail exactly.
      uint64_t known = 0;
      for (const auto& [w, win] : pending_) {
        for (const auto& st : win.nodes) {
          known += st.front.size() + st.end.size();
          if (st.slice.has_value()) known += st.slice->event_count;
        }
      }
      for (const auto& q : leftover_) known += q.size();
      if (known < global_size_) {
        DECO_LOG(DEBUG) << "assembler w" << next_window_
                        << ": end of stream, forced=" << forced
                        << " selectable=" << selectable
                        << " known=" << known;
        return Outcome::kEndOfStream;
      }
      return Outcome::kNeedCorrection;
    }
    for (size_t n = 0; n < num_nodes_; ++n) {
      if (can_extend(n)) return Outcome::kNotReady;  // await next Fbuffer
    }
    DECO_LOG(DEBUG) << "assembler w" << next_window_
                    << ": underestimate, forced=" << forced
                    << " selectable=" << selectable << " < "
                    << global_size_;
    return Outcome::kNeedCorrection;
  }

  // Select the smallest `R` events from the selectable regions in global
  // order.
  const uint64_t R = global_size_ - forced;
  std::vector<uint64_t> sel(num_nodes_, 0);
  std::priority_queue<HeadEntry, std::vector<HeadEntry>, HeadGreater> heap;
  for (size_t n = 0; n < num_nodes_; ++n) {
    if (avail_count(n) > 0) {
      heap.push(HeadEntry{EventKey::Of(avail_event(n, 0).event), n});
    }
  }
  EventKey last_selected;
  for (uint64_t i = 0; i < R; ++i) {
    const HeadEntry top = heap.top();
    heap.pop();
    last_selected = top.key;
    const size_t n = top.node;
    ++sel[n];
    if (sel[n] < avail_count(n)) {
      heap.push(HeadEntry{EventKey::Of(avail_event(n, sel[n]).event), n});
    }
  }

  const bool has_excluded = !heap.empty();
  if (!has_excluded && !all_eos) {
    for (size_t n = 0; n < num_nodes_; ++n) {
      if (can_extend(n)) return Outcome::kNotReady;
    }
    DECO_LOG(DEBUG) << "assembler w" << next_window_
                    << ": no excluded event to bound the cut";
    return Outcome::kNeedCorrection;
  }

  // A finished node may still hold events for *later* windows (async runs
  // ahead: its next slices are already pending). The end-of-stream waiver
  // of the cut-bounding check is only sound when nothing of the node's
  // stream lies beyond this window's selectable region.
  auto node_has_later_input = [&](size_t n) {
    for (const auto& [w, win] : pending_) {
      if (w <= next_window_) continue;
      if (win.nodes.empty()) continue;
      const NodeWindowState& st = win.nodes[n];
      if (w == next_window_ + 1) {
        // The front buffer of w+1 is part of this window's selectable
        // region; anything else is beyond it.
        if (st.slice.has_value() || st.end_done || !st.end.empty()) {
          return true;
        }
      } else if (st.slice.has_value() || st.front_done || st.end_done) {
        return true;
      }
    }
    return false;
  };

  // Check (3): the cut must be bounded below every live node's unshipped
  // stream — at least one of its shipped selectable events stays excluded.
  for (size_t n = 0; n < num_nodes_; ++n) {
    if (removed_[n] || (eos_[n] && !node_has_later_input(n))) continue;
    if (sel[n] == avail_count(n)) {
      if (can_extend(n)) return Outcome::kNotReady;
      DECO_LOG(DEBUG) << "assembler w" << next_window_ << ": node " << n
                      << " selectable region fully selected (" << sel[n]
                      << ")";
      return Outcome::kNeedCorrection;
    }
  }

  // Check (4): no forced event may follow the first excluded event.
  if (has_excluded) {
    const EventKey first_excluded = heap.top().key;
    if (!(forced_max < first_excluded)) {
      DECO_LOG(DEBUG) << "assembler w" << next_window_
                      << ": cut inside forced region (forced_max ts="
                      << forced_max.ts << " >= first_excluded ts="
                      << first_excluded.ts << ")";
      for (size_t n = 0; n < num_nodes_; ++n) {
        if (removed_[n] || pw == nullptr) continue;
        const NodeWindowState& st = pw->nodes[n];
        DECO_LOG(DEBUG) << "  node " << n << ": leftover="
                        << leftover_[n].size() << " front=" << st.front.size()
                        << " slice="
                        << (st.slice ? st.slice->event_count : 0)
                        << " sliceMaxTs=" << (st.slice ? st.slice->max_ts : -1)
                        << " end=" << st.end.size() << " sel=" << sel[n]
                        << " endFirstTs="
                        << (st.end.empty() ? -1 : st.end[0].event.timestamp)
                        << " frontLastTs="
                        << (st.front.empty() ? -1
                                             : st.front.back().event.timestamp);
      }
      return Outcome::kNeedCorrection;
    }
  }

  // Multi-query serving: a slice that should carry an active extra slot
  // but does not (a local missed the kQueryAdd broadcast) cannot be
  // assembled — the correction fallback recomputes every slot exactly
  // from raws, and the root re-broadcasts the slot schedule.
  const size_t nslots = slot_bank_ == nullptr ? 0 : slot_bank_->size();
  std::vector<bool> slot_active(nslots, false);
  for (size_t s = 1; s < nslots; ++s) {
    slot_active[s] =
        slot_bank_->ActiveAt(static_cast<uint16_t>(s), next_window_);
  }
  if (nslots > 1 && pw != nullptr) {
    for (size_t n = 0; n < num_nodes_; ++n) {
      if (removed_[n]) continue;
      const NodeWindowState& st = pw->nodes[n];
      if (!st.slice.has_value() || st.slice->event_count == 0) continue;
      for (size_t s = 1; s < nslots; ++s) {
        if (!slot_active[s]) continue;
        bool found = false;
        for (const SlotPartial& extra : st.slice->extras) {
          if (extra.slot == s) {
            found = true;
            break;
          }
        }
        if (!found) {
          DECO_LOG(DEBUG) << "assembler w" << next_window_ << ": node " << n
                          << " slice missing active slot " << s
                          << " partial; correcting";
          return Outcome::kNeedCorrection;
        }
      }
    }
  }

  // Verified: build the window.
  out->partial = func_->CreatePartial();
  out->slots.clear();
  out->slots.resize(nslots);
  for (size_t s = 1; s < nslots; ++s) {
    if (slot_active[s]) {
      out->slots[s] =
          slot_bank_->func(static_cast<uint16_t>(s))->CreatePartial();
    }
  }
  auto accumulate_slots = [&](double value) {
    for (size_t s = 1; s < nslots; ++s) {
      if (slot_active[s]) {
        slot_bank_->func(static_cast<uint16_t>(s))
            ->Accumulate(&out->slots[s], value);
      }
    }
  };
  out->consumed.assign(num_nodes_, 0);
  for (size_t n = 0; n < num_nodes_; ++n) {
    if (removed_[n]) continue;
    uint64_t consumed = 0;
    for (const TimedEvent& te : leftover_[n]) {
      func_->Accumulate(&out->partial, te.event.value);
      accumulate_slots(te.event.value);
      fold_create(te.create_nanos, 1);
      ++consumed;
    }
    leftover_[n].clear();
    if (pw != nullptr) {
      NodeWindowState& st = pw->nodes[n];
      for (const TimedEvent& te : st.front) {
        func_->Accumulate(&out->partial, te.event.value);
        accumulate_slots(te.event.value);
        fold_create(te.create_nanos, 1);
        ++consumed;
      }
      if (st.slice.has_value() && st.slice->event_count > 0) {
        Status merge = func_->Merge(&out->partial, st.slice->partial);
        if (!merge.ok()) {
          // Cannot happen with homogeneous queries; treat as corruption.
          return Outcome::kNeedCorrection;
        }
        for (const SlotPartial& extra : st.slice->extras) {
          if (extra.slot < nslots && slot_active[extra.slot]) {
            Status slot_merge =
                slot_bank_->func(extra.slot)
                    ->Merge(&out->slots[extra.slot], extra.partial);
            if (!slot_merge.ok()) return Outcome::kNeedCorrection;
          }
          // Extras for slots the root has since retired are ignored.
        }
        fold_create(st.slice_create, st.slice->event_count);
        consumed += st.slice->event_count;
      }
      const size_t end_size = st.end.size();
      const size_t from_end = std::min<size_t>(sel[n], end_size);
      const size_t from_front = sel[n] - from_end;
      for (size_t i = 0; i < from_end; ++i) {
        func_->Accumulate(&out->partial, st.end[i].event.value);
        accumulate_slots(st.end[i].event.value);
        fold_create(st.end[i].create_nanos, 1);
        ++consumed;
      }
      // Unselected end events carry over into the next window.
      for (size_t i = from_end; i < end_size; ++i) {
        leftover_[n].push_back(st.end[i]);
      }
      if (from_front > 0) {
        // The cut extended into the next window's front buffer: consume
        // its prefix here and shrink the stored region accordingly.
        auto* front = next_front(n);
        for (size_t i = 0; i < from_front; ++i) {
          func_->Accumulate(&out->partial, (*front)[i].event.value);
          accumulate_slots((*front)[i].event.value);
          fold_create((*front)[i].create_nanos, 1);
          ++consumed;
        }
        front->erase(front->begin(), front->begin() + from_front);
      }
      carry_[n] = static_cast<int64_t>(leftover_[n].size()) -
                  static_cast<int64_t>(from_front);
    }
    out->consumed[n] = consumed;
  }
  if (nslots > 0) out->slots[0] = out->partial;
  out->event_count = global_size_;
  out->watermark = R > 0 ? std::max(forced_max, last_selected,
                                    [](const EventKey& a, const EventKey& b) {
                                      return a < b;
                                    })
                         : forced_max;
  out->create_mean = create_mean;
  out->create_count = create_count;

  pending_.erase(next_window_);
  DECO_TRACE_SPAN_MSG(trace_node_, TracePhase::kAssemble, next_window_,
                      static_cast<int64_t>(global_size_), causal_msg_id_);
  ++next_window_;
  return Outcome::kAssembled;
}

void WindowAssembler::BeginCorrection() {
  if (provenance_ != nullptr) provenance_->OnCorrectionBegin(next_window_);
  correcting_ = true;
  pending_.clear();
  for (auto& q : leftover_) q.clear();
  std::fill(carry_.begin(), carry_.end(), 0);
  for (auto& c : candidates_) c.clear();
  std::fill(candidates_present_.begin(), candidates_present_.end(), false);
  std::fill(candidates_complete_.begin(), candidates_complete_.end(), false);
  // The correction rolls every local node back: nodes that had announced
  // end-of-stream will re-produce their retained events and re-announce.
  std::fill(eos_.begin(), eos_.end(), false);
}

void WindowAssembler::MarkCandidatesComplete(size_t node) {
  if (node < num_nodes_) candidates_complete_[node] = true;
}

void WindowAssembler::ClearCandidates(size_t node) {
  if (node >= num_nodes_) return;
  candidates_[node].clear();
  candidates_present_[node] = false;
  candidates_complete_[node] = false;
}

Status WindowAssembler::AddCandidates(size_t node, const EventVec& events,
                                      double create_mean) {
  if (node >= num_nodes_) {
    return Status::InvalidArgument("candidates from unknown node");
  }
  if (!correcting_) {
    return Status::Internal("AddCandidates outside correction mode");
  }
  if (removed_[node]) return Status::OK();
  auto& list = candidates_[node];
  list.reserve(list.size() + events.size());
  for (const Event& e : events) {
    list.push_back(TimedEvent{e, create_mean});
  }
  candidates_present_[node] = true;
  if (provenance_ != nullptr) {
    provenance_->OnCorrectionResponse(next_window_, node, create_mean);
  }
  return Status::OK();
}

WindowAssembler::CorrectionOutcome WindowAssembler::TryAssembleCorrected(
    WindowAssembly* out, std::vector<size_t>* need_more) {
  need_more->clear();
  uint64_t total = 0;
  bool all_complete = true;
  for (size_t n = 0; n < num_nodes_; ++n) {
    if (removed_[n]) continue;
    total += candidates_[n].size();
    if (!candidates_complete_[n]) all_complete = false;
  }
  if (total < global_size_) {
    if (all_complete) {
      DECO_LOG(DEBUG) << "assembler correction w" << next_window_
                      << ": end of stream, candidates=" << total;
      return CorrectionOutcome::kEndOfStream;
    }
    for (size_t n = 0; n < num_nodes_; ++n) {
      if (!removed_[n] && !candidates_complete_[n]) need_more->push_back(n);
    }
    return CorrectionOutcome::kNeedMore;
  }

  // Exact distributed selection: take the `global_size_` smallest.
  std::vector<uint64_t> sel(num_nodes_, 0);
  std::priority_queue<HeadEntry, std::vector<HeadEntry>, HeadGreater> heap;
  for (size_t n = 0; n < num_nodes_; ++n) {
    if (!removed_[n] && !candidates_[n].empty()) {
      heap.push(HeadEntry{EventKey::Of(candidates_[n][0].event), n});
    }
  }
  EventKey last_selected;
  for (uint64_t i = 0; i < global_size_; ++i) {
    const HeadEntry top = heap.top();
    heap.pop();
    last_selected = top.key;
    const size_t n = top.node;
    ++sel[n];
    if (sel[n] < candidates_[n].size()) {
      heap.push(HeadEntry{EventKey::Of(candidates_[n][sel[n]].event), n});
    }
  }

  // Every live node needs one excluded candidate to bound the cut.
  for (size_t n = 0; n < num_nodes_; ++n) {
    if (removed_[n] || candidates_complete_[n]) continue;
    if (sel[n] == candidates_[n].size()) need_more->push_back(n);
  }
  if (!need_more->empty()) return CorrectionOutcome::kNeedMore;

  out->partial = func_->CreatePartial();
  // Corrections recompute every serve slot exactly from raws — slice
  // extras are unnecessary here (and were discarded with the slices).
  const size_t nslots = slot_bank_ == nullptr ? 0 : slot_bank_->size();
  out->slots.clear();
  out->slots.resize(nslots);
  std::vector<bool> slot_active(nslots, false);
  for (size_t s = 1; s < nslots; ++s) {
    slot_active[s] =
        slot_bank_->ActiveAt(static_cast<uint16_t>(s), next_window_);
    if (slot_active[s]) {
      out->slots[s] =
          slot_bank_->func(static_cast<uint16_t>(s))->CreatePartial();
    }
  }
  out->consumed.assign(num_nodes_, 0);
  out->create_mean = 0.0;
  out->create_count = 0;
  for (size_t n = 0; n < num_nodes_; ++n) {
    if (removed_[n]) continue;
    for (uint64_t i = 0; i < sel[n]; ++i) {
      const TimedEvent& te = candidates_[n][i];
      func_->Accumulate(&out->partial, te.event.value);
      for (size_t s = 1; s < nslots; ++s) {
        if (slot_active[s]) {
          slot_bank_->func(static_cast<uint16_t>(s))
              ->Accumulate(&out->slots[s], te.event.value);
        }
      }
      const uint64_t total_meta = out->create_count + 1;
      out->create_mean =
          (out->create_mean * static_cast<double>(out->create_count) +
           te.create_nanos) /
          static_cast<double>(total_meta);
      out->create_count = total_meta;
    }
    out->consumed[n] = sel[n];
    candidates_[n].clear();
    candidates_present_[n] = false;
  }
  if (nslots > 0) out->slots[0] = out->partial;
  out->event_count = global_size_;
  out->watermark = last_selected;

  correcting_ = false;
  DECO_TRACE_SPAN_MSG(trace_node_, TracePhase::kAssemble, next_window_,
                      static_cast<int64_t>(global_size_), causal_msg_id_);
  ++next_window_;
  return CorrectionOutcome::kAssembled;
}

size_t WindowAssembler::buffered_events() const {
  size_t total = 0;
  for (const auto& q : leftover_) total += q.size();
  for (const auto& [w, pw] : pending_) {
    for (const auto& st : pw.nodes) {
      total += st.front.size() + st.end.size();
    }
  }
  for (const auto& c : candidates_) total += c.size();
  return total;
}

}  // namespace deco
