#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

/// \file predictor.h
/// \brief Local-window-size prediction (paper §4.2.2, Algorithm 1).
///
/// The predicted local window size of window `i` is the actual size of
/// window `i-1` (Eq. 1). The delta — the slack the slice/buffer layout must
/// absorb — is the absolute difference of the last two actual sizes
/// (Eq. 2), smoothed over the last `m` windows (§4.2.2 closing paragraph:
/// "we record Δ for every global window and compute the average of the last
/// m global windows"). `m` controls how aggressively the scheme adapts.
///
/// The delta is floored at a configurable minimum (default 1): a zero
/// delta would ship zero raw edge events, leaving the root unable to bound
/// the window cut exactly (DESIGN.md §4.1).

namespace deco {

/// \brief Per-local-node prediction state, maintained on the root
/// (Deco_mon/Deco_sync) or on the local node itself (Deco_async).
class LocalWindowPredictor {
 public:
  /// \param history_m number of past deltas averaged (paper's `m`, >= 1)
  /// \param delta_floor minimum delta ever returned (>= 1 for exactness)
  /// \param delta_multiplier safety factor applied to the averaged delta;
  ///        the paper's literal Eq. 2 corresponds to 1.0, but an E|diff|-
  ///        sized buffer misses ~45% of normal-tailed size changes, so the
  ///        default widens it
  explicit LocalWindowPredictor(size_t history_m = 4,
                                uint64_t delta_floor = 1,
                                double delta_multiplier = 2.0);

  /// \brief Records the actual local window size of a completed global
  /// window.
  void ObserveActual(uint64_t actual_size);

  /// \brief True once two observations exist, i.e. a delta can be formed.
  bool Ready() const { return observations_ >= 2; }

  /// \brief Predicted size of the next local window (Eq. 1): the most
  /// recent actual size. Requires at least one observation.
  uint64_t PredictedSize() const { return last_actual_; }

  /// \brief Smoothed delta (Eq. 2 averaged over the last `m` windows),
  /// floored at `delta_floor`. Requires `Ready()`.
  uint64_t Delta() const;

  size_t history_m() const { return history_m_; }

 private:
  size_t history_m_;
  uint64_t delta_floor_;
  double delta_multiplier_;
  uint64_t last_actual_ = 0;
  uint64_t prev_actual_ = 0;
  uint64_t observations_ = 0;
  std::deque<uint64_t> recent_deltas_;  // |l_i - l_{i-1}|, newest at back
  uint64_t delta_sum_ = 0;
};

}  // namespace deco
