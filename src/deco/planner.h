#pragma once

#include <cstdint>

/// \file planner.h
/// \brief Slice/buffer layout of a local window (paper Algorithms 2 and 4).
///
/// A predicted local window is laid out as up to three consecutive regions
/// of the node's stream:
///
///   Deco_sync  (Alg. 2):  [ slice = l̂ − Δ            | buffer = 2Δ ]
///   Deco_async (Alg. 4):  [ Fbuffer = Δ | slice = l̂ − 2Δ | Ebuffer = Δ ]
///   Deco_mon:             measured l with a ±δ edge → same layout as sync
///                         with l̂ = measured size (DESIGN.md §4.1).
///
/// Slice events are aggregated blind on the local node; buffer events are
/// shipped raw so the root can resolve the exact window edge.

namespace deco {

/// \brief One local window's region sizes, in events.
struct SlicePlan {
  uint64_t front_buffer = 0;  ///< raw events before the slice (async only)
  uint64_t slice = 0;         ///< events aggregated locally
  uint64_t end_buffer = 0;    ///< raw events after the slice

  /// \brief Total events the local node dedicates to this window's region.
  uint64_t TotalRegion() const { return front_buffer + slice + end_buffer; }
};

/// \brief Deco_sync layout (Alg. 2, Eq. 3–4): slice `l̂ − Δ` (or 0 when
/// `l̂ <= Δ`), end buffer `2Δ`. When the slice degenerates to 0 the buffer
/// is widened to `l̂ + Δ` so the shipped region still covers the predicted
/// window plus slack.
SlicePlan PlanSync(uint64_t predicted, uint64_t delta);

/// \brief Deco_async layout (Alg. 4, Eq. 9–10): Fbuffer `Δ`, slice
/// `l̂ − 2Δ` (or 0 when `l̂ <= 2Δ`), Ebuffer `Δ`. When the slice
/// degenerates the paper sets Fbuffer = Ebuffer = `l̂ / 2`; we additionally
/// keep each at least `Δ` so the region retains its slack.
SlicePlan PlanAsync(uint64_t predicted, uint64_t delta);

/// \brief Deco_mon layout: measured size `l` with a small raw edge of `±δ`
/// around the boundary — slice `l − δ`, end buffer `2δ` (the sync layout
/// applied to the measured size).
SlicePlan PlanMon(uint64_t measured, uint64_t delta);

/// \brief First Deco_async window after start or a correction rollback:
/// ships `⌈Δ/2⌉` extra raw events beyond the predicted size. The surplus
/// becomes the root's standing "previous root buffer" slack (paper Eq. 12,
/// initially non-empty previous buffer) that makes the self-balancing
/// asynchronous steady state verifiable (DESIGN.md §4.1).
SlicePlan PlanAsyncSlack(uint64_t predicted, uint64_t delta);

/// \brief Front-buffer size of the async layout:
/// `max(delta, predicted/64)`. The size-relative floor covers the
/// discrete jitter of the cut position that exists even under constant
/// rates; rate-derived deltas alone cannot see it.
uint64_t AsyncFrontSize(uint64_t predicted, uint64_t delta);

/// \brief End-buffer size of the async layout:
/// `max(2*delta, predicted/64)`. The root recenters its per-node
/// carryover around half this value.
uint64_t AsyncEndSize(uint64_t predicted, uint64_t delta);

}  // namespace deco
