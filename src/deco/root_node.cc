#include "deco/root_node.h"

#include <algorithm>

#include "common/logging.h"
#include "deco/planner.h"
#include "node/apportion.h"
#include "obs/metric_registry.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace deco {
namespace {

// Global-registry instruments the telemetry sampler snapshots. Pointers are
// stable for the process lifetime, so sites hoist the name lookup.
Counter* WindowsEmittedCounter() {
  static Counter* c =
      MetricRegistry::Global()->counter("root.windows_emitted");
  return c;
}
Counter* EventsEmittedCounter() {
  static Counter* c =
      MetricRegistry::Global()->counter("root.events_emitted");
  return c;
}
Counter* CorrectionsCounter() {
  static Counter* c = MetricRegistry::Global()->counter("root.corrections");
  return c;
}
Counter* NodesRemovedCounter() {
  static Counter* c = MetricRegistry::Global()->counter("root.nodes_removed");
  return c;
}
Counter* NodesRejoinedCounter() {
  static Counter* c =
      MetricRegistry::Global()->counter("root.nodes_rejoined");
  return c;
}
// Live-progress gauges the ops plane scrapes (/statusz, watchdog): the
// assembly frontier, whether a correction is in flight, and how many
// locals the failure detector currently believes are alive.
Gauge* NextWindowGauge() {
  static Gauge* g = MetricRegistry::Global()->gauge("root.next_window");
  return g;
}
Gauge* CorrectingGauge() {
  static Gauge* g = MetricRegistry::Global()->gauge("root.correcting");
  return g;
}
Gauge* NodesLiveGauge() {
  static Gauge* g = MetricRegistry::Global()->gauge("root.nodes_live");
  return g;
}

}  // namespace

DecoRootNode::DecoRootNode(NetworkFabric* fabric, NodeId id, Clock* clock,
                           const Topology& topology,
                           const QueryConfig& query, DecoScheme scheme,
                           RunReport* report, DecoRootOptions options)
    : Actor(fabric, id, clock),
      topology_(topology),
      query_(query),
      scheme_(scheme),
      report_(report),
      options_(options) {}

bool DecoRootNode::RatesComplete(uint64_t w) const {
  auto it = rates_received_.find(w);
  if (it == rates_received_.end()) return false;
  for (size_t n = 0; n < topology_.num_locals(); ++n) {
    if (assembler_->IsRemoved(n) || assembler_->IsEos(n)) continue;
    if (!it->second[n]) return false;
  }
  return true;
}

Status DecoRootNode::Run() {
  DECO_ASSIGN_OR_RETURN(func_,
                        MakeAggregate(query_.aggregate, query_.quantile_q));
  if (!func_->IsDecomposable()) {
    return Status::NotSupported(
        "Deco decentralizes only (self-)decomposable aggregates; holistic "
        "functions are processed centrally (paper footnote 2) — use the "
        "Central scheme");
  }
  if (serve_ == nullptr) {
    // Legacy construction path: serve the constructor's query through an
    // internal single-entry registry.
    ServedQuery primary;
    primary.query = query_;
    DECO_RETURN_NOT_OK(fallback_registry_.Add(std::move(primary)));
    serve_ = &fallback_registry_;
  }
  pane_length_ = serve_->PaneLength();
  if (pane_length_ == 0) {
    return Status::InvalidArgument("serve registry has no queries");
  }
  DECO_RETURN_NOT_OK(slot_bank_.Init(serve_));
  serve_sync_needed_ =
      slot_bank_.size() > 1 || serve_->HasRuntimeSchedule();
  track_consumption_ = query_.window.type != WindowType::kSliding &&
                       pane_length_ == query_.window.length;
  serve_states_.clear();
  serve_triggers_.clear();
  report_->query_results.clear();
  for (size_t qi = 0; qi < serve_->queries().size(); ++qi) {
    const ServedQuery& q = serve_->queries()[qi];
    ServeQueryState state;
    state.composer = std::make_unique<QueryComposer>(
        q, slot_bank_.func(q.slot), pane_length_);
    serve_states_.push_back(std::move(state));
    QueryRunResult result;
    result.query_id = q.id;
    result.tenant = q.tenant;
    result.spec = q.spec;
    result.start_pane = 0;
    result.end_pane = kServePaneNever;
    result.activated = q.add_pane == 0;
    report_->query_results.push_back(std::move(result));
    if (q.add_pane != 0) serve_triggers_.push_back({q.add_pane, qi, true});
    if (q.remove_pane != kServePaneNever) {
      serve_triggers_.push_back({q.remove_pane, qi, false});
    }
  }
  std::stable_sort(serve_triggers_.begin(), serve_triggers_.end(),
                   [](const ServeTrigger& a, const ServeTrigger& b) {
                     if (a.pane != b.pane) return a.pane < b.pane;
                     return a.add && !b.add;
                   });
  const size_t m = topology_.num_locals();
  assembler_ =
      std::make_unique<WindowAssembler>(m, func_.get(), pane_length_);
  assembler_->set_expect_front(scheme_ == DecoScheme::kAsync);
  assembler_->set_trace_node(id_);
  assembler_->set_provenance(provenance_);
  assembler_->set_slot_bank(&slot_bank_);
  if (serve_sync_needed_) {
    DECO_RETURN_NOT_OK(SendServeSnapshot(SIZE_MAX));
  }
  predictors_.assign(
      m, LocalWindowPredictor(options_.predictor_history_m,
                              options_.delta_floor,
                              options_.delta_multiplier));
  last_consumed_.assign(m, 0);
  latest_rates_.assign(m, 0.0);
  correction_responded_.assign(m, false);
  correction_round_.assign(m, 0);
  correction_requested_at_.assign(m, 0);
  last_heard_.assign(m, NowNanos());
  report_->consumption = ConsumptionLog(m);
  report_->scheme = DecoSchemeToString(scheme_);
  report_->start_wall_nanos = NowNanos();

  while (!stop_requested() && !finished_) {
    std::optional<Message> msg =
        options_.node_timeout_nanos > 0
            ? ReceiveWithTimeout(options_.node_timeout_nanos / 4)
            : Receive();
    if (msg.has_value()) {
      DECO_RETURN_NOT_OK(Dispatch(*msg));
    } else if (options_.node_timeout_nanos == 0) {
      break;  // mailbox closed
    }
    if (options_.node_timeout_nanos > 0) {
      // Checked on every iteration, not only on a receive timeout:
      // steady chatter (liveness heartbeats, rate reports) would
      // otherwise keep the receive from ever timing out and starve the
      // failure detector — and with it the correction retry and the
      // window-stall repair.
      DECO_RETURN_NOT_OK(CheckNodeTimeouts());
    }
    DECO_RETURN_NOT_OK(Progress());
    UpdateOpsGauges();
  }
  return BroadcastShutdown();
}

void DecoRootNode::UpdateOpsGauges() {
  NextWindowGauge()->Set(static_cast<int64_t>(assembler_->next_window()));
  CorrectingGauge()->Set(assembler_->correcting() ? 1 : 0);
  int64_t live = 0;
  for (size_t n = 0; n < topology_.num_locals(); ++n) {
    if (!assembler_->IsRemoved(n)) ++live;
  }
  NodesLiveGauge()->Set(live);
}

Status DecoRootNode::Dispatch(const Message& msg) {
  DECO_ASSIGN_OR_RETURN(size_t node, topology_.OrdinalOf(msg.src));
  last_heard_[node] = NowNanos();
  causal_msg_id_ = MessageCausalId(msg);
  assembler_->set_causal_msg_id(causal_msg_id_);
  if (provenance_ != nullptr) provenance_->set_now_nanos(NowNanos());
  if (assembler_->IsRemoved(node) && msg.type != MessageType::kRejoin) {
    // False suspicion: a removed node is still talking, so it was
    // partitioned or slow, not dead — and it has no way to learn of its
    // removal (only a crash victim announces kRejoin, on revival). Any
    // message proves liveness: re-admit it. The message itself is dropped
    // (its epoch predates the removal rollback); the readmission
    // correction re-solicits the node's full retained region, so nothing
    // it buffered is lost. Found by tests/chaos_fuzz_test.cc: a healed
    // partition used to leave the victim producing into the void for the
    // rest of the run.
    RateReport report;
    report.event_rate = latest_rates_[node];
    // Synthetic report (the node never announced kRejoin): take its
    // incarnation from the fabric so provenance still attributes the
    // readmitted contribution correctly.
    report.incarnation = fabric_->node_incarnation(msg.src);
    return HandleRejoin(node, report);
  }
  switch (msg.type) {
    case MessageType::kEventRate: {
      BinaryReader reader(msg.payload);
      DECO_ASSIGN_OR_RETURN(RateReport report, DecodeRateReport(&reader));
      auto& row = rates_[report.window_index];
      if (row.empty()) row.assign(topology_.num_locals(), 0.0);
      row[node] = report.event_rate;
      latest_rates_[node] = report.event_rate;
      auto& got = rates_received_[report.window_index];
      if (got.empty()) got.assign(topology_.num_locals(), false);
      got[node] = true;
      if (provenance_ != nullptr) {
        provenance_->OnIncarnation(node, report.incarnation);
      }
      return Status::OK();
    }
    case MessageType::kPartialResult: {
      if (msg.epoch != epoch_) return Status::OK();  // stale after rollback
      DECO_TRACE_SPAN_MSG(id_, TracePhase::kPartialReceived,
                          msg.window_index, static_cast<int64_t>(node),
                          MessageCausalId(msg));
      BinaryReader reader(msg.payload);
      DECO_ASSIGN_OR_RETURN(SliceSummary slice, DecodeSliceSummary(&reader));
      if (slice.event_rate > 0.0) latest_rates_[node] = slice.event_rate;
      return assembler_->AddSlice(msg.window_index, node, std::move(slice),
                                  msg.lat_mean_create_nanos);
    }
    case MessageType::kEventBatch: {
      if (msg.epoch != epoch_) return Status::OK();
      BinaryReader reader(msg.payload);
      DECO_ASSIGN_OR_RETURN(EventBatchPayload batch,
                            DecodeEventBatch(&reader));
      return assembler_->AddRaw(msg.window_index, node, batch.role,
                                std::move(batch.events),
                                msg.lat_mean_create_nanos);
    }
    case MessageType::kCorrectionResult: {
      if (!assembler_->correcting() ||
          msg.window_index != correction_window_ || msg.epoch != epoch_) {
        DECO_LOG(DEBUG) << "root: dropping stale correction response from "
                        << node << " (w" << msg.window_index << " epoch "
                        << msg.epoch << " vs " << epoch_ << ")";
        return Status::OK();  // late response from an older correction
      }
      BinaryReader reader(msg.payload);
      DECO_ASSIGN_OR_RETURN(CorrectionResponse response,
                            DecodeCorrectionResponse(&reader));
      if (response.round != correction_round_[node] ||
          correction_responded_[node]) {
        // A delayed response overtaken by a lost-message retry (or a
        // duplicate): the latest round's full resend supersedes it, and
        // accepting both would double-count the overlap.
        DECO_LOG(DEBUG) << "root: dropping superseded correction response "
                        << "from " << node << " (round " << response.round
                        << " vs " << correction_round_[node] << ")";
        return Status::OK();
      }
      DECO_LOG(DEBUG) << "root: correction response from " << node
                      << " bytes=" << msg.payload.size();
      if (response.end_of_stream) assembler_->MarkCandidatesComplete(node);
      correction_responded_[node] = true;
      return assembler_->AddCandidates(node, response.events,
                                       msg.lat_mean_create_nanos);
    }
    case MessageType::kShutdown:
      if (msg.epoch != epoch_) return Status::OK();  // pre-rollback marker
      DECO_LOG(DEBUG) << "root: node " << node << " eos";
      assembler_->MarkEos(node);
      return Status::OK();
    case MessageType::kRejoin: {
      BinaryReader reader(msg.payload);
      DECO_ASSIGN_OR_RETURN(RateReport report, DecodeRateReport(&reader));
      return HandleRejoin(node, report);
    }
    default:
      DECO_LOG(WARNING) << "deco root ignoring "
                        << MessageTypeToString(msg.type);
      return Status::OK();
  }
}

Status DecoRootNode::Progress() {
  if (assembler_->correcting()) {
    // Wait for every live node's candidates before attempting the fallback.
    for (size_t n = 0; n < topology_.num_locals(); ++n) {
      if (assembler_->IsRemoved(n)) continue;
      if (!correction_responded_[n]) return MaybeSendAssignments();
    }
    WindowAssembly assembly;
    std::vector<size_t> need_more;
    const auto outcome =
        assembler_->TryAssembleCorrected(&assembly, &need_more);
    switch (outcome) {
      case WindowAssembler::CorrectionOutcome::kAssembled:
        DECO_RETURN_NOT_OK(FinishWindow(assembly, /*corrected=*/true));
        break;
      case WindowAssembler::CorrectionOutcome::kNeedMore:
        for (size_t n : need_more) {
          correction_responded_[n] = false;
          DECO_RETURN_NOT_OK(
              SendCorrectionRequest(n, options_.correction_topup));
        }
        break;
      case WindowAssembler::CorrectionOutcome::kEndOfStream:
        finished_ = true;
        return Status::OK();
    }
    if (assembler_->correcting()) return MaybeSendAssignments();
    // A corrected window completed: continue with the normal path so that
    // end-of-stream (or the next ready window) is detected immediately.
  }

  // Normal path: assemble as many consecutive windows as possible.
  while (true) {
    WindowAssembly assembly;
    const auto outcome = assembler_->TryAssemble(&assembly);
    if (outcome == WindowAssembler::Outcome::kAssembled) {
      DECO_RETURN_NOT_OK(FinishWindow(assembly, /*corrected=*/false));
      continue;
    }
    if (outcome == WindowAssembler::Outcome::kNeedCorrection) {
      DECO_RETURN_NOT_OK(StartCorrection());
      return Status::OK();
    }
    if (outcome == WindowAssembler::Outcome::kEndOfStream) {
      DECO_LOG(DEBUG) << "root: end of stream at window "
                      << assembler_->next_window();
      finished_ = true;
      return Status::OK();
    }
    break;  // kNotReady
  }
  return MaybeSendAssignments();
}

Status DecoRootNode::StartCorrection() {
  DECO_LOG(DEBUG) << "root: correction for window "
                  << assembler_->next_window();
  DECO_TRACE_SPAN_MSG(id_, TracePhase::kCorrect, assembler_->next_window(),
                      static_cast<int64_t>(epoch_ + 1), causal_msg_id_);
  CorrectionsCounter()->Increment();
  ++report_->correction_steps;
  correction_window_ = assembler_->next_window();
  assembler_->BeginCorrection();
  // Roll the epoch forward: every in-flight data message for this or any
  // later window is now stale (paper §4.3.2: local nodes recalculate all
  // windows after the wrong one).
  ++epoch_;
  std::fill(correction_responded_.begin(), correction_responded_.end(),
            false);
  if (serve_sync_needed_) {
    // Re-broadcast the authoritative slot schedule with the rollback: if
    // the correction was triggered by a local that missed a query
    // add/remove, this heals it before the re-produced panes arrive.
    DECO_RETURN_NOT_OK(SendServeSnapshot(SIZE_MAX));
  }
  for (size_t n = 0; n < topology_.num_locals(); ++n) {
    if (assembler_->IsRemoved(n)) continue;
    DECO_RETURN_NOT_OK(SendCorrectionRequest(n, /*topup=*/0));
  }
  return Status::OK();
}

Status DecoRootNode::SendCorrectionRequest(size_t node, uint64_t topup) {
  CorrectionRequest request;
  request.window_index = correction_window_;
  request.topup_events = topup;  // 0 = full retained region
  request.wm_ts = last_watermark_.ts;
  request.wm_stream = last_watermark_.stream;
  request.wm_id = last_watermark_.id;
  request.round = ++correction_round_[node];
  correction_requested_at_[node] = NowNanos();
  if (provenance_ != nullptr) {
    provenance_->OnCorrectionSolicit(correction_window_, node);
  }
  BinaryWriter writer;
  EncodeCorrectionRequest(request, &writer);
  Message msg;
  msg.type = MessageType::kCorrectionRequest;
  msg.dst = topology_.locals[node];
  msg.window_index = correction_window_;
  msg.epoch = epoch_;
  msg.payload = writer.Release();
  return Send(std::move(msg));
}

Status DecoRootNode::HandleRejoin(size_t node, const RateReport& report) {
  DECO_LOG(WARNING) << "deco root: local node " << topology_.locals[node]
                    << " rejoined (rate " << report.event_rate << ")";
  // Scrub every per-node trace of the pre-crash incarnation; the node's
  // durable retained queue is re-solicited by the correction below.
  assembler_->ReadmitNode(node);
  predictors_[node] =
      LocalWindowPredictor(options_.predictor_history_m, options_.delta_floor,
                           options_.delta_multiplier);
  last_consumed_[node] = 0;
  if (report.event_rate > 0.0) latest_rates_[node] = report.event_rate;
  last_heard_[node] = NowNanos();
  if (provenance_ != nullptr) {
    provenance_->OnIncarnation(node, report.incarnation);
  }
  report_->membership.push_back(
      MembershipEvent{NowNanos(), node, /*rejoined=*/true});
  NodesRejoinedCounter()->Increment();
  if (serve_sync_needed_) {
    // The reborn local lost every in-flight add/remove broadcast; restore
    // its slot schedule before re-soliciting its retained stream.
    DECO_RETURN_NOT_OK(SendServeSnapshot(node));
  }
  if (assembler_->correcting()) {
    // Fold the rejoined node into the in-flight correction: solicit its
    // full retained region alongside the outstanding responses.
    correction_responded_[node] = false;
    return SendCorrectionRequest(node, /*topup=*/0);
  }
  // Rebuild the current window with the rejoined node contributing; the
  // epoch bump doubles as the rollback signal ending its rejoin wait.
  return StartCorrection();
}

Status DecoRootNode::EmitProtocolWindow(const WindowAssembly& assembly,
                                        bool corrected) {
  // `TryAssemble`/`TryAssembleCorrected` already advanced the window
  // counter, so the pane just assembled is `next_window() - 1`.
  const uint64_t pane_index = assembler_->next_window() - 1;
  const uint64_t pane_ordinal = panes_seen_++;
  report_->events_processed += assembly.event_count;
  if (track_consumption_) report_->consumption.AddWindow(assembly.consumed);
  if (provenance_ != nullptr) {
    // One provenance record per protocol pane (the unit the protocol
    // actually assembles); per-query composed windows are tracked
    // separately below. When panes and primary windows are 1:1 the pane
    // ordinal equals the legacy emitted-window index.
    provenance_->OnWindowEmitted(pane_index, pane_ordinal, corrected,
                                 NowNanos());
  }

  for (size_t qi = 0; qi < serve_states_.size(); ++qi) {
    const ServedQuery& q = serve_->queries()[qi];
    const Partial& partial =
        assembly.slots.empty() ? assembly.partial : assembly.slots[q.slot];
    std::optional<ComposedWindow> win = serve_states_[qi].composer->AddPane(
        pane_index, partial, assembly.create_mean, assembly.create_count,
        corrected, assembly.watermark.ts);
    if (!win.has_value()) continue;

    QueryRunResult& qr = report_->query_results[qi];
    GlobalWindowRecord record;
    record.window_index = qr.windows.size();
    record.value = win->value;
    record.event_count = win->event_count;
    record.corrected = win->corrected;
    record.end_ts = win->end_ts;
    record.mean_latency_nanos =
        static_cast<double>(NowNanos()) - win->create_mean;
    qr.windows.push_back(record);
    if (provenance_ != nullptr) {
      provenance_->OnQueryWindowEmitted(q.id, record.window_index,
                                        win->first_pane, win->last_pane,
                                        win->corrected);
    }
    if (qi == 0) {
      // The primary query also feeds the legacy report surfaces.
      report_->windows.push_back(record);
      report_->latency.Record(
          static_cast<int64_t>(record.mean_latency_nanos));
      ++report_->windows_emitted;
      WindowsEmittedCounter()->Increment();
      EventsEmittedCounter()->Add(static_cast<int64_t>(record.event_count));
      DECO_TRACE_SPAN_MSG(id_, TracePhase::kEmit, record.window_index,
                          static_cast<int64_t>(record.event_count),
                          causal_msg_id_);
    }
  }
  return Status::OK();
}

Status DecoRootNode::ProcessServeTriggers(uint64_t pane) {
  // The effective pane must clear every local's planning horizon: locals
  // may already be producing (async runs ahead of the assignments), so the
  // transition lands a safety margin past both the assembly frontier and
  // the assignment frontier. A local that still misses the broadcast
  // produces a slice without the expected slot partial, which the
  // assembler repairs with a correction (exact recompute from raws).
  constexpr uint64_t kActivationMargin = 8;
  while (!serve_triggers_.empty() && serve_triggers_.front().pane <= pane) {
    const ServeTrigger trigger = serve_triggers_.front();
    serve_triggers_.pop_front();
    const ServedQuery& q = serve_->queries()[trigger.query];
    const uint64_t horizon =
        std::max(assignment_window_, assembler_->next_window());
    const uint64_t effective =
        std::max(trigger.pane, horizon + kActivationMargin);
    QueryRunResult& qr = report_->query_results[trigger.query];
    QueryUpdate update;
    update.query_id = q.id;
    update.slot = q.slot;
    update.effective_pane = effective;
    update.add = trigger.add;
    update.query = q.query;
    if (trigger.add) {
      slot_bank_.schedule()->Activate(q.slot, effective);
      serve_states_[trigger.query].composer->set_start_pane(effective);
      qr.start_pane = effective;
      qr.activated = true;
      DECO_LOG(DEBUG) << "root: query " << q.id << " (" << q.spec
                      << ") activates at pane " << effective;
    } else {
      // Retire the slot only when no other query still needs it; a query
      // scheduled to activate later re-opens it with a fresh interval.
      bool still_needed = false;
      for (size_t qj = 0; qj < serve_states_.size(); ++qj) {
        if (qj == trigger.query) continue;
        const ServedQuery& other = serve_->queries()[qj];
        if (other.slot != q.slot) continue;
        const QueryRunResult& other_r = report_->query_results[qj];
        if (other_r.activated && other_r.end_pane > effective) {
          still_needed = true;
          break;
        }
      }
      update.slot_retired = !still_needed;
      if (update.slot_retired) {
        slot_bank_.schedule()->Retire(q.slot, effective);
      }
      serve_states_[trigger.query].composer->Close(effective);
      qr.end_pane = effective;
      DECO_LOG(DEBUG) << "root: query " << q.id << " (" << q.spec
                      << ") retires at pane " << effective
                      << (update.slot_retired ? " (slot retired)" : "");
    }
    DECO_RETURN_NOT_OK(BroadcastQueryUpdate(update));
  }
  return Status::OK();
}

Status DecoRootNode::BroadcastQueryUpdate(const QueryUpdate& update) {
  BinaryWriter writer;
  EncodeQueryUpdate(update, &writer);
  const std::string payload = writer.buffer();
  for (size_t n = 0; n < topology_.num_locals(); ++n) {
    if (assembler_->IsRemoved(n)) continue;  // resynced via rejoin snapshot
    Message msg;
    msg.type = update.add ? MessageType::kQueryAdd
                          : MessageType::kQueryRemove;
    msg.dst = topology_.locals[n];
    msg.window_index = update.effective_pane;
    msg.epoch = epoch_;
    msg.payload = payload;
    Status status = Send(std::move(msg));
    if (!status.ok() && !status.IsNodeFailed()) return status;
  }
  return Status::OK();
}

Status DecoRootNode::SendServeSnapshot(size_t node) {
  ServeSnapshot snapshot;
  snapshot.pane_length = pane_length_;
  snapshot.schedule.CopyFrom(*slot_bank_.schedule());
  BinaryWriter writer;
  EncodeServeSnapshot(snapshot, &writer);
  const std::string payload = writer.buffer();
  for (size_t n = 0; n < topology_.num_locals(); ++n) {
    if (node != SIZE_MAX && n != node) continue;
    if (node == SIZE_MAX && assembler_ != nullptr &&
        assembler_->IsRemoved(n)) {
      continue;
    }
    Message msg;
    msg.type = MessageType::kQueryConfig;
    msg.dst = topology_.locals[n];
    msg.epoch = epoch_;
    msg.payload = payload;
    Status status = Send(std::move(msg));
    if (!status.ok() && !status.IsNodeFailed()) return status;
  }
  return Status::OK();
}

Status DecoRootNode::FinishWindow(const WindowAssembly& assembly,
                                  bool corrected) {
  if (GetLogLevel() <= LogLevel::kDebug) {
    std::string leftovers;
    for (size_t n = 0; n < topology_.num_locals(); ++n) {
      leftovers += std::to_string(assembler_->leftover_size(n)) + "/" +
                   std::to_string(assembly.consumed[n]) + " ";
    }
    DECO_LOG(DEBUG) << "root: finished window " << report_->windows_emitted
                    << (corrected ? " (corrected)" : "")
                    << " leftovers: " << leftovers;
  }
  // Fire runtime add/remove transitions whose requested pane has been
  // reached *before* feeding the pane to the composers: an activation's
  // effective pane is always in the future, so the pane emitted right now
  // must not be consumed by a query activating at it.
  DECO_RETURN_NOT_OK(
      ProcessServeTriggers(assembler_->next_window() - 1));
  DECO_RETURN_NOT_OK(EmitProtocolWindow(assembly, corrected));

  // Feed the predictors with the paper's rate-derived actual sizes
  // (Â§4.2.2): a verified window's consumed counts are capped to the plan
  // by construction, so they cannot reflect true drift.
  bool have_rates = true;
  for (size_t n = 0; n < topology_.num_locals(); ++n) {
    if (!assembler_->IsRemoved(n) && !(latest_rates_[n] > 0.0)) {
      have_rates = false;
      break;
    }
  }
  std::vector<uint64_t> estimates = assembly.consumed;
  if (have_rates) {
    std::vector<double> weights(topology_.num_locals(), 0.0);
    for (size_t n = 0; n < topology_.num_locals(); ++n) {
      if (!assembler_->IsRemoved(n)) weights[n] = latest_rates_[n];
    }
    auto apportioned = ApportionWindow(pane_length_, weights);
    if (apportioned.ok()) estimates = std::move(apportioned).value();
  }
  for (size_t n = 0; n < topology_.num_locals(); ++n) {
    if (assembler_->IsRemoved(n)) continue;
    last_consumed_[n] = assembly.consumed[n];
    predictors_[n].ObserveActual(estimates[n]);
  }
  last_watermark_ = assembly.watermark;
  last_window_corrected_ = corrected;
  return Status::OK();
}

Status DecoRootNode::MaybeSendAssignments() {
  while (assignment_window_ <= assembler_->next_window() &&
         !assembler_->correcting()) {
    const uint64_t w = assignment_window_;
    const size_t m = topology_.num_locals();
    std::vector<uint64_t> sizes(m, 0);
    std::vector<uint64_t> deltas(m, 0);

    const bool bootstrap = w == 0;
    const bool monitored = scheme_ == DecoScheme::kMon;
    if (options_.peer_rate_exchange) {
      // Deco_monlocal: sizes are computed by the local nodes themselves;
      // the assignment only signals the window start and the watermark.
    } else if (bootstrap || monitored) {
      // Measured split: needs this window's rate reports from every node.
      // After a correction the assignment is also the rollback signal, so
      // it must go out even without fresh reports (falling back to the
      // latest known rates): exhausted locals report nothing further.
      const bool have_fresh = RatesComplete(w);
      if (!have_fresh && !last_window_corrected_) return Status::OK();
      DECO_ASSIGN_OR_RETURN(
          sizes, ApportionWindow(pane_length_,
                                 have_fresh ? rates_[w] : latest_rates_));
      rates_.erase(w);
      rates_received_.erase(w);
      for (size_t n = 0; n < m; ++n) {
        deltas[n] = predictors_[n].Ready()
                        ? predictors_[n].Delta()
                        : std::max<uint64_t>(
                              options_.delta_floor,
                              sizes[n] / options_.bootstrap_slack_divisor);
      }
    } else {
      // Predicted split (Algorithm 1).
      for (size_t n = 0; n < m; ++n) {
        if (predictors_[n].Ready()) {
          sizes[n] = predictors_[n].PredictedSize();
          deltas[n] = predictors_[n].Delta();
        } else {
          sizes[n] = last_consumed_[n];
          deltas[n] = std::max<uint64_t>(
              options_.delta_floor,
              sizes[n] / options_.bootstrap_slack_divisor);
        }
      }
    }
    // Size-relative delta floor: the cut position jitters by a few events
    // even under perfectly stable rates (discrete interleaving), so the
    // raw edge must never shrink below a small fraction of the local
    // window regardless of how calm the rate history looks.
    for (size_t n = 0; n < m; ++n) {
      deltas[n] = std::max(deltas[n], sizes[n] / 256);
    }

    // Deco_async recentering. The root's carryover has two failure axes:
    // its *distribution* across nodes drifts as a near-zero-sum random
    // walk (per-window selection tilt), and its *aggregate* level drifts
    // slowly (local nodes apply assignment versions at different times,
    // so applied region sizes do not sum to the window exactly). The
    // distribution is corrected aggressively (zero-sum component, gain
    // 0.5); the aggregate gently (uniform component, gain 0.15), because
    // it interacts with the pipeline lag and over-correcting oscillates.
    std::vector<double> adjust(m, 0.0);
    if (scheme_ == DecoScheme::kAsync) {
      double total_dev = 0.0;
      size_t live = 0;
      for (size_t n = 0; n < m; ++n) {
        if (assembler_->IsRemoved(n)) continue;
        const uint64_t end = AsyncEndSize(sizes[n], deltas[n]);
        const uint64_t front = AsyncFrontSize(sizes[n], deltas[n]);
        const double target =
            end > front ? static_cast<double>(end - front) / 2.0 : 1.0;
        adjust[n] = target - static_cast<double>(assembler_->carry(n));
        total_dev += adjust[n];
        ++live;
      }
      if (live > 0) {
        const double mean_dev = total_dev / static_cast<double>(live);
        for (size_t n = 0; n < m; ++n) {
          if (assembler_->IsRemoved(n)) continue;
          adjust[n] = 0.5 * (adjust[n] - mean_dev) + 0.15 * mean_dev;
        }
      }
    }

    for (size_t n = 0; n < m; ++n) {
      if (assembler_->IsRemoved(n)) continue;
      // Events already buffered at the root (carryover from the previous
      // window's raw edge) count toward this node's local window; the
      // synchronous schemes must not re-plan them. Deco_async local nodes
      // run ahead of these assignments, so their layout self-balances
      // around the standing root-buffer slack instead.
      if (options_.peer_rate_exchange) {
        // Deco_monlocal: the locals compute their own sizes; ship the
        // node's root-buffer carryover so it can subtract it.
        sizes[n] = assembler_->leftover_size(n);
      } else if (scheme_ != DecoScheme::kAsync) {
        const uint64_t leftover = assembler_->leftover_size(n);
        sizes[n] = sizes[n] > leftover ? sizes[n] - leftover : 0;
      }
      WindowAssignment assignment;
      assignment.window_index = w;
      assignment.local_window_size = sizes[n];
      assignment.delta = deltas[n];
      if (scheme_ == DecoScheme::kAsync) {
        assignment.size_adjust = static_cast<int64_t>(adjust[n]);
      }
      assignment.wm_ts = last_watermark_.ts;
      assignment.wm_stream = last_watermark_.stream;
      assignment.wm_id = last_watermark_.id;
      DECO_RETURN_NOT_OK(SendAssignment(n, assignment));
    }
    DECO_LOG(DEBUG) << "root: sent assignments for window " << w;
    DECO_TRACE_SPAN(id_, TracePhase::kWindowOpen, w,
                    static_cast<int64_t>(m));
    ++assignment_window_;
  }
  return Status::OK();
}

Status DecoRootNode::SendAssignment(size_t node,
                                    const WindowAssignment& assignment) {
  BinaryWriter writer;
  EncodeWindowAssignment(assignment, &writer);
  Message msg;
  msg.type = MessageType::kWindowAssignment;
  msg.dst = topology_.locals[node];
  msg.window_index = assignment.window_index;
  msg.epoch = epoch_;
  msg.payload = writer.Release();
  return Send(std::move(msg));
}

Status DecoRootNode::BroadcastShutdown() {
  for (NodeId local : topology_.locals) {
    Message msg;
    msg.type = MessageType::kShutdown;
    msg.dst = local;
    msg.epoch = epoch_;
    Status status = Send(std::move(msg));
    if (!status.ok() && !status.IsNodeFailed()) return status;
  }
  return Status::OK();
}

Status DecoRootNode::CheckNodeTimeouts() {
  const TimeNanos now = NowNanos();
  // Timeout-driven removals/corrections can fire without a message in
  // hand, so the tracker's clock may be stale from the last dispatch.
  if (provenance_ != nullptr) provenance_->set_now_nanos(now);
  bool stalled = false;
  if (assembler_->correcting() ||
      assembler_->next_window() != stall_window_) {
    // Progress (or an in-flight correction, which has its own per-node
    // retry): restart the stall timer.
    stall_window_ = assembler_->next_window();
    stall_since_ = now;
  } else if (now - stall_since_ > 2 * options_.node_timeout_nanos) {
    // The current window has been unassemblable for two full timeouts
    // with every contributor alive: some data-plane message (a partial,
    // an event batch, an assignment) was lost to drop/partition chaos.
    // A correction re-solicits the full retained region of every live
    // node, which re-covers whatever was dropped. The 2x margin keeps a
    // slow-but-progressing window (low rate, large window) from paying
    // a spurious correction. Found by tests/chaos_fuzz_test.cc: a
    // dropped deco-async partial stalled the run until the virtual-time
    // limit while heartbeats kept all nodes admitted.
    DECO_LOG(WARNING) << "deco root: window " << stall_window_
                      << " stalled with all nodes live; correcting";
    stall_since_ = now;
    stalled = true;
  }
  bool removed_any = false;
  for (size_t n = 0; n < topology_.num_locals(); ++n) {
    if (assembler_->IsRemoved(n) || assembler_->IsEos(n)) continue;
    // Only a node whose input the root is actually waiting for can be
    // declared dead: synchronous local nodes legitimately go silent once
    // they have shipped their window and are awaiting the next
    // assignment.
    const bool awaited = assembler_->correcting()
                             ? !correction_responded_[n]
                             : !assembler_->HasWindowInputs(n);
    if (!awaited) {
      last_heard_[n] = now;
      continue;
    }
    if (now - last_heard_[n] > options_.node_timeout_nanos) {
      DECO_LOG(WARNING) << "deco root: local node " << topology_.locals[n]
                        << " timed out; removing and correcting";
      assembler_->RemoveNode(n);
      report_->membership.push_back(
          MembershipEvent{now, n, /*rejoined=*/false});
      NodesRemovedCounter()->Increment();
      removed_any = true;
    } else if (assembler_->correcting() && !correction_responded_[n] &&
               now - correction_requested_at_[n] >
                   options_.node_timeout_nanos) {
      // The node is alive (its heartbeats refresh `last_heard_`, so the
      // removal branch above can never fire) yet its correction response
      // is overdue: the request or the response was lost to drop/partition
      // chaos, and neither side will ever resend on its own. Re-solicit
      // the full retained region under a fresh round; the round check on
      // arrival discards the original if it was merely delayed. Found by
      // tests/chaos_fuzz_test.cc (seed 29): a response dropped during a
      // rejoin correction stalled deco-sync until the virtual-time limit.
      DECO_LOG(WARNING) << "deco root: local node " << topology_.locals[n]
                        << " correction response overdue; re-soliciting";
      assembler_->ClearCandidates(n);
      DECO_RETURN_NOT_OK(SendCorrectionRequest(n, /*topup=*/0));
    }
  }
  if ((removed_any || stalled) && !assembler_->correcting()) {
    // Rebuild the current window from the surviving nodes (paper §4.3.4:
    // "the root node then starts the correction step").
    DECO_RETURN_NOT_OK(StartCorrection());
  }
  return Status::OK();
}

}  // namespace deco
