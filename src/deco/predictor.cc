#include "deco/predictor.h"

#include <algorithm>

namespace deco {

LocalWindowPredictor::LocalWindowPredictor(size_t history_m,
                                           uint64_t delta_floor,
                                           double delta_multiplier)
    : history_m_(std::max<size_t>(1, history_m)),
      delta_floor_(std::max<uint64_t>(1, delta_floor)),
      delta_multiplier_(std::max(1.0, delta_multiplier)) {}

void LocalWindowPredictor::ObserveActual(uint64_t actual_size) {
  if (observations_ >= 1) {
    const uint64_t delta = actual_size > last_actual_
                               ? actual_size - last_actual_
                               : last_actual_ - actual_size;
    recent_deltas_.push_back(delta);
    delta_sum_ += delta;
    if (recent_deltas_.size() > history_m_) {
      delta_sum_ -= recent_deltas_.front();
      recent_deltas_.pop_front();
    }
  }
  prev_actual_ = last_actual_;
  last_actual_ = actual_size;
  ++observations_;
}

uint64_t LocalWindowPredictor::Delta() const {
  if (recent_deltas_.empty()) return delta_floor_;
  const double avg = static_cast<double>(delta_sum_) /
                     static_cast<double>(recent_deltas_.size());
  return std::max(delta_floor_,
                  static_cast<uint64_t>(avg * delta_multiplier_ + 0.5));
}

}  // namespace deco
