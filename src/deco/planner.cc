#include "deco/planner.h"

#include <algorithm>

namespace deco {

SlicePlan PlanSync(uint64_t predicted, uint64_t delta) {
  SlicePlan plan;
  if (predicted > delta) {
    plan.slice = predicted - delta;
    plan.end_buffer = 2 * delta;
  } else {
    plan.slice = 0;
    // Degenerate slice (Eq. 3 else-branch): widen the raw region so it
    // still covers the predicted window plus one delta of slack.
    plan.end_buffer = std::max(2 * delta, predicted + delta);
  }
  return plan;
}

uint64_t AsyncFrontSize(uint64_t predicted, uint64_t delta) {
  return std::max(delta, predicted / 64);
}

uint64_t AsyncEndSize(uint64_t predicted, uint64_t delta) {
  return std::max(2 * delta, predicted / 32);
}

SlicePlan PlanAsync(uint64_t predicted, uint64_t delta) {
  // The raw regions absorb both rate drift (the delta term) and the
  // discrete jitter of the cut position (the size-relative floor). The
  // root recenters its per-node carryover around half the end buffer,
  // leaving symmetric margins before a correction is needed. The region
  // sums to exactly `predicted`, keeping the asynchronous steady state
  // self-balancing.
  SlicePlan plan;
  const uint64_t front = AsyncFrontSize(predicted, delta);
  const uint64_t end = AsyncEndSize(predicted, delta);
  if (predicted > front + end) {
    plan.front_buffer = front;
    plan.slice = predicted - front - end;
    plan.end_buffer = end;
  } else {
    plan.slice = 0;
    const uint64_t half = (predicted + 1) / 2;
    plan.front_buffer = std::max(half, front);
    plan.end_buffer = std::max(half, end);
  }
  return plan;
}

SlicePlan PlanMon(uint64_t measured, uint64_t delta) {
  return PlanSync(measured, delta);
}

SlicePlan PlanAsyncSlack(uint64_t predicted, uint64_t delta) {
  // Ships extra events beyond the predicted size so the standing
  // root-buffer slack lands at the recentering target of the steady-state
  // PlanAsync layout: (end - front) / 2 balances the margin against a cut
  // inside the forced region (end - leftover) with the margin against a
  // fully selected region (leftover + next front buffer).
  SlicePlan plan;
  const uint64_t end = AsyncEndSize(predicted, delta);
  const uint64_t front = AsyncFrontSize(predicted, delta);
  const uint64_t surplus =
      std::max<uint64_t>(1, end > front ? (end - front) / 2 : 1);
  if (predicted > end) {
    plan.slice = predicted - end;
    plan.end_buffer = end + surplus;
  } else {
    plan.slice = 0;
    plan.end_buffer = predicted + end + surplus;
  }
  return plan;
}

}  // namespace deco
