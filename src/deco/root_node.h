#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "deco/assembler.h"
#include "deco/local_node.h"
#include "deco/predictor.h"
#include "metrics/report.h"
#include "node/actor.h"
#include "node/query.h"
#include "node/topology.h"
#include "serve/composer.h"
#include "serve/registry.h"
#include "serve/slice_store.h"

/// \file root_node.h
/// \brief Deco root node (paper §4.2): runs prediction, verification and
/// correction for consecutive global windows, emits final results, and
/// drives the per-scheme flow pattern:
///
///  - `kMon`  — waits for fresh rate reports each window and apportions
///              the measured local window sizes (paper §4.2.1);
///  - `kSync` — sends predicted sizes immediately after each verification
///              (Algorithm 1/3);
///  - `kAsync`— same, but local nodes never wait for them; on a prediction
///              error the epoch is bumped so stale in-flight messages from
///              rolled-back windows are discarded (Algorithm 5, §4.3.2).

namespace deco {

/// \brief Root-node tunables.
struct DecoRootOptions {
  /// Delta-history length `m` (paper §4.2.2, last paragraph).
  size_t predictor_history_m = 4;

  /// Minimum delta (raw edge width); >= 1 for exactness.
  uint64_t delta_floor = 1;

  /// Safety factor widening the averaged delta (1.0 = paper's literal
  /// Eq. 2; larger trades a slightly wider raw edge for fewer
  /// corrections).
  double delta_multiplier = 2.0;

  /// Bootstrap slack: before the predictor has history, delta is
  /// `max(delta_floor, share / bootstrap_slack_divisor)`.
  uint64_t bootstrap_slack_divisor = 8;

  /// Top-up request size during corrections, in events.
  uint64_t correction_topup = 4096;

  /// Per-node silence timeout for failure detection; 0 disables
  /// (paper §4.3.4). Wall-clock nanoseconds.
  TimeNanos node_timeout_nanos = 0;

  /// Deco_monlocal (paper §5.1 microbenchmark): local nodes apportion
  /// window sizes among themselves; the root only verifies results and
  /// signals window starts. Must match the local nodes'
  /// `DecoLocalOptions::peer_rate_exchange`.
  bool peer_rate_exchange = false;
};

/// \brief Deco root actor.
class DecoRootNode final : public Actor {
 public:
  /// \param report filled on the actor thread; read after `Join`. Not
  ///        owned.
  DecoRootNode(NetworkFabric* fabric, NodeId id, Clock* clock,
               const Topology& topology, const QueryConfig& query,
               DecoScheme scheme, RunReport* report,
               DecoRootOptions options = {});

  /// \brief Installs a provenance collection point (src/obs/provenance.h);
  /// must be called before the actor starts. The root shares it with its
  /// assembler and adds the control-plane events the assembler cannot see
  /// (correction solicits, incarnation reports, emission). May be null
  /// (the default — no recording); not owned.
  void set_provenance(ProvenanceTracker* tracker) { provenance_ = tracker; }

  /// \brief Installs the multi-query serving registry (DESIGN.md §11);
  /// must be called before the actor starts and must outlive it. Null (the
  /// default) serves the constructor's single query through an internal
  /// registry — behaviorally identical to the pre-serving protocol.
  void set_serve(const QueryRegistry* registry) { serve_ = registry; }

 protected:
  Status Run() override;

 private:
  Status Dispatch(const Message& msg);
  Status Progress();

  /// Refreshes the live-progress gauges (`root.next_window`,
  /// `root.correcting`, `root.nodes_live`) the ops plane scrapes.
  void UpdateOpsGauges();

  /// Emits the assembled protocol window (one *pane* of the shared pane
  /// length) into every registered query's composer; a query whose window
  /// the pane completes emits a per-query window record, and the primary
  /// query additionally feeds the legacy report surfaces (windows list,
  /// latency histogram, emit counters/spans).
  Status EmitProtocolWindow(const WindowAssembly& assembly, bool corrected);

  /// Fires every pending runtime add/remove whose requested pane is at or
  /// before the pane about to be emitted: picks the effective pane (past
  /// every local's planning horizon), updates the slot schedule and the
  /// query's composer, and broadcasts `kQueryAdd`/`kQueryRemove`.
  Status ProcessServeTriggers(uint64_t pane);
  Status BroadcastQueryUpdate(const QueryUpdate& update);

  /// Sends the authoritative slot schedule (`kQueryConfig` payload) to one
  /// local, or to all of them (`node == SIZE_MAX`). Re-broadcast on every
  /// correction and rejoin so a lost add/remove cannot wedge a local on a
  /// stale slot set.
  Status SendServeSnapshot(size_t node);
  Status StartCorrection();

  /// Sends one correction request (full resend when `topup == 0`), tagged
  /// with the current epoch and the verified watermark so a rejoining
  /// local can drop already-emitted retained events.
  Status SendCorrectionRequest(size_t node, uint64_t topup);

  /// Re-admits a restarted local (kRejoin): scrubs its assembler state,
  /// resets its predictor, and folds it into a (possibly new) correction
  /// so it contributes again from its durable retained queue.
  Status HandleRejoin(size_t node, const RateReport& report);
  Status FinishWindow(const WindowAssembly& assembly, bool corrected);
  Status MaybeSendAssignments();
  Status SendAssignment(size_t node, const WindowAssignment& assignment);
  Status BroadcastShutdown();
  Status CheckNodeTimeouts();

  /// True when every live node's rate report for `w` has arrived.
  bool RatesComplete(uint64_t w) const;

  Topology topology_;
  QueryConfig query_;
  DecoScheme scheme_;
  RunReport* report_;
  DecoRootOptions options_;

  std::unique_ptr<AggregateFunction> func_;
  std::unique_ptr<WindowAssembler> assembler_;
  std::vector<LocalWindowPredictor> predictors_;
  std::vector<uint64_t> last_consumed_;

  // Latest instantaneous event rate reported by each node (via rate
  // reports and slice summaries). The paper derives "actual local window
  // sizes" from these rates (Â§4.2.2); feeding the predictor with
  // rate-apportioned estimates (instead of the verification-capped
  // consumed counts) keeps the delta tracking true drift.
  std::vector<double> latest_rates_;

  // Rate reports per window (mon every window; others only window 0).
  // `rates_received_[w][n]` is a per-node flag, not a count: blocked local
  // nodes re-send their report as a liveness heartbeat, and duplicates
  // must not satisfy `RatesComplete` early.
  std::map<uint64_t, std::vector<double>> rates_;
  std::map<uint64_t, std::vector<bool>> rates_received_;

  // Assignment gating: the next window whose assignment has not been sent.
  uint64_t assignment_window_ = 0;
  EventKey last_watermark_;

  // --- Multi-query serving layer (DESIGN.md §11) ----------------------
  // The protocol assembles *panes* of `pane_length_` events (the gcd over
  // all registered queries); each query re-composes its windows from the
  // panes of its aggregate slot.
  const QueryRegistry* serve_ = nullptr;
  QueryRegistry fallback_registry_;  ///< single-query default
  SlotBank slot_bank_;
  uint64_t pane_length_ = 0;
  // Per-node consumption is tracked only when panes and primary windows
  // are 1:1 (the legacy tumbling case the differential tests check).
  bool track_consumption_ = false;
  // True when there is anything to synchronize beyond slot 0 (extra slots
  // or a runtime schedule); gates the `kQueryConfig` re-sync broadcasts.
  bool serve_sync_needed_ = false;
  struct ServeQueryState {
    std::unique_ptr<QueryComposer> composer;
  };
  std::vector<ServeQueryState> serve_states_;
  // Requested runtime transitions, sorted by pane (adds before removes at
  // the same pane); drained as the emitted pane index passes them.
  struct ServeTrigger {
    uint64_t pane = 0;
    size_t query = 0;
    bool add = true;
  };
  std::deque<ServeTrigger> serve_triggers_;
  // Emitted protocol panes (provenance pane ordinal; equals the legacy
  // emitted-window count when panes and primary windows are 1:1).
  uint64_t panes_seen_ = 0;

  uint64_t epoch_ = 0;
  bool finished_ = false;
  ProvenanceTracker* provenance_ = nullptr;
  // Causal id of the message currently being processed (`Dispatch` sets
  // it); emit/correct spans carry it so the critical-path analyzer can
  // identify the exact hop that completed a window.
  uint64_t causal_msg_id_ = 0;
  // True when the most recently finished window needed a correction: the
  // next assignment doubles as the rollback signal and must not be gated
  // on fresh rate reports (exhausted locals never send them — deadlock).
  bool last_window_corrected_ = false;

  // Correction bookkeeping. `correction_round_` is the per-node round id
  // carried by the latest solicitation (responses to older rounds are
  // stale); `correction_requested_at_` drives the lost-message retry in
  // `CheckNodeTimeouts` — liveness heartbeats keep an unresponsive-but-
  // alive node from ever timing out, so without a retry a single dropped
  // request/response would stall the correction forever.
  std::vector<bool> correction_responded_;
  std::vector<uint64_t> correction_round_;
  std::vector<TimeNanos> correction_requested_at_;
  uint64_t correction_window_ = 0;

  // Failure detection.
  std::vector<TimeNanos> last_heard_;

  // Window-stall detection: `next_window()` and the time it last changed.
  // A dropped data-plane message (partial, event batch, assignment) leaves
  // the current window unassemblable while later traffic keeps every node
  // alive, so neither the removal path nor the correction retry ever
  // fires; a stalled window is repaired with a correction instead.
  uint64_t stall_window_ = 0;
  TimeNanos stall_since_ = 0;
};

}  // namespace deco
