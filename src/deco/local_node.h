#pragma once

#include <deque>
#include <map>

#include "deco/assembler.h"
#include "deco/planner.h"
#include "node/actor.h"
#include "node/ingest.h"
#include "node/query.h"
#include "node/topology.h"
#include "serve/accounting.h"
#include "serve/registry.h"
#include "serve/slice_store.h"

/// \file local_node.h
/// \brief Deco local node (paper §4.2): plans each predicted local window
/// as front-buffer / slice / end-buffer regions, aggregates the slice
/// locally, ships the buffers raw, retains unverified raw events for the
/// correction step, and follows the scheme's flow pattern:
///
///  - `kMon`  — per window: send rate report → wait for the measured
///              assignment → calculate (3 flows, paper §4.2.1);
///  - `kSync` — wait for the predicted assignment → calculate (2 flows,
///              blocked during root verification, §4.2.2);
///  - `kAsync`— calculate continuously with the latest received
///              prediction, never blocking on the root (§4.2.3), bounded
///              by `max_unverified_windows` (backpressure / memory bound,
///              §4.3.2).

namespace deco {

/// \brief Which Deco scheme a topology runs.
enum class DecoScheme : uint8_t {
  kMon = 0,
  kSync = 1,
  kAsync = 2,
};

const char* DecoSchemeToString(DecoScheme scheme);

/// \brief Local-node tunables.
struct DecoLocalOptions {
  /// Async only: how many windows may be in flight beyond the last
  /// root-verified one before the local node blocks (memory bound, and the
  /// staleness bound of the size/delta values the node plans with).
  uint64_t max_unverified_windows = 4;

  /// Deco_monlocal (paper §5.1 microbenchmark): exchange event rates with
  /// the *other local nodes* instead of the root and apportion the local
  /// window size locally; the root only verifies, aggregates, and signals
  /// the start of the next window. Only meaningful with `kMon`.
  bool peer_rate_exchange = false;

  /// Delta divisor used by the peer-exchange mode (no root predictor is
  /// available): delta = max(1, size / divisor).
  uint64_t peer_delta_divisor = 8;

  /// While blocked with no traffic from the root for this long, re-send
  /// the rate report as a liveness heartbeat. A node removed by a false
  /// suspicion (partitioned or slow, never crashed) has no other way to
  /// resurface: it blocks on an assignment the root stopped sending, and
  /// the root re-admits a removed node the moment it hears from it.
  /// 0 disables.
  TimeNanos heartbeat_nanos = 50 * kNanosPerMilli;
};

/// \brief Deco local node actor.
class DecoLocalNode final : public Actor {
 public:
  DecoLocalNode(NetworkFabric* fabric, NodeId id, Clock* clock,
                const Topology& topology, const IngestConfig& ingest,
                const QueryConfig& query, DecoScheme scheme,
                DecoLocalOptions options = {});

  /// \brief Installs the multi-query serving registry (DESIGN.md §11);
  /// must be called before the actor starts, must match the root's, and
  /// must outlive the actor. Null (the default) computes only the
  /// constructor query's slice — the pre-serving behavior.
  void set_serve(const QueryRegistry* registry) { serve_ = registry; }

 protected:
  Status Run() override;

 private:
  /// Serves `want` events from the retained deque (pulling fresh events
  /// from the generator as needed); returns the count actually served
  /// (less than `want` only at end of stream).
  size_t TakeRegion(size_t want, std::vector<TimedEvent>* out);

  /// Pulls one ingest batch into the retained deque; false at EOS.
  bool PullIntoRetained();

  /// Produces and ships the three regions of window `w`.
  Status ProduceWindow(uint64_t w, const SlicePlan& plan);

  /// Dispatches one control message; updates assignment/epoch state.
  Status HandleControl(const Message& msg);

  /// Responds to a correction request (full region or top-up).
  Status HandleCorrectionRequest(const Message& msg);

  /// `Send` wrapper that turns the fabric's NodeFailed (this node was
  /// crashed by the chaos controller) into the `crashed_` flag instead of
  /// an error: a dead host doesn't observe its own failed sends.
  Status SendOrCrash(Message msg);

  /// Crash limbo: waits until the fabric revives this node (or the run is
  /// stopped), then resets all volatile protocol state — the durable
  /// upstream queue (`retained_`, paper §4.3.1) and the ingest position
  /// survive — and announces the restart to the root (kRejoin).
  Status HandleCrash();

  /// Blocks until `predicate` (checked after each message) or stop.
  template <typename Pred>
  Status BlockUntil(Pred predicate);

  Status SendRateReport(uint64_t w);

  /// Deco_monlocal: broadcast this node's rate to the other local nodes.
  /// `end_of_stream` marks the node's final broadcast (stream exhausted);
  /// peers then stop waiting for its reports on any later window.
  Status BroadcastPeerRate(uint64_t w, bool end_of_stream = false);

  /// Deco_monlocal: true once every peer has either reported a rate for
  /// window `w` or announced end-of-stream.
  bool PeerRatesComplete(uint64_t w) const;

  Topology topology_;
  IngestConfig ingest_config_;
  QueryConfig query_;
  DecoScheme scheme_;
  DecoLocalOptions options_;

  std::unique_ptr<IngestSource> source_;
  std::unique_ptr<AggregateFunction> func_;

  // Multi-query serving layer (DESIGN.md §11): the shared slice store
  // computes every active aggregate slot in one pass over each pane; the
  // accounting splits the produced bytes/ops across tenants. Unused when
  // `serve_` is null.
  const QueryRegistry* serve_ = nullptr;
  SliceStore slice_store_;
  ServeAccounting accounting_;
  // Shared pane length: the registry's gcd when serving, else the
  // constructor query's protocol window length.
  uint64_t pane_length_ = 0;

  // Raw events not yet covered by a root watermark, in stream order.
  std::deque<TimedEvent> retained_;
  // Index into `retained_` of the first event not yet assigned to a region.
  size_t cursor_ = 0;

  // Latest assignment state.
  uint64_t assigned_size_ = 0;
  uint64_t assigned_delta_ = 0;
  int64_t pending_size_adjust_ = 0;  // one-shot (async recentering)
  uint64_t last_assignment_window_ = 0;
  bool have_assignment_ = false;
  // Causal id of the newest assignment message; window-open spans carry it
  // so the critical-path analyzer can link planning to the root's send.
  uint64_t assignment_msg_id_ = 0;
  uint64_t epoch_ = 0;
  // Set when an epoch bump (correction rollback) rewound the window
  // counter; consumed by the main loop.
  bool rolled_back_ = false;
  uint64_t resume_window_ = 0;
  bool done_ = false;  // root sent kShutdown
  bool eos_sent_ = false;
  // Set when the fabric reported this node down (chaos crash); the main
  // loop enters crash limbo until revived.
  bool crashed_ = false;
  // Set between the post-revive kRejoin announcement and the root's
  // epoch-advancing response: same-epoch assignments in that gap are
  // pre-crash stragglers and must be ignored (the node's cursor was
  // reset; acting on them would duplicate events).
  bool awaiting_rejoin_ = false;
  // Async: the next produced window uses the sync layout (region l+delta
  // instead of exactly l), creating the root-buffer slack that makes the
  // asynchronous steady state verifiable (DESIGN.md 4.1). Set at start and
  // after every rollback.
  bool need_slack_window_ = true;

  // Deco_monlocal peer-exchange state. `peer_rates_received_[w][n]` marks
  // an explicit report from ordinal n for window w; `peer_eos_[n]` means
  // ordinal n exhausted its stream and counts as rate 0 for every window
  // it did not explicitly report (it will never report again — waiting for
  // it deadlocked the whole topology before differential testing found
  // it). `peer_eos_sent_` guards this node's own final broadcast.
  size_t self_ordinal_ = 0;
  std::map<uint64_t, std::vector<double>> peer_rates_;
  std::map<uint64_t, std::vector<bool>> peer_rates_received_;
  std::vector<bool> peer_eos_;
  bool peer_eos_sent_ = false;
};

}  // namespace deco
