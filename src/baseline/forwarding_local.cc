#include "baseline/forwarding_local.h"

namespace deco {

ForwardingLocalNode::ForwardingLocalNode(NetworkFabric* fabric, NodeId id,
                                         Clock* clock,
                                         const Topology& topology,
                                         const IngestConfig& ingest,
                                         WireFormat format)
    : Actor(fabric, id, clock),
      topology_(topology),
      ingest_config_(ingest),
      format_(format) {}

Status ForwardingLocalNode::Run() {
  IngestSource source(ingest_config_, clock_);
  EventVec batch;
  while (!stop_requested()) {
    batch.clear();
    TimeNanos create_time = 0;
    const uint64_t from_offset = source.position();
    const size_t pulled =
        source.Pull(ingest_config_.batch_size, &batch, &create_time);
    const bool eos = source.exhausted();

    EventBatchPayload payload;
    payload.from_offset = from_offset;
    payload.end_of_stream = eos;
    payload.events = std::move(batch);

    Message msg;
    msg.type = MessageType::kEventBatch;
    msg.dst = topology_.root;
    if (format_ == WireFormat::kBinary) {
      BinaryWriter writer;
      EncodeEventBatch(payload, &writer);
      msg.payload = writer.Release();
    } else {
      msg.payload = EncodeEventBatchText(payload);
    }
    msg.MergeLatencyMeta(static_cast<double>(create_time), pulled);
    DECO_RETURN_NOT_OK(SendRetryingCrash(std::move(msg)));
    batch = std::move(payload.events);  // reuse capacity (moved-from is ok)
    if (eos) break;
  }
  return Status::OK();
}

}  // namespace deco
