#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "event/event.h"

/// \file root_merger.h
/// \brief Order-preserving k-way merge of the locally sorted streams
/// arriving at a root node.
///
/// Each local node ships its events in local `(timestamp, stream, id)`
/// order over a FIFO link, so the root can merge the per-node queues into
/// the deterministic global order — this *is* the Central ground truth
/// (DESIGN.md §4.1). The merge stalls whenever some non-finished node has
/// an empty queue: the head of that node's stream is unknown, exactly like
/// a watermark holding back processing.

namespace deco {

/// \brief Streaming k-way merge with per-event creation-time bookkeeping
/// for latency measurement.
class RootMerger {
 public:
  explicit RootMerger(size_t num_nodes);

  /// \brief Appends one received batch from `node`. `create_wall_nanos` is
  /// the batch's latency side-channel value, attributed to each event.
  void Append(size_t node, EventVec events, double create_wall_nanos);

  /// \brief Marks `node` as end-of-stream: an empty queue no longer stalls
  /// the merge.
  void MarkEos(size_t node);

  /// \brief Pops the next event in global order. Returns false when the
  /// merge is stalled (need more input) or fully drained.
  bool PopNext(Event* event, double* create_wall_nanos, size_t* from_node);

  /// \brief True when every node is EOS and every queue is empty.
  bool Drained() const;

  /// \brief Events currently buffered across all queues.
  size_t buffered() const { return buffered_; }

 private:
  struct Batch {
    EventVec events;
    double create_wall_nanos = 0.0;
    size_t next = 0;  // index of the next unconsumed event
  };

  struct NodeQueue {
    std::deque<Batch> batches;
    bool eos = false;
    bool in_heap = false;
  };

  struct HeapEntry {
    Event head;
    size_t node;
  };
  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      EventTimestampLess less;
      return less(b.head, a.head);
    }
  };

  const Event& Head(size_t node) const;
  void PushHeadToHeap(size_t node);

  std::vector<NodeQueue> nodes_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> heap_;
  size_t stalled_ = 0;   // non-EOS nodes with an empty queue
  size_t buffered_ = 0;
};

}  // namespace deco
