#pragma once

#include <map>
#include <memory>
#include <optional>

#include "metrics/report.h"
#include "node/actor.h"
#include "node/ingest.h"
#include "node/protocol.h"
#include "node/query.h"
#include "node/topology.h"

/// \file approx.h
/// \brief The approximate decentralized baseline (paper §4.1, "Approx"):
/// local window sizes are derived from event rates *once* and reused for
/// every global window. The fastest possible scheme — one up-flow per
/// window, no raw events, no verification — but it produces incorrect
/// windows as soon as event rates drift (Fig. 10d).

namespace deco {

class ProvenanceTracker;

/// \brief Approx local node: reports its rate once, then endlessly
/// aggregates fixed-size local windows and ships only partials.
class ApproxLocalNode final : public Actor {
 public:
  ApproxLocalNode(NetworkFabric* fabric, NodeId id, Clock* clock,
                  const Topology& topology, const IngestConfig& ingest,
                  const QueryConfig& query);

 protected:
  Status Run() override;

 private:
  Topology topology_;
  IngestConfig ingest_config_;
  QueryConfig query_;
};

/// \brief Approx root: apportions the global window once from the initial
/// rate reports, then merges one partial per local node per window.
class ApproxRoot final : public Actor {
 public:
  ApproxRoot(NetworkFabric* fabric, NodeId id, Clock* clock,
             const Topology& topology, const QueryConfig& query,
             RunReport* report);

  /// \brief Provenance collection point (src/obs/provenance.h); may be
  /// null (the default — no recording). Not owned. Approx ships exactly
  /// one partial per node per window, so `regions_per_window` is 1.
  void set_provenance(ProvenanceTracker* tracker) { provenance_ = tracker; }

 protected:
  Status Run() override;

 private:
  Status BroadcastAssignments(const std::vector<double>& rates);
  Status HandlePartial(const Message& msg);
  void TryEmitWindows();

  Topology topology_;
  QueryConfig query_;
  RunReport* report_;
  std::unique_ptr<AggregateFunction> func_;
  std::vector<uint64_t> shares_;

  struct PendingWindow {
    std::vector<std::optional<SliceSummary>> parts;
    size_t received = 0;
    // Latency side-channel: weighted mean creation time of covered events.
    double create_mean = 0.0;
    uint64_t create_count = 0;
  };
  std::map<uint64_t, PendingWindow> pending_;
  uint64_t next_window_ = 0;
  size_t eos_count_ = 0;
  ProvenanceTracker* provenance_ = nullptr;
  // Causal id of the partial being processed; emit spans carry it.
  uint64_t causal_msg_id_ = 0;
};

}  // namespace deco
