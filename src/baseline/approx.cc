#include "baseline/approx.h"

#include <algorithm>

#include "common/logging.h"
#include "node/apportion.h"
#include "obs/metric_registry.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace deco {

ApproxLocalNode::ApproxLocalNode(NetworkFabric* fabric, NodeId id,
                                 Clock* clock, const Topology& topology,
                                 const IngestConfig& ingest,
                                 const QueryConfig& query)
    : Actor(fabric, id, clock),
      topology_(topology),
      ingest_config_(ingest),
      query_(query) {}

Status ApproxLocalNode::Run() {
  IngestSource source(ingest_config_, clock_);

  // Report the observed rate once; Approx never updates it (that is the
  // point of the baseline).
  {
    RateReport report;
    report.window_index = 0;
    report.event_rate = source.TotalRate();
    report.stream_position = 0;
    report.incarnation = fabric_->node_incarnation(id_);
    BinaryWriter writer;
    EncodeRateReport(report, &writer);
    Message msg;
    msg.type = MessageType::kEventRate;
    msg.dst = topology_.root;
    msg.payload = writer.Release();
    DECO_RETURN_NOT_OK(Send(std::move(msg)));
  }

  // Wait for the static local window size.
  uint64_t local_window = 0;
  while (!stop_requested()) {
    std::optional<Message> msg = Receive();
    if (!msg.has_value()) return Status::OK();  // shut down while waiting
    if (msg->type == MessageType::kWindowAssignment) {
      BinaryReader reader(msg->payload);
      DECO_ASSIGN_OR_RETURN(WindowAssignment assignment,
                            DecodeWindowAssignment(&reader));
      local_window = assignment.local_window_size;
      break;
    }
  }
  DECO_ASSIGN_OR_RETURN(auto func,
                        MakeAggregate(query_.aggregate, query_.quantile_q));

  uint64_t window_index = 0;
  EventVec batch;
  while (!stop_requested() && !source.exhausted()) {
    // One fixed-size local window: aggregate `local_window` events.
    DECO_TRACE_SPAN(id_, TracePhase::kWindowOpen, window_index,
                    static_cast<int64_t>(local_window));
    Partial partial = func->CreatePartial();
    SliceSummary summary;
    double create_mean = 0.0;
    uint64_t covered = 0;
    uint64_t remaining = local_window;
    bool first = true;
    while (remaining > 0) {
      batch.clear();
      TimeNanos create_time = 0;
      const size_t pulled = source.Pull(
          std::min<uint64_t>(remaining, ingest_config_.batch_size), &batch,
          &create_time);
      if (pulled == 0) break;  // budget exhausted mid-window
      for (const Event& e : batch) func->Accumulate(&partial, e.value);
      if (first) {
        summary.min_ts = batch.front().timestamp;
        first = false;
      }
      summary.max_ts = batch.back().timestamp;
      summary.max_stream_id = batch.back().stream_id;
      summary.max_event_id = batch.back().id;
      // Weighted mean creation time across batches.
      const uint64_t total = covered + pulled;
      create_mean = (create_mean * static_cast<double>(covered) +
                     static_cast<double>(create_time) *
                         static_cast<double>(pulled)) /
                    static_cast<double>(total);
      covered = total;
      remaining -= pulled;
    }
    if (remaining > 0) break;  // incomplete local window: drop it

    summary.partial = std::move(partial);
    summary.event_count = covered;
    summary.event_rate = source.TotalRate();
    BinaryWriter writer;
    EncodeSliceSummary(summary, &writer);
    Message msg;
    msg.type = MessageType::kPartialResult;
    msg.dst = topology_.root;
    msg.window_index = window_index++;
    msg.payload = writer.Release();
    msg.MergeLatencyMeta(create_mean, covered);
    DECO_RETURN_NOT_OK(SendRetryingCrash(std::move(msg)));
  }

  Message eos;
  eos.type = MessageType::kShutdown;
  eos.dst = topology_.root;
  return SendRetryingCrash(std::move(eos));
}

ApproxRoot::ApproxRoot(NetworkFabric* fabric, NodeId id, Clock* clock,
                       const Topology& topology, const QueryConfig& query,
                       RunReport* report)
    : Actor(fabric, id, clock),
      topology_(topology),
      query_(query),
      report_(report) {}

Status ApproxRoot::Run() {
  DECO_ASSIGN_OR_RETURN(func_,
                        MakeAggregate(query_.aggregate, query_.quantile_q));
  report_->consumption = ConsumptionLog(topology_.num_locals());

  // Initialization: collect one rate report per local node.
  std::vector<double> rates(topology_.num_locals(), 0.0);
  size_t reported = 0;
  while (reported < topology_.num_locals() && !stop_requested()) {
    std::optional<Message> msg = Receive();
    if (!msg.has_value()) return Status::OK();
    if (msg->type != MessageType::kEventRate) continue;
    BinaryReader reader(msg->payload);
    DECO_ASSIGN_OR_RETURN(RateReport report, DecodeRateReport(&reader));
    DECO_ASSIGN_OR_RETURN(size_t ordinal, topology_.OrdinalOf(msg->src));
    rates[ordinal] = report.event_rate;
    if (provenance_ != nullptr) {
      provenance_->OnIncarnation(ordinal, report.incarnation);
    }
    ++reported;
  }
  DECO_RETURN_NOT_OK(BroadcastAssignments(rates));

  while (!stop_requested()) {
    std::optional<Message> msg = Receive();
    if (!msg.has_value()) break;
    if (provenance_ != nullptr) provenance_->set_now_nanos(NowNanos());
    if (msg->type == MessageType::kShutdown) {
      if (provenance_ != nullptr) {
        auto ordinal = topology_.OrdinalOf(msg->src);
        if (ordinal.ok()) provenance_->OnEos(*ordinal);
      }
      if (++eos_count_ == topology_.num_locals()) break;
      continue;
    }
    if (msg->type != MessageType::kPartialResult) continue;
    causal_msg_id_ = MessageCausalId(*msg);
    DECO_RETURN_NOT_OK(HandlePartial(*msg));
    TryEmitWindows();
  }
  return Status::OK();
}

Status ApproxRoot::BroadcastAssignments(const std::vector<double>& rates) {
  DECO_ASSIGN_OR_RETURN(shares_,
                        ApportionWindow(query_.window.length, rates));
  for (size_t i = 0; i < topology_.num_locals(); ++i) {
    WindowAssignment assignment;
    assignment.window_index = 0;
    assignment.local_window_size = shares_[i];
    BinaryWriter writer;
    EncodeWindowAssignment(assignment, &writer);
    Message msg;
    msg.type = MessageType::kWindowAssignment;
    msg.dst = topology_.locals[i];
    msg.payload = writer.Release();
    DECO_RETURN_NOT_OK(Send(std::move(msg)));
  }
  return Status::OK();
}

Status ApproxRoot::HandlePartial(const Message& msg) {
  BinaryReader reader(msg.payload);
  DECO_ASSIGN_OR_RETURN(SliceSummary summary, DecodeSliceSummary(&reader));
  DECO_ASSIGN_OR_RETURN(size_t ordinal, topology_.OrdinalOf(msg.src));
  PendingWindow& pending = pending_[msg.window_index];
  if (pending.parts.empty()) {
    pending.parts.resize(topology_.num_locals());
  }
  if (pending.parts[ordinal].has_value()) {
    if (provenance_ != nullptr) {
      provenance_->OnDuplicate(msg.window_index, ordinal,
                               ProvRegion::kSlice);
    }
    return Status::Internal("duplicate partial for window " +
                            std::to_string(msg.window_index));
  }
  pending.parts[ordinal] = std::move(summary);
  ++pending.received;
  if (provenance_ != nullptr) {
    provenance_->OnRegion(msg.window_index, ordinal, ProvRegion::kSlice,
                          msg.lat_mean_create_nanos);
  }
  // Fold the partial's latency side-channel into the window's weighted
  // mean creation time.
  if (msg.lat_event_count > 0) {
    const uint64_t total = pending.create_count + msg.lat_event_count;
    pending.create_mean =
        (pending.create_mean * static_cast<double>(pending.create_count) +
         msg.lat_mean_create_nanos *
             static_cast<double>(msg.lat_event_count)) /
        static_cast<double>(total);
    pending.create_count = total;
  }
  return Status::OK();
}

void ApproxRoot::TryEmitWindows() {
  while (true) {
    auto it = pending_.find(next_window_);
    if (it == pending_.end() ||
        it->second.received < topology_.num_locals()) {
      return;
    }
    Partial merged = func_->CreatePartial();
    uint64_t events = 0;
    EventTime end_ts = 0;
    std::vector<uint64_t> counts(topology_.num_locals(), 0);
    for (size_t i = 0; i < it->second.parts.size(); ++i) {
      const SliceSummary& part = *it->second.parts[i];
      DECO_CHECK_OK(func_->Merge(&merged, part.partial));
      events += part.event_count;
      counts[i] = part.event_count;
      end_ts = std::max(end_ts, part.max_ts);
    }
    GlobalWindowRecord record;
    record.window_index = next_window_;
    record.end_ts = end_ts;
    record.value = func_->Finalize(merged);
    record.event_count = events;
    record.mean_latency_nanos =
        static_cast<double>(NowNanos()) - it->second.create_mean;
    report_->windows.push_back(record);
    report_->latency.Record(
        static_cast<int64_t>(record.mean_latency_nanos));
    report_->consumption.AddWindow(counts);
    report_->events_processed += events;
    ++report_->windows_emitted;
    static Counter* windows_counter =
        MetricRegistry::Global()->counter("root.windows_emitted");
    static Counter* events_counter =
        MetricRegistry::Global()->counter("root.events_emitted");
    windows_counter->Increment();
    events_counter->Add(static_cast<int64_t>(events));
    DECO_TRACE_SPAN_MSG(id_, TracePhase::kEmit, record.window_index,
                        static_cast<int64_t>(events), causal_msg_id_);
    if (provenance_ != nullptr) {
      provenance_->OnWindowEmitted(next_window_, record.window_index,
                                   /*corrected=*/false, NowNanos());
    }
    pending_.erase(it);
    ++next_window_;
  }
}

}  // namespace deco
