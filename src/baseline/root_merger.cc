#include "baseline/root_merger.h"

#include <cassert>

namespace deco {

// Invariants:
//  - a node is `in_heap` iff it has at least one unconsumed buffered event
//    (PopNext eagerly drops fully consumed batches);
//  - `stalled_` counts nodes that are neither EOS nor in the heap.

RootMerger::RootMerger(size_t num_nodes)
    : nodes_(num_nodes), stalled_(num_nodes) {}

const Event& RootMerger::Head(size_t node) const {
  const Batch& batch = nodes_[node].batches.front();
  return batch.events[batch.next];
}

void RootMerger::PushHeadToHeap(size_t node) {
  heap_.push(HeapEntry{Head(node), node});
  nodes_[node].in_heap = true;
}

void RootMerger::Append(size_t node, EventVec events,
                        double create_wall_nanos) {
  if (events.empty()) return;
  NodeQueue& q = nodes_[node];
  const bool had_head = !q.batches.empty();
  buffered_ += events.size();
  q.batches.push_back(Batch{std::move(events), create_wall_nanos, 0});
  if (!had_head) {
    PushHeadToHeap(node);
    if (!q.eos) {
      assert(stalled_ > 0);
      --stalled_;
    }
  }
}

void RootMerger::MarkEos(size_t node) {
  NodeQueue& q = nodes_[node];
  if (q.eos) return;
  q.eos = true;
  if (q.batches.empty()) {
    // The node was counted as stalled; it no longer holds the merge back.
    assert(stalled_ > 0);
    --stalled_;
  }
}

bool RootMerger::PopNext(Event* event, double* create_wall_nanos,
                         size_t* from_node) {
  if (stalled_ > 0 || heap_.empty()) return false;
  const HeapEntry top = heap_.top();
  heap_.pop();
  NodeQueue& q = nodes_[top.node];
  q.in_heap = false;
  Batch& batch = q.batches.front();
  *event = top.head;
  *create_wall_nanos = batch.create_wall_nanos;
  *from_node = top.node;
  ++batch.next;
  --buffered_;
  if (batch.next == batch.events.size()) {
    q.batches.pop_front();
  }
  if (!q.batches.empty()) {
    PushHeadToHeap(top.node);
  } else if (!q.eos) {
    ++stalled_;
  }
  return true;
}

bool RootMerger::Drained() const {
  if (buffered_ > 0) return false;
  for (const NodeQueue& q : nodes_) {
    if (!q.eos) return false;
  }
  return true;
}

}  // namespace deco
