#pragma once

#include <deque>
#include <memory>
#include <thread>

#include "common/queue.h"

#include "baseline/root_merger.h"
#include "metrics/report.h"
#include "node/actor.h"
#include "node/protocol.h"
#include "node/query.h"
#include "node/topology.h"

/// \file centralized_root.h
/// \brief Root node of the three centralized baselines (paper §5,
/// "Evaluated Approaches"):
///
///  - **Central**: collects raw events into the window and "executes
///    aggregation functions individually for all events, once the window
///    ends" — buffered, non-incremental, with the window-model stable sort
///    at the edge. Analog of stock Flink/Spark count windows.
///  - **Scotty**: same raw-event ingest but *incremental* aggregation via
///    the stream-slicing windower, sharing partials between concurrent
///    (sliding) windows.
///  - **Disco**: like Scotty but decodes the verbose text wire format on
///    its single processing thread, reproducing Disco's lower throughput
///    and higher network cost.
///
/// All three merge the per-node FIFO streams into the deterministic global
/// order, which makes Central the correctness ground truth.

namespace deco {

class ProvenanceTracker;

enum class CentralizedMode : uint8_t {
  kCentral = 0,
  kScotty = 1,
  kDisco = 2,
};

/// \brief Centralized window-aggregation root.
class CentralizedRoot final : public Actor {
 public:
  /// \param report output record; filled on the actor thread, must only be
  ///        read after `Join`. Not owned.
  CentralizedRoot(NetworkFabric* fabric, NodeId id, Clock* clock,
                  const Topology& topology, const QueryConfig& query,
                  CentralizedMode mode, RunReport* report);

  /// \brief Provenance collection point (src/obs/provenance.h); may be
  /// null (the default — no recording). Not owned. The centralized
  /// baselines have no per-window protocol regions, so each emitted
  /// window gets a synthesized record covering the nodes that actually
  /// contributed events to it.
  void set_provenance(ProvenanceTracker* tracker) { provenance_ = tracker; }

 protected:
  Status Run() override;

 private:
  /// Scotty mode: a dedicated thread decodes incoming batches while the
  /// main thread merges and aggregates ("Scotty's approach uses separate
  /// threads to send, receive, and process events", paper §5.1).
  Status RunPipelined();

  Status HandleBatch(const Message& msg);
  Status DrainMerger();
  Status ProcessEventBuffered(const Event& event, double create_nanos,
                              size_t from_node);
  Status ProcessEventIncremental(const Event& event, double create_nanos,
                                 size_t from_node);
  void EmitWindow(double value, uint64_t event_count, double mean_create,
                  EventTime end_ts);

  Topology topology_;
  QueryConfig query_;
  CentralizedMode mode_;
  RunReport* report_;

  std::unique_ptr<AggregateFunction> func_;
  RootMerger merger_;

  // Buffered (Central) path.
  EventVec window_buffer_;

  // Incremental (Scotty/Disco) path.
  std::unique_ptr<Windower> windower_;
  std::vector<WindowResult> closed_;

  // Shared per-open-window accounting (exact for tumbling windows).
  double create_sum_ = 0.0;
  uint64_t open_events_ = 0;
  std::vector<uint64_t> node_counts_;
  size_t eos_count_ = 0;
  ProvenanceTracker* provenance_ = nullptr;
  // Causal id of the batch being processed; emit spans carry it so the
  // critical-path analyzer can identify the hop that closed the window.
  uint64_t causal_msg_id_ = 0;
};

}  // namespace deco
