#include "baseline/centralized_root.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metric_registry.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace deco {

CentralizedRoot::CentralizedRoot(NetworkFabric* fabric, NodeId id,
                                 Clock* clock, const Topology& topology,
                                 const QueryConfig& query,
                                 CentralizedMode mode, RunReport* report)
    : Actor(fabric, id, clock),
      topology_(topology),
      query_(query),
      mode_(mode),
      report_(report),
      merger_(topology.num_locals()),
      node_counts_(topology.num_locals(), 0) {}

Status CentralizedRoot::Run() {
  DECO_ASSIGN_OR_RETURN(func_,
                        MakeAggregate(query_.aggregate, query_.quantile_q));
  // The buffered sort-then-aggregate engine below emits once per `length`
  // events — tumbling semantics. Sliding windows overlap, so Central must
  // run the real window operator too (found by tests/differential_test.cc:
  // Central used to silently treat sliding specs as tumbling).
  if (mode_ != CentralizedMode::kCentral ||
      query_.window.type == WindowType::kSliding) {
    DECO_ASSIGN_OR_RETURN(windower_, MakeWindower(query_.window, func_.get()));
  }
  report_->consumption = ConsumptionLog(topology_.num_locals());

  // Scotty pipelines decode on a helper thread for wall-clock throughput.
  // Under the deterministic scheduler that inner thread would be an
  // unmanaged source of interleaving, and virtual time makes pipelining
  // free anyway — so sim mode runs the semantically identical sequential
  // loop below instead.
  if (mode_ == CentralizedMode::kScotty && fabric_->sim() == nullptr) {
    return RunPipelined();
  }

  while (!stop_requested()) {
    std::optional<Message> msg = Receive();
    if (!msg.has_value()) break;  // mailbox closed
    if (msg->type == MessageType::kShutdown) break;
    if (msg->type != MessageType::kEventBatch) {
      DECO_LOG(WARNING) << "centralized root ignoring "
                        << MessageTypeToString(msg->type);
      continue;
    }
    DECO_RETURN_NOT_OK(HandleBatch(*msg));
    DECO_RETURN_NOT_OK(DrainMerger());
    if (eos_count_ == topology_.num_locals() && merger_.Drained()) break;
  }
  return Status::OK();
}

Status CentralizedRoot::RunPipelined() {
  // Decoded batch handed from the decode thread to the processing loop.
  struct Decoded {
    size_t ordinal = 0;
    EventVec events;
    bool eos = false;
    double create_nanos = 0.0;
    uint64_t msg_id = 0;  // causal id, carried across the decode thread
  };
  BlockingQueue<Decoded> decoded;

  std::thread decoder([&] {
    while (!stop_requested()) {
      std::optional<Message> msg = Receive();
      if (!msg.has_value() || msg->type == MessageType::kShutdown) break;
      if (msg->type != MessageType::kEventBatch) continue;
      BinaryReader reader(msg->payload);
      auto batch = DecodeEventBatch(&reader);
      if (!batch.ok()) continue;  // corrupted frame: drop
      auto ordinal = topology_.OrdinalOf(msg->src);
      if (!ordinal.ok()) continue;
      Decoded d;
      d.ordinal = *ordinal;
      d.events = std::move(batch->events);
      d.eos = batch->end_of_stream;
      d.create_nanos = msg->lat_mean_create_nanos;
      d.msg_id = MessageCausalId(*msg);
      if (!decoded.Push(std::move(d))) break;
    }
    decoded.Close();
  });

  Status status = Status::OK();
  while (!stop_requested()) {
    std::optional<Decoded> d = decoded.Pop();
    if (!d.has_value()) break;
    causal_msg_id_ = d->msg_id;
    merger_.Append(d->ordinal, std::move(d->events), d->create_nanos);
    if (d->eos) {
      ++eos_count_;
      merger_.MarkEos(d->ordinal);
    }
    status = DrainMerger();
    if (!status.ok()) break;
    if (eos_count_ == topology_.num_locals() && merger_.Drained()) break;
  }
  decoded.Close();
  Mailbox* mailbox = fabric_->mailbox(id_);
  if (mailbox != nullptr) mailbox->Close();  // wake the decoder
  decoder.join();
  return status;
}

Status CentralizedRoot::HandleBatch(const Message& msg) {
  causal_msg_id_ = MessageCausalId(msg);
  EventBatchPayload batch;
  if (mode_ == CentralizedMode::kDisco) {
    DECO_ASSIGN_OR_RETURN(batch, DecodeEventBatchText(msg.payload));
  } else {
    BinaryReader reader(msg.payload);
    DECO_ASSIGN_OR_RETURN(batch, DecodeEventBatch(&reader));
  }
  DECO_ASSIGN_OR_RETURN(size_t ordinal, topology_.OrdinalOf(msg.src));
  merger_.Append(ordinal, std::move(batch.events),
                 msg.lat_mean_create_nanos);
  if (batch.end_of_stream) {
    ++eos_count_;
    merger_.MarkEos(ordinal);
  }
  return Status::OK();
}

Status CentralizedRoot::DrainMerger() {
  Event event;
  double create_nanos = 0.0;
  size_t from_node = 0;
  while (merger_.PopNext(&event, &create_nanos, &from_node)) {
    if (windower_ == nullptr) {
      DECO_RETURN_NOT_OK(
          ProcessEventBuffered(event, create_nanos, from_node));
    } else {
      DECO_RETURN_NOT_OK(
          ProcessEventIncremental(event, create_nanos, from_node));
    }
  }
  return Status::OK();
}

Status CentralizedRoot::ProcessEventBuffered(const Event& event,
                                             double create_nanos,
                                             size_t from_node) {
  window_buffer_.push_back(event);
  create_sum_ += create_nanos;
  ++open_events_;
  ++node_counts_[from_node];
  if (window_buffer_.size() < query_.window.length) return Status::OK();

  // Window ends: the straightforward engine sorts the collected events
  // (window operator model, paper §3) and aggregates them all at once.
  std::stable_sort(window_buffer_.begin(), window_buffer_.end(),
                   EventTimestampLess());
  Partial partial = func_->CreatePartial();
  for (const Event& e : window_buffer_) func_->Accumulate(&partial, e.value);
  const double value = func_->Finalize(partial);
  EmitWindow(value, window_buffer_.size(),
             create_sum_ / static_cast<double>(open_events_),
             window_buffer_.back().timestamp);
  window_buffer_.clear();
  return Status::OK();
}

Status CentralizedRoot::ProcessEventIncremental(const Event& event,
                                                double create_nanos,
                                                size_t from_node) {
  create_sum_ += create_nanos;
  ++open_events_;
  ++node_counts_[from_node];
  closed_.clear();
  DECO_RETURN_NOT_OK(windower_->Add(event, &closed_));
  for (const WindowResult& result : closed_) {
    EmitWindow(result.value, result.event_count,
               create_sum_ / static_cast<double>(open_events_),
               result.end_time);
  }
  return Status::OK();
}

void CentralizedRoot::EmitWindow(double value, uint64_t event_count,
                                 double mean_create, EventTime end_ts) {
  GlobalWindowRecord record;
  record.window_index = report_->windows_emitted;
  record.value = value;
  record.event_count = event_count;
  record.end_ts = end_ts;
  record.mean_latency_nanos =
      static_cast<double>(NowNanos()) - mean_create;
  report_->windows.push_back(record);
  report_->latency.Record(static_cast<int64_t>(record.mean_latency_nanos));
  report_->consumption.AddWindow(node_counts_);
  if (provenance_ != nullptr) {
    std::vector<bool> live(node_counts_.size());
    for (size_t n = 0; n < node_counts_.size(); ++n) {
      live[n] = node_counts_[n] > 0;
    }
    provenance_->OnSynthesizedWindow(record.window_index, live, mean_create,
                                     NowNanos());
  }
  std::fill(node_counts_.begin(), node_counts_.end(), 0);
  report_->events_processed += event_count;
  ++report_->windows_emitted;
  create_sum_ = 0.0;
  open_events_ = 0;
  static Counter* windows_counter =
      MetricRegistry::Global()->counter("root.windows_emitted");
  static Counter* events_counter =
      MetricRegistry::Global()->counter("root.events_emitted");
  windows_counter->Increment();
  events_counter->Add(static_cast<int64_t>(event_count));
  DECO_TRACE_SPAN_MSG(id_, TracePhase::kEmit, record.window_index,
                      static_cast<int64_t>(event_count), causal_msg_id_);
}

}  // namespace deco
