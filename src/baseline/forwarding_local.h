#pragma once

#include <memory>

#include "node/actor.h"
#include "node/ingest.h"
#include "node/protocol.h"
#include "node/topology.h"

/// \file forwarding_local.h
/// \brief Local node of the centralized baselines (Central, Scotty, Disco):
/// forwards every raw event to the root, performing no aggregation
/// (paper §3: "In centralized aggregation, the local nodes only forward the
/// raw events to the root").

namespace deco {

/// \brief Wire format used by a forwarding local node.
enum class WireFormat : uint8_t {
  kBinary = 0,  ///< compact little-endian (Central, Scotty)
  kText = 1,    ///< verbose strings (Disco; paper §5.1 network discussion)
};

/// \brief Raw-event forwarder.
class ForwardingLocalNode final : public Actor {
 public:
  ForwardingLocalNode(NetworkFabric* fabric, NodeId id, Clock* clock,
                      const Topology& topology, const IngestConfig& ingest,
                      WireFormat format);

 protected:
  Status Run() override;

 private:
  Topology topology_;
  IngestConfig ingest_config_;
  WireFormat format_;
};

}  // namespace deco
