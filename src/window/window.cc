#include "window/window.h"

#include <sstream>

#include "window/count_window.h"
#include "window/session_window.h"
#include "window/time_window.h"

namespace deco {

WindowSpec WindowSpec::CountTumbling(uint64_t length) {
  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.measure = WindowMeasure::kCount;
  spec.length = length;
  spec.slide = length;
  return spec;
}

WindowSpec WindowSpec::CountSliding(uint64_t length, uint64_t slide) {
  WindowSpec spec;
  spec.type = WindowType::kSliding;
  spec.measure = WindowMeasure::kCount;
  spec.length = length;
  spec.slide = slide;
  return spec;
}

WindowSpec WindowSpec::TimeTumbling(int64_t length_nanos) {
  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.measure = WindowMeasure::kTime;
  spec.length = static_cast<uint64_t>(length_nanos);
  spec.slide = static_cast<uint64_t>(length_nanos);
  return spec;
}

WindowSpec WindowSpec::TimeSliding(int64_t length_nanos, int64_t slide_nanos) {
  WindowSpec spec;
  spec.type = WindowType::kSliding;
  spec.measure = WindowMeasure::kTime;
  spec.length = static_cast<uint64_t>(length_nanos);
  spec.slide = static_cast<uint64_t>(slide_nanos);
  return spec;
}

WindowSpec WindowSpec::Session(int64_t gap_nanos) {
  WindowSpec spec;
  spec.type = WindowType::kSession;
  spec.measure = WindowMeasure::kTime;
  spec.session_gap = gap_nanos;
  return spec;
}

Status WindowSpec::Validate() const {
  if (type == WindowType::kSession) {
    if (session_gap <= 0) {
      return Status::InvalidArgument("session gap must be positive");
    }
    return Status::OK();
  }
  if (length == 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  if (type == WindowType::kSliding) {
    if (slide == 0) {
      return Status::InvalidArgument("slide must be positive");
    }
    if (slide > length) {
      return Status::InvalidArgument(
          "slide must not exceed window length (no gaps between windows)");
    }
  }
  return Status::OK();
}

std::string WindowSpec::ToString() const {
  std::ostringstream os;
  switch (type) {
    case WindowType::kTumbling:
      os << "tumbling";
      break;
    case WindowType::kSliding:
      os << "sliding";
      break;
    case WindowType::kSession:
      os << "session";
      break;
  }
  os << "/" << (measure == WindowMeasure::kCount ? "count" : "time");
  if (type == WindowType::kSession) {
    os << "(gap=" << session_gap << "ns)";
  } else if (type == WindowType::kSliding) {
    os << "(length=" << length << ", slide=" << slide << ")";
  } else {
    os << "(length=" << length << ")";
  }
  return os.str();
}

Result<std::unique_ptr<Windower>> MakeWindower(const WindowSpec& spec,
                                               const AggregateFunction* func) {
  if (func == nullptr) {
    return Status::InvalidArgument("aggregate function must not be null");
  }
  DECO_RETURN_NOT_OK(spec.Validate());
  if (spec.type == WindowType::kSession) {
    return std::unique_ptr<Windower>(new SessionWindower(spec, func));
  }
  if (spec.measure == WindowMeasure::kCount) {
    if (spec.type == WindowType::kTumbling) {
      return std::unique_ptr<Windower>(new CountTumblingWindower(spec, func));
    }
    return std::unique_ptr<Windower>(new CountSlidingWindower(spec, func));
  }
  if (spec.type == WindowType::kTumbling) {
    return std::unique_ptr<Windower>(new TimeTumblingWindower(spec, func));
  }
  return std::unique_ptr<Windower>(new TimeSlidingWindower(spec, func));
}

}  // namespace deco
