#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "agg/aggregate.h"
#include "common/result.h"
#include "common/status.h"
#include "event/event.h"

/// \file window.h
/// \brief Window definitions and the `Windower` operator interface
/// (paper §2.1–§2.2).
///
/// A window spec combines a *type* (tumbling, sliding, session) with a
/// *measure* (count or time). Tumbling and sliding windows have fixed sizes;
/// session windows are terminated by an event-time gap. The library's
/// decentralized schemes target count-based tumbling and sliding windows;
/// the time- and session-window operators exist as substrates for the
/// baselines and as a complete single-node windowing library.

namespace deco {

enum class WindowType : uint8_t {
  kTumbling = 0,
  kSliding = 1,
  kSession = 2,
};

enum class WindowMeasure : uint8_t {
  kCount = 0,
  kTime = 1,
};

/// \brief Full description of a window operator.
struct WindowSpec {
  WindowType type = WindowType::kTumbling;
  WindowMeasure measure = WindowMeasure::kCount;

  /// Window length: number of events (count measure) or nanoseconds (time
  /// measure).
  uint64_t length = 0;

  /// Slide step for sliding windows, in the same unit as `length`.
  uint64_t slide = 0;

  /// Session gap in nanoseconds (session windows only).
  int64_t session_gap = 0;

  static WindowSpec CountTumbling(uint64_t length);
  static WindowSpec CountSliding(uint64_t length, uint64_t slide);
  static WindowSpec TimeTumbling(int64_t length_nanos);
  static WindowSpec TimeSliding(int64_t length_nanos, int64_t slide_nanos);
  static WindowSpec Session(int64_t gap_nanos);

  /// \brief Checks internal consistency (positive length, slide <= length
  /// for sliding windows, ...).
  Status Validate() const;

  std::string ToString() const;
};

/// \brief One closed window with its aggregate.
struct WindowResult {
  /// Sequence number of the window in emission order (0-based).
  uint64_t window_index = 0;

  /// Event-time bounds: timestamps of the first and last contained event
  /// for count windows, or the window interval for time windows.
  EventTime start_time = 0;
  EventTime end_time = 0;

  /// Number of events aggregated into the window.
  uint64_t event_count = 0;

  /// Mergeable aggregation state of the window.
  Partial partial;

  /// Finalized scalar (`AggregateFunction::Finalize(partial)`).
  double value = 0.0;
};

/// \brief Streaming window operator: push events (and watermarks for time
/// windows) in order, collect closed windows.
///
/// Not thread-safe; one instance per stream/thread.
class Windower {
 public:
  virtual ~Windower() = default;

  /// \brief Ingests one event; appends any windows it closes to `out`.
  virtual Status Add(const Event& event, std::vector<WindowResult>* out) = 0;

  /// \brief Advances event time. Time and session windows whose end lies at
  /// or before the watermark close and are appended to `out`. Count windows
  /// ignore watermarks.
  virtual Status OnWatermark(Watermark watermark,
                             std::vector<WindowResult>* out) {
    (void)watermark;
    (void)out;
    return Status::OK();
  }

  /// \brief End-of-stream: closes windows that can never be completed by
  /// further input (e.g. an open session). Partially filled count windows
  /// are *not* emitted — a count window without its full complement of
  /// events has no defined result.
  virtual Status Flush(std::vector<WindowResult>* out) {
    (void)out;
    return Status::OK();
  }

  const WindowSpec& spec() const { return spec_; }

 protected:
  explicit Windower(WindowSpec spec) : spec_(spec) {}
  WindowSpec spec_;
};

/// \brief Constructs the windower for `spec` over aggregation function
/// `func`. `func` must outlive the windower.
Result<std::unique_ptr<Windower>> MakeWindower(const WindowSpec& spec,
                                               const AggregateFunction* func);

}  // namespace deco
