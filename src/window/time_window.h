#pragma once

#include <map>

#include "window/window.h"

/// \file time_window.h
/// \brief Time-based tumbling and sliding window operators.
///
/// Time windows close on watermarks: a window `[start, end)` is emitted once
/// a watermark with `value >= end - 1` arrives, i.e. once the operator knows
/// no more events with timestamps inside the window can appear. Events that
/// arrive behind the watermark (late events) are dropped.
///
/// The sliding operator shares panes of `gcd(length, slide)` nanoseconds
/// between overlapping windows, as in the count-based case.

namespace deco {

/// \brief Tumbling window of `length` nanoseconds aligned to multiples of
/// `length` (epoch-aligned buckets).
class TimeTumblingWindower final : public Windower {
 public:
  TimeTumblingWindower(WindowSpec spec, const AggregateFunction* func);

  Status Add(const Event& event, std::vector<WindowResult>* out) override;
  Status OnWatermark(Watermark watermark,
                     std::vector<WindowResult>* out) override;

 private:
  struct Bucket {
    Partial partial;
    uint64_t count = 0;
  };

  const AggregateFunction* func_;
  std::map<int64_t, Bucket> buckets_;  // keyed by bucket index
  EventTime watermark_ = INT64_MIN;
  uint64_t next_index_ = 0;
};

/// \brief Sliding window of `length` nanoseconds every `slide` nanoseconds,
/// pane-shared.
class TimeSlidingWindower final : public Windower {
 public:
  TimeSlidingWindower(WindowSpec spec, const AggregateFunction* func);

  Status Add(const Event& event, std::vector<WindowResult>* out) override;
  Status OnWatermark(Watermark watermark,
                     std::vector<WindowResult>* out) override;

 private:
  struct Pane {
    Partial partial;
    uint64_t count = 0;
  };

  const AggregateFunction* func_;
  int64_t pane_nanos_;
  std::map<int64_t, Pane> panes_;  // keyed by pane index
  EventTime watermark_ = INT64_MIN;
  int64_t next_window_start_;  // start time of the next window to emit
  bool saw_event_ = false;
  uint64_t next_index_ = 0;
};

}  // namespace deco
