#include "window/count_window.h"

#include <numeric>

namespace deco {

CountTumblingWindower::CountTumblingWindower(WindowSpec spec,
                                             const AggregateFunction* func)
    : Windower(spec), func_(func), partial_(func->CreatePartial()) {}

Status CountTumblingWindower::Add(const Event& event,
                                  std::vector<WindowResult>* out) {
  if (count_ == 0) first_ts_ = event.timestamp;
  func_->Accumulate(&partial_, event.value);
  last_ts_ = event.timestamp;
  if (++count_ == spec_.length) {
    WindowResult result;
    result.window_index = next_index_++;
    result.start_time = first_ts_;
    result.end_time = last_ts_;
    result.event_count = count_;
    result.value = func_->Finalize(partial_);
    result.partial = std::move(partial_);
    out->push_back(std::move(result));
    partial_ = func_->CreatePartial();
    count_ = 0;
  }
  return Status::OK();
}

CountSlidingWindower::CountSlidingWindower(WindowSpec spec,
                                           const AggregateFunction* func)
    : Windower(spec), func_(func) {
  pane_size_ = std::gcd(spec_.length, spec_.slide);
  panes_per_window_ = spec_.length / pane_size_;
  panes_per_slide_ = spec_.slide / pane_size_;
  open_.partial = func_->CreatePartial();
}

void CountSlidingWindower::ClosePane() {
  panes_.push_back(std::move(open_));
  open_.partial = func_->CreatePartial();
  open_.first_ts = 0;
  open_.last_ts = 0;
  open_count_ = 0;
}

Status CountSlidingWindower::Add(const Event& event,
                                 std::vector<WindowResult>* out) {
  if (open_count_ == 0) open_.first_ts = event.timestamp;
  func_->Accumulate(&open_.partial, event.value);
  open_.last_ts = event.timestamp;
  ++open_count_;
  ++total_events_;

  if (open_count_ == pane_size_) ClosePane();

  // A window of `length` events ending at event index `total_events_ - 1`
  // closes when total_events_ >= length and (total_events_ - length) is a
  // multiple of slide.
  const bool window_closes =
      total_events_ >= spec_.length &&
      (total_events_ - spec_.length) % spec_.slide == 0;
  if (!window_closes) return Status::OK();

  if (panes_.size() < panes_per_window_) {
    return Status::Internal("sliding pane store out of sync");
  }
  WindowResult result;
  result.window_index = next_index_++;
  result.partial = func_->CreatePartial();
  const size_t first = panes_.size() - panes_per_window_;
  for (size_t i = first; i < panes_.size(); ++i) {
    DECO_RETURN_NOT_OK(func_->Merge(&result.partial, panes_[i].partial));
  }
  result.start_time = panes_[first].first_ts;
  result.end_time = panes_.back().last_ts;
  result.event_count = spec_.length;
  result.value = func_->Finalize(result.partial);
  out->push_back(std::move(result));

  // The first `panes_per_slide_` panes of the emitted window precede the
  // next window's start and are never needed again.
  for (uint64_t i = 0; i < panes_per_slide_ && !panes_.empty(); ++i) {
    panes_.pop_front();
  }
  return Status::OK();
}

}  // namespace deco
