#pragma once

#include <deque>

#include "window/window.h"

/// \file count_window.h
/// \brief Count-based tumbling and sliding window operators.
///
/// The sliding operator uses Scotty-style stream slicing: the stream is cut
/// into non-overlapping *panes* of `gcd(length, slide)` events; each pane
/// keeps one partial aggregate and every closed window is the merge of the
/// `length / pane` most recent panes. A single event is therefore
/// aggregated once regardless of how many overlapping windows contain it.

namespace deco {

/// \brief Tumbling window of `length` events.
class CountTumblingWindower final : public Windower {
 public:
  CountTumblingWindower(WindowSpec spec, const AggregateFunction* func);

  Status Add(const Event& event, std::vector<WindowResult>* out) override;

  /// \brief Number of events accumulated in the currently open window.
  uint64_t open_count() const { return count_; }

 private:
  const AggregateFunction* func_;
  Partial partial_;
  uint64_t count_ = 0;
  uint64_t next_index_ = 0;
  EventTime first_ts_ = 0;
  EventTime last_ts_ = 0;
};

/// \brief Sliding window of `length` events advancing by `slide` events,
/// backed by shared panes.
class CountSlidingWindower final : public Windower {
 public:
  CountSlidingWindower(WindowSpec spec, const AggregateFunction* func);

  Status Add(const Event& event, std::vector<WindowResult>* out) override;

 private:
  // One closed pane: partial over `pane_size_` consecutive events.
  struct Pane {
    Partial partial;
    EventTime first_ts = 0;
    EventTime last_ts = 0;
  };

  void ClosePane();

  const AggregateFunction* func_;
  uint64_t pane_size_;        // gcd(length, slide)
  uint64_t panes_per_window_;  // length / pane_size_
  uint64_t panes_per_slide_;   // slide / pane_size_

  std::deque<Pane> panes_;  // closed panes still needed by future windows
  Pane open_;               // pane currently accumulating
  uint64_t open_count_ = 0;
  uint64_t total_events_ = 0;
  uint64_t next_index_ = 0;
};

}  // namespace deco
