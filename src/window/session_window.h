#pragma once

#include "window/window.h"

/// \file session_window.h
/// \brief Session window operator (paper §2.1): a window closes after a gap
/// of `session_gap` nanoseconds of event-time silence.

namespace deco {

/// \brief Event-time session windows over an in-order stream.
///
/// A session extends as long as consecutive events are at most
/// `session_gap` apart. The session closes when an event arrives more than
/// a gap after the previous one, when a watermark passes
/// `last_event + gap`, or at `Flush` (end of stream).
class SessionWindower final : public Windower {
 public:
  SessionWindower(WindowSpec spec, const AggregateFunction* func);

  Status Add(const Event& event, std::vector<WindowResult>* out) override;
  Status OnWatermark(Watermark watermark,
                     std::vector<WindowResult>* out) override;
  Status Flush(std::vector<WindowResult>* out) override;

 private:
  void CloseSession(std::vector<WindowResult>* out);

  const AggregateFunction* func_;
  Partial partial_;
  bool open_ = false;
  uint64_t count_ = 0;
  EventTime first_ts_ = 0;
  EventTime last_ts_ = 0;
  uint64_t next_index_ = 0;
};

}  // namespace deco
