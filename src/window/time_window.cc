#include "window/time_window.h"

#include <numeric>

namespace deco {

TimeTumblingWindower::TimeTumblingWindower(WindowSpec spec,
                                           const AggregateFunction* func)
    : Windower(spec), func_(func) {}

Status TimeTumblingWindower::Add(const Event& event,
                                 std::vector<WindowResult>* out) {
  (void)out;
  if (event.timestamp <= watermark_) {
    // Late event: behind the watermark, its window already closed.
    return Status::OK();
  }
  const int64_t length = static_cast<int64_t>(spec_.length);
  const int64_t bucket = event.timestamp / length;
  Bucket& b = buckets_[bucket];
  if (b.count == 0) b.partial = func_->CreatePartial();
  func_->Accumulate(&b.partial, event.value);
  ++b.count;
  return Status::OK();
}

Status TimeTumblingWindower::OnWatermark(Watermark watermark,
                                         std::vector<WindowResult>* out) {
  watermark_ = std::max(watermark_, watermark.value);
  const int64_t length = static_cast<int64_t>(spec_.length);
  // A bucket [k*length, (k+1)*length) closes once every timestamp < its end
  // is covered by the watermark.
  while (!buckets_.empty()) {
    const auto it = buckets_.begin();
    const int64_t end = (it->first + 1) * length;
    if (watermark_ < end - 1) break;
    WindowResult result;
    result.window_index = next_index_++;
    result.start_time = it->first * length;
    result.end_time = end;
    result.event_count = it->second.count;
    result.value = func_->Finalize(it->second.partial);
    result.partial = std::move(it->second.partial);
    out->push_back(std::move(result));
    buckets_.erase(it);
  }
  return Status::OK();
}

TimeSlidingWindower::TimeSlidingWindower(WindowSpec spec,
                                         const AggregateFunction* func)
    : Windower(spec), func_(func) {
  pane_nanos_ = static_cast<int64_t>(std::gcd(spec_.length, spec_.slide));
  next_window_start_ = 0;
}

Status TimeSlidingWindower::Add(const Event& event,
                                std::vector<WindowResult>* out) {
  (void)out;
  if (event.timestamp <= watermark_) return Status::OK();
  if (!saw_event_) {
    saw_event_ = true;
    // The earliest window containing the first event starts at the largest
    // multiple of `slide` that is <= timestamp - length + 1, clamped to >= 0
    // (timestamps are non-negative by the stream model).
    const int64_t length = static_cast<int64_t>(spec_.length);
    const int64_t slide = static_cast<int64_t>(spec_.slide);
    const int64_t lo = event.timestamp - length + 1;
    next_window_start_ = lo <= 0 ? 0 : ((lo + slide - 1) / slide) * slide;
  }
  const int64_t pane = event.timestamp / pane_nanos_;
  Pane& p = panes_[pane];
  if (p.count == 0) p.partial = func_->CreatePartial();
  func_->Accumulate(&p.partial, event.value);
  ++p.count;
  return Status::OK();
}

Status TimeSlidingWindower::OnWatermark(Watermark watermark,
                                        std::vector<WindowResult>* out) {
  watermark_ = std::max(watermark_, watermark.value);
  if (!saw_event_) return Status::OK();
  const int64_t length = static_cast<int64_t>(spec_.length);
  const int64_t slide = static_cast<int64_t>(spec_.slide);
  while (next_window_start_ + length - 1 <= watermark_) {
    const int64_t start = next_window_start_;
    const int64_t end = start + length;
    WindowResult result;
    result.window_index = next_index_;
    result.start_time = start;
    result.end_time = end;
    result.partial = func_->CreatePartial();
    result.event_count = 0;
    for (auto it = panes_.lower_bound(start / pane_nanos_);
         it != panes_.end() && it->first * pane_nanos_ < end; ++it) {
      DECO_RETURN_NOT_OK(func_->Merge(&result.partial, it->second.partial));
      result.event_count += it->second.count;
    }
    next_window_start_ += slide;
    // Drop panes that precede every future window.
    const int64_t keep_from = next_window_start_ / pane_nanos_;
    panes_.erase(panes_.begin(), panes_.lower_bound(keep_from));
    if (result.event_count == 0) continue;  // skip empty windows
    result.value = func_->Finalize(result.partial);
    out->push_back(std::move(result));
    ++next_index_;
  }
  return Status::OK();
}

}  // namespace deco
