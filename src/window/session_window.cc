#include "window/session_window.h"

namespace deco {

SessionWindower::SessionWindower(WindowSpec spec,
                                 const AggregateFunction* func)
    : Windower(spec), func_(func), partial_(func->CreatePartial()) {}

void SessionWindower::CloseSession(std::vector<WindowResult>* out) {
  if (!open_) return;
  WindowResult result;
  result.window_index = next_index_++;
  result.start_time = first_ts_;
  result.end_time = last_ts_;
  result.event_count = count_;
  result.value = func_->Finalize(partial_);
  result.partial = std::move(partial_);
  out->push_back(std::move(result));
  partial_ = func_->CreatePartial();
  open_ = false;
  count_ = 0;
}

Status SessionWindower::Add(const Event& event,
                            std::vector<WindowResult>* out) {
  if (open_ && event.timestamp - last_ts_ > spec_.session_gap) {
    CloseSession(out);
  }
  if (!open_) {
    open_ = true;
    first_ts_ = event.timestamp;
  }
  func_->Accumulate(&partial_, event.value);
  last_ts_ = event.timestamp;
  ++count_;
  return Status::OK();
}

Status SessionWindower::OnWatermark(Watermark watermark,
                                    std::vector<WindowResult>* out) {
  if (open_ && watermark.value - last_ts_ > spec_.session_gap) {
    CloseSession(out);
  }
  return Status::OK();
}

Status SessionWindower::Flush(std::vector<WindowResult>* out) {
  CloseSession(out);
  return Status::OK();
}

}  // namespace deco
