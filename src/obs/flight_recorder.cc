#include "obs/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <cstring>

#include "common/json.h"
#include "common/logging.h"
#include "net/fabric.h"

namespace deco {

namespace internal {
std::atomic<FlightRecorder*> g_flight_recorder{nullptr};
}  // namespace internal

void FlightRecorderSpan(NodeId node, TracePhase phase, uint64_t window_index,
                        int64_t value, uint64_t msg_id) {
  FlightRecorder* recorder = FlightRecorder::Active();
  if (recorder != nullptr) {
    recorder->RecordSpan(node, phase, window_index, value, msg_id);
  }
}

void FlightRecorderHop(const Message& msg) {
  FlightRecorder* recorder = FlightRecorder::Active();
  if (recorder != nullptr) recorder->RecordHop(msg);
}

FlightRecorder::FlightRecorder(Clock* clock, Options options)
    : clock_(clock), options_(options) {}

void FlightRecorder::RecordHop(const Message& msg) {
#if DECO_TRACE_ENABLED
  if (msg.hop.msg_id == 0) return;
  HopRecord hop;
  hop.msg_id = msg.hop.msg_id;
  hop.type = msg.type;
  hop.src = msg.src;
  hop.dst = msg.dst;
  hop.window_index = msg.window_index;
  hop.wire_bytes = msg.WireSize();
  hop.enqueue_nanos = msg.hop.enqueue_nanos;
  hop.deliver_nanos = msg.hop.deliver_nanos;
  hop.dequeue_nanos = msg.hop.dequeue_nanos;
  hop.shaping_delay_nanos = msg.hop.shaping_delay_nanos;

  std::lock_guard<std::mutex> lock(hop_mu_);
  hops_.Push(options_.hop_capacity, hop);
#else
  (void)msg;
#endif
}

void FlightRecorder::RecordSpan(NodeId node, TracePhase phase,
                                uint64_t window_index, int64_t value,
                                uint64_t msg_id) {
  TraceEvent event;
  event.t_nanos = clock_->NowNanos();
  event.node = node;
  event.phase = phase;
  event.window_index = window_index;
  event.value = value;
  event.msg_id = msg_id;

  std::lock_guard<std::mutex> lock(span_mu_);
  spans_.Push(options_.span_capacity, event);
}

void FlightRecorder::RecordAlert(const AlertTransition& transition) {
  std::lock_guard<std::mutex> lock(alert_mu_);
  alerts_.Push(options_.alert_capacity, transition);
}

namespace {

void AppendHop(std::string* out, const HopRecord& hop) {
  *out += "{\"msg_id\":";
  JsonAppendU64(out, hop.msg_id);
  *out += ",\"type\":";
  JsonAppendString(out, MessageTypeToString(hop.type));
  *out += ",\"src\":";
  JsonAppendU64(out, hop.src);
  *out += ",\"dst\":";
  JsonAppendU64(out, hop.dst);
  *out += ",\"window_index\":";
  JsonAppendU64(out, hop.window_index);
  *out += ",\"wire_bytes\":";
  JsonAppendU64(out, hop.wire_bytes);
  *out += ",\"enqueue_nanos\":";
  JsonAppendI64(out, hop.enqueue_nanos);
  *out += ",\"deliver_nanos\":";
  JsonAppendI64(out, hop.deliver_nanos);
  *out += ",\"dequeue_nanos\":";
  JsonAppendI64(out, hop.dequeue_nanos);
  *out += ",\"shaping_delay_nanos\":";
  JsonAppendI64(out, hop.shaping_delay_nanos);
  *out += "}";
}

void AppendSpan(std::string* out, const TraceEvent& event) {
  *out += "{\"t_nanos\":";
  JsonAppendI64(out, event.t_nanos);
  *out += ",\"node\":";
  JsonAppendU64(out, event.node);
  *out += ",\"phase\":";
  JsonAppendString(out, std::string(TracePhaseToString(event.phase)));
  *out += ",\"window_index\":";
  JsonAppendU64(out, event.window_index);
  *out += ",\"value\":";
  JsonAppendI64(out, event.value);
  *out += ",\"msg_id\":";
  JsonAppendU64(out, event.msg_id);
  *out += "}";
}

void AppendAlert(std::string* out, const AlertTransition& transition) {
  *out += "{\"t_nanos\":";
  JsonAppendI64(out, transition.t_nanos);
  *out += ",\"kind\":";
  JsonAppendString(out, transition.kind);
  *out += ",\"subject\":";
  JsonAppendString(out, transition.subject);
  *out += ",\"fired\":";
  *out += transition.fired ? "true" : "false";
  *out += ",\"observed\":";
  JsonAppendDouble(out, transition.observed);
  *out += ",\"threshold\":";
  JsonAppendDouble(out, transition.threshold);
  *out += "}";
}

}  // namespace

std::string FlightRecorder::ToJson(const std::string& reason) const {
  return ToJsonLocked(reason, /*best_effort=*/false);
}

std::string FlightRecorder::ToJsonLocked(const std::string& reason,
                                         bool best_effort) const {
  std::vector<HopRecord> hops;
  std::vector<TraceEvent> spans;
  std::vector<AlertTransition> alerts;
  uint64_t hop_total = 0, span_total = 0, alert_total = 0;
  {
    std::unique_lock<std::mutex> lock(hop_mu_, std::defer_lock);
    if (best_effort ? lock.try_lock() : (lock.lock(), true)) {
      hops = hops_.OldestFirst(options_.hop_capacity);
      hop_total = hops_.total;
    }
  }
  {
    std::unique_lock<std::mutex> lock(span_mu_, std::defer_lock);
    if (best_effort ? lock.try_lock() : (lock.lock(), true)) {
      spans = spans_.OldestFirst(options_.span_capacity);
      span_total = spans_.total;
    }
  }
  {
    std::unique_lock<std::mutex> lock(alert_mu_, std::defer_lock);
    if (best_effort ? lock.try_lock() : (lock.lock(), true)) {
      alerts = alerts_.OldestFirst(options_.alert_capacity);
      alert_total = alerts_.total;
    }
  }

  std::string out;
  out.reserve(1 << 16);
  out += "{\n  \"schema_version\": 1,\n  \"reason\": ";
  JsonAppendString(&out, reason);
  out += ",\n  \"t_nanos\": ";
  JsonAppendI64(&out, clock_->NowNanos());
  out += ",\n  \"hop_capacity\": ";
  JsonAppendU64(&out, options_.hop_capacity);
  out += ",\n  \"hops_recorded\": ";
  JsonAppendU64(&out, hop_total);
  out += ",\n  \"spans_recorded\": ";
  JsonAppendU64(&out, span_total);
  out += ",\n  \"alerts_recorded\": ";
  JsonAppendU64(&out, alert_total);
  out += ",\n  \"hops\": [";
  for (size_t i = 0; i < hops.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendHop(&out, hops[i]);
  }
  out += "\n  ],\n  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendSpan(&out, spans[i]);
  }
  out += "\n  ],\n  \"alerts\": [";
  for (size_t i = 0; i < alerts.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendAlert(&out, alerts[i]);
  }
  out += "\n  ]\n}\n";
  return out;
}

bool FlightRecorder::DumpJson(const std::string& path,
                              const std::string& reason,
                              bool best_effort) const {
  const std::string doc = ToJsonLocked(reason, best_effort);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (!best_effort) {
      DECO_LOG(ERROR) << "flight recorder: cannot open " << path;
    }
    return false;
  }
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return written == doc.size();
}

std::vector<HopRecord> FlightRecorder::Hops() const {
  std::lock_guard<std::mutex> lock(hop_mu_);
  return hops_.OldestFirst(options_.hop_capacity);
}

std::vector<TraceEvent> FlightRecorder::Spans() const {
  std::lock_guard<std::mutex> lock(span_mu_);
  return spans_.OldestFirst(options_.span_capacity);
}

std::vector<AlertTransition> FlightRecorder::Alerts() const {
  std::lock_guard<std::mutex> lock(alert_mu_);
  return alerts_.OldestFirst(options_.alert_capacity);
}

uint64_t FlightRecorder::hops_recorded() const {
  std::lock_guard<std::mutex> lock(hop_mu_);
  return hops_.total;
}

uint64_t FlightRecorder::spans_recorded() const {
  std::lock_guard<std::mutex> lock(span_mu_);
  return spans_.total;
}

uint64_t FlightRecorder::alerts_recorded() const {
  std::lock_guard<std::mutex> lock(alert_mu_);
  return alerts_.total;
}

FlightRecorder* FlightRecorder::Install(FlightRecorder* recorder) {
  FlightRecorder* previous = internal::g_flight_recorder.exchange(
      recorder, std::memory_order_acq_rel);
  internal::RefreshHopStamping();
  return previous;
}

namespace {

// Crash-handler state: captured at install time so the handler itself
// only reads plain buffers.
char g_crash_dump_path[512] = {0};
std::atomic<bool> g_crash_handler_installed{false};

void CrashHandler(int signo) {
  FlightRecorder* recorder = FlightRecorder::Active();
  if (recorder != nullptr && g_crash_dump_path[0] != '\0') {
    const char* name = signo == SIGSEGV ? "SIGSEGV"
                       : signo == SIGABRT ? "SIGABRT"
                                          : "signal";
    // Best-effort: allocates and takes try_locks, so a crash inside the
    // allocator or while holding a ring lock may lose records — the
    // alternative (no artifact at all) is worse.
    recorder->DumpJson(g_crash_dump_path,
                       std::string("fatal-signal:") + name,
                       /*best_effort=*/true);
  }
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace

void FlightRecorder::InstallCrashHandler(const std::string& path) {
  std::strncpy(g_crash_dump_path, path.c_str(),
               sizeof(g_crash_dump_path) - 1);
  g_crash_dump_path[sizeof(g_crash_dump_path) - 1] = '\0';
  if (g_crash_handler_installed.exchange(true)) return;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &CrashHandler;
  sigemptyset(&action.sa_mask);
  sigaction(SIGSEGV, &action, nullptr);
  sigaction(SIGABRT, &action, nullptr);
}

}  // namespace deco
