#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "metrics/histogram.h"
#include "obs/quantile_sketch.h"

/// \file metric_registry.h
/// \brief Lock-cheap registry of named counters, gauges, histograms and
/// quantile sketches.
///
/// Instruments are created once (shared-lock fast path, exclusive lock only
/// on first use of a name) and then updated without the registry lock:
/// counters and histograms are sharded so concurrent node threads land on
/// different cache lines / stripes, and the sampler merges the shards when
/// it snapshots. Update cost: one relaxed atomic add (counter/gauge) or one
/// striped mutex + `Histogram::Record` (histogram).

namespace deco {

/// \brief Monotonically increasing sharded counter.
class Counter {
 public:
  /// \brief Adds `delta` to the calling thread's shard.
  void Add(int64_t delta) {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// \brief Merged value across shards (point-in-time under concurrency).
  int64_t value() const {
    int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  static size_t ShardIndex();
  std::array<Shard, kShards> shards_;
};

/// \brief Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t value) { v_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Histogram with striped locks so recording threads rarely contend;
/// `Merged` combines the stripes (reusing `Histogram::Merge`).
class ShardedHistogram {
 public:
  void Record(int64_t value);
  Histogram Merged() const;
  void Reset();

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    Histogram h;
  };
  std::array<Stripe, kStripes> stripes_;
};

/// \brief Mutex-wrapped mergeable quantile sketch (quantile_sketch.h).
/// Observations land on a single lock: sketch writers are low-rate
/// (sampler ticks, scrape timings), unlike the sharded hot-path counters.
class SketchMetric {
 public:
  void Observe(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    sketch_.Add(value);
  }
  void MergeFrom(const QuantileSketch& other) {
    std::lock_guard<std::mutex> lock(mu_);
    sketch_.Merge(other);
  }
  QuantileSketch Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sketch_;
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    sketch_.Reset();
  }

 private:
  mutable std::mutex mu_;
  QuantileSketch sketch_;
};

/// \brief Point-in-time summary of a registered histogram.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double mean = 0.0;
  int64_t p50 = 0;
  int64_t p99 = 0;
  int64_t max = 0;
};

/// \brief All registry values at one instant.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<SketchSnapshot> sketches;
};

/// \brief Name -> instrument registry. Instrument pointers are stable for
/// the registry's lifetime, so callers hoist the lookup out of their loops.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  ShardedHistogram* histogram(const std::string& name);
  SketchMetric* sketch(const std::string& name);

  /// \brief Merged point-in-time values of every instrument, name-sorted.
  MetricsSnapshot Snapshot() const;

  /// \brief Zeroes every instrument (instruments stay registered, pointers
  /// stay valid) — used between telemetry runs sharing the global registry.
  void Reset();

  /// \brief Process-global registry the node instrumentation writes to.
  static MetricRegistry* Global();

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<ShardedHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<SketchMetric>> sketches_;
};

}  // namespace deco
