#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/sampler.h"
#include "obs/trace.h"

/// \file critical_path.h
/// \brief Joins message hop records with window-lifecycle spans into a
/// per-window latency attribution (DESIGN.md §7).
///
/// For every `kEmit` span the analyzer finds the *critical hop*: the
/// message whose arrival let the root finish the window (exactly, via the
/// causal `msg_id` the emit span carries; by latest-arrival heuristic when
/// the id is missing). Walking back along that hop yields a telescoping
/// decomposition of the emit latency into named components — each is the
/// (clamped, non-negative) gap between two adjacent timeline points, so
/// the components *sum exactly* to the attributed total:
///
///   anchor ──────────── hop.enqueue        local_compute | correction
///   hop.enqueue ─────── +shaping_delay     shaping (NIC cap/backpressure)
///   ─────────────────── hop.deliver        link (modeled latency)
///   hop.deliver ─────── hop.dequeue        queue (root mailbox backlog)
///   hop.dequeue ─────── emit time          root_merge (assemble/verify)
///
/// The anchor is the matching `kWindowOpen` span on the hop's source node
/// (Deco/Approx locals record one per local window) or, for a corrected
/// window whose critical hop is a `kCorrectionResult`, the root's latest
/// `kCorrect` span — so the correction round-trip is charged to its own
/// component instead of inflating local compute. Baselines without
/// window-open spans fall back to anchoring at `hop.enqueue` (their raw
/// batches involve no local aggregation to attribute).

namespace deco {

/// \brief One window's latency split into components (nanoseconds).
/// `total_nanos == local_compute + correction + shaping + link + queue +
/// root_merge` by construction.
struct LatencyComponents {
  double local_compute_nanos = 0;  ///< source-side aggregation/buffering
  double correction_nanos = 0;     ///< correction round-trip (Deco only)
  double shaping_nanos = 0;        ///< sender blocked on egress/backpressure
  double link_nanos = 0;           ///< modeled link latency
  double queue_nanos = 0;          ///< destination mailbox queueing
  double root_merge_nanos = 0;     ///< root-side assemble/merge/verify
  double total_nanos = 0;

  LatencyComponents& operator+=(const LatencyComponents& other);
};

/// \brief Attribution of one emitted window.
struct WindowAttribution {
  uint64_t window_index = 0;
  NodeId root = 0;          ///< node that emitted the window
  NodeId critical_src = 0;  ///< sender of the critical (latest) message
  uint64_t msg_id = 0;      ///< critical hop id (0 = heuristic match)
  bool corrected = false;   ///< critical hop was a correction result
  bool exact = false;       ///< matched via causal id, not heuristics
  LatencyComponents components;
};

/// \brief Full result of the analyzer.
struct LatencyAttribution {
  std::vector<WindowAttribution> windows;  ///< ordered by window index
  LatencyComponents mean;   ///< per-component mean over `windows`
  size_t emit_spans = 0;    ///< emit spans seen in the log
  size_t unattributed = 0;  ///< emits with no usable hop record
};

/// \brief Runs the join + attribution over a drained telemetry log.
LatencyAttribution AttributeWindowLatency(const TelemetryLog& log);

/// \brief Human-readable table of an attribution (for benches and debug).
std::string FormatLatencyBreakdown(const LatencyAttribution& attribution);

}  // namespace deco
