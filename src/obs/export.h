#pragma once

#include <string>

#include "common/status.h"
#include "metrics/report.h"
#include "obs/sampler.h"

/// \file export.h
/// \brief Serializes one run's telemetry (sampler time series, window
/// lifecycle spans, final `RunReport`) to machine-readable JSON and CSV.
///
/// JSON document layout (schema_version 1):
/// \code{.json}
/// {
///   "schema_version": 1,
///   "scheme": "deco-async",
///   "report": { "events_processed": n, "wall_seconds": s,
///               "throughput_eps": r, "windows_emitted": n,
///               "correction_steps": n, "total_bytes": n,
///               "total_messages": n, "latency_mean_nanos": x,
///               "latency_p50_nanos": n, "latency_p99_nanos": n },
///   "samples": [ { "t_ms": x, "elapsed_ms": x, "events_per_sec": r,
///                  "total_dropped": n,
///                  "counters": {"name": n, ...},
///                  "gauges": {"name": n, ...},
///                  "histograms": [{"name": s, "count": n, "mean": x,
///                                  "p50": n, "p99": n, "max": n}],
///                  "nodes": [ { "node": id, "name": s, "queue_depth": n,
///                               "messages_sent": n, "bytes_sent": n,
///                               "messages_received": n,
///                               "bytes_received": n,
///                               "bytes_per_sec": r } ] } ],
///   "spans": [ { "t_ms": x, "node": id, "phase": s, "window": n,
///                "value": n } ],
///   "spans_dropped": n
/// }
/// \endcode
/// `t_ms` is milliseconds since the first sample; cumulative fabric
/// counters are carried as-is and per-interval rates (`bytes_per_sec`,
/// `events_per_sec`) are derived from consecutive samples at export time.

namespace deco {

/// \brief Renders the full telemetry document as a JSON string.
std::string TelemetryToJson(const RunReport& report, const TelemetryLog& log);

/// \brief Writes `TelemetryToJson` to `path`; IOError on filesystem
/// failure.
Status WriteTelemetryJson(const std::string& path, const RunReport& report,
                          const TelemetryLog& log);

/// \brief Writes the per-node time series as CSV (one row per sample x
/// node): t_ms,node,name,queue_depth,messages_sent,bytes_sent,
/// messages_received,bytes_received,bytes_per_sec.
Status WriteSamplesCsv(const std::string& path, const TelemetryLog& log);

/// \brief Writes the span list as CSV: t_ms,node,phase,window,value.
Status WriteSpansCsv(const std::string& path, const TelemetryLog& log);

}  // namespace deco
