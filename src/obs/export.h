#pragma once

#include <string>

#include "common/status.h"
#include "metrics/report.h"
#include "obs/sampler.h"

/// \file export.h
/// \brief Serializes one run's telemetry (sampler time series, window
/// lifecycle spans, final `RunReport`) to machine-readable JSON and CSV.
///
/// JSON document layout (schema_version 7; every version-1..6 field is
/// preserved with unchanged meaning, so older consumers keep working —
/// tests/obs_test.cc's schema-compat case parses the document with a
/// v2-era reader):
/// \code{.json}
/// {
///   "schema_version": 7,
///   "scheme": "deco-async",
///   "report": { "events_processed": n, "wall_seconds": s,
///               "throughput_eps": r, "windows_emitted": n,
///               "correction_steps": n, "total_bytes": n,
///               "total_messages": n, "latency_mean_nanos": x,
///               "latency_p50_nanos": n, "latency_p99_nanos": n },
///   "cpu_breakdown": { "enabled": b, "alloc_counted": b,
///       "threads": [ { "name": s, "cpu_nanos": n, "wall_nanos": n,
///                      "messages_handled": n, "allocations": n,
///                      "allocated_bytes": n,
///                      "handlers": [{"type": s, "count": n,
///                                    "cpu_nanos": n, "wall_nanos": n}] } ] },
///   "samples": [ { "t_ms": x, "events_per_sec": r,
///                  "total_dropped": n,
///                  "counters": {"name": n, ...},
///                  "gauges": {"name": n, ...},
///                  "histograms": [{"name": s, "count": n, "mean": x,
///                                  "p50": n, "p99": n, "max": n}],
///                  "sketches": [{"name": s, "count": n, "sum": x,
///                                "min": x, "max": x, "p50": x, "p90": x,
///                                "p99": x}],
///                  "fleet": { "collapsed": b, "node_count": n,
///                             "detail_nodes": n, "nodes_down": n,
///                             "total_messages_sent": n,
///                             "total_bytes_sent": n,
///                             "total_messages_received": n,
///                             "total_bytes_received": n,
///                             "queue_depth": {"sum": n, "min": x,
///                                 "max": x, "p50": x, "p99": x},
///                             "messages_sent": {...},
///                             "bytes_sent": {...} },
///                  "nodes": [ { "node": id, "name": s, "queue_depth": n,
///                               "messages_sent": n, "bytes_sent": n,
///                               "messages_received": n,
///                               "bytes_received": n,
///                               "sent_by_type": {"partial-result":
///                                   {"messages": n, "bytes": n}, ...},
///                               "bytes_per_sec": r } ] } ],
///   "spans": [ { "t_ms": x, "node": id, "phase": s, "window": n,
///                "value": n, "msg_id": n } ],
///   "spans_dropped": n,
///   "hop_count": n,
///   "hops_dropped": n,
///   "latency_breakdown": { "emit_spans": n, "windows_attributed": n,
///       "unattributed": n, "mean": {components},
///       "windows": [ { "window": n, "root": id, "critical_src": id,
///                      "corrected": b, "exact": b,
///                      "components": {components} } ] },
///   "provenance_summary": { "enabled": b, "windows_tracked": n, ... }
///       (the `RunReport::provenance` POD, metrics/report.h),
///   "provenance": { "windows_tracked": n, "windows_dropped": n,
///       "windows": [ per-window records ], "accuracy": [ per-window
///       error decompositions ] } (obs/provenance.h `ProvenanceJson`),
///   "serving": { multi-query roll-up + per-tenant accounting
///       (metrics/report.h `ServingSummary`) },
///   "queries": [ { "id": n, "tenant": s, "spec": s, "start_pane": n,
///                  "end_pane": n, "activated": b, "windows": n } ],
///   "alerts": { "enabled": b, "fired": n, "active": n,
///       "items": [ { "kind": s, "subject": s, "fired_at_ms": x,
///                    "resolved_at_ms": x|null, "observed": x,
///                    "threshold": x, "message": s } ] },
///   "obs_self": { "enabled": b, "sampler_ticks": n,
///       "sampler_tick_mean_nanos": x, "sampler_tick_p50_nanos": x,
///       "sampler_tick_p99_nanos": x, "sampler_tick_max_nanos": x,
///       "tracker_bytes": n, "scrapes": n, "scrape_nanos_mean": x,
///       "scrape_nanos_p99": x, "exposition_bytes": n, "spans_dropped": n,
///       "hops_dropped": n, "node_detail_limit": n, "top_k": n }
/// }
/// \endcode
/// where `{components}` is `{ "total_nanos": x, "local_compute_nanos": x,
/// "correction_nanos": x, "shaping_nanos": x, "link_nanos": x,
/// "queue_nanos": x, "root_merge_nanos": x }` (see critical_path.h).
///
/// `t_ms` is milliseconds since the first sample; cumulative fabric
/// counters are carried as-is and per-interval rates (`bytes_per_sec`,
/// `events_per_sec`) are derived from consecutive samples at export time.
/// Since v2 the rates of the *first* sample are `null` (CSV: empty) — there
/// is no prior snapshot to rate against, and 0 was misleading. Only
/// message types with nonzero counts appear in `sent_by_type`. Since v3
/// the document carries `cpu_breakdown`, the run's per-thread CPU/alloc
/// profile (`{"enabled": false, ..., "threads": []}` when the run was not
/// profiled — null-safe defaults, never absent). Since v4 it carries
/// `provenance_summary` and `provenance` (DESIGN.md §10) — again always
/// present, with empty arrays and a disabled summary when no provenance
/// was collected. Since v5 it carries the multi-query serving roll-up
/// (`serving` + `queries`, DESIGN.md §11; disabled-and-empty for
/// single-query runs). Since v6 it carries `alerts`, the watchdog's
/// fired-alert log (DESIGN.md §12; `{"enabled": false, "fired": 0,
/// "active": 0, "items": []}` when no watchdog ran). Since v7 each sample
/// carries `sketches` (registered quantile sketches) and `fleet`
/// (bounded fleet aggregates — the authoritative totals when cardinality
/// governance records only a strided node subset, DESIGN.md §13), and the
/// document carries `obs_self`, the plane's self-metering (zeroed when no
/// sampler ran; its wall-clock nanos fields are the one part of the
/// document that does not replay byte-identically under --sim).

namespace deco {

/// \brief Renders the full telemetry document as a JSON string.
std::string TelemetryToJson(const RunReport& report, const TelemetryLog& log);

/// \brief Writes `TelemetryToJson` to `path`; IOError on filesystem
/// failure.
Status WriteTelemetryJson(const std::string& path, const RunReport& report,
                          const TelemetryLog& log);

/// \brief Writes the per-node time series as CSV (one row per sample x
/// node): t_ms,node,name,queue_depth,messages_sent,bytes_sent,
/// messages_received,bytes_received,bytes_per_sec. Fields containing
/// commas, quotes or newlines are RFC-4180 quoted; the first sample's rate
/// field is empty (no prior snapshot).
Status WriteSamplesCsv(const std::string& path, const TelemetryLog& log);

/// \brief Writes the span list as CSV: t_ms,node,phase,window,value,msg_id.
Status WriteSpansCsv(const std::string& path, const TelemetryLog& log);

}  // namespace deco
