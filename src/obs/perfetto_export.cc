#include "obs/perfetto_export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

namespace deco {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

/// Microseconds since `origin`, with sub-microsecond precision (the
/// trace-event spec allows fractional `ts`).
void AppendTs(std::string* out, TimeNanos t, TimeNanos origin) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(t - origin) / 1e3);
  *out += buf;
}

TimeNanos TraceOrigin(const TelemetryLog& log) {
  TimeNanos origin = 0;
  bool seen = false;
  auto consider = [&](TimeNanos t) {
    if (t <= 0) return;
    if (!seen || t < origin) origin = t;
    seen = true;
  };
  for (const TelemetrySample& s : log.samples) consider(s.t_nanos);
  for (const TraceEvent& s : log.spans) consider(s.t_nanos);
  for (const HopRecord& h : log.hops) consider(h.enqueue_nanos);
  for (const WindowProvenance& w : log.provenance.windows) {
    consider(w.emit_nanos);
  }
  return origin;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace

std::string PerfettoTraceJson(const TelemetryLog& log) {
  const TimeNanos origin = TraceOrigin(log);

  // Every node that appears anywhere gets a named process track. Names
  // come from the sampler series (the fabric registry); nodes only seen in
  // spans/hops fall back to "node-<id>".
  std::map<NodeId, std::string> node_names;
  for (const TelemetrySample& sample : log.samples) {
    for (const NodeSample& node : sample.nodes) {
      if (!node.name.empty()) node_names[node.node] = node.name;
    }
  }
  for (const TraceEvent& span : log.spans) node_names.emplace(span.node, "");
  for (const HopRecord& hop : log.hops) {
    node_names.emplace(hop.src, "");
    node_names.emplace(hop.dst, "");
  }
  for (auto& [id, name] : node_names) {
    if (name.empty()) name = "node-" + std::to_string(id);
  }

  std::string out;
  out.reserve(512 + node_names.size() * 160 + log.spans.size() * 160 +
              log.hops.size() * 256);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  auto begin_event = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };

  for (const auto& [id, name] : node_names) {
    begin_event();
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
    AppendUint(&out, id);
    out += ", \"tid\": 0, \"args\": {\"name\": ";
    AppendEscaped(&out, name);
    out += "}}";
    begin_event();
    out += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": ";
    AppendUint(&out, id);
    out += ", \"tid\": 0, \"args\": {\"name\": ";
    AppendEscaped(&out, name);
    out += "}}";
  }

  // Window lifetime bars: first to last span per (node, window).
  struct Lifetime {
    TimeNanos begin = 0;
    TimeNanos end = 0;
  };
  std::map<std::pair<NodeId, uint64_t>, Lifetime> lifetimes;
  for (const TraceEvent& span : log.spans) {
    Lifetime& lt = lifetimes[{span.node, span.window_index}];
    if (lt.begin == 0 || span.t_nanos < lt.begin) lt.begin = span.t_nanos;
    if (span.t_nanos > lt.end) lt.end = span.t_nanos;
  }
  // Async ids must be unique per category; windows are disambiguated by
  // folding the node id into the high bits.
  uint64_t window_async_id = 0;
  std::map<std::pair<NodeId, uint64_t>, uint64_t> window_ids;
  for (const auto& [key, lt] : lifetimes) {
    window_ids[key] = ++window_async_id;
    begin_event();
    out += "{\"name\": \"window-";
    AppendUint(&out, key.second);
    out += "\", \"cat\": \"window\", \"ph\": \"b\", \"id\": ";
    AppendUint(&out, window_ids[key]);
    out += ", \"pid\": ";
    AppendUint(&out, key.first);
    out += ", \"tid\": 0, \"ts\": ";
    AppendTs(&out, lt.begin, origin);
    out += ", \"args\": {\"window\": ";
    AppendUint(&out, key.second);
    out += "}}";
    begin_event();
    out += "{\"name\": \"window-";
    AppendUint(&out, key.second);
    out += "\", \"cat\": \"window\", \"ph\": \"e\", \"id\": ";
    AppendUint(&out, window_ids[key]);
    out += ", \"pid\": ";
    AppendUint(&out, key.first);
    out += ", \"tid\": 0, \"ts\": ";
    AppendTs(&out, lt.end, origin);
    out += "}";
  }

  for (const TraceEvent& span : log.spans) {
    begin_event();
    out += "{\"name\": \"";
    out += TracePhaseToString(span.phase);
    out += "\", \"cat\": \"span\", \"ph\": \"i\", \"s\": \"t\", \"pid\": ";
    AppendUint(&out, span.node);
    out += ", \"tid\": 0, \"ts\": ";
    AppendTs(&out, span.t_nanos, origin);
    out += ", \"args\": {\"window\": ";
    AppendUint(&out, span.window_index);
    out += ", \"value\": ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, span.value);
    out += buf;
    out += ", \"msg_id\": ";
    AppendUint(&out, span.msg_id);
    out += "}}";
  }

  for (const HopRecord& hop : log.hops) {
    // In-flight bar on the *sender's* track: enqueue -> dequeue at the
    // receiver. Hop records are finalized at dequeue, so both ends exist.
    const TimeNanos end =
        std::max(hop.dequeue_nanos, hop.enqueue_nanos);
    begin_event();
    out += "{\"name\": \"";
    out += MessageTypeToString(hop.type);
    out += "\", \"cat\": \"net\", \"ph\": \"b\", \"id\": ";
    AppendUint(&out, hop.msg_id);
    out += ", \"pid\": ";
    AppendUint(&out, hop.src);
    out += ", \"tid\": 0, \"ts\": ";
    AppendTs(&out, hop.enqueue_nanos, origin);
    out += ", \"args\": {\"dst\": ";
    AppendUint(&out, hop.dst);
    out += ", \"window\": ";
    AppendUint(&out, hop.window_index);
    out += ", \"bytes\": ";
    AppendUint(&out, hop.wire_bytes);
    out += ", \"shaping_delay_ns\": ";
    AppendUint(&out, static_cast<uint64_t>(hop.shaping_delay_nanos));
    out += "}}";
    begin_event();
    out += "{\"name\": \"";
    out += MessageTypeToString(hop.type);
    out += "\", \"cat\": \"net\", \"ph\": \"e\", \"id\": ";
    AppendUint(&out, hop.msg_id);
    out += ", \"pid\": ";
    AppendUint(&out, hop.src);
    out += ", \"tid\": 0, \"ts\": ";
    AppendTs(&out, end, origin);
    out += "}";
  }

  // Live-accuracy counter tracks (ISSUE 6 / DESIGN.md §10): one counter
  // event per estimated window at its emit time, on a synthetic "accuracy"
  // process track so the error series never collides with a fabric node's
  // pid. Perfetto renders each args key as its own series, so the signed
  // decomposition (drop + staleness + approx = total) is directly
  // comparable on one track, with |total| as a separate magnitude track.
  if (!log.provenance.accuracy.empty()) {
    const uint64_t accuracy_pid =
        node_names.empty() ? 0 : node_names.rbegin()->first + 1;
    begin_event();
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
    AppendUint(&out, accuracy_pid);
    out += ", \"tid\": 0, \"args\": {\"name\": \"accuracy\"}}";

    // Emit times come from the matching provenance record (the estimator
    // runs post-hoc and carries no clock); windows without one — e.g. when
    // `max_windows` evicted the record — fall back to the previous
    // counter's timestamp so the series stays monotonic.
    std::map<uint64_t, TimeNanos> emit_times;
    for (const WindowProvenance& w : log.provenance.windows) {
      emit_times[w.window_index] = w.emit_nanos;
    }
    TimeNanos last_ts = origin;
    for (const WindowAccuracy& acc : log.provenance.accuracy) {
      auto it = emit_times.find(acc.window_index);
      const TimeNanos ts = it != emit_times.end() ? it->second : last_ts;
      last_ts = ts;
      begin_event();
      out += "{\"name\": \"live-error\", \"cat\": \"accuracy\", "
             "\"ph\": \"C\", \"pid\": ";
      AppendUint(&out, accuracy_pid);
      out += ", \"tid\": 0, \"ts\": ";
      AppendTs(&out, ts, origin);
      out += ", \"args\": {\"drop\": ";
      AppendDouble(&out, acc.drop_error);
      out += ", \"staleness\": ";
      AppendDouble(&out, acc.staleness_error);
      out += ", \"approx\": ";
      AppendDouble(&out, acc.approx_error);
      out += "}}";
      begin_event();
      out += "{\"name\": \"abs-error\", \"cat\": \"accuracy\", "
             "\"ph\": \"C\", \"pid\": ";
      AppendUint(&out, accuracy_pid);
      out += ", \"tid\": 0, \"ts\": ";
      AppendTs(&out, ts, origin);
      out += ", \"args\": {\"abs\": ";
      AppendDouble(&out, std::abs(acc.observed_error));
      out += "}}";
    }
  }

  out += first ? "]}\n" : "\n]}\n";
  return out;
}

Status WritePerfettoTrace(const std::string& path, const TelemetryLog& log) {
  return WriteFile(path, PerfettoTraceJson(log));
}

}  // namespace deco
