#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/alert.h"
#include "obs/metric_registry.h"
#include "obs/sampler.h"

/// \file watchdog.h
/// \brief In-process anomaly detectors evaluated on the sampler tick.
///
/// The watchdog consumes the same `TelemetrySample` stream the exporters
/// serialize — it adds no probes of its own, so a detector firing in a
/// `--sim` run is exactly as deterministic as the sample series itself.
/// Five detectors cover the failure modes the chaos suite injects:
///
///  * window-progress stall: `root.windows_emitted` frozen while fabric
///    traffic still flows (distinguishes a wedged root from a finished run);
///  * unbounded queue growth: a mailbox depth above the limit;
///  * heartbeat silence: a node's egress counter frozen while the rest of
///    the fabric advances (a crashed or partitioned node);
///  * correction storm: correction rate above the limit (a root thrashing
///    on mispredictions);
///  * byte-budget burn: a serving tenant's byte rate above its budget.
///
/// Detectors use hysteresis — `trip_ticks` consecutive breaching samples to
/// fire, `clear_ticks` clean samples to resolve — so one noisy snapshot
/// neither fires nor clears an alert. Each (detector, subject) pair fires
/// at most once per breach episode: the `Alert` record is appended on the
/// fire transition and annotated with `resolved_at_nanos` on the clear
/// transition, giving the "fired exactly once" semantics the tests assert.

namespace deco {

class FlightRecorder;

/// \brief Detector thresholds. A non-positive threshold disables that
/// detector; the defaults are conservative enough for the stock workloads.
struct WatchdogOptions {
  /// Window-progress stall: no new window for this long while traffic
  /// still flows.
  TimeNanos stall_nanos = 2 * kNanosPerSecond;
  /// Unbounded queue growth: any mailbox deeper than this.
  int64_t queue_depth_limit = 100000;
  /// Heartbeat silence: a node's egress frozen this long while other
  /// nodes' traffic advances.
  TimeNanos silence_nanos = 2 * kNanosPerSecond;
  /// Correction storm: root corrections per second above this.
  double corrections_per_sec = 100.0;
  /// Byte-budget burn: any serving tenant above this many bytes/sec
  /// (0 disables — budgets are workload-specific).
  double tenant_bytes_per_sec = 0.0;
  /// Consecutive breaching samples before an alert fires.
  int trip_ticks = 2;
  /// Consecutive clean samples before an active alert resolves.
  int clear_ticks = 2;
};

/// \brief Evaluates the detectors against each telemetry sample and keeps
/// the cumulative alert history. Thread-safe: `OnSample` runs on the
/// sampler tick (thread or sim event), readers are the ops server and the
/// end-of-run exporters.
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options,
                    MetricRegistry* registry = nullptr);

  /// \brief When set, alert transitions are recorded into the flight
  /// recorder, and the first fire of the run dumps it to `trip_dump_path`
  /// (empty path = record transitions only).
  void SetFlightRecorder(FlightRecorder* recorder, std::string trip_dump_path);

  /// \brief Evaluates every detector against one sample.
  void OnSample(const TelemetrySample& sample);

  /// \brief Copy of the alert history, fire-order. Resolved alerts carry
  /// `resolved_at_nanos`.
  std::vector<Alert> Alerts() const;

  /// \brief Alerts fired so far (monotonic).
  uint64_t fired_count() const;

  /// \brief Alerts currently active (fired, not yet resolved).
  size_t active_count() const;

  const WatchdogOptions& options() const { return options_; }

 private:
  struct DetectorState {
    int breach_streak = 0;
    int clear_streak = 0;
    int alert_index = -1;  ///< index into alerts_ while active
  };

  /// One hysteresis step for detector `kind` on `subject`: `breaching` is
  /// this tick's raw condition; fires/resolves per the configured streaks.
  void Step(AlertKind kind, const std::string& subject, bool breaching,
            double observed, double threshold, const std::string& message,
            TimeNanos now);

  void Fire(AlertKind kind, const std::string& subject, double observed,
            double threshold, const std::string& message, TimeNanos now);
  void Resolve(DetectorState* state, TimeNanos now);

  WatchdogOptions options_;
  MetricRegistry* registry_;  ///< may be null (unit tests)

  mutable std::mutex mu_;
  std::map<std::string, DetectorState> detectors_;  ///< key: kind|subject
  std::vector<Alert> alerts_;
  uint64_t fired_ = 0;
  size_t active_ = 0;

  FlightRecorder* recorder_ = nullptr;
  std::string trip_dump_path_;
  bool trip_dumped_ = false;

  // Progress trackers carried between samples.
  bool has_prev_ = false;
  TimeNanos prev_t_nanos_ = 0;
  int64_t prev_windows_ = 0;
  int64_t prev_corrections_ = 0;
  TimeNanos last_window_progress_nanos_ = 0;
  uint64_t traffic_at_window_progress_ = 0;
  struct NodeSilenceState {
    uint64_t messages_sent = 0;   ///< egress counter at last change
    TimeNanos changed_nanos = 0;  ///< when it last changed
    uint64_t others_at_change = 0;  ///< everyone else's egress at that time
  };
  std::map<std::string, NodeSilenceState> node_last_sent_;
  std::map<std::string, std::pair<int64_t, TimeNanos>>
      tenant_prev_bytes_;  ///< tenant -> (bytes counter, sample time)
};

}  // namespace deco
