#include "obs/quantile_sketch.h"

#include <algorithm>
#include <cmath>

namespace deco {
namespace {

/// Values below this are indistinguishable from zero on the log scale;
/// they land in the dedicated zero bucket. Nanoseconds, bytes and queue
/// depths are all integers, so anything in (0, 1e-9) is a rounding ghost.
constexpr double kMinTrackable = 1e-9;

}  // namespace

QuantileSketch::QuantileSketch(double alpha, size_t max_buckets)
    : alpha_(alpha), max_buckets_(max_buckets) {
  if (alpha_ <= 0.0 || alpha_ >= 1.0) alpha_ = 0.01;
  if (max_buckets_ < 16) max_buckets_ = 16;
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  log_gamma_ = std::log(gamma_);
}

int32_t QuantileSketch::KeyFor(double value) const {
  return static_cast<int32_t>(std::ceil(std::log(value) / log_gamma_));
}

double QuantileSketch::ValueFor(int32_t key) const {
  // Midpoint of the bucket (gamma^(key-1), gamma^key]: relative distance
  // to any value inside is at most alpha.
  return 2.0 * std::pow(gamma_, key) / (gamma_ + 1.0);
}

void QuantileSketch::Add(double value) {
  if (std::isnan(value)) return;
  if (value < 0.0) value = 0.0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (value < kMinTrackable) {
    ++zero_count_;
    return;
  }
  ++buckets_[KeyFor(value)];
  CollapseIfNeeded();
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  zero_count_ += other.zero_count_;
  // Same alpha => same bucket boundaries, bucket-wise add is lossless.
  // Different alphas re-bucket through the midpoint, costing at most the
  // coarser sketch's alpha (governance always uses one alpha, so this
  // path only runs in tests).
  if (other.gamma_ == gamma_) {
    for (const auto& [key, n] : other.buckets_) buckets_[key] += n;
  } else {
    for (const auto& [key, n] : other.buckets_) {
      buckets_[KeyFor(other.ValueFor(key))] += n;
    }
  }
  CollapseIfNeeded();
}

void QuantileSketch::CollapseIfNeeded() {
  // Fold the lowest bucket into its neighbour until within budget: low
  // quantiles blur, top-of-range quantiles (the alerting ones) stay exact.
  while (buckets_.size() > max_buckets_) {
    auto lowest = buckets_.begin();
    auto next = std::next(lowest);
    next->second += lowest->second;
    buckets_.erase(lowest);
  }
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_ - 1);
  double seen = static_cast<double>(zero_count_);
  if (rank < seen) return 0.0;  // zero bucket
  for (const auto& [key, n] : buckets_) {
    seen += static_cast<double>(n);
    if (rank < seen) {
      return std::clamp(ValueFor(key), min_, max_);
    }
  }
  return max_;
}

void QuantileSketch::Reset() {
  zero_count_ = 0;
  buckets_.clear();
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

SketchSnapshot QuantileSketch::Snapshot(const std::string& name) const {
  SketchSnapshot s;
  s.name = name;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max();
  s.p50 = Quantile(0.5);
  s.p90 = Quantile(0.9);
  s.p99 = Quantile(0.99);
  return s;
}

std::vector<uint32_t> TopKIndices(const std::vector<uint64_t>& values,
                                  size_t k) {
  std::vector<uint32_t> ids(values.size());
  for (uint32_t id = 0; id < ids.size(); ++id) ids[id] = id;
  if (k > ids.size()) k = ids.size();
  std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(k), ids.end(),
                    [&](uint32_t a, uint32_t b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

SpaceSavingTopK::SpaceSavingTopK(size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) capacity_ = 1;
  entries_.reserve(capacity_);
}

void SpaceSavingTopK::Offer(int64_t key, double weight) {
  if (weight <= 0.0) return;
  for (Entry& e : entries_) {
    if (e.key == key) {
      e.weight += weight;
      return;
    }
  }
  if (entries_.size() < capacity_) {
    entries_.push_back(Entry{key, weight, 0.0});
    return;
  }
  // Evict the minimum-weight entry; the newcomer inherits its weight as
  // the classic space-saving overestimate bound.
  auto min_it = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.weight < b.weight; });
  min_it->error = min_it->weight;
  min_it->key = key;
  min_it->weight += weight;
}

std::vector<SpaceSavingTopK::Entry> SpaceSavingTopK::Top(size_t k) const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.key < b.key;  // deterministic tie-break for sim replay
  });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

void SpaceSavingTopK::Reset() { entries_.clear(); }

}  // namespace deco
