#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "metrics/report.h"
#include "net/fabric.h"
#include "obs/governance.h"

/// \file provenance.h
/// \brief Per-window provenance records and live accuracy attribution
/// (DESIGN.md §10).
///
/// The root assembles, for every emitted global window, a *provenance
/// record*: which locals contributed (with their fabric incarnations),
/// how many partials were expected / received / missing, how many
/// correction rounds were applied, the per-partial staleness (arrival
/// time minus the partial's mean event-creation time) and the window's
/// provisional → correcting → corrected → final state transitions.
///
/// The `ProvenanceTracker` is the collection point. It is driven from the
/// root actor thread only (hooks are not thread-safe) by three layers:
///   - the `WindowAssembler` reports accepted data-plane regions exactly
///     where it accepts them (slice / front / end raw / correction
///     candidates), so a record can never claim a partial the assembler
///     did not use;
///   - the root node reports control-plane transitions (correction begin
///     and solicits, EOS, node removal / rejoin, window emission);
///   - baseline roots without a Deco data plane synthesize one-partial
///     records at emission (`OnSynthesizedWindow`).
///
/// Bookkeeping contract (asserted by tests and the CI smoke): for every
/// part and for every window's totals, `expected == received + missing`.
/// `received` only counts regions the assembler accepted, so it can never
/// exceed `expected`; regions discarded by a correction restart are moved
/// to `discarded`, and re-deliveries of an already-accepted region land in
/// `duplicates`.
///
/// Accuracy attribution (`WindowAccuracy`) is produced after the run by
/// the harness oracle tap (`AttributeWindowError`, src/harness/oracle.h)
/// and appended to the same `ProvenanceLog`; the tracker itself never
/// looks at event values.

namespace deco {

/// \brief Lifecycle state of a window's result.
enum class ProvState : uint8_t {
  kProvisional,  ///< inputs arriving, verification not yet attempted/passed
  kCorrecting,   ///< prediction error; correction round(s) in flight
  kCorrected,    ///< assembled via the correction fallback
  kFinal,        ///< emitted (terminal)
};

const char* ProvStateToString(ProvState state);

/// \brief Data-plane region kinds a local contributes to one window.
enum class ProvRegion : uint8_t {
  kSlice,       ///< aggregated slice summary
  kFront,       ///< front raw buffer (Deco_async)
  kEnd,         ///< end raw buffer
  kCorrection,  ///< full retained-region correction response
};

const char* ProvRegionToString(ProvRegion region);

/// \brief One local node's contribution to one window.
struct PartialProvenance {
  size_t node = 0;
  /// Fabric incarnation of the node at emission time (number of completed
  /// crash → restart transitions; 0 for a never-crashed node). Filled from
  /// the node's last protocol report when available, else read from the
  /// fabric directly.
  uint64_t incarnation = 0;
  uint64_t expected = 0;    ///< regions the root planned to use
  uint64_t received = 0;    ///< regions the assembler accepted
  uint64_t missing = 0;     ///< expected - received, finalized at emission
  uint64_t duplicates = 0;  ///< re-deliveries of already-accepted regions
  uint64_t discarded = 0;   ///< accepted regions thrown away by a correction
  /// Sum / count of (arrival wall time - region mean creation time) over
  /// accepted regions that carried creation metadata.
  double staleness_sum_nanos = 0.0;
  uint64_t staleness_samples = 0;

  double MeanStalenessNanos() const {
    return staleness_samples == 0 ? 0.0
                                  : staleness_sum_nanos /
                                        static_cast<double>(staleness_samples);
  }
};

/// \brief One state transition of a window's result.
struct ProvTransition {
  ProvState state = ProvState::kProvisional;
  TimeNanos at_nanos = 0;
  /// Correction round in effect when the transition happened (0 outside
  /// corrections).
  uint64_t correction_round = 0;
};

/// \brief Full provenance of one emitted global window.
struct WindowProvenance {
  /// Index in the run report's window order (`RunReport::windows`).
  uint64_t window_index = 0;
  bool corrected = false;          ///< needed the correction fallback
  uint64_t correction_rounds = 0;  ///< solicit rounds actually applied
  TimeNanos emit_nanos = 0;        ///< root wall-clock at emission
  uint64_t expected_total = 0;
  uint64_t received_total = 0;
  uint64_t missing_total = 0;
  uint64_t duplicate_total = 0;
  /// Window-level staleness totals, summed over every contributing part.
  /// Filled in both full and compact modes so summaries never need the
  /// per-part list.
  double staleness_sum_nanos = 0.0;
  uint64_t staleness_samples = 0;
  /// Compact (governed) form, DESIGN.md §13: set when cardinality
  /// governance collapsed the per-part list. `contributor_bits` is a
  /// bitmap over node ordinals (word i, bit b ⇒ node 64*i+b had at least
  /// one accepted region); `parts` then holds only bounded anomaly
  /// exemplars — nodes with missing, duplicate or discarded regions, or a
  /// nonzero incarnation — and `exemplars_dropped` counts the anomalous
  /// parts beyond that bound. The window totals above are still computed
  /// over ALL nodes, so `expected_total == received_total + missing_total`
  /// holds regardless of how many exemplars were kept.
  bool compact = false;
  uint64_t contributor_count = 0;  ///< nodes with received > 0 (both modes)
  std::vector<uint64_t> contributor_bits;
  uint64_t exemplars_dropped = 0;
  /// Contributing locals, node-ordinal order; only nodes with any
  /// expected/received/discarded activity appear. In compact mode this is
  /// the bounded exemplar list instead.
  std::vector<PartialProvenance> parts;
  /// State history ending in `kFinal`.
  std::vector<ProvTransition> transitions;
};

/// \brief Live error estimate of one emitted window, decomposed by
/// mechanism. Invariant (checked by tests, the CI smoke and
/// tools/check_bench_json.py): `drop_error + staleness_error +
/// approx_error == observed_error` (within 1% of |observed_error|; the
/// construction is exact up to floating-point rounding).
struct WindowAccuracy {
  uint64_t window_index = 0;
  double emitted_value = 0.0;     ///< what the scheme reported
  double truth_value = 0.0;       ///< oracle value of the same window index
  double recomputed_value = 0.0;  ///< exact aggregate of what was consumed
  double observed_error = 0.0;    ///< emitted - truth
  /// Error from oracle-window events the run never consumed (crashed or
  /// removed locals).
  double drop_error = 0.0;
  /// Error from events consumed in a different window than the oracle's
  /// (asynchronous boundary drift). Zero for the approximate scheme, whose
  /// boundary deviation is attributed below.
  double staleness_error = 0.0;
  /// Error from approximation: fixed-share apportionment boundaries plus
  /// any gap between the emitted and the recomputed value.
  double approx_error = 0.0;
  uint64_t dropped_events = 0;      ///< oracle events never consumed
  uint64_t shifted_in_events = 0;   ///< consumed here, oracle says elsewhere
  uint64_t shifted_out_events = 0;  ///< oracle says here, consumed elsewhere
};

/// \brief Provenance of one composed query window (multi-query serving
/// layer, DESIGN.md §11): which protocol panes the window was built from.
/// Pane-level input detail lives in the matching `WindowProvenance`
/// records (keyed by pane ordinal); this record only adds the
/// (query, window) → pane-range mapping.
struct QueryWindowProvenance {
  uint32_t query_id = 0;
  uint64_t window_index = 0;  ///< per-query window order
  uint64_t first_pane = 0;    ///< pane indices, inclusive
  uint64_t last_pane = 0;
  bool corrected = false;     ///< any covered pane needed a correction
};

/// \brief Everything one run's provenance collection produces.
struct ProvenanceLog {
  std::vector<WindowProvenance> windows;  ///< emission order
  /// Per-window accuracy estimates: every window under --sim, a
  /// deterministic seeded reservoir in wall-clock runs. Window-index order.
  std::vector<WindowAccuracy> accuracy;
  /// Composed query windows (multi-query runs; empty otherwise). Emission
  /// order, which interleaves queries.
  std::vector<QueryWindowProvenance> query_windows;
  uint64_t windows_dropped = 0;  ///< records beyond the retention cap
};

/// \brief Collection point for provenance records (root thread only).
class ProvenanceTracker {
 public:
  /// \param num_nodes local node count (part slots per window)
  /// \param regions_per_window data-plane regions one live node ships per
  ///        window: 2 for Deco sync/mon (slice + end), 3 for Deco async
  ///        (slice + front + end), 1 for single-partial baselines
  ProvenanceTracker(size_t num_nodes, uint64_t regions_per_window);

  /// \brief Arrival wall-clock for subsequent data-plane hooks; the owning
  /// root sets this once per dispatched message.
  void set_now_nanos(TimeNanos now) { now_nanos_ = now; }

  /// \brief Incarnation fallback: read the live counter from the fabric
  /// when no protocol report carried one. `node_ids[i]` is local ordinal
  /// `i`'s fabric id. Fabric not owned.
  void SetFabric(const NetworkFabric* fabric, std::vector<NodeId> node_ids);

  /// \brief Caps retained window records; further emissions only bump
  /// `windows_dropped`. 0 = unbounded.
  void set_max_windows(size_t cap) { max_windows_ = cap; }

  /// \brief Cardinality governance (DESIGN.md §13). When the node count
  /// exceeds the detail limit, emitted records switch to the compact form:
  /// contributor bitmap + bounded anomaly exemplars instead of one
  /// `PartialProvenance` per node. Totals stay exact either way.
  void SetGovernance(const ObsGovernance& governance) {
    governance_ = governance;
  }
  const ObsGovernance& governance() const { return governance_; }

  // --- control plane (root node) ---------------------------------------

  /// \brief Latest incarnation a protocol message reported for `node`.
  void OnIncarnation(size_t node, uint64_t incarnation);

  void OnEos(size_t node);
  void OnNodeRemoved(size_t node);
  void OnNodeRejoined(size_t node);

  /// \brief Correction entered for window `w`: accepted data regions of
  /// windows >= `w` are discarded (mirrors `WindowAssembler::
  /// BeginCorrection`); `w` itself will be assembled from candidates only.
  void OnCorrectionBegin(uint64_t w);

  /// \brief A correction request (one round) was sent to `node` for `w`.
  void OnCorrectionSolicit(uint64_t w, size_t node);

  // --- data plane (assembler accept path) -------------------------------

  /// \brief The assembler accepted a data region. `create_mean_nanos` is
  /// the region's mean event-creation wall time (0 when absent).
  void OnRegion(uint64_t w, size_t node, ProvRegion region,
                double create_mean_nanos);

  /// \brief A region arrived again after having been accepted.
  void OnDuplicate(uint64_t w, size_t node, ProvRegion region);

  /// \brief The assembler accepted a correction response (or top-up).
  void OnCorrectionResponse(uint64_t w, size_t node, double create_mean_nanos);

  // --- emission ----------------------------------------------------------

  /// \brief Window `protocol_window` was assembled and emitted as report
  /// window `report_index`. Finalizes the record: missing counts, EOS
  /// waivers, incarnations, the terminal transition.
  void OnWindowEmitted(uint64_t protocol_window, uint64_t report_index,
                       bool corrected, TimeNanos emit_nanos);

  /// \brief Single-partial emission for baseline roots (Central / Scotty /
  /// Disco): every node in `live` contributed its merged stream directly,
  /// so expected == received == 1 per live node. `create_mean_nanos`
  /// yields a shared staleness sample per part.
  void OnSynthesizedWindow(uint64_t report_index,
                           const std::vector<bool>& live,
                           double create_mean_nanos, TimeNanos emit_nanos);

  /// \brief A composed query window was emitted (serving layer): query
  /// `query_id`'s window `window_index` covers protocol panes
  /// `[first_pane, last_pane]`. Not subject to the window retention cap
  /// (the record is a few words, and per-query window counts are what the
  /// multi-query tests assert on).
  void OnQueryWindowEmitted(uint32_t query_id, uint64_t window_index,
                            uint64_t first_pane, uint64_t last_pane,
                            bool corrected);

  /// \brief Collected records (accuracy is appended later by the harness).
  ProvenanceLog TakeLog();

  const ProvenanceLog& log() const { return log_; }

 private:
  struct PartSlot {
    uint64_t expected_data = 0;
    uint64_t received_data = 0;
    uint64_t expected_corr = 0;
    uint64_t received_corr = 0;
    uint64_t duplicates = 0;
    uint64_t discarded = 0;
    double staleness_sum_nanos = 0.0;
    uint64_t staleness_samples = 0;
    bool touched = false;  ///< node appears in the emitted record
  };

  struct WindowSlot {
    std::vector<PartSlot> parts;
    std::vector<ProvTransition> transitions;
    bool correcting = false;
    uint64_t correction_rounds = 0;
  };

  WindowSlot& GetSlot(uint64_t w);
  void AddStaleness(PartSlot* part, double create_mean_nanos);
  uint64_t IncarnationOf(size_t node) const;

  size_t num_nodes_;
  uint64_t regions_per_window_;
  TimeNanos now_nanos_ = 0;
  size_t max_windows_ = 0;
  ObsGovernance governance_;

  const NetworkFabric* fabric_ = nullptr;
  std::vector<NodeId> node_ids_;
  std::vector<uint64_t> reported_incarnation_;
  std::vector<bool> has_reported_incarnation_;

  std::vector<bool> eos_;
  std::vector<bool> removed_;

  std::map<uint64_t, WindowSlot> open_;
  ProvenanceLog log_;
};

/// \brief Aggregates a log into the `RunReport::provenance` summary POD
/// (metrics/report.h keeps the POD so it need not depend on this header).
ProvenanceSummary ComputeProvenanceSummary(const ProvenanceLog& log);

/// \brief Deterministic JSON object rendering of a log (the `provenance`
/// section of telemetry schema v4 and of `deco_run --provenance_out`).
std::string ProvenanceJson(const ProvenanceLog& log);

/// \brief Writes `{"schema_version": 1, "scheme": ..., "provenance": ...}`
/// to `path`.
Status WriteProvenanceJson(const std::string& path, const std::string& scheme,
                           const ProvenanceLog& log);

}  // namespace deco
