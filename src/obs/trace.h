#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "net/message.h"

/// \file trace.h
/// \brief Window-lifecycle tracing: span events recorded by the root,
/// local and baseline nodes as a global window moves through the protocol
/// (open -> partial-received -> assemble -> correct -> emit).
///
/// Recording sites use the `DECO_TRACE_SPAN` macro, which
///  - compiles to nothing when `DECO_TRACE_ENABLED` is 0 (CMake option
///    `DECO_TRACE=OFF`), and
///  - otherwise costs one relaxed atomic load of the global sink pointer
///    when no sink is installed (the default outside telemetry runs).
/// Span sites fire per *window*, never per event, so the per-event hot
/// path is untouched either way.

namespace deco {

/// \brief Lifecycle phase of a window-span event.
enum class TracePhase : uint8_t {
  kWindowOpen = 0,      ///< assignment sent / local window planning started
  kPartialReceived = 1, ///< root received a node's slice summary
  kAssemble = 2,        ///< verification succeeded, window assembled
  kCorrect = 3,         ///< prediction error, correction step started
  kEmit = 4,            ///< final global window result emitted
};

std::string_view TracePhaseToString(TracePhase phase);

/// \brief One span event.
struct TraceEvent {
  TimeNanos t_nanos = 0;   ///< wall-clock time of the event
  NodeId node = 0;         ///< fabric id of the recording node
  TracePhase phase = TracePhase::kWindowOpen;
  uint64_t window_index = 0;
  int64_t value = 0;       ///< phase-specific payload (e.g. event count)
  /// Causal id of the message that triggered this phase (the hop record's
  /// `msg_id`); 0 when the phase was not message-triggered or tracing of
  /// hops is off. Joins span events with `HopRecord`s in the critical-path
  /// analyzer.
  uint64_t msg_id = 0;
};

/// \brief One completed message hop, finalized at dequeue time.
///
/// The fabric fills the timestamps into the message's embedded
/// `MessageHop`; the receiving actor copies them here (plus the routing
/// header) and hands the record to the sink. The four timestamps cut the
/// hop into sender blocking (`shaping_delay_nanos`), link latency
/// (`deliver - (enqueue + shaping)`) and mailbox queueing
/// (`dequeue - deliver`).
struct HopRecord {
  uint64_t msg_id = 0;
  MessageType type = MessageType::kEventBatch;
  NodeId src = 0;
  NodeId dst = 0;
  uint64_t window_index = 0;
  uint64_t wire_bytes = 0;
  TimeNanos enqueue_nanos = 0;
  TimeNanos deliver_nanos = 0;
  TimeNanos dequeue_nanos = 0;
  TimeNanos shaping_delay_nanos = 0;
};

/// \brief Collects span events from many node threads with striped locks.
///
/// One sink is installed process-wide per telemetry run (`Install`); the
/// recording macro reads the global pointer with a relaxed load so the
/// uninstalled case stays branch-predictable and allocation-free.
class TraceSink {
 public:
  /// \param clock time source for event timestamps; not owned
  /// \param capacity maximum retained events (oldest-first cutoff; keeps a
  ///        runaway run from exhausting memory). 0 = unbounded.
  explicit TraceSink(Clock* clock, size_t capacity = 1 << 20);

  /// \brief Records one span event (thread-safe, lock per stripe).
  void Record(NodeId node, TracePhase phase, uint64_t window_index,
              int64_t value, uint64_t msg_id = 0);

  /// \brief Records a completed message hop; called by the receiving
  /// actor right after dequeuing a stamped message. No-op (and the hop
  /// fields do not exist) when tracing is compiled out.
  void RecordHop(const Message& msg);

  /// \brief Moves every recorded event out, sorted by timestamp.
  std::vector<TraceEvent> Drain();

  /// \brief Moves every recorded hop out, sorted by enqueue time.
  std::vector<HopRecord> DrainHops();

  /// \brief Events recorded so far (approximate under concurrency).
  size_t size() const;

  /// \brief Events dropped because the capacity was reached.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// \brief Hop records dropped because the capacity was reached.
  uint64_t hops_dropped() const {
    return hops_dropped_.load(std::memory_order_relaxed);
  }

  /// \brief Installs `sink` as the process-global recording target.
  /// Passing nullptr uninstalls. Returns the previous sink. Also toggles
  /// the fabric's hop stamping (`SetHopStampingEnabled`) so messages carry
  /// causal ids exactly while a sink is live.
  static TraceSink* Install(TraceSink* sink);

  /// \brief The currently installed sink, or nullptr.
  static TraceSink* Active() {
    return active_.load(std::memory_order_acquire);
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
    std::vector<HopRecord> hops;
  };

  Clock* clock_;
  size_t capacity_;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> hops_dropped_{0};
  std::array<Stripe, kStripes> stripes_;

  static std::atomic<TraceSink*> active_;
};

// --- flight-recorder bridge ------------------------------------------
// The black-box recorder (flight_recorder.h) taps the same span macros and
// hop path as the trace sink, through its own global pointer so either can
// be live without the other. The atomic lives here so the macro below
// stays a single relaxed load when nothing is installed; the forwarding
// function is defined in flight_recorder.cc.
class FlightRecorder;

namespace internal {
extern std::atomic<FlightRecorder*> g_flight_recorder;

/// Re-derives the fabric's hop stamping from both global recording
/// targets; called by `TraceSink::Install` and `FlightRecorder::Install`.
void RefreshHopStamping();
}  // namespace internal

/// \brief The installed flight recorder, or nullptr (cheap inline check).
inline FlightRecorder* ActiveFlightRecorder() {
  return internal::g_flight_recorder.load(std::memory_order_acquire);
}

/// \brief Out-of-line span forwarding into the active flight recorder.
void FlightRecorderSpan(NodeId node, TracePhase phase, uint64_t window_index,
                        int64_t value, uint64_t msg_id);

/// \brief Out-of-line hop forwarding into the active flight recorder;
/// called by `Actor::FinishHop` after the dequeue timestamp is set.
void FlightRecorderHop(const Message& msg);

}  // namespace deco

#ifndef DECO_TRACE_ENABLED
#define DECO_TRACE_ENABLED 1
#endif

#if DECO_TRACE_ENABLED
/// \brief Records a window-lifecycle span event if a sink is installed.
#define DECO_TRACE_SPAN(node, phase, window, value) \
  DECO_TRACE_SPAN_MSG(node, phase, window, value, 0)

/// \brief Like `DECO_TRACE_SPAN`, but also tags the span with the causal
/// id of the message that triggered the phase (see `MessageCausalId`).
#define DECO_TRACE_SPAN_MSG(node, phase, window, value, msg_id)        \
  do {                                                                 \
    ::deco::TraceSink* _deco_trace_sink = ::deco::TraceSink::Active(); \
    if (_deco_trace_sink != nullptr) {                                 \
      _deco_trace_sink->Record((node), (phase), (window), (value),     \
                               (msg_id));                              \
    }                                                                  \
    if (::deco::ActiveFlightRecorder() != nullptr) {                   \
      ::deco::FlightRecorderSpan((node), (phase), (window), (value),   \
                                 (msg_id));                            \
    }                                                                  \
  } while (false)
#else
#define DECO_TRACE_SPAN(node, phase, window, value) \
  do {                                              \
  } while (false)
#define DECO_TRACE_SPAN_MSG(node, phase, window, value, msg_id) \
  do {                                                          \
  } while (false)
#endif
