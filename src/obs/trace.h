#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "net/message.h"

/// \file trace.h
/// \brief Window-lifecycle tracing: span events recorded by the root,
/// local and baseline nodes as a global window moves through the protocol
/// (open -> partial-received -> assemble -> correct -> emit).
///
/// Recording sites use the `DECO_TRACE_SPAN` macro, which
///  - compiles to nothing when `DECO_TRACE_ENABLED` is 0 (CMake option
///    `DECO_TRACE=OFF`), and
///  - otherwise costs one relaxed atomic load of the global sink pointer
///    when no sink is installed (the default outside telemetry runs).
/// Span sites fire per *window*, never per event, so the per-event hot
/// path is untouched either way.

namespace deco {

/// \brief Lifecycle phase of a window-span event.
enum class TracePhase : uint8_t {
  kWindowOpen = 0,      ///< assignment sent / local window planning started
  kPartialReceived = 1, ///< root received a node's slice summary
  kAssemble = 2,        ///< verification succeeded, window assembled
  kCorrect = 3,         ///< prediction error, correction step started
  kEmit = 4,            ///< final global window result emitted
};

std::string_view TracePhaseToString(TracePhase phase);

/// \brief One span event.
struct TraceEvent {
  TimeNanos t_nanos = 0;   ///< wall-clock time of the event
  NodeId node = 0;         ///< fabric id of the recording node
  TracePhase phase = TracePhase::kWindowOpen;
  uint64_t window_index = 0;
  int64_t value = 0;       ///< phase-specific payload (e.g. event count)
};

/// \brief Collects span events from many node threads with striped locks.
///
/// One sink is installed process-wide per telemetry run (`Install`); the
/// recording macro reads the global pointer with a relaxed load so the
/// uninstalled case stays branch-predictable and allocation-free.
class TraceSink {
 public:
  /// \param clock time source for event timestamps; not owned
  /// \param capacity maximum retained events (oldest-first cutoff; keeps a
  ///        runaway run from exhausting memory). 0 = unbounded.
  explicit TraceSink(Clock* clock, size_t capacity = 1 << 20);

  /// \brief Records one span event (thread-safe, lock per stripe).
  void Record(NodeId node, TracePhase phase, uint64_t window_index,
              int64_t value);

  /// \brief Moves every recorded event out, sorted by timestamp.
  std::vector<TraceEvent> Drain();

  /// \brief Events recorded so far (approximate under concurrency).
  size_t size() const;

  /// \brief Events dropped because the capacity was reached.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// \brief Installs `sink` as the process-global recording target.
  /// Passing nullptr uninstalls. Returns the previous sink.
  static TraceSink* Install(TraceSink* sink);

  /// \brief The currently installed sink, or nullptr.
  static TraceSink* Active() {
    return active_.load(std::memory_order_acquire);
  }

 private:
  static constexpr size_t kStripes = 8;
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };

  Clock* clock_;
  size_t capacity_;
  std::atomic<uint64_t> dropped_{0};
  std::array<Stripe, kStripes> stripes_;

  static std::atomic<TraceSink*> active_;
};

}  // namespace deco

#ifndef DECO_TRACE_ENABLED
#define DECO_TRACE_ENABLED 1
#endif

#if DECO_TRACE_ENABLED
/// \brief Records a window-lifecycle span event if a sink is installed.
#define DECO_TRACE_SPAN(node, phase, window, value)                   \
  do {                                                                \
    ::deco::TraceSink* _deco_trace_sink = ::deco::TraceSink::Active();\
    if (_deco_trace_sink != nullptr) {                                \
      _deco_trace_sink->Record((node), (phase), (window), (value));   \
    }                                                                 \
  } while (false)
#else
#define DECO_TRACE_SPAN(node, phase, window, value) \
  do {                                              \
  } while (false)
#endif
