#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/clock.h"

/// \file alert.h
/// \brief Structured anomaly-alert records shared by the watchdog (which
/// fires them), the telemetry log (schema v6 carries them) and the ops
/// endpoints (which serve them). Dependency-free so `sampler.h` and
/// `watchdog.h` can both include it without a cycle.

namespace deco {

/// \brief Detector kind of an alert.
enum class AlertKind : uint8_t {
  kWindowStall = 0,
  kQueueGrowth = 1,
  kHeartbeatSilence = 2,
  kCorrectionStorm = 3,
  kByteBudgetBurn = 4,
};

std::string_view AlertKindToString(AlertKind kind);

/// \brief One fired anomaly. Appended when the detector trips; resolved in
/// place when the condition clears.
struct Alert {
  AlertKind kind = AlertKind::kWindowStall;
  std::string subject;            ///< node / tenant / "root"
  TimeNanos fired_at_nanos = 0;
  TimeNanos resolved_at_nanos = 0;  ///< 0 while still active
  double observed = 0.0;          ///< value that breached
  double threshold = 0.0;         ///< configured limit it breached
  std::string message;            ///< human-readable one-liner
};

}  // namespace deco
