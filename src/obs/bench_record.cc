#include "obs/bench_record.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/json.h"

#ifndef DECO_GIT_SHA
#define DECO_GIT_SHA "unknown"
#endif

#ifndef DECO_TRACE_ENABLED
#define DECO_TRACE_ENABLED 1
#endif

namespace deco {

namespace {

// Compiler-reported sanitizer mode, recorded in the host section: a bench
// JSON produced under ASan/TSan must never be compared against a clean
// baseline, and bench_compare.py refuses to.
const char* SanitizerName() {
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

}  // namespace

BenchRecorder::BenchRecorder(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

BenchRecorder::ConfigEntry* BenchRecorder::ConfigFor(const std::string& key) {
  for (ConfigEntry& entry : config_) {
    if (entry.key == key) return &entry;
  }
  config_.push_back(ConfigEntry{});
  config_.back().key = key;
  return &config_.back();
}

void BenchRecorder::SetConfig(const std::string& key,
                              const std::string& value) {
  ConfigEntry* entry = ConfigFor(key);
  entry->kind = ConfigEntry::Kind::kString;
  entry->str = value;
}

void BenchRecorder::SetConfig(const std::string& key, const char* value) {
  SetConfig(key, std::string(value));
}

void BenchRecorder::SetConfig(const std::string& key, double value) {
  ConfigEntry* entry = ConfigFor(key);
  entry->kind = ConfigEntry::Kind::kNumber;
  entry->num = value;
}

void BenchRecorder::SetConfig(const std::string& key, int64_t value) {
  SetConfig(key, static_cast<double>(value));
}

void BenchRecorder::SetConfig(const std::string& key, bool value) {
  ConfigEntry* entry = ConfigFor(key);
  entry->kind = ConfigEntry::Kind::kBool;
  entry->flag = value;
}

BenchRecorder::Row* BenchRecorder::RowFor(const std::string& label) {
  for (Row& row : rows_) {
    if (row.label == label) return &row;
  }
  rows_.push_back(Row{});
  rows_.back().label = label;
  return &rows_.back();
}

void BenchRecorder::AddMetric(const std::string& label,
                              const std::string& metric, double value) {
  Row* row = RowFor(label);
  for (MetricSeries& series : row->metrics) {
    if (series.name == metric) {
      series.values.push_back(value);
      return;
    }
  }
  row->metrics.push_back(MetricSeries{metric, {value}});
}

void BenchRecorder::AddReport(const std::string& label,
                              const RunReport& report) {
  AddMetric(label, "throughput_eps", report.throughput_eps);
  AddMetric(label, "latency_mean_nanos", report.latency.mean());
  AddMetric(label, "latency_p50_nanos",
            static_cast<double>(report.latency.Percentile(0.5)));
  AddMetric(label, "latency_p99_nanos",
            static_cast<double>(report.latency.Percentile(0.99)));
  AddMetric(label, "bytes_per_event", report.BytesPerEvent());
  AddMetric(label, "total_messages",
            static_cast<double>(report.network.total_messages));
  AddMetric(label, "total_bytes",
            static_cast<double>(report.network.total_bytes));
  AddMetric(label, "total_dropped",
            static_cast<double>(report.network.total_dropped));
  AddMetric(label, "windows_emitted",
            static_cast<double>(report.windows_emitted));
  AddMetric(label, "correction_steps",
            static_cast<double>(report.correction_steps));
  AddMetric(label, "events_processed",
            static_cast<double>(report.events_processed));
  AddMetric(label, "wall_seconds", report.wall_seconds);
  uint64_t queue_high_water = 0;
  for (const NodeTrafficStats& node : report.network.per_node) {
    queue_high_water = std::max(queue_high_water, node.queue_depth_high_water);
  }
  AddMetric(label, "queue_depth_high_water",
            static_cast<double>(queue_high_water));

  if (report.profile.enabled) {
    AddMetric(label, "cpu_total_nanos",
              static_cast<double>(report.profile.TotalCpuNanos()));
    if (report.profile.alloc_counted) {
      AddMetric(label, "allocations",
                static_cast<double>(report.profile.TotalAllocations()));
      AddMetric(label, "allocated_bytes",
                static_cast<double>(report.profile.TotalAllocatedBytes()));
    }
    Row* row = RowFor(label);
    row->has_profile = true;
    row->profile = report.profile;
  }
}

MetricAggregate BenchRecorder::Aggregate(const std::vector<double>& values) {
  MetricAggregate agg;
  if (values.empty()) return agg;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  agg.min = sorted.front();
  agg.max = sorted.back();
  double sum = 0.0;
  for (const double v : sorted) sum += v;
  agg.mean = sum / static_cast<double>(sorted.size());
  const size_t mid = sorted.size() / 2;
  agg.median = sorted.size() % 2 == 1
                   ? sorted[mid]
                   : (sorted[mid - 1] + sorted[mid]) / 2.0;
  double sq_sum = 0.0;
  for (const double v : sorted) {
    const double d = v - agg.mean;
    sq_sum += d * d;
  }
  agg.stddev = std::sqrt(sq_sum / static_cast<double>(sorted.size()));
  return agg;
}

std::string BenchRecorder::GitSha() { return DECO_GIT_SHA; }

std::string BenchRecorder::ToJson() const {
  std::string out;
  out.reserve(4096);
  out += "{\"schema_version\":1,\"bench\":";
  JsonAppendString(&out, bench_name_);
  out += ",\"git_sha\":";
  JsonAppendString(&out, GitSha());
  out += ",\"host\":{\"cores\":";
  JsonAppendU64(&out, std::thread::hardware_concurrency());
  out += ",\"trace_enabled\":";
  out += DECO_TRACE_ENABLED ? "true" : "false";
  out += ",\"sanitizer\":";
  JsonAppendString(&out, SanitizerName());
  out += "},\"config\":{";
  for (size_t i = 0; i < config_.size(); ++i) {
    const ConfigEntry& entry = config_[i];
    if (i > 0) out += ",";
    JsonAppendString(&out, entry.key);
    out += ":";
    switch (entry.kind) {
      case ConfigEntry::Kind::kString:
        JsonAppendString(&out, entry.str);
        break;
      case ConfigEntry::Kind::kNumber:
        JsonAppendDouble(&out, entry.num);
        break;
      case ConfigEntry::Kind::kBool:
        out += entry.flag ? "true" : "false";
        break;
    }
  }
  out += "},\"rows\":[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    const Row& row = rows_[r];
    if (r > 0) out += ",";
    out += "{\"label\":";
    JsonAppendString(&out, row.label);
    out += ",\"metrics\":{";
    for (size_t m = 0; m < row.metrics.size(); ++m) {
      const MetricSeries& series = row.metrics[m];
      if (m > 0) out += ",";
      JsonAppendString(&out, series.name);
      out += ":{\"values\":[";
      for (size_t v = 0; v < series.values.size(); ++v) {
        if (v > 0) out += ",";
        JsonAppendDouble(&out, series.values[v]);
      }
      const MetricAggregate agg = Aggregate(series.values);
      out += "],\"min\":";
      JsonAppendDouble(&out, agg.min);
      out += ",\"max\":";
      JsonAppendDouble(&out, agg.max);
      out += ",\"mean\":";
      JsonAppendDouble(&out, agg.mean);
      out += ",\"median\":";
      JsonAppendDouble(&out, agg.median);
      out += ",\"stddev\":";
      JsonAppendDouble(&out, agg.stddev);
      out += "}";
    }
    out += "},\"cpu_breakdown\":";
    if (row.has_profile) {
      out += ProfileReportJson(row.profile);
    } else {
      out += "null";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

Status BenchRecorder::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const std::string doc = ToJson();
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool newline_ok = std::fputc('\n', f) != EOF;
  const bool close_ok = std::fclose(f) == 0;
  if (written != doc.size() || !newline_ok || !close_ok) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace deco
