#pragma once

#include <cstddef>

/// \file governance.h
/// \brief Cardinality-governance knobs shared by every observability
/// surface (sampler, ops server, telemetry export, provenance tracker,
/// status prints). One struct so a single `--obs_node_detail_limit` flag
/// governs them all consistently (DESIGN.md §13).

namespace deco {

/// \brief Bounds on per-node detail emitted by the observability plane.
struct ObsGovernance {
  /// Above this many nodes, per-node series collapse into fleet
  /// aggregates (sum/min/max/p50/p99 sketches) plus top-k offender
  /// series; 0 means unlimited (never collapse). At or below the limit
  /// every surface is byte-identical to the ungoverned output.
  size_t node_detail_limit = 64;

  /// Offenders kept per dimension (deepest queues, most bytes, stalest
  /// heartbeats) when collapsed, and the cap applied to alert/membership
  /// summaries printed by the CLI.
  size_t top_k = 8;

  /// \brief Whether per-node fan-out must collapse for `node_count` nodes.
  bool Collapsed(size_t node_count) const {
    return node_detail_limit != 0 && node_count > node_detail_limit;
  }

  /// \brief Detail-scan stride: collapsed samplers visit every node once
  /// per `Stride` ticks, bounding per-tick detail cost to roughly
  /// `node_detail_limit` nodes.
  size_t Stride(size_t node_count) const {
    if (!Collapsed(node_count)) return 1;
    return (node_count + node_detail_limit - 1) / node_detail_limit;
  }
};

}  // namespace deco
