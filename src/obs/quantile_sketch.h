#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file quantile_sketch.h
/// \brief Mergeable quantile sketch (DDSketch-style) and a space-saving
/// top-k tracker — the two bounded-memory primitives behind cardinality
/// governance (DESIGN.md §13).
///
/// `QuantileSketch` buckets values on a logarithmic scale with relative
/// accuracy `alpha`: `Quantile(q)` returns a value within `alpha * x` of
/// the true q-quantile `x` for any data distribution, using a bounded
/// number of buckets regardless of how many values were added. Two
/// sketches built independently (per node, per shard, per tick) merge
/// losslessly: `Merge` never degrades the error bound while the bucket
/// budget holds, and degrades gracefully (lowest buckets collapse first,
/// preserving upper-quantile accuracy) when it does not.
///
/// `SpaceSavingTopK` is the classic Metwally et al. stream summary: with
/// `capacity` slots it tracks approximate per-key weights and guarantees
/// every true heavy hitter with weight above W/capacity is present, where
/// W is the total weight offered. The governance layer uses it to keep
/// persistent offender sets (deepest queues, most bytes, stalest
/// heartbeats) without a per-node map.

namespace deco {

/// \brief Point-in-time summary of a sketch, used by registry snapshots
/// and the telemetry exporters.
struct SketchSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// \brief DDSketch-style relative-error quantile sketch over non-negative
/// values. Not thread-safe; wrap in a lock or keep per-thread and merge.
class QuantileSketch {
 public:
  /// \param alpha relative accuracy target in (0, 1); 0.01 means quantile
  ///        answers are within 1% of the true value.
  /// \param max_buckets bucket budget; when exceeded the lowest buckets
  ///        collapse together (upper quantiles keep full accuracy).
  explicit QuantileSketch(double alpha = 0.01, size_t max_buckets = 2048);

  /// \brief Adds one value. Negative values are clamped to zero (all
  /// governed metrics — depths, bytes, durations — are non-negative).
  void Add(double value);

  /// \brief Adds every bucket of `other` into this sketch.
  void Merge(const QuantileSketch& other);

  /// \brief Approximate q-quantile (q in [0, 1]); 0 on an empty sketch.
  /// Exact for min (q near 0 with zeros) and never exceeds `max()`.
  double Quantile(double q) const;

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double alpha() const { return alpha_; }
  size_t bucket_count() const { return buckets_.size(); }

  void Reset();

  /// \brief Snapshot with the standard governance quantiles filled in.
  SketchSnapshot Snapshot(const std::string& name) const;

 private:
  int32_t KeyFor(double value) const;
  double ValueFor(int32_t key) const;
  void CollapseIfNeeded();

  double alpha_;
  size_t max_buckets_;
  double gamma_;
  double log_gamma_;
  uint64_t zero_count_ = 0;  ///< values in [0, kMinTrackable)
  std::map<int32_t, uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Indices of the `k` largest values, ties broken toward the lower
/// index — the deterministic per-tick offender selection shared by the
/// sampler and the ops server.
std::vector<uint32_t> TopKIndices(const std::vector<uint64_t>& values,
                                  size_t k);

/// \brief Space-saving heavy-hitter tracker over integer keys (node ids).
class SpaceSavingTopK {
 public:
  struct Entry {
    int64_t key = 0;
    double weight = 0.0;  ///< estimated total weight (upper bound)
    double error = 0.0;   ///< max overestimate inherited at eviction
  };

  explicit SpaceSavingTopK(size_t capacity = 16);

  /// \brief Offers `weight` for `key`; evicts the lightest entry when the
  /// summary is full (the newcomer inherits its weight as error bound).
  void Offer(int64_t key, double weight = 1.0);

  /// \brief Top `k` entries by estimated weight, heaviest first.
  std::vector<Entry> Top(size_t k) const;

  size_t size() const { return entries_.size(); }
  void Reset();

 private:
  size_t capacity_;
  std::vector<Entry> entries_;  ///< linear scans: capacity is tens, not 1e6
};

}  // namespace deco
