#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/profiler.h"

/// \file alloc_hook.cc
/// \brief Opt-in counting allocator: global `operator new`/`delete`
/// replacements that tally per-thread allocation count and bytes while
/// `SetAllocCountingEnabled(true)` is in effect.
///
/// The replacements and the accessor functions live in the SAME
/// translation unit on purpose: `profiler.cc` references the accessors, so
/// any binary that links the profiler pulls this archive member — and with
/// it the operator replacements — out of `libdeco_obs.a`. Split across two
/// TUs, the replacements would be an unreferenced member the linker never
/// extracts and counting would silently record zero.
///
/// Gated by `DECO_ALLOC_HOOK_ENABLED` (CMake option `DECO_PROFILE_ALLOC`,
/// default ON). When compiled out, the accessors remain (inert) so callers
/// need no conditional code. The hook is sanitizer-safe: ASan/TSan support
/// user `operator new` replacements and intercept the `malloc`/`free`
/// underneath.

#ifndef DECO_ALLOC_HOOK_ENABLED
#define DECO_ALLOC_HOOK_ENABLED 1
#endif

namespace deco {
namespace {

// Constant-initialized: allocations can happen before any static ctor runs.
std::atomic<bool> g_alloc_counting{false};

// Trivially-destructible POD so TLS access needs no guard and thread exit
// runs no destructor that could itself allocate.
struct ThreadTally {
  uint64_t count;
  uint64_t bytes;
};
thread_local ThreadTally t_alloc_tally;  // zero-initialized

}  // namespace

bool AllocCountingCompiledIn() { return DECO_ALLOC_HOOK_ENABLED != 0; }

void SetAllocCountingEnabled(bool enabled) {
  g_alloc_counting.store(enabled, std::memory_order_relaxed);
}

AllocCounters ThreadAllocCounters() {
  return AllocCounters{t_alloc_tally.count, t_alloc_tally.bytes};
}

}  // namespace deco

#if DECO_ALLOC_HOOK_ENABLED

namespace {

void* CountedAlloc(std::size_t size, std::size_t align) noexcept {
  const std::size_t request = size == 0 ? 1 : size;
  void* ptr = nullptr;
  if (align <= alignof(std::max_align_t)) {
    ptr = std::malloc(request);
  } else {
    // posix_memalign requires the alignment to be a multiple of
    // sizeof(void*); operator new's extended alignments always are, but
    // clamp anyway so a hand-rolled align_val_t cannot trip EINVAL.
    const std::size_t effective =
        align < sizeof(void*) ? sizeof(void*) : align;
    if (posix_memalign(&ptr, effective, request) != 0) ptr = nullptr;
  }
  if (ptr != nullptr &&
      deco::g_alloc_counting.load(std::memory_order_relaxed)) {
    ++deco::t_alloc_tally.count;
    deco::t_alloc_tally.bytes += size;
  }
  return ptr;
}

void* CountedAllocOrThrow(std::size_t size, std::size_t align) {
  void* ptr = CountedAlloc(size, align);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) {
  return CountedAllocOrThrow(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return CountedAllocOrThrow(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocOrThrow(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocOrThrow(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}

// posix_memalign memory is free()-compatible, so one deallocator serves
// every variant.
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(ptr);
}

#endif  // DECO_ALLOC_HOOK_ENABLED
