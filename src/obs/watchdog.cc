#include "obs/watchdog.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "obs/flight_recorder.h"

namespace deco {

std::string_view AlertKindToString(AlertKind kind) {
  switch (kind) {
    case AlertKind::kWindowStall:
      return "window-stall";
    case AlertKind::kQueueGrowth:
      return "queue-growth";
    case AlertKind::kHeartbeatSilence:
      return "heartbeat-silence";
    case AlertKind::kCorrectionStorm:
      return "correction-storm";
    case AlertKind::kByteBudgetBurn:
      return "byte-budget-burn";
  }
  return "?";
}

namespace {

int64_t CounterValue(const MetricsSnapshot& metrics, std::string_view name) {
  for (const auto& [counter_name, value] : metrics.counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

std::string DetectorKey(AlertKind kind, const std::string& subject) {
  std::string key(AlertKindToString(kind));
  key.push_back('|');
  key += subject;
  return key;
}

constexpr std::string_view kTenantBytesPrefix = "serve.tenant.";
constexpr std::string_view kTenantBytesSuffix = ".bytes";

}  // namespace

Watchdog::Watchdog(WatchdogOptions options, MetricRegistry* registry)
    : options_(options), registry_(registry) {
  options_.trip_ticks = std::max(1, options_.trip_ticks);
  options_.clear_ticks = std::max(1, options_.clear_ticks);
}

void Watchdog::SetFlightRecorder(FlightRecorder* recorder,
                                 std::string trip_dump_path) {
  std::lock_guard<std::mutex> lock(mu_);
  recorder_ = recorder;
  trip_dump_path_ = std::move(trip_dump_path);
}

void Watchdog::OnSample(const TelemetrySample& sample) {
  std::lock_guard<std::mutex> lock(mu_);
  const TimeNanos now = sample.t_nanos;

  const int64_t windows = CounterValue(sample.metrics, "root.windows_emitted");
  const int64_t corrections = CounterValue(sample.metrics, "root.corrections");
  // Fleet-wide egress: the authoritative fleet total when the sampler
  // recorded one (it covers every node even when `nodes` is a governed
  // strided subset), else the sum over the recorded nodes.
  uint64_t traffic = 0;
  if (sample.fleet.node_count > 0) {
    traffic = sample.fleet.total_messages_sent;
  } else {
    for (const NodeSample& node : sample.nodes) traffic += node.messages_sent;
  }

  if (!has_prev_) {
    // First sample seeds the trackers; nothing can breach yet.
    has_prev_ = true;
    prev_t_nanos_ = now;
    prev_windows_ = windows;
    prev_corrections_ = corrections;
    last_window_progress_nanos_ = now;
    traffic_at_window_progress_ = traffic;
    for (const NodeSample& node : sample.nodes) {
      node_last_sent_[node.name] = {node.messages_sent, now,
                                    traffic - node.messages_sent};
    }
    for (const auto& [name, value] : sample.metrics.counters) {
      if (name.rfind(kTenantBytesPrefix, 0) == 0 &&
          name.size() > kTenantBytesSuffix.size() &&
          name.compare(name.size() - kTenantBytesSuffix.size(),
                       kTenantBytesSuffix.size(), kTenantBytesSuffix) == 0) {
        tenant_prev_bytes_[name] = {value, now};
      }
    }
    return;
  }

  const double dt_sec =
      static_cast<double>(std::max<TimeNanos>(now - prev_t_nanos_, 1)) / 1e9;

  // --- window-progress stall -------------------------------------------
  // The root is stalled only if windows stopped while the fabric kept
  // moving: a finished (quiescent) run freezes both and must not alert.
  if (windows > prev_windows_ || windows == 0) {
    last_window_progress_nanos_ = now;
    traffic_at_window_progress_ = traffic;
  }
  if (options_.stall_nanos > 0) {
    const TimeNanos frozen_for = now - last_window_progress_nanos_;
    const bool breaching = frozen_for >= options_.stall_nanos &&
                           traffic > traffic_at_window_progress_;
    std::ostringstream msg;
    msg << "no window emitted for " << frozen_for / kNanosPerMilli
        << " ms while traffic flows (at window " << windows << ")";
    Step(AlertKind::kWindowStall, "root", breaching,
         static_cast<double>(frozen_for),
         static_cast<double>(options_.stall_nanos), msg.str(), now);
  }

  // --- per-node detectors ----------------------------------------------
  for (const NodeSample& node : sample.nodes) {
    if (options_.queue_depth_limit > 0) {
      const bool breaching =
          node.queue_depth > static_cast<uint64_t>(options_.queue_depth_limit);
      std::ostringstream msg;
      msg << "mailbox depth " << node.queue_depth << " above limit "
          << options_.queue_depth_limit;
      Step(AlertKind::kQueueGrowth, node.name, breaching,
           static_cast<double>(node.queue_depth),
           static_cast<double>(options_.queue_depth_limit), msg.str(), now);
    }

    const uint64_t others = traffic - node.messages_sent;
    auto [it, inserted] = node_last_sent_.try_emplace(
        node.name, NodeSilenceState{node.messages_sent, now, others});
    if (!inserted && node.messages_sent != it->second.messages_sent) {
      it->second = {node.messages_sent, now, others};
    }
    if (options_.silence_nanos > 0) {
      const TimeNanos silent_for = now - it->second.changed_nanos;
      // A node is silent only relative to a live fabric: its egress frozen
      // while the *other* nodes' traffic kept advancing. A quiescent run
      // tail freezes everyone at once and must not alert.
      const bool fabric_alive = others > it->second.others_at_change;
      const bool breaching = node.messages_sent > 0 &&
                             silent_for >= options_.silence_nanos &&
                             fabric_alive;
      std::ostringstream msg;
      msg << "no message sent for " << silent_for / kNanosPerMilli
          << " ms while the fabric advances";
      Step(AlertKind::kHeartbeatSilence, node.name, breaching,
           static_cast<double>(silent_for),
           static_cast<double>(options_.silence_nanos), msg.str(), now);
    }
  }

  // --- correction storm -------------------------------------------------
  if (options_.corrections_per_sec > 0) {
    const double rate =
        static_cast<double>(corrections - prev_corrections_) / dt_sec;
    std::ostringstream msg;
    msg << "correction rate " << rate << "/s above limit "
        << options_.corrections_per_sec << "/s";
    Step(AlertKind::kCorrectionStorm, "root",
         rate > options_.corrections_per_sec, rate,
         options_.corrections_per_sec, msg.str(), now);
  }

  // --- per-tenant byte-budget burn --------------------------------------
  if (options_.tenant_bytes_per_sec > 0) {
    for (const auto& [name, value] : sample.metrics.counters) {
      if (name.rfind(kTenantBytesPrefix, 0) != 0 ||
          name.size() <= kTenantBytesPrefix.size() + kTenantBytesSuffix.size() ||
          name.compare(name.size() - kTenantBytesSuffix.size(),
                       kTenantBytesSuffix.size(), kTenantBytesSuffix) != 0) {
        continue;
      }
      const std::string tenant = name.substr(
          kTenantBytesPrefix.size(),
          name.size() - kTenantBytesPrefix.size() - kTenantBytesSuffix.size());
      auto [it, inserted] = tenant_prev_bytes_.try_emplace(name, value, now);
      if (inserted) continue;  // first sight: no rate yet
      const double rate =
          static_cast<double>(value - it->second.first) /
          (static_cast<double>(std::max<TimeNanos>(now - it->second.second, 1)) /
           1e9);
      it->second = {value, now};
      std::ostringstream msg;
      msg << "tenant '" << tenant << "' burning " << rate
          << " bytes/s above budget " << options_.tenant_bytes_per_sec;
      Step(AlertKind::kByteBudgetBurn, tenant,
           rate > options_.tenant_bytes_per_sec, rate,
           options_.tenant_bytes_per_sec, msg.str(), now);
    }
  }

  prev_t_nanos_ = now;
  prev_windows_ = windows;
  prev_corrections_ = corrections;
}

void Watchdog::Step(AlertKind kind, const std::string& subject, bool breaching,
                    double observed, double threshold,
                    const std::string& message, TimeNanos now) {
  DetectorState& state = detectors_[DetectorKey(kind, subject)];
  if (breaching) {
    state.clear_streak = 0;
    if (state.alert_index >= 0) return;  // already active: no re-fire
    if (++state.breach_streak < options_.trip_ticks) return;
    state.breach_streak = 0;
    Fire(kind, subject, observed, threshold, message, now);
    state.alert_index = static_cast<int>(alerts_.size()) - 1;
  } else {
    state.breach_streak = 0;
    if (state.alert_index < 0) return;
    if (++state.clear_streak < options_.clear_ticks) return;
    state.clear_streak = 0;
    Resolve(&state, now);
  }
}

void Watchdog::Fire(AlertKind kind, const std::string& subject,
                    double observed, double threshold,
                    const std::string& message, TimeNanos now) {
  Alert alert;
  alert.kind = kind;
  alert.subject = subject;
  alert.fired_at_nanos = now;
  alert.observed = observed;
  alert.threshold = threshold;
  alert.message = message;
  alerts_.push_back(alert);
  ++fired_;
  ++active_;

  DECO_LOG(WARNING) << "watchdog: " << AlertKindToString(kind) << " on '"
                    << subject << "': " << message;
  if (registry_ != nullptr) {
    registry_->counter("watchdog.alerts_fired")->Increment();
    registry_->counter(std::string("watchdog.fired.") +
                       std::string(AlertKindToString(kind)))
        ->Increment();
    registry_->gauge("watchdog.alerts_active")
        ->Set(static_cast<int64_t>(active_));
  }
  if (recorder_ != nullptr) {
    AlertTransition transition;
    transition.t_nanos = now;
    transition.kind = std::string(AlertKindToString(kind));
    transition.subject = subject;
    transition.fired = true;
    transition.observed = observed;
    transition.threshold = threshold;
    recorder_->RecordAlert(transition);
    if (!trip_dump_path_.empty() && !trip_dumped_) {
      trip_dumped_ = true;
      std::string reason = "watchdog:" + transition.kind;
      if (recorder_->DumpJson(trip_dump_path_, reason)) {
        DECO_LOG(WARNING) << "watchdog: flight recorder dumped to "
                          << trip_dump_path_;
      }
    }
  }
}

void Watchdog::Resolve(DetectorState* state, TimeNanos now) {
  Alert& alert = alerts_[static_cast<size_t>(state->alert_index)];
  alert.resolved_at_nanos = now;
  state->alert_index = -1;
  --active_;

  DECO_LOG(INFO) << "watchdog: " << AlertKindToString(alert.kind) << " on '"
                 << alert.subject << "' resolved";
  if (registry_ != nullptr) {
    registry_->gauge("watchdog.alerts_active")
        ->Set(static_cast<int64_t>(active_));
  }
  if (recorder_ != nullptr) {
    AlertTransition transition;
    transition.t_nanos = now;
    transition.kind = std::string(AlertKindToString(alert.kind));
    transition.subject = alert.subject;
    transition.fired = false;
    transition.observed = alert.observed;
    transition.threshold = alert.threshold;
    recorder_->RecordAlert(transition);
  }
}

std::vector<Alert> Watchdog::Alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

uint64_t Watchdog::fired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

size_t Watchdog::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

}  // namespace deco
