#include "obs/profiler.h"

#include <time.h>

#include <chrono>

namespace deco {

namespace {

/// Real (steady) wall clock. The profiler deliberately does not use the
/// experiment's `Clock`: CPU time is always real, so pairing it with
/// virtual sim time would make cpu/wall ratios meaningless in sim runs.
TimeNanos SteadyWallNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TimeNanos ThreadCpuNanos() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<TimeNanos>(ts.tv_sec) * kNanosPerSecond + ts.tv_nsec;
}

std::atomic<Profiler*> Profiler::active_{nullptr};

void Profiler::ThreadSlot::HandlerBegin(MessageType type) {
  open_ = true;
  open_type_ = type;
  open_cpu_nanos_ = ThreadCpuNanos();
  open_wall_nanos_ = SteadyWallNanos();
}

void Profiler::ThreadSlot::HandlerEnd() {
  if (!open_) return;
  open_ = false;
  PerType& tally = by_type_[static_cast<size_t>(open_type_)];
  ++tally.count;
  tally.cpu_nanos +=
      static_cast<uint64_t>(ThreadCpuNanos() - open_cpu_nanos_);
  tally.wall_nanos +=
      static_cast<uint64_t>(SteadyWallNanos() - open_wall_nanos_);
}

void Profiler::ThreadSlot::Finish() {
  HandlerEnd();
  cpu_nanos_ = static_cast<uint64_t>(ThreadCpuNanos() - start_cpu_nanos_);
  wall_nanos_ = static_cast<uint64_t>(SteadyWallNanos() - start_wall_nanos_);
  const AllocCounters now = ThreadAllocCounters();
  allocations_ = now.count - start_alloc_.count;
  allocated_bytes_ = now.bytes - start_alloc_.bytes;
  finished_.store(true, std::memory_order_release);
}

Profiler::ThreadSlot* Profiler::RegisterThread(const std::string& name) {
  auto slot = std::make_unique<ThreadSlot>();
  slot->name_ = name;
  slot->start_cpu_nanos_ = ThreadCpuNanos();
  slot->start_wall_nanos_ = SteadyWallNanos();
  slot->start_alloc_ = ThreadAllocCounters();
  ThreadSlot* raw = slot.get();
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_back(std::move(slot));
  return raw;
}

ProfileReport Profiler::Collect() const {
  ProfileReport report;
  report.enabled = true;
  report.alloc_counted = alloc_counting();
  std::lock_guard<std::mutex> lock(mu_);
  report.threads.reserve(slots_.size());
  for (const std::unique_ptr<ThreadSlot>& slot : slots_) {
    ThreadProfile thread;
    thread.name = slot->name_;
    if (slot->finished_.load(std::memory_order_acquire)) {
      thread.cpu_nanos = slot->cpu_nanos_;
      thread.wall_nanos = slot->wall_nanos_;
      thread.allocations = slot->allocations_;
      thread.allocated_bytes = slot->allocated_bytes_;
    }
    for (size_t i = 0; i < kNumMessageTypes; ++i) {
      const ThreadSlot::PerType& tally = slot->by_type_[i];
      if (tally.count == 0) continue;
      HandlerProfile handler;
      handler.type = static_cast<MessageType>(i);
      handler.count = tally.count;
      handler.cpu_nanos = tally.cpu_nanos;
      handler.wall_nanos = tally.wall_nanos;
      thread.messages_handled += tally.count;
      thread.handlers.push_back(handler);
    }
    report.threads.push_back(std::move(thread));
  }
  return report;
}

Profiler* Profiler::Install(Profiler* profiler) {
  Profiler* previous = active_.exchange(profiler, std::memory_order_acq_rel);
  SetAllocCountingEnabled(profiler != nullptr && profiler->alloc_counting());
  return previous;
}

}  // namespace deco
