#include "obs/metric_registry.h"

namespace deco {
namespace {

/// Dense per-thread ordinal: threads map to distinct shards until the shard
/// count is exceeded, after which they wrap.
size_t ThisThreadOrdinal() {
  static std::atomic<size_t> next{0};
  static thread_local const size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Finds `name` under a shared lock, inserting under an exclusive lock on
/// first use. Returns a pointer that stays valid for the map's lifetime.
template <typename Map>
typename Map::mapped_type::element_type* GetOrCreate(std::shared_mutex* mu,
                                                     Map* map,
                                                     const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(*mu);
    auto it = map->find(name);
    if (it != map->end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(*mu);
  auto& slot = (*map)[name];
  if (!slot) {
    slot = std::make_unique<typename Map::mapped_type::element_type>();
  }
  return slot.get();
}

}  // namespace

size_t Counter::ShardIndex() { return ThisThreadOrdinal() % kShards; }

void ShardedHistogram::Record(int64_t value) {
  Stripe& s = stripes_[ThisThreadOrdinal() % kStripes];
  std::lock_guard<std::mutex> lock(s.mu);
  s.h.Record(value);
}

Histogram ShardedHistogram::Merged() const {
  Histogram merged;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    merged.Merge(s.h);
  }
  return merged;
}

void ShardedHistogram::Reset() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.h.Reset();
  }
}

Counter* MetricRegistry::counter(const std::string& name) {
  return GetOrCreate(&mu_, &counters_, name);
}

Gauge* MetricRegistry::gauge(const std::string& name) {
  return GetOrCreate(&mu_, &gauges_, name);
}

ShardedHistogram* MetricRegistry::histogram(const std::string& name) {
  return GetOrCreate(&mu_, &histograms_, name);
}

SketchMetric* MetricRegistry::sketch(const std::string& name) {
  return GetOrCreate(&mu_, &sketches_, name);
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::shared_lock<std::shared_mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    const Histogram merged = histogram->Merged();
    HistogramSnapshot h;
    h.name = name;
    h.count = merged.count();
    h.mean = merged.mean();
    h.p50 = merged.Percentile(0.5);
    h.p99 = merged.Percentile(0.99);
    h.max = merged.max();
    snapshot.histograms.push_back(std::move(h));
  }
  snapshot.sketches.reserve(sketches_.size());
  for (const auto& [name, sketch] : sketches_) {
    snapshot.sketches.push_back(sketch->Snapshot().Snapshot(name));
  }
  return snapshot;
}

void MetricRegistry::Reset() {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, sketch] : sketches_) sketch->Reset();
}

MetricRegistry* MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return registry;
}

}  // namespace deco
