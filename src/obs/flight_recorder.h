#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "net/message.h"
#include "obs/trace.h"

/// \file flight_recorder.h
/// \brief Bounded black-box ring of recent message hops, span events and
/// alert transitions, dumped to JSON on demand — a postmortem artifact for
/// hung, crashed or interrupted runs that would otherwise leave nothing.
///
/// Unlike the `TraceSink` (unbounded-ish, drained once at end of run), the
/// recorder keeps only the most recent N records of each kind and can be
/// dumped at any moment: on a watchdog trip, on SIGINT/SIGTERM shutdown,
/// on a fatal signal (`InstallCrashHandler`), or explicitly via
/// `deco_run --dump_flight_recorder`. Recording reuses the existing taps:
/// `Actor::FinishHop` feeds hops, the `DECO_TRACE_SPAN*` macros feed spans
/// (both behind one relaxed atomic load when no recorder is installed) and
/// the watchdog feeds alert transitions.
///
/// The fatal-signal dump is best-effort, not strictly async-signal-safe:
/// it snapshots the rings under `try_lock` (skipping any ring whose lock
/// the crashing thread holds) and then re-raises with the default handler
/// so the crash still produces a core/exit code.

namespace deco {

/// \brief One watchdog alert edge (fire or resolve) as the recorder sees it.
struct AlertTransition {
  TimeNanos t_nanos = 0;
  std::string kind;     ///< AlertKindToString value
  std::string subject;
  bool fired = false;   ///< true = fired, false = resolved
  double observed = 0.0;
  double threshold = 0.0;
};

/// \brief Fixed-capacity black box; oldest records are overwritten.
class FlightRecorder {
 public:
  struct Options {
    size_t hop_capacity = 4096;
    size_t span_capacity = 2048;
    size_t alert_capacity = 256;
  };

  /// \param clock time source for dump timestamps; not owned
  explicit FlightRecorder(Clock* clock) : FlightRecorder(clock, Options()) {}
  FlightRecorder(Clock* clock, Options options);

  /// \brief Records a completed hop from a dequeued, stamped message.
  /// No-op when tracing is compiled out (the hop fields do not exist).
  void RecordHop(const Message& msg);

  /// \brief Records one span event (same shape as `TraceSink::Record`).
  void RecordSpan(NodeId node, TracePhase phase, uint64_t window_index,
                  int64_t value, uint64_t msg_id);

  void RecordAlert(const AlertTransition& transition);

  /// \brief Renders the current ring contents as a JSON document.
  std::string ToJson(const std::string& reason) const;

  /// \brief Writes `ToJson` to `path`. Returns false on I/O failure.
  /// `best_effort` snapshots under try_lock (signal-handler path).
  bool DumpJson(const std::string& path, const std::string& reason,
                bool best_effort = false) const;

  /// Oldest-first snapshots (tests and the exporters).
  std::vector<HopRecord> Hops() const;
  std::vector<TraceEvent> Spans() const;
  std::vector<AlertTransition> Alerts() const;

  /// \brief Total records ever pushed per ring (monotonic; exceeds the
  /// snapshot size once the ring wraps).
  uint64_t hops_recorded() const;
  uint64_t spans_recorded() const;
  uint64_t alerts_recorded() const;

  const Options& options() const { return options_; }

  /// \brief Installs `recorder` as the process-global recording target
  /// (nullptr uninstalls; returns the previous one). Also refreshes the
  /// fabric's hop stamping: messages carry causal ids while either a
  /// trace sink or a flight recorder is live.
  static FlightRecorder* Install(FlightRecorder* recorder);

  /// \brief The currently installed recorder, or nullptr.
  static FlightRecorder* Active() {
    return internal::g_flight_recorder.load(std::memory_order_acquire);
  }

  /// \brief Installs SIGSEGV/SIGABRT handlers that best-effort dump the
  /// active recorder to `path`, then restore the default disposition and
  /// re-raise. Idempotent; the path is captured at install time.
  static void InstallCrashHandler(const std::string& path);

 private:
  std::string ToJsonLocked(const std::string& reason, bool best_effort) const;

  template <typename T>
  struct Ring {
    std::vector<T> items;
    size_t next = 0;       ///< overwrite cursor once full
    uint64_t total = 0;    ///< records ever pushed

    void Push(size_t capacity, const T& record) {
      if (capacity == 0) return;
      if (items.size() < capacity) {
        items.push_back(record);
      } else {
        items[next] = record;
      }
      next = (next + 1) % capacity;
      ++total;
    }

    std::vector<T> OldestFirst(size_t capacity) const {
      if (items.size() < capacity) return items;
      std::vector<T> out;
      out.reserve(items.size());
      for (size_t i = 0; i < items.size(); ++i) {
        out.push_back(items[(next + i) % capacity]);
      }
      return out;
    }
  };

  Clock* clock_;
  Options options_;

  mutable std::mutex hop_mu_;
  Ring<HopRecord> hops_;
  mutable std::mutex span_mu_;
  Ring<TraceEvent> spans_;
  mutable std::mutex alert_mu_;
  Ring<AlertTransition> alerts_;
};

}  // namespace deco
