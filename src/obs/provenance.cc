#include "obs/provenance.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/json.h"

namespace deco {

const char* ProvStateToString(ProvState state) {
  switch (state) {
    case ProvState::kProvisional:
      return "provisional";
    case ProvState::kCorrecting:
      return "correcting";
    case ProvState::kCorrected:
      return "corrected";
    case ProvState::kFinal:
      return "final";
  }
  return "unknown";
}

const char* ProvRegionToString(ProvRegion region) {
  switch (region) {
    case ProvRegion::kSlice:
      return "slice";
    case ProvRegion::kFront:
      return "front";
    case ProvRegion::kEnd:
      return "end";
    case ProvRegion::kCorrection:
      return "correction";
  }
  return "unknown";
}

ProvenanceTracker::ProvenanceTracker(size_t num_nodes,
                                     uint64_t regions_per_window)
    : num_nodes_(num_nodes),
      regions_per_window_(regions_per_window),
      reported_incarnation_(num_nodes, 0),
      has_reported_incarnation_(num_nodes, false),
      eos_(num_nodes, false),
      removed_(num_nodes, false) {}

void ProvenanceTracker::SetFabric(const NetworkFabric* fabric,
                                  std::vector<NodeId> node_ids) {
  fabric_ = fabric;
  node_ids_ = std::move(node_ids);
}

ProvenanceTracker::WindowSlot& ProvenanceTracker::GetSlot(uint64_t w) {
  auto it = open_.find(w);
  if (it != open_.end()) return it->second;
  WindowSlot& slot = open_[w];
  slot.parts.resize(num_nodes_);
  for (size_t n = 0; n < num_nodes_; ++n) {
    // A node that is already gone (or finished) when the window first
    // takes shape is not planned into it; everyone else owes the scheme's
    // full region set.
    if (!removed_[n] && !eos_[n]) {
      slot.parts[n].expected_data = regions_per_window_;
      slot.parts[n].touched = true;
    }
  }
  slot.transitions.push_back(
      ProvTransition{ProvState::kProvisional, now_nanos_, 0});
  return slot;
}

void ProvenanceTracker::AddStaleness(PartSlot* part,
                                     double create_mean_nanos) {
  if (create_mean_nanos <= 0.0) return;
  part->staleness_sum_nanos +=
      static_cast<double>(now_nanos_) - create_mean_nanos;
  ++part->staleness_samples;
}

uint64_t ProvenanceTracker::IncarnationOf(size_t node) const {
  if (node < has_reported_incarnation_.size() &&
      has_reported_incarnation_[node]) {
    return reported_incarnation_[node];
  }
  if (fabric_ != nullptr && node < node_ids_.size()) {
    return fabric_->node_incarnation(node_ids_[node]);
  }
  return 0;
}

void ProvenanceTracker::OnIncarnation(size_t node, uint64_t incarnation) {
  if (node >= num_nodes_) return;
  reported_incarnation_[node] = incarnation;
  has_reported_incarnation_[node] = true;
}

void ProvenanceTracker::OnEos(size_t node) {
  if (node < num_nodes_) eos_[node] = true;
}

void ProvenanceTracker::OnNodeRemoved(size_t node) {
  if (node < num_nodes_) removed_[node] = true;
}

void ProvenanceTracker::OnNodeRejoined(size_t node) {
  if (node < num_nodes_) removed_[node] = false;
}

void ProvenanceTracker::OnCorrectionBegin(uint64_t w) {
  WindowSlot& slot = GetSlot(w);
  if (!slot.correcting) {
    slot.correcting = true;
    slot.transitions.push_back(
        ProvTransition{ProvState::kCorrecting, now_nanos_,
                       slot.correction_rounds});
  }
  // Mirror WindowAssembler::BeginCorrection: every accepted data region of
  // this and later windows is discarded, and EOS flags reset (the rollback
  // makes locals re-produce retained events and re-announce end-of-stream).
  // The correction window itself is rebuilt from candidates only; later
  // windows are re-planned and their regions resent under the new epoch,
  // so they owe the full set again.
  std::fill(eos_.begin(), eos_.end(), false);
  for (auto& [index, open] : open_) {
    if (index < w) continue;
    for (size_t n = 0; n < num_nodes_; ++n) {
      PartSlot& part = open.parts[n];
      part.discarded += part.received_data;
      part.received_data = 0;
      part.expected_data =
          (index == w || removed_[n] || eos_[n]) ? 0 : regions_per_window_;
    }
  }
}

void ProvenanceTracker::OnCorrectionSolicit(uint64_t w, size_t node) {
  if (node >= num_nodes_) return;
  WindowSlot& slot = GetSlot(w);
  PartSlot& part = slot.parts[node];
  ++part.expected_corr;
  part.touched = true;
  slot.correction_rounds =
      std::max(slot.correction_rounds, part.expected_corr);
}

void ProvenanceTracker::OnRegion(uint64_t w, size_t node, ProvRegion region,
                                 double create_mean_nanos) {
  (void)region;
  if (node >= num_nodes_) return;
  PartSlot& part = GetSlot(w).parts[node];
  ++part.received_data;
  part.touched = true;
  AddStaleness(&part, create_mean_nanos);
}

void ProvenanceTracker::OnDuplicate(uint64_t w, size_t node,
                                    ProvRegion region) {
  (void)region;
  if (node >= num_nodes_) return;
  PartSlot& part = GetSlot(w).parts[node];
  ++part.duplicates;
  part.touched = true;
}

void ProvenanceTracker::OnCorrectionResponse(uint64_t w, size_t node,
                                             double create_mean_nanos) {
  if (node >= num_nodes_) return;
  PartSlot& part = GetSlot(w).parts[node];
  ++part.received_corr;
  part.touched = true;
  AddStaleness(&part, create_mean_nanos);
}

void ProvenanceTracker::OnWindowEmitted(uint64_t protocol_window,
                                        uint64_t report_index, bool corrected,
                                        TimeNanos emit_nanos) {
  WindowSlot& slot = GetSlot(protocol_window);

  WindowProvenance record;
  record.window_index = report_index;
  record.corrected = corrected;
  record.correction_rounds = slot.correction_rounds;
  record.emit_nanos = emit_nanos;
  record.transitions = std::move(slot.transitions);
  if (corrected) {
    record.transitions.push_back(
        ProvTransition{ProvState::kCorrected, emit_nanos,
                       slot.correction_rounds});
  }
  record.transitions.push_back(
      ProvTransition{ProvState::kFinal, emit_nanos, slot.correction_rounds});

  record.compact = governance_.Collapsed(num_nodes_);
  if (record.compact) {
    record.contributor_bits.assign((num_nodes_ + 63) / 64, 0);
  }
  // Exemplar budget: room for a top-k of missing-heavy and a top-k of
  // duplicate-heavy nodes; anomalies beyond it only bump the drop counter
  // (the window totals already carry their weight).
  const size_t exemplar_cap = governance_.top_k * 2;

  for (size_t n = 0; n < num_nodes_; ++n) {
    PartSlot& part = slot.parts[n];
    // A node that reached end-of-stream owes nothing it did not send: its
    // unshipped regions are waived, never counted missing. The defensive
    // max() below keeps expected >= received even for regions that were
    // in flight when the node's planned set was established.
    if (eos_[n] && part.received_data < part.expected_data) {
      part.expected_data = part.received_data;
    }
    part.expected_data = std::max(part.expected_data, part.received_data);
    part.expected_corr = std::max(part.expected_corr, part.received_corr);
    if (!part.touched && part.duplicates == 0 && part.discarded == 0) {
      continue;
    }
    PartialProvenance out;
    out.node = n;
    out.incarnation = IncarnationOf(n);
    out.expected = part.expected_data + part.expected_corr;
    out.received = part.received_data + part.received_corr;
    out.missing = out.expected - out.received;
    out.duplicates = part.duplicates;
    out.discarded = part.discarded;
    out.staleness_sum_nanos = part.staleness_sum_nanos;
    out.staleness_samples = part.staleness_samples;
    record.expected_total += out.expected;
    record.received_total += out.received;
    record.missing_total += out.missing;
    record.duplicate_total += out.duplicates;
    record.staleness_sum_nanos += out.staleness_sum_nanos;
    record.staleness_samples += out.staleness_samples;
    if (out.received > 0) ++record.contributor_count;
    if (!record.compact) {
      record.parts.push_back(out);
      continue;
    }
    if (out.received > 0) {
      record.contributor_bits[n / 64] |= uint64_t{1} << (n % 64);
    }
    const bool anomalous = out.missing > 0 || out.duplicates > 0 ||
                           out.discarded > 0 || out.incarnation != 0;
    if (!anomalous) continue;
    if (record.parts.size() < exemplar_cap) {
      record.parts.push_back(out);
    } else {
      ++record.exemplars_dropped;
    }
  }
  open_.erase(protocol_window);

  if (max_windows_ != 0 && log_.windows.size() >= max_windows_) {
    ++log_.windows_dropped;
    return;
  }
  log_.windows.push_back(std::move(record));
}

void ProvenanceTracker::OnSynthesizedWindow(uint64_t report_index,
                                            const std::vector<bool>& live,
                                            double create_mean_nanos,
                                            TimeNanos emit_nanos) {
  WindowProvenance record;
  record.window_index = report_index;
  record.emit_nanos = emit_nanos;
  record.transitions.push_back(
      ProvTransition{ProvState::kProvisional, emit_nanos, 0});
  record.transitions.push_back(
      ProvTransition{ProvState::kFinal, emit_nanos, 0});
  record.compact = governance_.Collapsed(num_nodes_);
  if (record.compact) {
    record.contributor_bits.assign((num_nodes_ + 63) / 64, 0);
  }
  const size_t exemplar_cap = governance_.top_k * 2;
  for (size_t n = 0; n < num_nodes_ && n < live.size(); ++n) {
    if (!live[n]) continue;
    PartialProvenance out;
    out.node = n;
    out.incarnation = IncarnationOf(n);
    out.expected = 1;
    out.received = 1;
    if (create_mean_nanos > 0.0) {
      out.staleness_sum_nanos =
          static_cast<double>(emit_nanos) - create_mean_nanos;
      out.staleness_samples = 1;
    }
    record.expected_total += 1;
    record.received_total += 1;
    record.staleness_sum_nanos += out.staleness_sum_nanos;
    record.staleness_samples += out.staleness_samples;
    ++record.contributor_count;
    if (!record.compact) {
      record.parts.push_back(out);
      continue;
    }
    record.contributor_bits[n / 64] |= uint64_t{1} << (n % 64);
    if (out.incarnation == 0) continue;  // only restarts are exemplar-worthy
    if (record.parts.size() < exemplar_cap) {
      record.parts.push_back(out);
    } else {
      ++record.exemplars_dropped;
    }
  }
  if (max_windows_ != 0 && log_.windows.size() >= max_windows_) {
    ++log_.windows_dropped;
    return;
  }
  log_.windows.push_back(std::move(record));
}

void ProvenanceTracker::OnQueryWindowEmitted(uint32_t query_id,
                                             uint64_t window_index,
                                             uint64_t first_pane,
                                             uint64_t last_pane,
                                             bool corrected) {
  QueryWindowProvenance record;
  record.query_id = query_id;
  record.window_index = window_index;
  record.first_pane = first_pane;
  record.last_pane = last_pane;
  record.corrected = corrected;
  log_.query_windows.push_back(record);
}

ProvenanceLog ProvenanceTracker::TakeLog() {
  ProvenanceLog out = std::move(log_);
  log_ = ProvenanceLog();
  return out;
}

ProvenanceSummary ComputeProvenanceSummary(const ProvenanceLog& log) {
  ProvenanceSummary summary;
  summary.enabled = true;
  summary.windows_tracked = log.windows.size() + log.windows_dropped;
  double staleness_sum = 0.0;
  uint64_t staleness_samples = 0;
  for (const WindowProvenance& w : log.windows) {
    if (w.corrected) ++summary.windows_corrected;
    summary.correction_rounds += w.correction_rounds;
    summary.partials_expected += w.expected_total;
    summary.partials_received += w.received_total;
    summary.partials_missing += w.missing_total;
    summary.partials_duplicate += w.duplicate_total;
    // Window-level totals, not the parts list: compact records keep only
    // exemplar parts, but their staleness totals cover every node.
    staleness_sum += w.staleness_sum_nanos;
    staleness_samples += w.staleness_samples;
  }
  if (staleness_samples > 0) {
    summary.mean_staleness_nanos =
        staleness_sum / static_cast<double>(staleness_samples);
  }
  summary.windows_estimated = log.accuracy.size();
  if (!log.accuracy.empty()) {
    double abs_sum = 0.0;
    double drop_sum = 0.0;
    double staleness_err_sum = 0.0;
    double approx_sum = 0.0;
    for (const WindowAccuracy& acc : log.accuracy) {
      const double abs_err = std::fabs(acc.observed_error);
      abs_sum += abs_err;
      summary.max_abs_error = std::max(summary.max_abs_error, abs_err);
      drop_sum += std::fabs(acc.drop_error);
      staleness_err_sum += std::fabs(acc.staleness_error);
      approx_sum += std::fabs(acc.approx_error);
    }
    const double n = static_cast<double>(log.accuracy.size());
    summary.mean_abs_error = abs_sum / n;
    summary.mean_abs_drop_error = drop_sum / n;
    summary.mean_abs_staleness_error = staleness_err_sum / n;
    summary.mean_abs_approx_error = approx_sum / n;
  }
  return summary;
}

std::string ProvenanceJson(const ProvenanceLog& log) {
  std::string out;
  out.reserve(256 + log.windows.size() * 256 + log.accuracy.size() * 192);
  out += "{\"windows_tracked\": ";
  JsonAppendU64(&out, log.windows.size());
  out += ", \"windows_dropped\": ";
  JsonAppendU64(&out, log.windows_dropped);
  out += ",\n    \"windows\": [";
  for (size_t i = 0; i < log.windows.size(); ++i) {
    const WindowProvenance& w = log.windows[i];
    out += i == 0 ? "\n      {" : ",\n      {";
    out += "\"window\": ";
    JsonAppendU64(&out, w.window_index);
    out += ", \"corrected\": ";
    out += w.corrected ? "true" : "false";
    out += ", \"correction_rounds\": ";
    JsonAppendU64(&out, w.correction_rounds);
    out += ", \"emit_nanos\": ";
    JsonAppendI64(&out, w.emit_nanos);
    out += ", \"expected\": ";
    JsonAppendU64(&out, w.expected_total);
    out += ", \"received\": ";
    JsonAppendU64(&out, w.received_total);
    out += ", \"missing\": ";
    JsonAppendU64(&out, w.missing_total);
    out += ", \"duplicates\": ";
    JsonAppendU64(&out, w.duplicate_total);
    if (w.compact) {
      // Governed form (DESIGN.md §13): added keys only — full records
      // render byte-identically to the ungoverned schema.
      out += ", \"compact\": true, \"contributors\": ";
      JsonAppendU64(&out, w.contributor_count);
      out += ", \"contributor_bits\": [";
      for (size_t b = 0; b < w.contributor_bits.size(); ++b) {
        if (b > 0) out += ", ";
        JsonAppendU64(&out, w.contributor_bits[b]);
      }
      out += "], \"exemplars_dropped\": ";
      JsonAppendU64(&out, w.exemplars_dropped);
      out += ", \"staleness_mean_nanos\": ";
      JsonAppendDouble(&out,
                       w.staleness_samples == 0
                           ? 0.0
                           : w.staleness_sum_nanos /
                                 static_cast<double>(w.staleness_samples));
      out += ", \"staleness_samples\": ";
      JsonAppendU64(&out, w.staleness_samples);
    }
    out += ", \"states\": [";
    for (size_t t = 0; t < w.transitions.size(); ++t) {
      const ProvTransition& tr = w.transitions[t];
      if (t > 0) out += ", ";
      out += "{\"state\": \"";
      out += ProvStateToString(tr.state);
      out += "\", \"at_nanos\": ";
      JsonAppendI64(&out, tr.at_nanos);
      out += ", \"round\": ";
      JsonAppendU64(&out, tr.correction_round);
      out += "}";
    }
    out += "], \"parts\": [";
    for (size_t p = 0; p < w.parts.size(); ++p) {
      const PartialProvenance& part = w.parts[p];
      if (p > 0) out += ", ";
      out += "{\"node\": ";
      JsonAppendU64(&out, part.node);
      out += ", \"incarnation\": ";
      JsonAppendU64(&out, part.incarnation);
      out += ", \"expected\": ";
      JsonAppendU64(&out, part.expected);
      out += ", \"received\": ";
      JsonAppendU64(&out, part.received);
      out += ", \"missing\": ";
      JsonAppendU64(&out, part.missing);
      out += ", \"duplicates\": ";
      JsonAppendU64(&out, part.duplicates);
      out += ", \"discarded\": ";
      JsonAppendU64(&out, part.discarded);
      out += ", \"staleness_mean_nanos\": ";
      JsonAppendDouble(&out, part.MeanStalenessNanos());
      out += ", \"staleness_samples\": ";
      JsonAppendU64(&out, part.staleness_samples);
      out += "}";
    }
    out += "]}";
  }
  out += log.windows.empty() ? "]" : "\n    ]";
  out += ",\n    \"accuracy\": [";
  for (size_t i = 0; i < log.accuracy.size(); ++i) {
    const WindowAccuracy& a = log.accuracy[i];
    out += i == 0 ? "\n      {" : ",\n      {";
    out += "\"window\": ";
    JsonAppendU64(&out, a.window_index);
    out += ", \"emitted\": ";
    JsonAppendDouble(&out, a.emitted_value);
    out += ", \"truth\": ";
    JsonAppendDouble(&out, a.truth_value);
    out += ", \"recomputed\": ";
    JsonAppendDouble(&out, a.recomputed_value);
    out += ", \"observed_error\": ";
    JsonAppendDouble(&out, a.observed_error);
    out += ", \"drop_error\": ";
    JsonAppendDouble(&out, a.drop_error);
    out += ", \"staleness_error\": ";
    JsonAppendDouble(&out, a.staleness_error);
    out += ", \"approx_error\": ";
    JsonAppendDouble(&out, a.approx_error);
    out += ", \"dropped_events\": ";
    JsonAppendU64(&out, a.dropped_events);
    out += ", \"shifted_in_events\": ";
    JsonAppendU64(&out, a.shifted_in_events);
    out += ", \"shifted_out_events\": ";
    JsonAppendU64(&out, a.shifted_out_events);
    out += "}";
  }
  out += log.accuracy.empty() ? "]" : "\n    ]";
  out += ",\n    \"query_windows\": [";
  for (size_t i = 0; i < log.query_windows.size(); ++i) {
    const QueryWindowProvenance& q = log.query_windows[i];
    out += i == 0 ? "\n      {" : ",\n      {";
    out += "\"query\": ";
    JsonAppendU64(&out, q.query_id);
    out += ", \"window\": ";
    JsonAppendU64(&out, q.window_index);
    out += ", \"first_pane\": ";
    JsonAppendU64(&out, q.first_pane);
    out += ", \"last_pane\": ";
    JsonAppendU64(&out, q.last_pane);
    out += ", \"corrected\": ";
    out += q.corrected ? "true" : "false";
    out += "}";
  }
  out += log.query_windows.empty() ? "]}" : "\n    ]}";
  return out;
}

Status WriteProvenanceJson(const std::string& path, const std::string& scheme,
                           const ProvenanceLog& log) {
  std::string out = "{\n  \"schema_version\": 1,\n  \"scheme\": ";
  JsonAppendString(&out, scheme);
  out += ",\n  \"provenance\": ";
  out += ProvenanceJson(log);
  out += "\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != out.size() || !close_ok) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace deco
