#pragma once

#include <string>

#include "common/status.h"
#include "obs/sampler.h"

/// \file perfetto_export.h
/// \brief Renders a telemetry log in the Chrome trace-event JSON format,
/// loadable by Perfetto (https://ui.perfetto.dev) and chrome://tracing.
///
/// Mapping (one track group per node):
///  - every fabric node becomes a *process* (`pid` = fabric id) named via
///    `process_name`/`thread_name` metadata events, so Perfetto shows one
///    labeled track per node;
///  - window-lifecycle spans become thread-scoped instant events
///    (`ph: "i"`, category `"span"`) carrying window, value and causal
///    message id as args;
///  - each window's lifetime on a node becomes an async begin/end pair
///    (`ph: "b"/"e"`, category `"window"`) spanning its first to last span
///    event, so assembly and correction rounds are visible as bars;
///  - each message hop becomes an async begin/end pair (category `"net"`,
///    id = the causal msg_id) from enqueue at the sender to dequeue at the
///    receiver, with bytes, type and shaping delay as args;
///  - when the log carries accuracy attribution (DESIGN.md §10), a
///    synthetic `"accuracy"` process gets counter tracks (`ph: "C"`):
///    `live-error` with the signed drop/staleness/approx decomposition and
///    `abs-error` with the observed-error magnitude, one point per
///    estimated window at its emit time.
///
/// Timestamps (`ts`) are microseconds since the log's first event, per the
/// trace-event spec.

namespace deco {

/// \brief Renders the trace-event JSON document.
std::string PerfettoTraceJson(const TelemetryLog& log);

/// \brief Writes `PerfettoTraceJson` to `path`; IOError on filesystem
/// failure.
Status WritePerfettoTrace(const std::string& path, const TelemetryLog& log);

}  // namespace deco
