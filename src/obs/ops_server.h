#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/status.h"
#include "net/fabric.h"
#include "obs/governance.h"
#include "obs/metric_registry.h"
#include "obs/quantile_sketch.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"

/// \file ops_server.h
/// \brief Embedded live-ops HTTP server: `/metrics` (Prometheus text
/// exposition), `/healthz` (RFC-health JSON) and `/statusz` (per-node
/// progress JSON) rendered on demand from the metric registry, the fabric
/// and the watchdog. Own thread, blocking sockets, zero dependencies.
///
/// Every endpoint is a pure *read* of shared state — a scrape never
/// mutates the registry, appends a telemetry sample or schedules an
/// event, so serving during a `--sim` run cannot perturb the simulation:
/// snapshots are simply stamped with the current virtual time.
///
/// The serve registry and the chaos controller live in higher layers this
/// library must not link (DESIGN.md §14), so their `/statusz` sections
/// arrive through an opaque JSON-fragment callback wired by the harness.

namespace deco {

/// \brief Blocking-socket HTTP/1.1 server on its own thread.
class OpsServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port
    /// (`port()` reports the bound one).
    int port = 0;
    Clock* clock = nullptr;           ///< time source (virtual under --sim)
    NetworkFabric* fabric = nullptr;  ///< per-node state; may be null
    MetricRegistry* registry = nullptr;  ///< /metrics source; may be null
    Watchdog* watchdog = nullptr;     ///< alert state; may be null
    bool sim = false;                 ///< stamps /statusz snapshots
    /// Cardinality governance (DESIGN.md §13): above
    /// `governance.node_detail_limit` nodes, the per-node families in
    /// `/metrics` and the `/statusz` node table collapse into fleet
    /// aggregates (sum/min/max/p50/p99 from quantile sketches) plus
    /// top-k offender series. At or below the limit the rendering is
    /// byte-identical to the ungoverned output.
    ObsGovernance governance;
    /// Optional sampler: supplies egress-staleness offenders and the
    /// plane's self-metering stats; may be null.
    const Sampler* sampler = nullptr;
    /// Extra `/statusz` sections ("\"key\": {...}" fragments, comma-joined
    /// by the server) from layers this library cannot link.
    std::function<std::string()> statusz_extra;
  };

  explicit OpsServer(Options options);
  ~OpsServer();

  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  /// \brief Binds, listens and starts the serving thread.
  Status Start();

  /// \brief Stops the serving thread and closes the socket. Idempotent.
  void Stop();

  /// \brief The bound port (valid after a successful `Start`).
  int port() const { return bound_port_; }

  /// \brief Scrapes served so far.
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// \brief Bytes of the most recent `/metrics` render (self-metering).
  uint64_t last_exposition_bytes() const {
    return exposition_bytes_.load(std::memory_order_relaxed);
  }

  /// \brief Wall-clock scrape latency sketch (render + socket write).
  QuantileSketch ScrapeLatency() const;

  // Renderers are public so tests and the sim exporters can snapshot the
  // endpoints without a socket round-trip.
  std::string RenderMetrics() const;
  std::string RenderHealthz() const;
  std::string RenderStatusz() const;

 private:
  void Serve();
  void HandleConnection(int fd);

  Options options_;
  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_{0};
  /// Self-metering: updated by renders/scrapes, never by the registry —
  /// a scrape still never mutates the registry or the sample series.
  mutable std::atomic<uint64_t> exposition_bytes_{0};
  mutable std::mutex self_mu_;
  mutable QuantileSketch scrape_wall_nanos_;
  std::thread thread_;
};

/// \brief One-line stderr heartbeat for runs without an ops port:
/// a wall-clock thread prints `line()` every interval. The line builder
/// only reads counters, so the ticker is safe under `--sim` too (its
/// output goes to stderr, never into deterministic artifacts).
class StatusTicker {
 public:
  StatusTicker(TimeNanos interval_nanos, std::function<std::string()> line);
  ~StatusTicker();

  void Start();
  void Stop();  ///< prints one final line; idempotent

 private:
  void Loop();

  TimeNanos interval_nanos_;
  std::function<std::string()> line_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace deco
