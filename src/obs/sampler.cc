#include "obs/sampler.h"

#include <algorithm>

namespace deco {

Sampler::Sampler(Clock* clock, NetworkFabric* fabric,
                 MetricRegistry* registry, TimeNanos interval_nanos,
                 SimScheduler* sim)
    : clock_(clock),
      fabric_(fabric),
      registry_(registry),
      interval_nanos_(std::max<TimeNanos>(interval_nanos, kNanosPerMilli)),
      sim_(sim) {}

Sampler::~Sampler() { Stop(); }

TelemetrySample Sampler::SampleNow() {
  TelemetrySample sample;
  sample.t_nanos = clock_->NowNanos();
  if (fabric_ != nullptr) {
    const size_t n = fabric_->node_count();
    sample.nodes.reserve(n);
    for (NodeId id = 0; id < n; ++id) {
      NodeSample node;
      node.node = id;
      node.name = fabric_->node_name(id);
      node.queue_depth = fabric_->queue_depth(id);
      const NodeTrafficStats traffic = fabric_->node_stats(id);
      node.messages_sent = traffic.messages_sent;
      node.bytes_sent = traffic.bytes_sent;
      node.messages_received = traffic.messages_received;
      node.bytes_received = traffic.bytes_received;
      node.messages_sent_by_type = traffic.messages_sent_by_type;
      node.bytes_sent_by_type = traffic.bytes_sent_by_type;
      sample.nodes.push_back(std::move(node));
    }
    sample.total_dropped = fabric_->Stats().total_dropped;
  }
  if (registry_ != nullptr) {
    sample.metrics = registry_->Snapshot();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(sample);
  }
  if (observer_) observer_(sample);
  return sample;
}

void Sampler::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  SampleNow();
  if (sim_ != nullptr) {
    // Sim mode: a self-rescheduling timer event replaces the thread. The
    // chain stops itself once `Stop` has flipped `stop_`.
    ScheduleSimTick();
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

void Sampler::ScheduleSimTick() {
  sim_->ScheduleAt(clock_->NowNanos() + interval_nanos_, [this] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || !running_) return;
    }
    SampleNow();
    ScheduleSimTick();
  });
}

void Sampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::nanoseconds(interval_nanos_),
                     [&] { return stop_; })) {
      break;
    }
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

void Sampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  SampleNow();
}

std::vector<TelemetrySample> Sampler::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

size_t Sampler::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

}  // namespace deco
