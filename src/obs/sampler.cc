#include "obs/sampler.h"

#include <algorithm>
#include <chrono>

namespace deco {
namespace {

/// Estimated heap footprint of one retained sample. Size-based (never
/// capacity-based) so the estimate replays identically under --sim.
uint64_t ApproxSampleBytes(const TelemetrySample& sample) {
  uint64_t bytes = sizeof(TelemetrySample);
  bytes += sample.nodes.size() * sizeof(NodeSample);
  for (const NodeSample& node : sample.nodes) bytes += node.name.size();
  for (const auto& [name, value] : sample.metrics.counters) {
    (void)value;
    bytes += sizeof(std::pair<std::string, int64_t>) + name.size();
  }
  for (const auto& [name, value] : sample.metrics.gauges) {
    (void)value;
    bytes += sizeof(std::pair<std::string, int64_t>) + name.size();
  }
  for (const HistogramSnapshot& h : sample.metrics.histograms) {
    bytes += sizeof(HistogramSnapshot) + h.name.size();
  }
  for (const SketchSnapshot& s : sample.metrics.sketches) {
    bytes += sizeof(SketchSnapshot) + s.name.size();
  }
  return bytes;
}

FleetMetricSummary Summarize(const QuantileSketch& sketch, uint64_t sum) {
  FleetMetricSummary summary;
  summary.sum = sum;
  summary.min = sketch.min();
  summary.max = sketch.max();
  summary.p50 = sketch.Quantile(0.5);
  summary.p99 = sketch.Quantile(0.99);
  return summary;
}

}  // namespace

Sampler::Sampler(Clock* clock, NetworkFabric* fabric,
                 MetricRegistry* registry, TimeNanos interval_nanos,
                 SimScheduler* sim)
    : clock_(clock),
      fabric_(fabric),
      registry_(registry),
      interval_nanos_(std::max<TimeNanos>(interval_nanos, kNanosPerMilli)),
      sim_(sim) {}

Sampler::~Sampler() { Stop(); }

TelemetrySample Sampler::SampleNow() {
  const auto wall_start = std::chrono::steady_clock::now();
  TelemetrySample sample;
  sample.t_nanos = clock_->NowNanos();
  uint64_t tick;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tick = tick_count_++;
  }
  if (fabric_ != nullptr) {
    const size_t n = fabric_->node_count();
    const bool collapsed = governance_.Collapsed(n);
    sample.fleet.node_count = n;
    sample.fleet.collapsed = collapsed;

    // Scalar pass: constant work per node, no allocation in the loop
    // body beyond the pre-sized arrays. Feeds the fleet aggregates and
    // the staleness watch whether or not detail is governed.
    std::vector<uint64_t> depths(n), sent(n), sent_bytes(n);
    std::vector<TimeNanos> silent_for(n, 0);
    QuantileSketch depth_sketch, sent_sketch, bytes_sketch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (watch_.size() < n) watch_.resize(n);
      for (NodeId id = 0; id < n; ++id) {
        depths[id] = fabric_->queue_depth(id);
        const NodeTrafficStats traffic = fabric_->node_stats(id);
        sent[id] = traffic.messages_sent;
        sent_bytes[id] = traffic.bytes_sent;
        sample.fleet.total_messages_sent += traffic.messages_sent;
        sample.fleet.total_bytes_sent += traffic.bytes_sent;
        sample.fleet.total_messages_received += traffic.messages_received;
        sample.fleet.total_bytes_received += traffic.bytes_received;
        if (fabric_->IsNodeDown(id)) ++sample.fleet.nodes_down;
        NodeWatch& watch = watch_[id];
        if (tick == 0 || traffic.messages_sent != watch.last_sent) {
          watch.last_sent = traffic.messages_sent;
          watch.last_change_nanos = sample.t_nanos;
        }
        silent_for[id] = sample.t_nanos - watch.last_change_nanos;
        depth_sketch.Add(static_cast<double>(depths[id]));
        sent_sketch.Add(static_cast<double>(sent[id]));
        bytes_sketch.Add(static_cast<double>(sent_bytes[id]));
      }
    }
    uint64_t depth_sum = 0;
    for (uint64_t d : depths) depth_sum += d;
    sample.fleet.queue_depth = Summarize(depth_sketch, depth_sum);
    sample.fleet.messages_sent =
        Summarize(sent_sketch, sample.fleet.total_messages_sent);
    sample.fleet.bytes_sent =
        Summarize(bytes_sketch, sample.fleet.total_bytes_sent);

    // Detail pass: every node when ungoverned (byte-identical to the
    // pre-governance sampler); a strided subset plus the current top-k
    // offenders when collapsed.
    std::vector<NodeId> detail_ids;
    if (!collapsed) {
      detail_ids.resize(n);
      for (NodeId id = 0; id < n; ++id) detail_ids[id] = id;
    } else {
      const size_t stride = governance_.Stride(n);
      const size_t phase = static_cast<size_t>(tick % stride);
      for (NodeId id = phase; id < n; id += stride) detail_ids.push_back(id);
      const size_t k = governance_.top_k;
      std::vector<uint64_t> silent(n);
      for (NodeId id = 0; id < n; ++id) {
        silent[id] = static_cast<uint64_t>(silent_for[id]);
      }
      const std::vector<NodeId> deep = TopKIndices(depths, k);
      const std::vector<NodeId> heavy = TopKIndices(sent_bytes, k);
      const std::vector<NodeId> stale = TopKIndices(silent, k);
      detail_ids.insert(detail_ids.end(), deep.begin(), deep.end());
      detail_ids.insert(detail_ids.end(), heavy.begin(), heavy.end());
      detail_ids.insert(detail_ids.end(), stale.begin(), stale.end());
      std::sort(detail_ids.begin(), detail_ids.end());
      detail_ids.erase(std::unique(detail_ids.begin(), detail_ids.end()),
                       detail_ids.end());
      std::lock_guard<std::mutex> lock(mu_);
      for (NodeId id : deep) queue_offenders_.Offer(id);
      for (NodeId id : heavy) bytes_offenders_.Offer(id);
      for (NodeId id : stale) stale_offenders_.Offer(id);
    }
    sample.fleet.detail_nodes = detail_ids.size();
    sample.nodes.reserve(detail_ids.size());
    for (NodeId id : detail_ids) {
      NodeSample node;
      node.node = id;
      node.name = fabric_->node_name(id);
      node.queue_depth = depths[id];
      const NodeTrafficStats traffic = fabric_->node_stats(id);
      node.messages_sent = traffic.messages_sent;
      node.bytes_sent = traffic.bytes_sent;
      node.messages_received = traffic.messages_received;
      node.bytes_received = traffic.bytes_received;
      node.messages_sent_by_type = traffic.messages_sent_by_type;
      node.bytes_sent_by_type = traffic.bytes_sent_by_type;
      sample.nodes.push_back(std::move(node));
    }
    sample.total_dropped = fabric_->Stats().total_dropped;
  }
  if (registry_ != nullptr) {
    sample.metrics = registry_->Snapshot();
  }
  const double wall_nanos = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  uint64_t tracker_bytes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(sample);
    tracker_bytes_ += ApproxSampleBytes(sample);
    tracker_bytes = tracker_bytes_;
    tick_wall_nanos_.Add(wall_nanos);
  }
  if (registry_ != nullptr) {
    // Self-metering (DESIGN.md §13): the plane reports its own cost. The
    // snapshot above ran first, so these land in the *next* sample —
    // deterministic, and never part of the tick they measure.
    registry_->counter("obs.self.sampler_ticks")->Increment();
    registry_->sketch("obs.self.sampler_tick_nanos")->Observe(wall_nanos);
    registry_->gauge("obs.self.tracker_bytes")
        ->Set(static_cast<int64_t>(tracker_bytes));
  }
  if (observer_) observer_(sample);
  return sample;
}

std::vector<std::pair<NodeId, TimeNanos>> Sampler::StalestNodes(
    size_t k) const {
  std::vector<std::pair<NodeId, TimeNanos>> stale;
  const TimeNanos now = clock_->NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  stale.reserve(watch_.size());
  for (NodeId id = 0; id < watch_.size(); ++id) {
    stale.emplace_back(id, now - watch_[id].last_change_nanos);
  }
  std::sort(stale.begin(), stale.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (stale.size() > k) stale.resize(k);
  return stale;
}

Sampler::Offenders Sampler::PersistentOffenders(size_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  Offenders offenders;
  offenders.queue_depth = queue_offenders_.Top(k);
  offenders.bytes_sent = bytes_offenders_.Top(k);
  offenders.stale = stale_offenders_.Top(k);
  return offenders;
}

SamplerSelfStats Sampler::SelfStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SamplerSelfStats stats;
  stats.ticks = tick_count_;
  stats.tick_nanos_mean =
      tick_wall_nanos_.count() == 0
          ? 0.0
          : tick_wall_nanos_.sum() /
                static_cast<double>(tick_wall_nanos_.count());
  stats.tick_nanos_p50 = tick_wall_nanos_.Quantile(0.5);
  stats.tick_nanos_p99 = tick_wall_nanos_.Quantile(0.99);
  stats.tick_nanos_max = tick_wall_nanos_.max();
  stats.tracker_bytes = tracker_bytes_;
  return stats;
}

void Sampler::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  SampleNow();
  if (sim_ != nullptr) {
    // Sim mode: a self-rescheduling timer event replaces the thread. The
    // chain stops itself once `Stop` has flipped `stop_`.
    ScheduleSimTick();
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

void Sampler::ScheduleSimTick() {
  sim_->ScheduleAt(clock_->NowNanos() + interval_nanos_, [this] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || !running_) return;
    }
    SampleNow();
    ScheduleSimTick();
  });
}

void Sampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::nanoseconds(interval_nanos_),
                     [&] { return stop_; })) {
      break;
    }
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

void Sampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  SampleNow();
}

std::vector<TelemetrySample> Sampler::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

size_t Sampler::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

}  // namespace deco
