#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "metrics/report.h"

/// \file bench_record.h
/// \brief Structured benchmark output (DESIGN.md §9).
///
/// Every bench binary feeds one `BenchRecorder` alongside its human table
/// and writes the result as a JSON document (`BENCH_<binary>.json` by
/// default, `--json_out=` / `--json_dir=` to override). The document is
/// what `tools/bench_compare.py` diffs against the checked-in baselines in
/// `bench/baselines/`, so its layout is deterministic: insertion-ordered
/// rows and metrics, fixed key order, %.17g doubles.
///
/// Document layout (schema_version 1):
/// ```json
/// {
///   "schema_version": 1,
///   "bench": "fig7_end_to_end",
///   "git_sha": "<configure-time short sha>",
///   "host": {"cores": N, "trace_enabled": bool, "sanitizer": "none"},
///   "config": {"scale": 0.05, "repeat": 3, ...},
///   "rows": [
///     {"label": "deco-async",
///      "metrics": {"throughput_eps": {"values": [..per repeat..],
///                   "min":..,"max":..,"mean":..,"median":..,"stddev":..},
///                  ...},
///      "cpu_breakdown": null | {"alloc_counted": bool, "threads": [...]}}
///   ]
/// }
/// ```
/// A row is one measured configuration (usually one scheme); its metric
/// series accumulate one value per `--repeat` iteration.

namespace deco {

/// \brief Summary statistics of one metric's repeat series.
struct MetricAggregate {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< population standard deviation
};

/// \brief Accumulates per-row metric series and renders the bench JSON.
///
/// Not thread-safe; bench binaries drive it from their main thread.
class BenchRecorder {
 public:
  /// \param bench_name the binary's short name ("fig7_end_to_end")
  explicit BenchRecorder(std::string bench_name);

  /// \brief Records one run-configuration entry (insertion-ordered; a
  /// repeated key overwrites in place).
  void SetConfig(const std::string& key, const std::string& value);
  void SetConfig(const std::string& key, const char* value);
  void SetConfig(const std::string& key, double value);
  void SetConfig(const std::string& key, int64_t value);
  void SetConfig(const std::string& key, bool value);

  /// \brief Appends one repeat of `label`'s standard metric set extracted
  /// from a run report: throughput, latency mean/p50/p99, bytes/event,
  /// message/byte/drop totals, windows, corrections, queue-depth high
  /// water (max over nodes) — plus CPU/alloc totals when the report
  /// carries an enabled profile, whose last repeat also becomes the row's
  /// `cpu_breakdown`.
  void AddReport(const std::string& label, const RunReport& report);

  /// \brief Appends one value to an arbitrary metric series (micro
  /// benchmarks that have no RunReport).
  void AddMetric(const std::string& label, const std::string& metric,
                 double value);

  /// \brief Renders the full document (deterministic; see file comment).
  std::string ToJson() const;

  /// \brief Writes `ToJson()` to `path` (with a trailing newline).
  Status WriteJson(const std::string& path) const;

  const std::string& bench_name() const { return bench_name_; }

  /// \brief The configure-time git sha baked into the binary ("unknown"
  /// outside a git checkout).
  static std::string GitSha();

  /// \brief Aggregation used for each metric series; exposed for the
  /// bench_record unit test. Returns zeros for an empty series.
  static MetricAggregate Aggregate(const std::vector<double>& values);

 private:
  struct MetricSeries {
    std::string name;
    std::vector<double> values;
  };
  struct Row {
    std::string label;
    std::vector<MetricSeries> metrics;
    bool has_profile = false;
    ProfileReport profile;  ///< last repeat's profile (cpu_breakdown)
  };
  struct ConfigEntry {
    enum class Kind { kString, kNumber, kBool };
    std::string key;
    Kind kind = Kind::kString;
    std::string str;
    double num = 0.0;
    bool flag = false;
  };

  Row* RowFor(const std::string& label);
  ConfigEntry* ConfigFor(const std::string& key);

  std::string bench_name_;
  std::vector<ConfigEntry> config_;
  std::vector<Row> rows_;
};

}  // namespace deco
