#include "obs/ops_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"

namespace deco {

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's
/// dotted names map onto that with '.' (and anything else) -> '_'.
std::string PromName(const std::string& name) {
  std::string out = "deco_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Prometheus label values escape backslash, quote and newline.
std::string PromLabelValue(const std::string& value) {
  std::string out;
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void AppendPromValue(std::string* out, double v) {
  std::ostringstream os;
  os << v;
  *out += os.str();
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(code);
  out += " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

constexpr char kPromContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

void AppendSummaryQuantiles(std::string* out, const std::string& prom,
                            double p50, double p90, double p99) {
  *out += prom + "{quantile=\"0.5\"} ";
  AppendPromValue(out, p50);
  *out += "\n";
  *out += prom + "{quantile=\"0.9\"} ";
  AppendPromValue(out, p90);
  *out += "\n";
  *out += prom + "{quantile=\"0.99\"} ";
  AppendPromValue(out, p99);
  *out += "\n";
}

/// One collapsed fleet family: a summary (p50/p90/p99 + sum + count from
/// the sketch) plus `_min`/`_max` gauge companions.
void AppendFleetSummary(std::string* out, const std::string& name,
                        const char* help, const QuantileSketch& sketch,
                        uint64_t sum) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " summary\n";
  AppendSummaryQuantiles(out, name, sketch.Quantile(0.5), sketch.Quantile(0.9),
                         sketch.Quantile(0.99));
  *out += name + "_sum " + std::to_string(sum) + "\n";
  *out += name + "_count " + std::to_string(sketch.count()) + "\n";
  *out += "# HELP " + name + "_min Per-node minimum of " + name + ".\n";
  *out += "# TYPE " + name + "_min gauge\n";
  *out += name + "_min ";
  AppendPromValue(out, sketch.min());
  *out += "\n";
  *out += "# HELP " + name + "_max Per-node maximum of " + name + ".\n";
  *out += "# TYPE " + name + "_max gauge\n";
  *out += name + "_max ";
  AppendPromValue(out, sketch.max());
  *out += "\n";
}

/// Top-k offender series: per-node labels survive governance, capped at k.
void AppendOffenderSeries(std::string* out, const std::string& name,
                          const char* help, const NetworkFabric* fabric,
                          const std::vector<uint32_t>& ids,
                          const std::vector<uint64_t>& values) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " gauge\n";
  for (uint32_t id : ids) {
    *out += name + "{node=\"" + PromLabelValue(fabric->node_name(id)) +
            "\"} " + std::to_string(values[id]) + "\n";
  }
}

/// One /statusz offender list: `"key":[{"node":id,"name":s,"weight":w},..]`.
/// Weight is the space-saving cumulative count of top-k appearances (an
/// overestimate by at most the entry's inherited error).
void AppendOffenderListJson(std::string* out, const char* key,
                            const std::vector<SpaceSavingTopK::Entry>& entries,
                            const NetworkFabric* fabric) {
  *out += "\"";
  *out += key;
  *out += "\":[";
  const size_t n = fabric != nullptr ? fabric->node_count() : 0;
  bool first = true;
  for (const SpaceSavingTopK::Entry& e : entries) {
    if (e.key < 0) continue;
    const auto id = static_cast<NodeId>(e.key);
    if (!first) *out += ",";
    first = false;
    *out += "{\"node\":";
    JsonAppendU64(out, id);
    *out += ",\"name\":";
    JsonAppendString(out, id < n ? fabric->node_name(id) : std::string());
    *out += ",\"weight\":";
    JsonAppendDouble(out, e.weight);
    *out += "}";
  }
  *out += "]";
}

}  // namespace

OpsServer::OpsServer(Options options) : options_(std::move(options)) {}

OpsServer::~OpsServer() { Stop(); }

Status OpsServer::Start() {
  if (running_.load()) return Status::OK();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("ops server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("ops server: cannot bind 127.0.0.1:" +
                           std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("ops server: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);

  running_.store(true);
  thread_ = std::thread([this] { Serve(); });
  DECO_LOG(INFO) << "ops server listening on http://127.0.0.1:"
                 << bound_port_ << " (/metrics /healthz /statusz)";
  return Status::OK();
}

void OpsServer::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void OpsServer::Serve() {
  while (running_.load(std::memory_order_relaxed)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // 100 ms poll bound keeps Stop() responsive without busy-waiting.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

QuantileSketch OpsServer::ScrapeLatency() const {
  std::lock_guard<std::mutex> lock(self_mu_);
  return scrape_wall_nanos_;
}

void OpsServer::HandleConnection(int fd) {
  const auto wall_start = std::chrono::steady_clock::now();
  // Requests of interest are single-line GETs; 4 KiB is plenty.
  char buf[4096];
  size_t have = 0;
  while (have < sizeof(buf) - 1) {
    const ssize_t n = ::recv(fd, buf + have, sizeof(buf) - 1 - have, 0);
    if (n <= 0) break;
    have += static_cast<size_t>(n);
    buf[have] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr) break;
  }
  if (have == 0) return;
  buf[have] = '\0';

  std::string method, path;
  {
    std::istringstream line(std::string(buf, have));
    line >> method >> path;
  }
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::string response;
  if (method != "GET") {
    response = HttpResponse(405, "Method Not Allowed", "text/plain",
                            "only GET is served\n");
  } else if (path == "/metrics") {
    response = HttpResponse(200, "OK", kPromContentType, RenderMetrics());
  } else if (path == "/healthz") {
    response =
        HttpResponse(200, "OK", "application/health+json", RenderHealthz());
  } else if (path == "/statusz") {
    response =
        HttpResponse(200, "OK", "application/json", RenderStatusz());
  } else if (path == "/") {
    response = HttpResponse(200, "OK", "text/plain",
                            "deco ops server\n"
                            "endpoints: /metrics /healthz /statusz\n");
  } else {
    response = HttpResponse(404, "Not Found", "text/plain",
                            "unknown path; try /metrics /healthz /statusz\n");
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }

  // Self-metering: scrape latency = parse + render + socket write, on the
  // wall clock (the virtual clock stands still during a scrape).
  const double scrape_nanos = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  std::lock_guard<std::mutex> lock(self_mu_);
  scrape_wall_nanos_.Add(scrape_nanos);
}

std::string OpsServer::RenderMetrics() const {
  std::string out;
  out.reserve(1 << 14);

  out += "# HELP deco_time_nanos Current run clock (virtual under --sim).\n";
  out += "# TYPE deco_time_nanos gauge\n";
  out += "deco_time_nanos ";
  if (options_.clock != nullptr) {
    out += std::to_string(options_.clock->NowNanos());
  } else {
    out += "0";
  }
  out += "\n";

  if (options_.registry != nullptr) {
    const MetricsSnapshot snapshot = options_.registry->Snapshot();
    for (const auto& [name, value] : snapshot.counters) {
      const std::string prom = PromName(name) + "_total";
      out += "# HELP " + prom + " Counter " + name + "\n";
      out += "# TYPE " + prom + " counter\n";
      out += prom + " " + std::to_string(value) + "\n";
    }
    for (const auto& [name, value] : snapshot.gauges) {
      const std::string prom = PromName(name);
      out += "# HELP " + prom + " Gauge " + name + "\n";
      out += "# TYPE " + prom + " gauge\n";
      out += prom + " " + std::to_string(value) + "\n";
    }
    for (const HistogramSnapshot& h : snapshot.histograms) {
      const std::string prom = PromName(h.name);
      out += "# HELP " + prom + " Histogram " + h.name + "\n";
      out += "# TYPE " + prom + " summary\n";
      out += prom + "{quantile=\"0.5\"} " + std::to_string(h.p50) + "\n";
      out += prom + "{quantile=\"0.99\"} " + std::to_string(h.p99) + "\n";
      out += prom + "_sum ";
      AppendPromValue(&out, h.mean * static_cast<double>(h.count));
      out += "\n";
      out += prom + "_count " + std::to_string(h.count) + "\n";
    }
    for (const SketchSnapshot& s : snapshot.sketches) {
      const std::string prom = PromName(s.name);
      out += "# HELP " + prom + " Quantile sketch " + s.name + "\n";
      out += "# TYPE " + prom + " summary\n";
      AppendSummaryQuantiles(&out, prom, s.p50, s.p90, s.p99);
      out += prom + "_sum ";
      AppendPromValue(&out, s.sum);
      out += "\n";
      out += prom + "_count " + std::to_string(s.count) + "\n";
    }
  }

  if (options_.fabric != nullptr) {
    const size_t n = options_.fabric->node_count();
    if (!options_.governance.Collapsed(n)) {
      const struct {
        const char* name;
        const char* help;
      } kSeries[] = {
          {"deco_node_queue_depth", "Mailbox backlog per node."},
          {"deco_node_messages_sent", "Cumulative egress messages per node."},
          {"deco_node_bytes_sent", "Cumulative egress bytes per node."},
          {"deco_node_messages_received",
           "Cumulative ingress messages per node."},
          {"deco_node_down", "1 while the node is failed/down."},
      };
      for (const auto& series : kSeries) {
        out += std::string("# HELP ") + series.name + " " + series.help + "\n";
        out += std::string("# TYPE ") + series.name + " gauge\n";
        for (NodeId id = 0; id < n; ++id) {
          const std::string label =
              "{node=\"" + PromLabelValue(options_.fabric->node_name(id)) +
              "\"} ";
          uint64_t value = 0;
          if (std::strcmp(series.name, "deco_node_queue_depth") == 0) {
            value = options_.fabric->queue_depth(id);
          } else if (std::strcmp(series.name, "deco_node_down") == 0) {
            value = options_.fabric->IsNodeDown(id) ? 1 : 0;
          } else {
            const NodeTrafficStats stats = options_.fabric->node_stats(id);
            if (std::strcmp(series.name, "deco_node_messages_sent") == 0) {
              value = stats.messages_sent;
            } else if (std::strcmp(series.name, "deco_node_bytes_sent") == 0) {
              value = stats.bytes_sent;
            } else {
              value = stats.messages_received;
            }
          }
          out += series.name + label + std::to_string(value) + "\n";
        }
      }
    } else {
      // Cardinality governance (DESIGN.md §13): the per-node families
      // collapse into fleet summaries built from one bounded scalar pass,
      // plus top-k offender series that keep the per-node label shape.
      std::vector<uint64_t> depths(n), sent_bytes(n);
      QuantileSketch depth_sketch, sent_sketch, bytes_sketch, recv_sketch;
      uint64_t sent_sum = 0, bytes_sum = 0, recv_sum = 0, depth_sum = 0;
      uint64_t down = 0;
      for (NodeId id = 0; id < n; ++id) {
        depths[id] = options_.fabric->queue_depth(id);
        const NodeTrafficStats stats = options_.fabric->node_stats(id);
        sent_bytes[id] = stats.bytes_sent;
        depth_sum += depths[id];
        sent_sum += stats.messages_sent;
        bytes_sum += stats.bytes_sent;
        recv_sum += stats.messages_received;
        depth_sketch.Add(static_cast<double>(depths[id]));
        sent_sketch.Add(static_cast<double>(stats.messages_sent));
        bytes_sketch.Add(static_cast<double>(stats.bytes_sent));
        recv_sketch.Add(static_cast<double>(stats.messages_received));
        if (options_.fabric->IsNodeDown(id)) ++down;
      }
      out += "# HELP deco_fleet_nodes Fleet size under cardinality "
             "governance.\n";
      out += "# TYPE deco_fleet_nodes gauge\n";
      out += "deco_fleet_nodes " + std::to_string(n) + "\n";
      out += "# HELP deco_fleet_nodes_down Nodes currently failed/down.\n";
      out += "# TYPE deco_fleet_nodes_down gauge\n";
      out += "deco_fleet_nodes_down " + std::to_string(down) + "\n";
      AppendFleetSummary(&out, "deco_fleet_queue_depth",
                         "Fleet mailbox backlog distribution.", depth_sketch,
                         depth_sum);
      AppendFleetSummary(&out, "deco_fleet_messages_sent",
                         "Fleet egress message distribution.", sent_sketch,
                         sent_sum);
      AppendFleetSummary(&out, "deco_fleet_bytes_sent",
                         "Fleet egress byte distribution.", bytes_sketch,
                         bytes_sum);
      AppendFleetSummary(&out, "deco_fleet_messages_received",
                         "Fleet ingress message distribution.", recv_sketch,
                         recv_sum);

      const size_t k = options_.governance.top_k;
      AppendOffenderSeries(&out, "deco_node_queue_depth",
                           "Mailbox backlog, top-k deepest offenders.",
                           options_.fabric, TopKIndices(depths, k), depths);
      AppendOffenderSeries(&out, "deco_node_bytes_sent",
                           "Cumulative egress bytes, top-k heaviest "
                           "offenders.",
                           options_.fabric, TopKIndices(sent_bytes, k),
                           sent_bytes);
      if (options_.sampler != nullptr) {
        const auto stalest = options_.sampler->StalestNodes(k);
        out += "# HELP deco_node_silent_for_nanos Nanoseconds since node "
               "egress last advanced, top-k stalest offenders.\n";
        out += "# TYPE deco_node_silent_for_nanos gauge\n";
        for (const auto& [id, silent] : stalest) {
          if (id >= n) continue;
          out += "deco_node_silent_for_nanos{node=\"" +
                 PromLabelValue(options_.fabric->node_name(id)) + "\"} " +
                 std::to_string(silent) + "\n";
        }
      }
    }
    out += "# HELP deco_fabric_dropped_total Messages dropped fabric-wide.\n";
    out += "# TYPE deco_fabric_dropped_total counter\n";
    out += "deco_fabric_dropped_total " +
           std::to_string(options_.fabric->Stats().total_dropped) + "\n";
  }

  if (options_.watchdog != nullptr) {
    out += "# HELP deco_watchdog_alerts_active Alerts currently firing.\n";
    out += "# TYPE deco_watchdog_alerts_active gauge\n";
    out += "deco_watchdog_alerts_active " +
           std::to_string(options_.watchdog->active_count()) + "\n";
    out += "# HELP deco_watchdog_alerts_fired_total Alerts fired so far.\n";
    out += "# TYPE deco_watchdog_alerts_fired_total counter\n";
    out += "deco_watchdog_alerts_fired_total " +
           std::to_string(options_.watchdog->fired_count()) + "\n";
  }

  // Self-metering family (DESIGN.md §13): the plane reports what the
  // plane costs. Sampler-side `deco_obs_self_sampler_*` instruments come
  // through the registry above; the scrape-side meters live here.
  out += "# HELP deco_obs_self_scrapes_total Ops endpoint requests "
         "served.\n";
  out += "# TYPE deco_obs_self_scrapes_total counter\n";
  out += "deco_obs_self_scrapes_total " + std::to_string(requests_served()) +
         "\n";
  {
    std::lock_guard<std::mutex> lock(self_mu_);
    out += "# HELP deco_obs_self_scrape_nanos Wall-clock scrape latency "
           "(parse + render + write).\n";
    out += "# TYPE deco_obs_self_scrape_nanos summary\n";
    AppendSummaryQuantiles(&out, "deco_obs_self_scrape_nanos",
                           scrape_wall_nanos_.Quantile(0.5),
                           scrape_wall_nanos_.Quantile(0.9),
                           scrape_wall_nanos_.Quantile(0.99));
    out += "deco_obs_self_scrape_nanos_sum ";
    AppendPromValue(&out, scrape_wall_nanos_.sum());
    out += "\n";
    out += "deco_obs_self_scrape_nanos_count " +
           std::to_string(scrape_wall_nanos_.count()) + "\n";
  }
  out += "# HELP deco_obs_self_exposition_bytes Bytes of the previous "
         "/metrics render.\n";
  out += "# TYPE deco_obs_self_exposition_bytes gauge\n";
  out += "deco_obs_self_exposition_bytes " +
         std::to_string(exposition_bytes_.load(std::memory_order_relaxed)) +
         "\n";
  exposition_bytes_.store(out.size(), std::memory_order_relaxed);
  return out;
}

namespace {

void AppendAlertJson(std::string* out, const Alert& alert) {
  *out += "{\"kind\":";
  JsonAppendString(out, std::string(AlertKindToString(alert.kind)));
  *out += ",\"subject\":";
  JsonAppendString(out, alert.subject);
  *out += ",\"fired_at_nanos\":";
  JsonAppendI64(out, alert.fired_at_nanos);
  *out += ",\"resolved_at_nanos\":";
  JsonAppendI64(out, alert.resolved_at_nanos);
  *out += ",\"observed\":";
  JsonAppendDouble(out, alert.observed);
  *out += ",\"threshold\":";
  JsonAppendDouble(out, alert.threshold);
  *out += ",\"message\":";
  JsonAppendString(out, alert.message);
  *out += "}";
}

}  // namespace

std::string OpsServer::RenderHealthz() const {
  // draft-inadarei-api-health-check shape: overall status plus a checks
  // map. Active stall/silence alerts mean the pipeline is wedged -> fail;
  // any other active alert or a down node degrades to warn.
  size_t nodes_down = 0;
  size_t node_count = 0;
  if (options_.fabric != nullptr) {
    node_count = options_.fabric->node_count();
    for (NodeId id = 0; id < node_count; ++id) {
      if (options_.fabric->IsNodeDown(id)) ++nodes_down;
    }
  }
  std::vector<Alert> alerts;
  size_t active = 0;
  bool wedged = false;
  if (options_.watchdog != nullptr) {
    alerts = options_.watchdog->Alerts();
    for (const Alert& alert : alerts) {
      if (alert.resolved_at_nanos != 0) continue;
      ++active;
      if (alert.kind == AlertKind::kWindowStall ||
          alert.kind == AlertKind::kHeartbeatSilence) {
        wedged = true;
      }
    }
  }
  const char* status =
      wedged ? "fail" : (active > 0 || nodes_down > 0) ? "warn" : "pass";

  std::string out = "{\"status\":";
  JsonAppendString(&out, status);
  out += ",\"version\":\"1\",\"description\":\"deco live ops plane\"";
  out += ",\"checks\":{\"fabric:nodes\":[{\"observedValue\":";
  JsonAppendU64(&out, node_count);
  out += ",\"observedUnit\":\"nodes\",\"status\":";
  JsonAppendString(&out, nodes_down == 0 ? "pass" : "warn");
  out += ",\"output\":";
  JsonAppendString(&out, std::to_string(nodes_down) + " down");
  out += "}],\"watchdog:alerts\":[{\"observedValue\":";
  JsonAppendU64(&out, active);
  out += ",\"observedUnit\":\"active alerts\",\"status\":";
  JsonAppendString(&out, active == 0 ? "pass" : (wedged ? "fail" : "warn"));
  out += "}]}";
  out += ",\"alerts\":[";
  bool first = true;
  for (const Alert& alert : alerts) {
    if (!first) out += ",";
    first = false;
    AppendAlertJson(&out, alert);
  }
  out += "]}\n";
  return out;
}

std::string OpsServer::RenderStatusz() const {
  std::string out = "{\"t_nanos\":";
  JsonAppendI64(&out,
                options_.clock != nullptr ? options_.clock->NowNanos() : 0);
  out += ",\"sim\":";
  out += options_.sim ? "true" : "false";

  if (options_.registry != nullptr) {
    // The progress gauges the nodes maintain (root.next_window etc.) plus
    // every counter, so the scrape shows live pane/window movement.
    const MetricsSnapshot snapshot = options_.registry->Snapshot();
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : snapshot.counters) {
      if (!first) out += ",";
      first = false;
      JsonAppendString(&out, name);
      out += ":";
      JsonAppendI64(&out, value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : snapshot.gauges) {
      if (!first) out += ",";
      first = false;
      JsonAppendString(&out, name);
      out += ":";
      JsonAppendI64(&out, value);
    }
    out += "}";
  }

  if (options_.fabric != nullptr) {
    const size_t n = options_.fabric->node_count();
    const bool collapsed = options_.governance.Collapsed(n);
    out += ",\"node_count\":";
    JsonAppendU64(&out, n);
    // Governed /statusz keeps the `nodes` table shape but fills it with
    // only the top-k offenders (deepest queues, most bytes, stalest),
    // plus fleet aggregates so the totals stay authoritative.
    std::vector<NodeId> table_ids;
    if (!collapsed) {
      table_ids.resize(n);
      for (NodeId id = 0; id < n; ++id) table_ids[id] = id;
    } else {
      std::vector<uint64_t> depths(n), sent_bytes(n);
      QuantileSketch depth_sketch, bytes_sketch;
      uint64_t depth_sum = 0, sent_sum = 0, bytes_sum = 0, recv_sum = 0;
      uint64_t down = 0;
      for (NodeId id = 0; id < n; ++id) {
        depths[id] = options_.fabric->queue_depth(id);
        const NodeTrafficStats stats = options_.fabric->node_stats(id);
        sent_bytes[id] = stats.bytes_sent;
        depth_sum += depths[id];
        sent_sum += stats.messages_sent;
        bytes_sum += stats.bytes_sent;
        recv_sum += stats.messages_received;
        depth_sketch.Add(static_cast<double>(depths[id]));
        bytes_sketch.Add(static_cast<double>(stats.bytes_sent));
        if (options_.fabric->IsNodeDown(id)) ++down;
      }
      const size_t k = options_.governance.top_k;
      const std::vector<uint32_t> deep = TopKIndices(depths, k);
      const std::vector<uint32_t> heavy = TopKIndices(sent_bytes, k);
      table_ids.insert(table_ids.end(), deep.begin(), deep.end());
      table_ids.insert(table_ids.end(), heavy.begin(), heavy.end());
      if (options_.sampler != nullptr) {
        for (const auto& [id, silent] : options_.sampler->StalestNodes(k)) {
          (void)silent;
          if (id < n) table_ids.push_back(id);
        }
      }
      std::sort(table_ids.begin(), table_ids.end());
      table_ids.erase(std::unique(table_ids.begin(), table_ids.end()),
                      table_ids.end());
      out += ",\"nodes_truncated\":true,\"fleet\":{\"nodes_down\":";
      JsonAppendU64(&out, down);
      out += ",\"queue_depth\":{\"sum\":";
      JsonAppendU64(&out, depth_sum);
      out += ",\"max\":";
      JsonAppendDouble(&out, depth_sketch.max());
      out += ",\"p50\":";
      JsonAppendDouble(&out, depth_sketch.Quantile(0.5));
      out += ",\"p99\":";
      JsonAppendDouble(&out, depth_sketch.Quantile(0.99));
      out += "},\"bytes_sent\":{\"sum\":";
      JsonAppendU64(&out, bytes_sum);
      out += ",\"max\":";
      JsonAppendDouble(&out, bytes_sketch.max());
      out += ",\"p50\":";
      JsonAppendDouble(&out, bytes_sketch.Quantile(0.5));
      out += ",\"p99\":";
      JsonAppendDouble(&out, bytes_sketch.Quantile(0.99));
      out += "},\"messages_sent\":";
      JsonAppendU64(&out, sent_sum);
      out += ",\"messages_received\":";
      JsonAppendU64(&out, recv_sum);
      out += "}";
      if (options_.sampler != nullptr) {
        const Sampler::Offenders offenders =
            options_.sampler->PersistentOffenders(k);
        out += ",\"offenders\":{";
        AppendOffenderListJson(&out, "queue_depth", offenders.queue_depth,
                               options_.fabric);
        out += ",";
        AppendOffenderListJson(&out, "bytes_sent", offenders.bytes_sent,
                               options_.fabric);
        out += ",";
        AppendOffenderListJson(&out, "stale", offenders.stale,
                               options_.fabric);
        out += "}";
      }
    }
    out += ",\"nodes\":[";
    bool first_node = true;
    for (NodeId id : table_ids) {
      if (!first_node) out += ",";
      first_node = false;
      out += "{\"id\":";
      JsonAppendU64(&out, id);
      out += ",\"name\":";
      JsonAppendString(&out, options_.fabric->node_name(id));
      out += ",\"queue_depth\":";
      JsonAppendU64(&out, options_.fabric->queue_depth(id));
      const NodeTrafficStats stats = options_.fabric->node_stats(id);
      out += ",\"messages_sent\":";
      JsonAppendU64(&out, stats.messages_sent);
      out += ",\"messages_received\":";
      JsonAppendU64(&out, stats.messages_received);
      out += ",\"bytes_sent\":";
      JsonAppendU64(&out, stats.bytes_sent);
      out += ",\"down\":";
      out += options_.fabric->IsNodeDown(id) ? "true" : "false";
      out += ",\"incarnation\":";
      JsonAppendU64(&out, options_.fabric->node_incarnation(id));
      out += "}";
    }
    out += "]";
  }

  // Self-metering section (always present): what the plane itself costs.
  out += ",\"obs_self\":{\"scrapes\":";
  JsonAppendU64(&out, requests_served());
  out += ",\"exposition_bytes\":";
  JsonAppendU64(&out, last_exposition_bytes());
  if (options_.sampler != nullptr) {
    const SamplerSelfStats self = options_.sampler->SelfStats();
    out += ",\"sampler_ticks\":";
    JsonAppendU64(&out, self.ticks);
    out += ",\"sampler_tick_p50_nanos\":";
    JsonAppendDouble(&out, self.tick_nanos_p50);
    out += ",\"sampler_tick_p99_nanos\":";
    JsonAppendDouble(&out, self.tick_nanos_p99);
    out += ",\"tracker_bytes\":";
    JsonAppendU64(&out, self.tracker_bytes);
  }
  out += ",\"node_detail_limit\":";
  JsonAppendU64(&out, options_.governance.node_detail_limit);
  out += ",\"top_k\":";
  JsonAppendU64(&out, options_.governance.top_k);
  out += "}";

  if (options_.watchdog != nullptr) {
    out += ",\"alerts\":[";
    bool first = true;
    for (const Alert& alert : options_.watchdog->Alerts()) {
      if (!first) out += ",";
      first = false;
      AppendAlertJson(&out, alert);
    }
    out += "]";
  }

  if (options_.statusz_extra) {
    const std::string extra = options_.statusz_extra();
    if (!extra.empty()) {
      out += ",";
      out += extra;
    }
  }
  out += "}\n";
  return out;
}

StatusTicker::StatusTicker(TimeNanos interval_nanos,
                           std::function<std::string()> line)
    : interval_nanos_(std::max<TimeNanos>(interval_nanos, kNanosPerMilli)),
      line_(std::move(line)) {}

StatusTicker::~StatusTicker() { Stop(); }

void StatusTicker::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void StatusTicker::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::nanoseconds(interval_nanos_),
                     [&] { return stop_; })) {
      break;
    }
    lock.unlock();
    std::fputs((line_() + "\n").c_str(), stderr);
    lock.lock();
  }
}

void StatusTicker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::fputs((line_() + "\n").c_str(), stderr);
}

}  // namespace deco
