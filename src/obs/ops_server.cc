#include "obs/ops_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"

namespace deco {

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's
/// dotted names map onto that with '.' (and anything else) -> '_'.
std::string PromName(const std::string& name) {
  std::string out = "deco_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Prometheus label values escape backslash, quote and newline.
std::string PromLabelValue(const std::string& value) {
  std::string out;
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void AppendPromValue(std::string* out, double v) {
  std::ostringstream os;
  os << v;
  *out += os.str();
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(code);
  out += " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

constexpr char kPromContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace

OpsServer::OpsServer(Options options) : options_(std::move(options)) {}

OpsServer::~OpsServer() { Stop(); }

Status OpsServer::Start() {
  if (running_.load()) return Status::OK();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("ops server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("ops server: cannot bind 127.0.0.1:" +
                           std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("ops server: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = ntohs(addr.sin_port);

  running_.store(true);
  thread_ = std::thread([this] { Serve(); });
  DECO_LOG(INFO) << "ops server listening on http://127.0.0.1:"
                 << bound_port_ << " (/metrics /healthz /statusz)";
  return Status::OK();
}

void OpsServer::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void OpsServer::Serve() {
  while (running_.load(std::memory_order_relaxed)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // 100 ms poll bound keeps Stop() responsive without busy-waiting.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void OpsServer::HandleConnection(int fd) {
  // Requests of interest are single-line GETs; 4 KiB is plenty.
  char buf[4096];
  size_t have = 0;
  while (have < sizeof(buf) - 1) {
    const ssize_t n = ::recv(fd, buf + have, sizeof(buf) - 1 - have, 0);
    if (n <= 0) break;
    have += static_cast<size_t>(n);
    buf[have] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr) break;
  }
  if (have == 0) return;
  buf[have] = '\0';

  std::string method, path;
  {
    std::istringstream line(std::string(buf, have));
    line >> method >> path;
  }
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::string response;
  if (method != "GET") {
    response = HttpResponse(405, "Method Not Allowed", "text/plain",
                            "only GET is served\n");
  } else if (path == "/metrics") {
    response = HttpResponse(200, "OK", kPromContentType, RenderMetrics());
  } else if (path == "/healthz") {
    response =
        HttpResponse(200, "OK", "application/health+json", RenderHealthz());
  } else if (path == "/statusz") {
    response =
        HttpResponse(200, "OK", "application/json", RenderStatusz());
  } else if (path == "/") {
    response = HttpResponse(200, "OK", "text/plain",
                            "deco ops server\n"
                            "endpoints: /metrics /healthz /statusz\n");
  } else {
    response = HttpResponse(404, "Not Found", "text/plain",
                            "unknown path; try /metrics /healthz /statusz\n");
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

std::string OpsServer::RenderMetrics() const {
  std::string out;
  out.reserve(1 << 14);

  out += "# HELP deco_time_nanos Current run clock (virtual under --sim).\n";
  out += "# TYPE deco_time_nanos gauge\n";
  out += "deco_time_nanos ";
  if (options_.clock != nullptr) {
    out += std::to_string(options_.clock->NowNanos());
  } else {
    out += "0";
  }
  out += "\n";

  if (options_.registry != nullptr) {
    const MetricsSnapshot snapshot = options_.registry->Snapshot();
    for (const auto& [name, value] : snapshot.counters) {
      const std::string prom = PromName(name) + "_total";
      out += "# HELP " + prom + " Counter " + name + "\n";
      out += "# TYPE " + prom + " counter\n";
      out += prom + " " + std::to_string(value) + "\n";
    }
    for (const auto& [name, value] : snapshot.gauges) {
      const std::string prom = PromName(name);
      out += "# HELP " + prom + " Gauge " + name + "\n";
      out += "# TYPE " + prom + " gauge\n";
      out += prom + " " + std::to_string(value) + "\n";
    }
    for (const HistogramSnapshot& h : snapshot.histograms) {
      const std::string prom = PromName(h.name);
      out += "# HELP " + prom + " Histogram " + h.name + "\n";
      out += "# TYPE " + prom + " summary\n";
      out += prom + "{quantile=\"0.5\"} " + std::to_string(h.p50) + "\n";
      out += prom + "{quantile=\"0.99\"} " + std::to_string(h.p99) + "\n";
      out += prom + "_sum ";
      AppendPromValue(&out, h.mean * static_cast<double>(h.count));
      out += "\n";
      out += prom + "_count " + std::to_string(h.count) + "\n";
    }
  }

  if (options_.fabric != nullptr) {
    const size_t n = options_.fabric->node_count();
    const struct {
      const char* name;
      const char* help;
    } kSeries[] = {
        {"deco_node_queue_depth", "Mailbox backlog per node."},
        {"deco_node_messages_sent", "Cumulative egress messages per node."},
        {"deco_node_bytes_sent", "Cumulative egress bytes per node."},
        {"deco_node_messages_received",
         "Cumulative ingress messages per node."},
        {"deco_node_down", "1 while the node is failed/down."},
    };
    for (const auto& series : kSeries) {
      out += std::string("# HELP ") + series.name + " " + series.help + "\n";
      out += std::string("# TYPE ") + series.name + " gauge\n";
      for (NodeId id = 0; id < n; ++id) {
        const std::string label =
            "{node=\"" + PromLabelValue(options_.fabric->node_name(id)) +
            "\"} ";
        uint64_t value = 0;
        if (std::strcmp(series.name, "deco_node_queue_depth") == 0) {
          value = options_.fabric->queue_depth(id);
        } else if (std::strcmp(series.name, "deco_node_down") == 0) {
          value = options_.fabric->IsNodeDown(id) ? 1 : 0;
        } else {
          const NodeTrafficStats stats = options_.fabric->node_stats(id);
          if (std::strcmp(series.name, "deco_node_messages_sent") == 0) {
            value = stats.messages_sent;
          } else if (std::strcmp(series.name, "deco_node_bytes_sent") == 0) {
            value = stats.bytes_sent;
          } else {
            value = stats.messages_received;
          }
        }
        out += series.name + label + std::to_string(value) + "\n";
      }
    }
    out += "# HELP deco_fabric_dropped_total Messages dropped fabric-wide.\n";
    out += "# TYPE deco_fabric_dropped_total counter\n";
    out += "deco_fabric_dropped_total " +
           std::to_string(options_.fabric->Stats().total_dropped) + "\n";
  }

  if (options_.watchdog != nullptr) {
    out += "# HELP deco_watchdog_alerts_active Alerts currently firing.\n";
    out += "# TYPE deco_watchdog_alerts_active gauge\n";
    out += "deco_watchdog_alerts_active " +
           std::to_string(options_.watchdog->active_count()) + "\n";
    out += "# HELP deco_watchdog_alerts_fired_total Alerts fired so far.\n";
    out += "# TYPE deco_watchdog_alerts_fired_total counter\n";
    out += "deco_watchdog_alerts_fired_total " +
           std::to_string(options_.watchdog->fired_count()) + "\n";
  }
  return out;
}

namespace {

void AppendAlertJson(std::string* out, const Alert& alert) {
  *out += "{\"kind\":";
  JsonAppendString(out, std::string(AlertKindToString(alert.kind)));
  *out += ",\"subject\":";
  JsonAppendString(out, alert.subject);
  *out += ",\"fired_at_nanos\":";
  JsonAppendI64(out, alert.fired_at_nanos);
  *out += ",\"resolved_at_nanos\":";
  JsonAppendI64(out, alert.resolved_at_nanos);
  *out += ",\"observed\":";
  JsonAppendDouble(out, alert.observed);
  *out += ",\"threshold\":";
  JsonAppendDouble(out, alert.threshold);
  *out += ",\"message\":";
  JsonAppendString(out, alert.message);
  *out += "}";
}

}  // namespace

std::string OpsServer::RenderHealthz() const {
  // draft-inadarei-api-health-check shape: overall status plus a checks
  // map. Active stall/silence alerts mean the pipeline is wedged -> fail;
  // any other active alert or a down node degrades to warn.
  size_t nodes_down = 0;
  size_t node_count = 0;
  if (options_.fabric != nullptr) {
    node_count = options_.fabric->node_count();
    for (NodeId id = 0; id < node_count; ++id) {
      if (options_.fabric->IsNodeDown(id)) ++nodes_down;
    }
  }
  std::vector<Alert> alerts;
  size_t active = 0;
  bool wedged = false;
  if (options_.watchdog != nullptr) {
    alerts = options_.watchdog->Alerts();
    for (const Alert& alert : alerts) {
      if (alert.resolved_at_nanos != 0) continue;
      ++active;
      if (alert.kind == AlertKind::kWindowStall ||
          alert.kind == AlertKind::kHeartbeatSilence) {
        wedged = true;
      }
    }
  }
  const char* status =
      wedged ? "fail" : (active > 0 || nodes_down > 0) ? "warn" : "pass";

  std::string out = "{\"status\":";
  JsonAppendString(&out, status);
  out += ",\"version\":\"1\",\"description\":\"deco live ops plane\"";
  out += ",\"checks\":{\"fabric:nodes\":[{\"observedValue\":";
  JsonAppendU64(&out, node_count);
  out += ",\"observedUnit\":\"nodes\",\"status\":";
  JsonAppendString(&out, nodes_down == 0 ? "pass" : "warn");
  out += ",\"output\":";
  JsonAppendString(&out, std::to_string(nodes_down) + " down");
  out += "}],\"watchdog:alerts\":[{\"observedValue\":";
  JsonAppendU64(&out, active);
  out += ",\"observedUnit\":\"active alerts\",\"status\":";
  JsonAppendString(&out, active == 0 ? "pass" : (wedged ? "fail" : "warn"));
  out += "}]}";
  out += ",\"alerts\":[";
  bool first = true;
  for (const Alert& alert : alerts) {
    if (!first) out += ",";
    first = false;
    AppendAlertJson(&out, alert);
  }
  out += "]}\n";
  return out;
}

std::string OpsServer::RenderStatusz() const {
  std::string out = "{\"t_nanos\":";
  JsonAppendI64(&out,
                options_.clock != nullptr ? options_.clock->NowNanos() : 0);
  out += ",\"sim\":";
  out += options_.sim ? "true" : "false";

  if (options_.registry != nullptr) {
    // The progress gauges the nodes maintain (root.next_window etc.) plus
    // every counter, so the scrape shows live pane/window movement.
    const MetricsSnapshot snapshot = options_.registry->Snapshot();
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : snapshot.counters) {
      if (!first) out += ",";
      first = false;
      JsonAppendString(&out, name);
      out += ":";
      JsonAppendI64(&out, value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : snapshot.gauges) {
      if (!first) out += ",";
      first = false;
      JsonAppendString(&out, name);
      out += ":";
      JsonAppendI64(&out, value);
    }
    out += "}";
  }

  if (options_.fabric != nullptr) {
    out += ",\"nodes\":[";
    const size_t n = options_.fabric->node_count();
    for (NodeId id = 0; id < n; ++id) {
      if (id != 0) out += ",";
      out += "{\"id\":";
      JsonAppendU64(&out, id);
      out += ",\"name\":";
      JsonAppendString(&out, options_.fabric->node_name(id));
      out += ",\"queue_depth\":";
      JsonAppendU64(&out, options_.fabric->queue_depth(id));
      const NodeTrafficStats stats = options_.fabric->node_stats(id);
      out += ",\"messages_sent\":";
      JsonAppendU64(&out, stats.messages_sent);
      out += ",\"messages_received\":";
      JsonAppendU64(&out, stats.messages_received);
      out += ",\"bytes_sent\":";
      JsonAppendU64(&out, stats.bytes_sent);
      out += ",\"down\":";
      out += options_.fabric->IsNodeDown(id) ? "true" : "false";
      out += ",\"incarnation\":";
      JsonAppendU64(&out, options_.fabric->node_incarnation(id));
      out += "}";
    }
    out += "]";
  }

  if (options_.watchdog != nullptr) {
    out += ",\"alerts\":[";
    bool first = true;
    for (const Alert& alert : options_.watchdog->Alerts()) {
      if (!first) out += ",";
      first = false;
      AppendAlertJson(&out, alert);
    }
    out += "]";
  }

  if (options_.statusz_extra) {
    const std::string extra = options_.statusz_extra();
    if (!extra.empty()) {
      out += ",";
      out += extra;
    }
  }
  out += "}\n";
  return out;
}

StatusTicker::StatusTicker(TimeNanos interval_nanos,
                           std::function<std::string()> line)
    : interval_nanos_(std::max<TimeNanos>(interval_nanos, kNanosPerMilli)),
      line_(std::move(line)) {}

StatusTicker::~StatusTicker() { Stop(); }

void StatusTicker::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void StatusTicker::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::nanoseconds(interval_nanos_),
                     [&] { return stop_; })) {
      break;
    }
    lock.unlock();
    std::fputs((line_() + "\n").c_str(), stderr);
    lock.lock();
  }
}

void StatusTicker::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::fputs((line_() + "\n").c_str(), stderr);
}

}  // namespace deco
