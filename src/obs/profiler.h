#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "metrics/report.h"
#include "net/message.h"

/// \file profiler.h
/// \brief Low-overhead in-run CPU/allocation profiler (DESIGN.md §9).
///
/// One `Profiler` is installed process-wide per run (same atomic-pointer
/// pattern as `TraceSink::Install`). Each actor thread registers a
/// `ThreadSlot` at startup; the slot samples `CLOCK_THREAD_CPUTIME_ID` at
/// actor start/stop and around every message-handler dispatch, yielding
///  - per-thread CPU/wall totals ("root saturates under Central, locals do
///    the work under Deco" as a measured table),
///  - handler-level wall/cpu attribution keyed by `MessageType`, and
///  - per-thread allocation counts via the opt-in counting allocator hook
///    (`alloc_hook.cc`; CMake option `DECO_PROFILE_ALLOC`).
///
/// Attribution model: the interval from a message's dequeue to the actor's
/// *next* receive call is charged to that message's type. A blocked receive
/// consumes no CPU, so CPU attribution is tight; actors that interleave
/// non-message work between receives (a local node's ingest loop) fold that
/// work into the preceding handler, making the split an upper bound there.
///
/// Overhead: with no profiler installed, each receive costs one
/// null-pointer check (the actor caches the slot pointer); no clock is
/// read, no sample is recorded. With a profiler installed, each dispatch
/// costs two `clock_gettime` calls. Allocation counting costs one relaxed
/// atomic load per `operator new` in every binary that links the hook,
/// whether or not a profiler is live.
///
/// Thread-safety contract: `ThreadSlot` methods are called only by the
/// owning actor thread; `Collect` may run concurrently with registration
/// but reads a slot's totals only after its `Finish` (release/acquire on
/// `finished_`). The harness installs the profiler before `StartAll` and
/// collects after `JoinAll`, so in practice there is no overlap.

namespace deco {

/// \brief CPU time consumed by the calling thread, via
/// `CLOCK_THREAD_CPUTIME_ID`. Monotonic per thread; 0 if unsupported.
TimeNanos ThreadCpuNanos();

/// \brief Allocation counters of the calling thread (monotonic totals
/// since thread start, counted only while counting is enabled).
struct AllocCounters {
  uint64_t count = 0;  ///< operator-new calls
  uint64_t bytes = 0;  ///< bytes requested
};

/// \brief True when the counting `operator new` replacement is compiled in
/// (CMake option `DECO_PROFILE_ALLOC`, default ON). When false the other
/// two functions are inert and every counter stays zero.
bool AllocCountingCompiledIn();

/// \brief Process-wide gate for the counting allocator. Flipped by
/// `Profiler::Install`; costs one relaxed atomic load per allocation.
void SetAllocCountingEnabled(bool enabled);

/// \brief Snapshot of the calling thread's allocation counters.
AllocCounters ThreadAllocCounters();

/// \brief Collects per-thread CPU/alloc profiles for one run.
class Profiler {
 public:
  /// \brief Per-actor-thread recording slot. Owned by the profiler;
  /// methods must be called on the registered thread only.
  class ThreadSlot {
   public:
    /// \brief Opens a handler interval for a just-dequeued message.
    void HandlerBegin(MessageType type);

    /// \brief Closes the open handler interval (no-op when none is open),
    /// charging the elapsed CPU/wall time to its message type. Called on
    /// re-entry into a receive, so "handler" spans dequeue -> next receive.
    void HandlerEnd();

    /// \brief Finalizes the slot at actor-body exit: closes any open
    /// handler and snapshots thread CPU/wall/alloc totals.
    void Finish();

   private:
    friend class Profiler;

    struct PerType {
      uint64_t count = 0;
      uint64_t cpu_nanos = 0;
      uint64_t wall_nanos = 0;
    };

    std::string name_;
    TimeNanos start_cpu_nanos_ = 0;
    TimeNanos start_wall_nanos_ = 0;
    AllocCounters start_alloc_;

    bool open_ = false;
    MessageType open_type_ = MessageType::kEventBatch;
    TimeNanos open_cpu_nanos_ = 0;
    TimeNanos open_wall_nanos_ = 0;

    std::array<PerType, kNumMessageTypes> by_type_{};

    // Totals, written once by Finish (release), read by Collect (acquire).
    uint64_t cpu_nanos_ = 0;
    uint64_t wall_nanos_ = 0;
    uint64_t allocations_ = 0;
    uint64_t allocated_bytes_ = 0;
    std::atomic<bool> finished_{false};
  };

  /// \param count_allocs also enable the counting allocator while this
  ///        profiler is installed (if compiled in)
  explicit Profiler(bool count_allocs = true)
      : count_allocs_(count_allocs) {}

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// \brief Registers the calling thread under `name` and snapshots its
  /// starting CPU/wall/alloc counters. The returned slot stays valid for
  /// the profiler's lifetime. Thread-safe.
  ThreadSlot* RegisterThread(const std::string& name);

  /// \brief Builds the run's profile. Call after every registered thread
  /// has finished; threads still running contribute their handler tallies
  /// but zero totals.
  ProfileReport Collect() const;

  /// \brief Whether allocation counting is live for this profiler.
  bool alloc_counting() const {
    return count_allocs_ && AllocCountingCompiledIn();
  }

  /// \brief Installs `profiler` as the process-global target (nullptr
  /// uninstalls) and toggles the counting allocator to match. Returns the
  /// previous profiler.
  static Profiler* Install(Profiler* profiler);

  /// \brief The currently installed profiler, or nullptr.
  static Profiler* Active() {
    return active_.load(std::memory_order_acquire);
  }

 private:
  bool count_allocs_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadSlot>> slots_;

  static std::atomic<Profiler*> active_;
};

}  // namespace deco
