#include "obs/trace.h"

#include <algorithm>

namespace deco {

std::atomic<TraceSink*> TraceSink::active_{nullptr};

std::string_view TracePhaseToString(TracePhase phase) {
  switch (phase) {
    case TracePhase::kWindowOpen:
      return "window-open";
    case TracePhase::kPartialReceived:
      return "partial-received";
    case TracePhase::kAssemble:
      return "assemble";
    case TracePhase::kCorrect:
      return "correct";
    case TracePhase::kEmit:
      return "emit";
  }
  return "?";
}

TraceSink::TraceSink(Clock* clock, size_t capacity)
    : clock_(clock), capacity_(capacity) {}

void TraceSink::Record(NodeId node, TracePhase phase, uint64_t window_index,
                       int64_t value) {
  TraceEvent event;
  event.t_nanos = clock_->NowNanos();
  event.node = node;
  event.phase = phase;
  event.window_index = window_index;
  event.value = value;

  // Stripe by recording thread so concurrent nodes rarely contend.
  static thread_local const size_t stripe =
      [] {
        static std::atomic<size_t> next{0};
        return next.fetch_add(1, std::memory_order_relaxed);
      }() %
      kStripes;
  Stripe& s = stripes_[stripe];
  std::lock_guard<std::mutex> lock(s.mu);
  if (capacity_ > 0 && s.events.size() >= capacity_ / kStripes) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s.events.push_back(event);
}

std::vector<TraceEvent> TraceSink::Drain() {
  std::vector<TraceEvent> all;
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    all.insert(all.end(), s.events.begin(), s.events.end());
    s.events.clear();
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t_nanos < b.t_nanos;
                   });
  return all;
}

size_t TraceSink::size() const {
  size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.events.size();
  }
  return n;
}

TraceSink* TraceSink::Install(TraceSink* sink) {
  return active_.exchange(sink, std::memory_order_acq_rel);
}

}  // namespace deco
