#include "obs/trace.h"

#include <algorithm>

#include "net/fabric.h"

namespace deco {

std::atomic<TraceSink*> TraceSink::active_{nullptr};

std::string_view TracePhaseToString(TracePhase phase) {
  switch (phase) {
    case TracePhase::kWindowOpen:
      return "window-open";
    case TracePhase::kPartialReceived:
      return "partial-received";
    case TracePhase::kAssemble:
      return "assemble";
    case TracePhase::kCorrect:
      return "correct";
    case TracePhase::kEmit:
      return "emit";
  }
  return "?";
}

TraceSink::TraceSink(Clock* clock, size_t capacity)
    : clock_(clock), capacity_(capacity) {}

namespace {
// Stripe by node id so concurrent nodes rarely contend. Node-keyed (not
// thread-keyed): a process-global thread counter would hand every run in
// the process a different stripe assignment, and with it a different
// drain order for simultaneous events — breaking sim replay identity for
// any binary that runs more than one experiment.
size_t NodeStripe(NodeId node, size_t num_stripes) {
  return static_cast<size_t>(node) % num_stripes;
}
}  // namespace

void TraceSink::Record(NodeId node, TracePhase phase, uint64_t window_index,
                       int64_t value, uint64_t msg_id) {
  TraceEvent event;
  event.t_nanos = clock_->NowNanos();
  event.node = node;
  event.phase = phase;
  event.window_index = window_index;
  event.value = value;
  event.msg_id = msg_id;

  Stripe& s = stripes_[NodeStripe(node, kStripes)];
  std::lock_guard<std::mutex> lock(s.mu);
  if (capacity_ > 0 && s.events.size() >= capacity_ / kStripes) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s.events.push_back(event);
}

void TraceSink::RecordHop(const Message& msg) {
#if DECO_TRACE_ENABLED
  if (msg.hop.msg_id == 0) return;
  HopRecord hop;
  hop.msg_id = msg.hop.msg_id;
  hop.type = msg.type;
  hop.src = msg.src;
  hop.dst = msg.dst;
  hop.window_index = msg.window_index;
  hop.wire_bytes = msg.WireSize();
  hop.enqueue_nanos = msg.hop.enqueue_nanos;
  hop.deliver_nanos = msg.hop.deliver_nanos;
  hop.dequeue_nanos = msg.hop.dequeue_nanos;
  hop.shaping_delay_nanos = msg.hop.shaping_delay_nanos;

  Stripe& s = stripes_[NodeStripe(msg.src, kStripes)];
  std::lock_guard<std::mutex> lock(s.mu);
  if (capacity_ > 0 && s.hops.size() >= capacity_ / kStripes) {
    hops_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s.hops.push_back(hop);
#else
  (void)msg;
#endif
}

std::vector<TraceEvent> TraceSink::Drain() {
  std::vector<TraceEvent> all;
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    all.insert(all.end(), s.events.begin(), s.events.end());
    s.events.clear();
  }
  // Canonical order, not arrival order: simultaneous events (common
  // under --sim where whole bursts share a timestamp) tie-break on
  // stable fields so the drained stream is a pure function of the run.
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t_nanos != b.t_nanos) return a.t_nanos < b.t_nanos;
                     if (a.node != b.node) return a.node < b.node;
                     if (a.window_index != b.window_index) {
                       return a.window_index < b.window_index;
                     }
                     return a.phase < b.phase;
                   });
  return all;
}

std::vector<HopRecord> TraceSink::DrainHops() {
  std::vector<HopRecord> all;
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    all.insert(all.end(), s.hops.begin(), s.hops.end());
    s.hops.clear();
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const HopRecord& a, const HopRecord& b) {
                     if (a.enqueue_nanos != b.enqueue_nanos) {
                       return a.enqueue_nanos < b.enqueue_nanos;
                     }
                     return a.msg_id < b.msg_id;
                   });
  return all;
}

size_t TraceSink::size() const {
  size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.events.size();
  }
  return n;
}

TraceSink* TraceSink::Install(TraceSink* sink) {
  TraceSink* previous = active_.exchange(sink, std::memory_order_acq_rel);
  internal::RefreshHopStamping();
  return previous;
}

namespace internal {

void RefreshHopStamping() {
  // Hop stamping follows the listeners' lifetimes: messages carry causal
  // ids exactly while a trace sink or a flight recorder is live. The flag
  // lives in the net layer so the fabric does not depend on this library.
  SetHopStampingEnabled(TraceSink::Active() != nullptr ||
                        g_flight_recorder.load(std::memory_order_acquire) !=
                            nullptr);
}

}  // namespace internal

}  // namespace deco
