#pragma once

#include <array>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/fabric.h"
#include "obs/alert.h"
#include "obs/metric_registry.h"
#include "obs/provenance.h"
#include "obs/trace.h"

/// \file sampler.h
/// \brief Background time-series sampler: snapshots the metric registry,
/// the fabric's per-node traffic counters and every mailbox's queue depth
/// at a fixed interval, building the in-memory trajectory that the
/// exporters serialize. One guaranteed snapshot is taken at `Start` and one
/// at `Stop`, so even runs shorter than the interval yield a two-point
/// series (enough to derive rates).

namespace deco {

/// \brief Per-node slice of one sampler snapshot.
struct NodeSample {
  NodeId node = 0;
  std::string name;
  uint64_t queue_depth = 0;     ///< mailbox backlog (backpressure signal)
  uint64_t messages_sent = 0;   ///< cumulative fabric counters
  uint64_t bytes_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_received = 0;
  /// Cumulative egress split by `MessageType` (indexed by enum value).
  std::array<uint64_t, kNumMessageTypes> messages_sent_by_type{};
  std::array<uint64_t, kNumMessageTypes> bytes_sent_by_type{};
};

/// \brief One point of the telemetry time series.
struct TelemetrySample {
  TimeNanos t_nanos = 0;
  uint64_t total_dropped = 0;   ///< fabric-wide dropped messages so far
  std::vector<NodeSample> nodes;
  MetricsSnapshot metrics;
};

/// \brief Everything one telemetry run collects (samples + spans + message
/// hops), the exporters' input.
struct TelemetryLog {
  std::vector<TelemetrySample> samples;
  std::vector<TraceEvent> spans;
  uint64_t spans_dropped = 0;
  std::vector<HopRecord> hops;
  uint64_t hops_dropped = 0;
  /// Per-window provenance records and accuracy estimates (schema v4);
  /// empty when the run collected no provenance.
  ProvenanceLog provenance;
  /// Watchdog alert history (schema v6); always-present section, empty
  /// and disabled when no watchdog ran.
  std::vector<Alert> alerts;
  bool alerts_enabled = false;
};

/// \brief Periodic snapshot thread over a fabric and a registry.
class Sampler {
 public:
  /// \param clock time source; not owned
  /// \param fabric fabric whose counters and mailboxes are sampled; may be
  ///        null (registry-only sampling); not owned
  /// \param registry metric registry to snapshot; may be null; not owned
  /// \param interval_nanos sampling period (clamped to >= 1 ms)
  /// \param sim when non-null, `Start` registers a self-rescheduling timer
  ///        event on this scheduler instead of spawning the background
  ///        thread: snapshots land at exact virtual-interval points, fully
  ///        deterministic (DESIGN.md §8)
  Sampler(Clock* clock, NetworkFabric* fabric, MetricRegistry* registry,
          TimeNanos interval_nanos, SimScheduler* sim = nullptr);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// \brief Takes an immediate snapshot and starts the background thread.
  void Start();

  /// \brief Stops the thread and takes the final snapshot. Idempotent.
  void Stop();

  /// \brief One on-demand snapshot, appended to the series (thread-safe).
  TelemetrySample SampleNow();

  /// \brief Registers a callback invoked with every snapshot right after
  /// it is appended, on the sampling thread (or sim event). Set before
  /// `Start`; the watchdog's detector tick rides here, which keeps alert
  /// evaluation as deterministic as the sample series itself.
  void SetObserver(std::function<void(const TelemetrySample&)> observer) {
    observer_ = std::move(observer);
  }

  /// \brief Copy of the series collected so far.
  std::vector<TelemetrySample> Samples() const;

  size_t sample_count() const;

 private:
  void Loop();

  void ScheduleSimTick();

  Clock* clock_;
  NetworkFabric* fabric_;
  MetricRegistry* registry_;
  TimeNanos interval_nanos_;
  SimScheduler* sim_;

  std::function<void(const TelemetrySample&)> observer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<TelemetrySample> samples_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
};

}  // namespace deco
