#pragma once

#include <array>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/fabric.h"
#include "obs/alert.h"
#include "obs/governance.h"
#include "obs/metric_registry.h"
#include "obs/provenance.h"
#include "obs/quantile_sketch.h"
#include "obs/trace.h"

/// \file sampler.h
/// \brief Background time-series sampler: snapshots the metric registry,
/// the fabric's per-node traffic counters and every mailbox's queue depth
/// at a fixed interval, building the in-memory trajectory that the
/// exporters serialize. One guaranteed snapshot is taken at `Start` and one
/// at `Stop`, so even runs shorter than the interval yield a two-point
/// series (enough to derive rates).
///
/// Cardinality governance (DESIGN.md §13): every tick runs a cheap
/// constant-work-per-node scalar pass that fills fleet aggregates
/// (totals + min/max/p50/p99 quantile sketches) for the whole fleet.
/// Above `ObsGovernance::node_detail_limit` the expensive per-node detail
/// (name strings, per-type breakdowns) is recorded only for a strided
/// subset — each node is visited once every `Stride` ticks — plus the
/// current top-k offenders (deepest queues, most bytes sent, stalest
/// egress), so per-tick detail cost is bounded by the limit, not the
/// fleet size. At or below the limit the sample is byte-identical to the
/// ungoverned output.

namespace deco {

/// \brief Per-node slice of one sampler snapshot.
struct NodeSample {
  NodeId node = 0;
  std::string name;
  uint64_t queue_depth = 0;     ///< mailbox backlog (backpressure signal)
  uint64_t messages_sent = 0;   ///< cumulative fabric counters
  uint64_t bytes_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_received = 0;
  /// Cumulative egress split by `MessageType` (indexed by enum value).
  std::array<uint64_t, kNumMessageTypes> messages_sent_by_type{};
  std::array<uint64_t, kNumMessageTypes> bytes_sent_by_type{};
};

/// \brief Fleet-wide aggregate of one per-node scalar at one tick,
/// distilled from a quantile sketch over the live fleet.
struct FleetMetricSummary {
  uint64_t sum = 0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// \brief Bounded-size fleet aggregates recorded with every sample; the
/// authoritative totals when `nodes` holds only a governed subset.
struct FleetSample {
  bool collapsed = false;      ///< per-node detail was governed this tick
  uint64_t node_count = 0;     ///< fleet size (nodes.size() when detailed)
  uint64_t detail_nodes = 0;   ///< entries recorded in `nodes`
  uint64_t nodes_down = 0;
  uint64_t total_messages_sent = 0;
  uint64_t total_bytes_sent = 0;
  uint64_t total_messages_received = 0;
  uint64_t total_bytes_received = 0;
  FleetMetricSummary queue_depth;
  FleetMetricSummary messages_sent;
  FleetMetricSummary bytes_sent;
};

/// \brief One point of the telemetry time series.
struct TelemetrySample {
  TimeNanos t_nanos = 0;
  uint64_t total_dropped = 0;   ///< fabric-wide dropped messages so far
  std::vector<NodeSample> nodes;
  FleetSample fleet;
  MetricsSnapshot metrics;
};

/// \brief The sampler's own cost, measured on the wall clock even under
/// `--sim` (virtual time stands still inside a tick, so the sim clock
/// cannot see the plane's cost — which is exactly what we must meter).
struct SamplerSelfStats {
  uint64_t ticks = 0;
  double tick_nanos_mean = 0.0;
  double tick_nanos_p50 = 0.0;
  double tick_nanos_p99 = 0.0;
  double tick_nanos_max = 0.0;
  uint64_t tracker_bytes = 0;  ///< estimated retained-series footprint
};

/// \brief Everything one telemetry run collects (samples + spans + message
/// hops), the exporters' input.
struct TelemetryLog {
  std::vector<TelemetrySample> samples;
  std::vector<TraceEvent> spans;
  uint64_t spans_dropped = 0;
  std::vector<HopRecord> hops;
  uint64_t hops_dropped = 0;
  /// Per-window provenance records and accuracy estimates (schema v4);
  /// empty when the run collected no provenance.
  ProvenanceLog provenance;
  /// Watchdog alert history (schema v6); always-present section, empty
  /// and disabled when no watchdog ran.
  std::vector<Alert> alerts;
  bool alerts_enabled = false;
  /// Self-metering of the observability plane itself (schema v7);
  /// always-present section, zeroed when no sampler ran.
  struct ObsSelf {
    bool enabled = false;
    SamplerSelfStats sampler;
    uint64_t scrapes = 0;             ///< ops-server requests served
    double scrape_nanos_mean = 0.0;   ///< render+write wall time
    double scrape_nanos_p99 = 0.0;
    uint64_t exposition_bytes = 0;    ///< last /metrics render size
    uint64_t node_detail_limit = 0;   ///< governance in force (0 = off)
    uint64_t top_k = 0;
  } obs_self;
};

/// \brief Periodic snapshot thread over a fabric and a registry.
class Sampler {
 public:
  /// \param clock time source; not owned
  /// \param fabric fabric whose counters and mailboxes are sampled; may be
  ///        null (registry-only sampling); not owned
  /// \param registry metric registry to snapshot; may be null; not owned
  /// \param interval_nanos sampling period (clamped to >= 1 ms)
  /// \param sim when non-null, `Start` registers a self-rescheduling timer
  ///        event on this scheduler instead of spawning the background
  ///        thread: snapshots land at exact virtual-interval points, fully
  ///        deterministic (DESIGN.md §8)
  Sampler(Clock* clock, NetworkFabric* fabric, MetricRegistry* registry,
          TimeNanos interval_nanos, SimScheduler* sim = nullptr);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// \brief Takes an immediate snapshot and starts the background thread.
  void Start();

  /// \brief Stops the thread and takes the final snapshot. Idempotent.
  void Stop();

  /// \brief One on-demand snapshot, appended to the series (thread-safe).
  TelemetrySample SampleNow();

  /// \brief Registers a callback invoked with every snapshot right after
  /// it is appended, on the sampling thread (or sim event). Set before
  /// `Start`; the watchdog's detector tick rides here, which keeps alert
  /// evaluation as deterministic as the sample series itself.
  void SetObserver(std::function<void(const TelemetrySample&)> observer) {
    observer_ = std::move(observer);
  }

  /// \brief Copy of the series collected so far.
  std::vector<TelemetrySample> Samples() const;

  size_t sample_count() const;

  /// \brief Sets the cardinality-governance policy. Call before `Start`.
  void SetGovernance(const ObsGovernance& governance) {
    governance_ = governance;
  }
  const ObsGovernance& governance() const { return governance_; }

  /// \brief Nodes whose egress counters have not moved for the longest,
  /// stalest first, with the silent interval (thread-safe). Empty until
  /// two samples exist.
  std::vector<std::pair<NodeId, TimeNanos>> StalestNodes(size_t k) const;

  /// \brief Persistent offender sets accumulated by space-saving trackers
  /// across governed ticks: how often each node ranked among the per-tick
  /// top-k, by dimension. Empty when governance never collapsed.
  struct Offenders {
    std::vector<SpaceSavingTopK::Entry> queue_depth;
    std::vector<SpaceSavingTopK::Entry> bytes_sent;
    std::vector<SpaceSavingTopK::Entry> stale;
  };
  Offenders PersistentOffenders(size_t k) const;

  /// \brief Wall-clock cost of the sampler itself (thread-safe).
  SamplerSelfStats SelfStats() const;

 private:
  void Loop();

  void ScheduleSimTick();

  Clock* clock_;
  NetworkFabric* fabric_;
  MetricRegistry* registry_;
  TimeNanos interval_nanos_;
  SimScheduler* sim_;
  ObsGovernance governance_;

  std::function<void(const TelemetrySample&)> observer_;

  /// Per-node egress staleness watch, updated by the scalar pass.
  struct NodeWatch {
    uint64_t last_sent = 0;
    TimeNanos last_change_nanos = 0;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<TelemetrySample> samples_;
  std::vector<NodeWatch> watch_;
  SpaceSavingTopK queue_offenders_{32};
  SpaceSavingTopK bytes_offenders_{32};
  SpaceSavingTopK stale_offenders_{32};
  QuantileSketch tick_wall_nanos_;
  uint64_t tick_count_ = 0;
  uint64_t tracker_bytes_ = 0;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
};

}  // namespace deco
