#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "obs/critical_path.h"

namespace deco {
namespace {

/// JSON string escaping for the few non-literal strings we emit (node and
/// metric names).
void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) v = 0.0;  // JSON has no NaN/Inf
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

double MillisSince(TimeNanos t, TimeNanos origin) {
  return static_cast<double>(t - origin) / kNanosPerMilli;
}

/// Value of a named counter in a snapshot; 0 when absent.
int64_t CounterValue(const MetricsSnapshot& metrics,
                     const std::string& name) {
  for (const auto& [n, v] : metrics.counters) {
    if (n == name) return v;
  }
  return 0;
}

/// Per-second rate of `curr - prev` over the samples' time gap.
double Rate(uint64_t prev, uint64_t curr, TimeNanos prev_t, TimeNanos curr_t) {
  if (curr_t <= prev_t || curr < prev) return 0.0;
  return static_cast<double>(curr - prev) * kNanosPerSecond /
         static_cast<double>(curr_t - prev_t);
}

/// The previous sample's record for `node`, by id — governed samples hold
/// strided subsets, so positional lookup would pair different nodes.
/// Sample node lists are id-sorted, so a binary search suffices.
const NodeSample* FindNode(const TelemetrySample* sample, NodeId node) {
  if (sample == nullptr) return nullptr;
  auto it = std::lower_bound(
      sample->nodes.begin(), sample->nodes.end(), node,
      [](const NodeSample& s, NodeId id) { return s.node < id; });
  if (it == sample->nodes.end() || it->node != node) return nullptr;
  return &*it;
}

void AppendFleetMetric(std::string* out, const char* key,
                       const FleetMetricSummary& m) {
  *out += ", \"";
  *out += key;
  *out += "\": {\"sum\": ";
  AppendUint(out, m.sum);
  *out += ", \"min\": ";
  AppendDouble(out, m.min);
  *out += ", \"max\": ";
  AppendDouble(out, m.max);
  *out += ", \"p50\": ";
  AppendDouble(out, m.p50);
  *out += ", \"p99\": ";
  AppendDouble(out, m.p99);
  *out += "}";
}

TimeNanos SeriesOrigin(const TelemetryLog& log) {
  if (!log.samples.empty()) return log.samples.front().t_nanos;
  if (!log.spans.empty()) return log.spans.front().t_nanos;
  return 0;
}

/// CSV field escaping (RFC 4180): quote when the value contains a comma,
/// quote or newline; double embedded quotes.
void AppendCsvField(std::string* out, const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    *out += s;
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendComponents(std::string* out, const LatencyComponents& c) {
  *out += "{\"total_nanos\": ";
  AppendDouble(out, c.total_nanos);
  *out += ", \"local_compute_nanos\": ";
  AppendDouble(out, c.local_compute_nanos);
  *out += ", \"correction_nanos\": ";
  AppendDouble(out, c.correction_nanos);
  *out += ", \"shaping_nanos\": ";
  AppendDouble(out, c.shaping_nanos);
  *out += ", \"link_nanos\": ";
  AppendDouble(out, c.link_nanos);
  *out += ", \"queue_nanos\": ";
  AppendDouble(out, c.queue_nanos);
  *out += ", \"root_merge_nanos\": ";
  AppendDouble(out, c.root_merge_nanos);
  *out += "}";
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace

std::string TelemetryToJson(const RunReport& report,
                            const TelemetryLog& log) {
  const TimeNanos origin = SeriesOrigin(log);
  std::string out;
  out.reserve(4096 + log.samples.size() * 512 + log.spans.size() * 96);

  out += "{\n  \"schema_version\": 7,\n  \"scheme\": ";
  AppendEscaped(&out, report.scheme);
  out += ",\n  \"report\": {\"events_processed\": ";
  AppendUint(&out, report.events_processed);
  out += ", \"wall_seconds\": ";
  AppendDouble(&out, report.wall_seconds);
  out += ", \"throughput_eps\": ";
  AppendDouble(&out, report.throughput_eps);
  out += ", \"windows_emitted\": ";
  AppendUint(&out, report.windows_emitted);
  out += ", \"correction_steps\": ";
  AppendUint(&out, report.correction_steps);
  out += ", \"total_bytes\": ";
  AppendUint(&out, report.network.total_bytes);
  out += ", \"total_messages\": ";
  AppendUint(&out, report.network.total_messages);
  out += ", \"latency_mean_nanos\": ";
  AppendDouble(&out, report.latency.mean());
  out += ", \"latency_p50_nanos\": ";
  AppendInt(&out, report.latency.Percentile(0.5));
  out += ", \"latency_p99_nanos\": ";
  AppendInt(&out, report.latency.Percentile(0.99));
  // Schema v3: the run's CPU/alloc profile. Disabled-with-empty-threads
  // (never absent) when the run was not profiled, so consumers need no
  // existence check.
  out += "},\n  \"cpu_breakdown\": ";
  out += ProfileReportJson(report.profile);
  out += ",\n  \"samples\": [";

  for (size_t i = 0; i < log.samples.size(); ++i) {
    const TelemetrySample& sample = log.samples[i];
    const TelemetrySample* prev = i > 0 ? &log.samples[i - 1] : nullptr;
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"t_ms\": ";
    AppendDouble(&out, MillisSince(sample.t_nanos, origin));
    out += ", \"events_per_sec\": ";
    if (prev != nullptr) {
      const int64_t curr_events =
          CounterValue(sample.metrics, "root.events_emitted");
      const int64_t prev_events =
          CounterValue(prev->metrics, "root.events_emitted");
      AppendDouble(&out, Rate(static_cast<uint64_t>(prev_events),
                              static_cast<uint64_t>(curr_events),
                              prev->t_nanos, sample.t_nanos));
    } else {
      // No prior snapshot: the first sample has no interval to rate over,
      // so the rate is absent rather than a misleading 0 (schema v2).
      out += "null";
    }
    out += ", \"total_dropped\": ";
    AppendUint(&out, sample.total_dropped);

    out += ", \"counters\": {";
    for (size_t c = 0; c < sample.metrics.counters.size(); ++c) {
      if (c > 0) out += ", ";
      AppendEscaped(&out, sample.metrics.counters[c].first);
      out += ": ";
      AppendInt(&out, sample.metrics.counters[c].second);
    }
    out += "}, \"gauges\": {";
    for (size_t g = 0; g < sample.metrics.gauges.size(); ++g) {
      if (g > 0) out += ", ";
      AppendEscaped(&out, sample.metrics.gauges[g].first);
      out += ": ";
      AppendInt(&out, sample.metrics.gauges[g].second);
    }
    out += "}, \"histograms\": [";
    for (size_t h = 0; h < sample.metrics.histograms.size(); ++h) {
      const HistogramSnapshot& hist = sample.metrics.histograms[h];
      if (h > 0) out += ", ";
      out += "{\"name\": ";
      AppendEscaped(&out, hist.name);
      out += ", \"count\": ";
      AppendUint(&out, hist.count);
      out += ", \"mean\": ";
      AppendDouble(&out, hist.mean);
      out += ", \"p50\": ";
      AppendInt(&out, hist.p50);
      out += ", \"p99\": ";
      AppendInt(&out, hist.p99);
      out += ", \"max\": ";
      AppendInt(&out, hist.max);
      out += "}";
    }
    // Schema v7: registered quantile sketches ride along with every
    // snapshot, like histograms but with sketch-native fields.
    out += "], \"sketches\": [";
    for (size_t s = 0; s < sample.metrics.sketches.size(); ++s) {
      const SketchSnapshot& sketch = sample.metrics.sketches[s];
      if (s > 0) out += ", ";
      out += "{\"name\": ";
      AppendEscaped(&out, sketch.name);
      out += ", \"count\": ";
      AppendUint(&out, sketch.count);
      out += ", \"sum\": ";
      AppendDouble(&out, sketch.sum);
      out += ", \"min\": ";
      AppendDouble(&out, sketch.min);
      out += ", \"max\": ";
      AppendDouble(&out, sketch.max);
      out += ", \"p50\": ";
      AppendDouble(&out, sketch.p50);
      out += ", \"p90\": ";
      AppendDouble(&out, sketch.p90);
      out += ", \"p99\": ";
      AppendDouble(&out, sketch.p99);
      out += "}";
    }
    // Schema v7: fleet aggregates — the authoritative totals when the
    // nodes array below holds only a governed subset.
    out += "], \"fleet\": {\"collapsed\": ";
    out += sample.fleet.collapsed ? "true" : "false";
    out += ", \"node_count\": ";
    AppendUint(&out, sample.fleet.node_count);
    out += ", \"detail_nodes\": ";
    AppendUint(&out, sample.fleet.detail_nodes);
    out += ", \"nodes_down\": ";
    AppendUint(&out, sample.fleet.nodes_down);
    out += ", \"total_messages_sent\": ";
    AppendUint(&out, sample.fleet.total_messages_sent);
    out += ", \"total_bytes_sent\": ";
    AppendUint(&out, sample.fleet.total_bytes_sent);
    out += ", \"total_messages_received\": ";
    AppendUint(&out, sample.fleet.total_messages_received);
    out += ", \"total_bytes_received\": ";
    AppendUint(&out, sample.fleet.total_bytes_received);
    AppendFleetMetric(&out, "queue_depth", sample.fleet.queue_depth);
    AppendFleetMetric(&out, "messages_sent", sample.fleet.messages_sent);
    AppendFleetMetric(&out, "bytes_sent", sample.fleet.bytes_sent);
    out += "}, \"nodes\": [";
    for (size_t n = 0; n < sample.nodes.size(); ++n) {
      const NodeSample& node = sample.nodes[n];
      if (n > 0) out += ", ";
      out += "{\"node\": ";
      AppendUint(&out, node.node);
      out += ", \"name\": ";
      AppendEscaped(&out, node.name);
      out += ", \"queue_depth\": ";
      AppendUint(&out, node.queue_depth);
      out += ", \"messages_sent\": ";
      AppendUint(&out, node.messages_sent);
      out += ", \"bytes_sent\": ";
      AppendUint(&out, node.bytes_sent);
      out += ", \"messages_received\": ";
      AppendUint(&out, node.messages_received);
      out += ", \"bytes_received\": ";
      AppendUint(&out, node.bytes_received);
      out += ", \"sent_by_type\": {";
      bool first_type = true;
      for (size_t t = 0; t < kNumMessageTypes; ++t) {
        if (node.messages_sent_by_type[t] == 0) continue;
        if (!first_type) out += ", ";
        first_type = false;
        out += "\"";
        out += MessageTypeToString(static_cast<MessageType>(t));
        out += "\": {\"messages\": ";
        AppendUint(&out, node.messages_sent_by_type[t]);
        out += ", \"bytes\": ";
        AppendUint(&out, node.bytes_sent_by_type[t]);
        out += "}";
      }
      out += "}, \"bytes_per_sec\": ";
      const NodeSample* prev_node = FindNode(prev, node.node);
      if (prev_node != nullptr) {
        AppendDouble(&out, Rate(prev_node->bytes_sent, node.bytes_sent,
                                prev->t_nanos, sample.t_nanos));
      } else {
        out += "null";  // no prior record of this node: nothing to rate
      }
      out += "}";
    }
    out += "]}";
  }
  out += log.samples.empty() ? "],\n" : "\n  ],\n";

  out += "  \"spans\": [";
  for (size_t i = 0; i < log.spans.size(); ++i) {
    const TraceEvent& span = log.spans[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"t_ms\": ";
    AppendDouble(&out, MillisSince(span.t_nanos, origin));
    out += ", \"node\": ";
    AppendUint(&out, span.node);
    out += ", \"phase\": \"";
    out += TracePhaseToString(span.phase);
    out += "\", \"window\": ";
    AppendUint(&out, span.window_index);
    out += ", \"value\": ";
    AppendInt(&out, span.value);
    out += ", \"msg_id\": ";
    AppendUint(&out, span.msg_id);
    out += "}";
  }
  out += log.spans.empty() ? "],\n" : "\n  ],\n";
  out += "  \"spans_dropped\": ";
  AppendUint(&out, log.spans_dropped);
  out += ",\n  \"hop_count\": ";
  AppendUint(&out, log.hops.size());
  out += ",\n  \"hops_dropped\": ";
  AppendUint(&out, log.hops_dropped);

  const LatencyAttribution attribution = AttributeWindowLatency(log);
  out += ",\n  \"latency_breakdown\": {\"emit_spans\": ";
  AppendUint(&out, attribution.emit_spans);
  out += ", \"windows_attributed\": ";
  AppendUint(&out, attribution.windows.size());
  out += ", \"unattributed\": ";
  AppendUint(&out, attribution.unattributed);
  out += ", \"mean\": ";
  AppendComponents(&out, attribution.mean);
  out += ", \"windows\": [";
  for (size_t i = 0; i < attribution.windows.size(); ++i) {
    const WindowAttribution& w = attribution.windows[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"window\": ";
    AppendUint(&out, w.window_index);
    out += ", \"root\": ";
    AppendUint(&out, w.root);
    out += ", \"critical_src\": ";
    AppendUint(&out, w.critical_src);
    out += ", \"corrected\": ";
    out += w.corrected ? "true" : "false";
    out += ", \"exact\": ";
    out += w.exact ? "true" : "false";
    out += ", \"components\": ";
    AppendComponents(&out, w.components);
    out += "}";
  }
  out += attribution.windows.empty() ? "]}" : "\n  ]}";

  // Schema v4: per-window provenance records + accuracy attribution and
  // their run-level summary. Always present (empty arrays and a
  // disabled-and-zero summary when the run collected none), so consumers
  // need no existence check.
  out += ",\n  \"provenance_summary\": ";
  out += ProvenanceSummaryJson(report.provenance);
  out += ",\n  \"provenance\": ";
  out += ProvenanceJson(log.provenance);

  // Schema v5: the multi-query serving roll-up (per-query window counts +
  // per-tenant accounting). Always present — disabled-and-empty for
  // single-query runs — so consumers need no existence check.
  out += ",\n  \"serving\": ";
  out += ServingSummaryJson(report.serving);
  out += ",\n  \"queries\": [";
  for (size_t i = 0; i < report.query_results.size(); ++i) {
    const QueryRunResult& q = report.query_results[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"id\": ";
    AppendUint(&out, q.query_id);
    out += ", \"tenant\": ";
    AppendEscaped(&out, q.tenant);
    out += ", \"spec\": ";
    AppendEscaped(&out, q.spec);
    out += ", \"start_pane\": ";
    AppendUint(&out, q.start_pane);
    out += ", \"end_pane\": ";
    AppendUint(&out, q.end_pane);
    out += ", \"activated\": ";
    out += q.activated ? "true" : "false";
    out += ", \"windows\": ";
    AppendUint(&out, q.windows.size());
    out += "}";
  }
  out += report.query_results.empty() ? "]" : "\n  ]";

  // Schema v6: the watchdog alert section. Always present — disabled and
  // empty when no watchdog ran — so consumers need no existence check.
  out += ",\n  \"alerts\": {\"enabled\": ";
  out += log.alerts_enabled ? "true" : "false";
  out += ", \"fired\": ";
  AppendUint(&out, log.alerts.size());
  size_t active_alerts = 0;
  for (const Alert& a : log.alerts) {
    if (a.resolved_at_nanos == 0) ++active_alerts;
  }
  out += ", \"active\": ";
  AppendUint(&out, active_alerts);
  out += ", \"items\": [";
  for (size_t i = 0; i < log.alerts.size(); ++i) {
    const Alert& a = log.alerts[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    out += "\"kind\": ";
    AppendEscaped(&out, std::string(AlertKindToString(a.kind)));
    out += ", \"subject\": ";
    AppendEscaped(&out, a.subject);
    out += ", \"fired_at_ms\": ";
    AppendDouble(&out, static_cast<double>(a.fired_at_nanos - origin) / 1e6);
    out += ", \"resolved_at_ms\": ";
    if (a.resolved_at_nanos == 0) {
      out += "null";
    } else {
      AppendDouble(&out,
                   static_cast<double>(a.resolved_at_nanos - origin) / 1e6);
    }
    out += ", \"observed\": ";
    AppendDouble(&out, a.observed);
    out += ", \"threshold\": ";
    AppendDouble(&out, a.threshold);
    out += ", \"message\": ";
    AppendEscaped(&out, a.message);
    out += "}";
  }
  out += log.alerts.empty() ? "]}" : "\n  ]}";

  // Schema v7: self-metering of the observability plane. Always present
  // (zeroed when no sampler ran) and deliberately flat — wall-clock
  // fields are scrubbed by byte-identity gates, which is easiest when the
  // section has no nested objects.
  const TelemetryLog::ObsSelf& self = log.obs_self;
  out += ",\n  \"obs_self\": {\"enabled\": ";
  out += self.enabled ? "true" : "false";
  out += ", \"sampler_ticks\": ";
  AppendUint(&out, self.sampler.ticks);
  out += ", \"sampler_tick_mean_nanos\": ";
  AppendDouble(&out, self.sampler.tick_nanos_mean);
  out += ", \"sampler_tick_p50_nanos\": ";
  AppendDouble(&out, self.sampler.tick_nanos_p50);
  out += ", \"sampler_tick_p99_nanos\": ";
  AppendDouble(&out, self.sampler.tick_nanos_p99);
  out += ", \"sampler_tick_max_nanos\": ";
  AppendDouble(&out, self.sampler.tick_nanos_max);
  out += ", \"tracker_bytes\": ";
  AppendUint(&out, self.sampler.tracker_bytes);
  out += ", \"scrapes\": ";
  AppendUint(&out, self.scrapes);
  out += ", \"scrape_nanos_mean\": ";
  AppendDouble(&out, self.scrape_nanos_mean);
  out += ", \"scrape_nanos_p99\": ";
  AppendDouble(&out, self.scrape_nanos_p99);
  out += ", \"exposition_bytes\": ";
  AppendUint(&out, self.exposition_bytes);
  out += ", \"spans_dropped\": ";
  AppendUint(&out, log.spans_dropped);
  out += ", \"hops_dropped\": ";
  AppendUint(&out, log.hops_dropped);
  out += ", \"node_detail_limit\": ";
  AppendUint(&out, self.node_detail_limit);
  out += ", \"top_k\": ";
  AppendUint(&out, self.top_k);
  out += "}";
  out += "\n}\n";
  return out;
}

Status WriteTelemetryJson(const std::string& path, const RunReport& report,
                          const TelemetryLog& log) {
  if (log.spans_dropped > 0 || log.hops_dropped > 0) {
    DECO_LOG(WARNING) << "telemetry export to " << path << " is truncated: "
                      << log.spans_dropped << " spans and "
                      << log.hops_dropped
                      << " hop records were dropped at capacity; rerun with "
                         "a larger --trace_capacity";
  }
  return WriteFile(path, TelemetryToJson(report, log));
}

Status WriteSamplesCsv(const std::string& path, const TelemetryLog& log) {
  const TimeNanos origin = SeriesOrigin(log);
  std::string out =
      "t_ms,node,name,queue_depth,messages_sent,bytes_sent,"
      "messages_received,bytes_received,bytes_per_sec\n";
  for (size_t i = 0; i < log.samples.size(); ++i) {
    const TelemetrySample& sample = log.samples[i];
    const TelemetrySample* prev = i > 0 ? &log.samples[i - 1] : nullptr;
    for (size_t n = 0; n < sample.nodes.size(); ++n) {
      const NodeSample& node = sample.nodes[n];
      AppendDouble(&out, MillisSince(sample.t_nanos, origin));
      out += ",";
      AppendUint(&out, node.node);
      out += ",";
      AppendCsvField(&out, node.name);
      out += ",";
      AppendUint(&out, node.queue_depth);
      out += ",";
      AppendUint(&out, node.messages_sent);
      out += ",";
      AppendUint(&out, node.bytes_sent);
      out += ",";
      AppendUint(&out, node.messages_received);
      out += ",";
      AppendUint(&out, node.bytes_received);
      out += ",";
      const NodeSample* prev_node = FindNode(prev, node.node);
      if (prev_node != nullptr) {
        AppendDouble(&out, Rate(prev_node->bytes_sent, node.bytes_sent,
                                prev->t_nanos, sample.t_nanos));
      }  // no prior record of this node — leave the rate field empty
      out += "\n";
    }
  }
  return WriteFile(path, out);
}

Status WriteSpansCsv(const std::string& path, const TelemetryLog& log) {
  const TimeNanos origin = SeriesOrigin(log);
  std::string out = "t_ms,node,phase,window,value,msg_id\n";
  for (const TraceEvent& span : log.spans) {
    AppendDouble(&out, MillisSince(span.t_nanos, origin));
    out += ",";
    AppendUint(&out, span.node);
    out += ",";
    out += TracePhaseToString(span.phase);
    out += ",";
    AppendUint(&out, span.window_index);
    out += ",";
    AppendInt(&out, span.value);
    out += ",";
    AppendUint(&out, span.msg_id);
    out += "\n";
  }
  return WriteFile(path, out);
}

}  // namespace deco
