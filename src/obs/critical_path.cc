#include "obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace deco {

LatencyComponents& LatencyComponents::operator+=(
    const LatencyComponents& other) {
  local_compute_nanos += other.local_compute_nanos;
  correction_nanos += other.correction_nanos;
  shaping_nanos += other.shaping_nanos;
  link_nanos += other.link_nanos;
  queue_nanos += other.queue_nanos;
  root_merge_nanos += other.root_merge_nanos;
  total_nanos += other.total_nanos;
  return *this;
}

namespace {

// Hops a receiving node saw, sorted by dequeue time (for the heuristic
// latest-arrival lookup when an emit span carries no causal id).
struct InboundHops {
  std::vector<const HopRecord*> by_dequeue;
};

const HopRecord* LatestHopBefore(const InboundHops& inbound,
                                 TimeNanos deadline) {
  // Largest dequeue_nanos <= deadline.
  auto it = std::upper_bound(
      inbound.by_dequeue.begin(), inbound.by_dequeue.end(), deadline,
      [](TimeNanos t, const HopRecord* h) { return t < h->dequeue_nanos; });
  if (it == inbound.by_dequeue.begin()) return nullptr;
  return *std::prev(it);
}

}  // namespace

LatencyAttribution AttributeWindowLatency(const TelemetryLog& log) {
  LatencyAttribution out;

  std::unordered_map<uint64_t, const HopRecord*> hop_by_id;
  hop_by_id.reserve(log.hops.size());
  std::unordered_map<NodeId, InboundHops> inbound;
  for (const HopRecord& hop : log.hops) {
    hop_by_id.emplace(hop.msg_id, &hop);
    inbound[hop.dst].by_dequeue.push_back(&hop);
  }
  for (auto& [node, hops] : inbound) {
    std::stable_sort(hops.by_dequeue.begin(), hops.by_dequeue.end(),
                     [](const HopRecord* a, const HopRecord* b) {
                       return a->dequeue_nanos < b->dequeue_nanos;
                     });
  }

  // Earliest window-open span per (node, window): when the source started
  // aggregating that local window.
  std::map<std::pair<NodeId, uint64_t>, TimeNanos> window_open;
  // Correct spans per (node, window), in record order (ascending time for a
  // single-threaded root).
  std::map<std::pair<NodeId, uint64_t>, std::vector<TimeNanos>> corrects;
  for (const TraceEvent& span : log.spans) {
    const std::pair<NodeId, uint64_t> key{span.node, span.window_index};
    if (span.phase == TracePhase::kWindowOpen) {
      auto [it, inserted] = window_open.emplace(key, span.t_nanos);
      if (!inserted && span.t_nanos < it->second) it->second = span.t_nanos;
    } else if (span.phase == TracePhase::kCorrect) {
      corrects[key].push_back(span.t_nanos);
    }
  }

  for (const TraceEvent& span : log.spans) {
    if (span.phase != TracePhase::kEmit) continue;
    ++out.emit_spans;

    // Critical hop: exact via the causal id, else the last message the
    // emitting node dequeued before the emit.
    const HopRecord* hop = nullptr;
    bool exact = false;
    if (span.msg_id != 0) {
      auto it = hop_by_id.find(span.msg_id);
      if (it != hop_by_id.end()) {
        hop = it->second;
        exact = true;
      }
    }
    if (hop == nullptr) {
      auto it = inbound.find(span.node);
      if (it != inbound.end()) hop = LatestHopBefore(it->second, span.t_nanos);
    }
    if (hop == nullptr) {
      ++out.unattributed;
      continue;
    }

    WindowAttribution attr;
    attr.window_index = span.window_index;
    attr.root = span.node;
    attr.critical_src = hop->src;
    attr.msg_id = exact ? hop->msg_id : 0;
    attr.exact = exact;
    attr.corrected = hop->type == MessageType::kCorrectionResult;

    // Anchor of the attributed interval (see file comment).
    TimeNanos anchor = hop->enqueue_nanos;
    bool anchored_on_correction = false;
    if (attr.corrected) {
      auto it = corrects.find({span.node, span.window_index});
      if (it != corrects.end()) {
        // Latest correction that started before the critical result was
        // sent back: that round-trip is what delayed this emit.
        TimeNanos best = 0;
        for (TimeNanos t : it->second) {
          if (t <= hop->enqueue_nanos && t > best) best = t;
        }
        if (best > 0) {
          anchor = best;
          anchored_on_correction = true;
        }
      }
    }
    if (!anchored_on_correction) {
      auto it = window_open.find({hop->src, hop->window_index});
      if (it != window_open.end() && it->second <= hop->enqueue_nanos) {
        anchor = it->second;
      }
    }

    // Telescoping decomposition over monotone-clamped timeline points:
    // adjacent differences are each >= 0 and sum exactly to p5 - p0.
    const double p0 = static_cast<double>(anchor);
    double p1 = static_cast<double>(hop->enqueue_nanos);
    double p2 = p1 + static_cast<double>(hop->shaping_delay_nanos);
    double p3 = static_cast<double>(hop->deliver_nanos);
    double p4 = static_cast<double>(hop->dequeue_nanos);
    double p5 = static_cast<double>(span.t_nanos);
    p1 = std::max(p1, p0);
    p2 = std::max(p2, p1);
    p3 = std::max(p3, p2);
    p4 = std::max(p4, p3);
    p5 = std::max(p5, p4);

    LatencyComponents& c = attr.components;
    if (anchored_on_correction) {
      c.correction_nanos = p1 - p0;
    } else {
      c.local_compute_nanos = p1 - p0;
    }
    c.shaping_nanos = p2 - p1;
    c.link_nanos = p3 - p2;
    c.queue_nanos = p4 - p3;
    c.root_merge_nanos = p5 - p4;
    c.total_nanos = p5 - p0;
    out.windows.push_back(attr);
  }

  std::stable_sort(out.windows.begin(), out.windows.end(),
                   [](const WindowAttribution& a, const WindowAttribution& b) {
                     return a.window_index < b.window_index;
                   });
  if (!out.windows.empty()) {
    for (const WindowAttribution& w : out.windows) out.mean += w.components;
    const double n = static_cast<double>(out.windows.size());
    out.mean.local_compute_nanos /= n;
    out.mean.correction_nanos /= n;
    out.mean.shaping_nanos /= n;
    out.mean.link_nanos /= n;
    out.mean.queue_nanos /= n;
    out.mean.root_merge_nanos /= n;
    out.mean.total_nanos /= n;
  }
  return out;
}

std::string FormatLatencyBreakdown(const LatencyAttribution& attribution) {
  const LatencyComponents& m = attribution.mean;
  const double total = m.total_nanos > 0 ? m.total_nanos : 1.0;
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "windows=%zu emit_spans=%zu unattributed=%zu "
                "mean_total=%.3f ms\n",
                attribution.windows.size(), attribution.emit_spans,
                attribution.unattributed, m.total_nanos / 1e6);
  out += line;
  const struct {
    const char* name;
    double nanos;
  } rows[] = {
      {"local_compute", m.local_compute_nanos},
      {"correction", m.correction_nanos},
      {"shaping", m.shaping_nanos},
      {"link", m.link_nanos},
      {"queue", m.queue_nanos},
      {"root_merge", m.root_merge_nanos},
  };
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "  %-14s %12.3f ms  %5.1f%%\n",
                  row.name, row.nanos / 1e6, 100.0 * row.nanos / total);
    out += line;
  }
  return out;
}

}  // namespace deco
