#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chaos/schedule.h"
#include "common/clock.h"
#include "net/fabric.h"

/// \file controller.h
/// \brief Actor that applies a `ChaosSchedule` to a live `NetworkFabric`.
///
/// `Prepare` compiles the schedule into a time-sorted action list: each
/// duration-style fault expands into an apply action plus a restore action
/// `duration_nanos` later, and targets are resolved to NodeIds against the
/// fabric's registered names. `Start` then runs a dedicated thread that
/// fires actions at their offsets from the start instant; alternatively a
/// deterministic test drives `ApplyDue(offset)` by hand with a
/// `ManualClock` and never starts the thread.
///
/// Every fired action is recorded in an audit log. `ChaosAuditEntry::
/// Describe()` deliberately excludes wall-clock time so two runs of the
/// same schedule produce byte-identical audit transcripts (the determinism
/// contract chaos tests assert).

namespace deco {

/// \brief One fired chaos action.
struct ChaosAuditEntry {
  TimeNanos scheduled_at = 0;    ///< Schedule offset the action was due at.
  TimeNanos fired_at_nanos = 0;  ///< Clock reading when it actually fired.
  FaultKind kind = FaultKind::kCrash;
  bool is_restore = false;  ///< True for the revert half of a duration fault.
  std::string target;
  std::string detail;  ///< e.g. "drop_probability=0.5 on 4 links".

  /// \brief Deterministic one-line rendering (no wall-clock time).
  std::string Describe() const;
};

/// \brief Applies scheduled faults to the fabric and records an audit log.
///
/// Thread-safety: `Prepare`/`AddRateHandle` are setup-phase calls; once
/// `Start` has been called only `Stop`, `ApplyDue` (internally), and the
/// const accessors may be used concurrently.
class ChaosController {
 public:
  /// \param fabric fabric to mutate; not owned, must outlive the controller
  /// \param clock time source for firing offsets; not owned
  ChaosController(NetworkFabric* fabric, Clock* clock);
  ~ChaosController();

  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  /// \brief Registers the ingest-rate multiplier of a node, written by
  /// `kRateSurge` events targeting `node_name`. Call before `Prepare`.
  void AddRateHandle(const std::string& node_name,
                     std::shared_ptr<std::atomic<double>> handle);

  /// \brief Validates the schedule, resolves targets against the fabric's
  /// registered node names, and compiles the action list. Returns
  /// InvalidArgument for unknown targets or a surge target without a rate
  /// handle.
  Status Prepare(const ChaosSchedule& schedule);

  /// \brief Deterministic simulation mode: `Start` registers every compiled
  /// action as a timer event on `sim`'s queue instead of spawning the
  /// firing thread, so faults land at exact virtual offsets and in a
  /// reproducible order relative to all message deliveries. Call before
  /// `Start`.
  void SetSimScheduler(SimScheduler* sim) { sim_ = sim; }

  /// \brief Starts the firing thread (or, in sim mode, schedules the
  /// actions as timer events); offsets are measured from this call. No-op
  /// for an empty action list.
  Status Start();

  /// \brief Stops the firing thread and joins it; pending future actions
  /// are abandoned (they stay unfired in the audit log). Safe to call
  /// twice or without `Start`.
  void Stop();

  /// \brief Applies every not-yet-applied action with offset <= `offset`,
  /// in schedule order. This is the deterministic driver used by tests
  /// with a `ManualClock`; the firing thread calls it internally too.
  Status ApplyDue(TimeNanos offset);

  /// \brief Copy of the audit log so far.
  std::vector<ChaosAuditEntry> AuditLog() const;

  /// \brief Number of actions compiled by `Prepare` (applies + restores).
  size_t action_count() const { return actions_.size(); }

  /// \brief Actions fired so far.
  size_t fired_count() const {
    return next_action_.load(std::memory_order_acquire);
  }

 private:
  /// One compiled action: either the apply half or the restore half of a
  /// `FaultEvent`.
  struct Action {
    TimeNanos at = 0;
    FaultKind kind = FaultKind::kCrash;
    bool is_restore = false;
    NodeId node = 0;
    size_t event_id = 0;  // index of the source event in the schedule
    std::string target;
    FaultEvent event;  // parameters (drop prob, latency, factor)
  };

  Status ApplyAction(const Action& action, TimeNanos fired_at);
  void RunLoop();

  /// Rewrites one shaping field on every link touching `node`, returning a
  /// human-readable summary for the audit log. `restore` puts back the
  /// values saved by the matching apply.
  Status ApplyLinkFault(const Action& action, std::string* detail);

  NetworkFabric* fabric_;
  Clock* clock_;
  SimScheduler* sim_ = nullptr;

  std::map<std::string, std::shared_ptr<std::atomic<double>>> rate_handles_;

  std::vector<Action> actions_;  // time-sorted; immutable after Prepare.
  std::atomic<size_t> next_action_{0};

  // Saved per-link shaping values, keyed by source event id so the restore
  // half puts back exactly what its apply displaced.
  std::map<size_t, std::map<std::pair<NodeId, NodeId>, LinkConfig>> saved_;

  mutable std::mutex mu_;  // guards audit_, saved_, and action application
  std::vector<ChaosAuditEntry> audit_;

  std::thread thread_;
  std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  TimeNanos start_nanos_ = 0;
};

}  // namespace deco
