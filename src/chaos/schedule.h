#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"

/// \file schedule.h
/// \brief Declarative, seeded fault timelines for chaos experiments.
///
/// A `ChaosSchedule` is a list of `FaultEvent`s, each anchored at an offset
/// from experiment start. Schedules are pure data: building one has no side
/// effects, and the same schedule replayed against the same fabric seed
/// yields the same audit log and the same per-link drop counts, which is
/// what makes chaos runs reproducible (the D-P2P-Sim style of protocol
/// testing, see DESIGN.md §6).
///
/// Schedules can be built fluently:
///
///     ChaosSchedule s;
///     s.Crash("local-1", 300 * kNanosPerMilli)
///      .Restart("local-1", 800 * kNanosPerMilli);
///
/// or parsed from the compact spec grammar used by `deco_run --chaos=`:
///
///     events    := event ("," event)*
///     event     := kind ":" target "@" time ["+" duration] ["=" value]
///     kind      := "crash" | "restart" | "drop" | "lag" | "part" | "surge"
///     time      := <number> ["ns" | "us" | "ms" | "s"]     (default ms)
///
/// e.g. `crash:local-1@300ms,restart:local-1@800ms` or
/// `drop:local-0@100ms+200ms=0.5,lag:root@1s+500ms=20ms,surge:local-2@200+400=3`.
/// `value` is the drop probability for `drop`, the added one-way latency
/// (time syntax) for `lag`, and the rate multiplier for `surge`.

namespace deco {

/// \brief What kind of fault an event injects.
enum class FaultKind {
  kCrash,         ///< Node goes down (`SetNodeDown(true)`).
  kRestart,       ///< Node comes back (`SetNodeDown(false)`, mailbox purged).
  kDropBurst,     ///< Probabilistic loss on all links touching the target.
  kLatencySpike,  ///< Added one-way latency on all links touching the target.
  kPartition,     ///< All links touching the target blocked (hard partition).
  kRateSurge,     ///< Target's ingest rate multiplied by `rate_factor`.
};

/// \brief Spec-grammar keyword of a kind ("crash", "drop", ...).
const char* FaultKindName(FaultKind kind);

/// \brief One scheduled fault. Duration-style faults (drop burst, latency
/// spike, partition, rate surge) are automatically reverted
/// `duration_nanos` after they fire; `duration_nanos == 0` means they hold
/// until the end of the run. Crash/restart are instantaneous state flips
/// and ignore the duration.
struct FaultEvent {
  TimeNanos at_nanos = 0;       ///< Offset from experiment start.
  FaultKind kind = FaultKind::kCrash;
  std::string target;           ///< Node name, e.g. "local-1" or "root".
  TimeNanos duration_nanos = 0;
  double drop_probability = 1.0;  ///< kDropBurst only.
  TimeNanos latency_nanos = 0;    ///< kLatencySpike only.
  double rate_factor = 1.0;       ///< kRateSurge only.

  /// \brief Spec-grammar rendering of this event (inverse of `Parse`).
  std::string ToSpec() const;
};

/// \brief A seeded timeline of fault events.
class ChaosSchedule {
 public:
  /// Fluent builders; `at` is the offset from experiment start.
  ChaosSchedule& Crash(const std::string& target, TimeNanos at);
  ChaosSchedule& Restart(const std::string& target, TimeNanos at);
  ChaosSchedule& DropBurst(const std::string& target, TimeNanos at,
                           TimeNanos duration, double probability);
  ChaosSchedule& LatencySpike(const std::string& target, TimeNanos at,
                              TimeNanos duration, TimeNanos latency);
  ChaosSchedule& Partition(const std::string& target, TimeNanos at,
                           TimeNanos duration);
  ChaosSchedule& RateSurge(const std::string& target, TimeNanos at,
                           TimeNanos duration, double factor);
  ChaosSchedule& Add(FaultEvent event);
  ChaosSchedule& WithSeed(uint64_t seed);

  /// \brief Parses the compact spec grammar (see file comment). Returns
  /// InvalidArgument with a pointer at the offending token on bad input.
  static Result<ChaosSchedule> Parse(const std::string& spec);

  /// \brief Spec-grammar rendering; `Parse(ToSpecString())` round-trips.
  std::string ToSpecString() const;

  /// \brief Structural checks that need no fabric: non-negative times,
  /// probabilities in [0, 1], positive rate factors, non-empty targets, and
  /// crash/restart alternation per target (no restart of a never-crashed
  /// node, no double crash).
  Status Validate() const;

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  uint64_t seed() const { return seed_; }

 private:
  std::vector<FaultEvent> events_;
  uint64_t seed_ = 0;
};

}  // namespace deco
