#include "chaos/schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

namespace deco {
namespace {

/// Formats nanoseconds in the largest unit that divides them exactly, so
/// `ToSpec` output stays human-readable ("300ms", not "300000000ns").
std::string FormatTime(TimeNanos nanos) {
  std::ostringstream out;
  if (nanos != 0 && nanos % kNanosPerSecond == 0) {
    out << nanos / kNanosPerSecond << "s";
  } else if (nanos != 0 && nanos % kNanosPerMilli == 0) {
    out << nanos / kNanosPerMilli << "ms";
  } else if (nanos != 0 && nanos % 1000 == 0) {
    out << nanos / 1000 << "us";
  } else {
    out << nanos << "ns";
  }
  return out.str();
}

/// Trims a trailing-zero double ("0.5", "3", "0.25").
std::string FormatValue(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

Result<TimeNanos> ParseTime(const std::string& token) {
  if (token.empty()) return Status::InvalidArgument("empty time");
  size_t pos = 0;
  double magnitude = 0.0;
  try {
    magnitude = std::stod(token, &pos);
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad time '" + token + "'");
  }
  const std::string unit = token.substr(pos);
  double scale;
  if (unit.empty() || unit == "ms") {
    scale = static_cast<double>(kNanosPerMilli);
  } else if (unit == "ns") {
    scale = 1.0;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "s") {
    scale = static_cast<double>(kNanosPerSecond);
  } else {
    return Status::InvalidArgument("bad time unit '" + unit + "'");
  }
  const double nanos = magnitude * scale;
  if (nanos < 0) return Status::InvalidArgument("negative time '" + token + "'");
  return static_cast<TimeNanos>(std::llround(nanos));
}

Result<double> ParseNumber(const std::string& token) {
  size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &pos);
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad number '" + token + "'");
  }
  if (pos != token.size()) {
    return Status::InvalidArgument("bad number '" + token + "'");
  }
  return v;
}

Result<FaultKind> ParseKind(const std::string& token) {
  if (token == "crash") return FaultKind::kCrash;
  if (token == "restart") return FaultKind::kRestart;
  if (token == "drop") return FaultKind::kDropBurst;
  if (token == "lag") return FaultKind::kLatencySpike;
  if (token == "part") return FaultKind::kPartition;
  if (token == "surge") return FaultKind::kRateSurge;
  return Status::InvalidArgument("unknown fault kind '" + token + "'");
}

Result<FaultEvent> ParseEvent(const std::string& token) {
  const size_t colon = token.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("event '" + token + "' lacks ':'");
  }
  FaultEvent event;
  DECO_ASSIGN_OR_RETURN(event.kind, ParseKind(token.substr(0, colon)));

  const size_t at = token.find('@', colon + 1);
  if (at == std::string::npos) {
    return Status::InvalidArgument("event '" + token + "' lacks '@<time>'");
  }
  event.target = token.substr(colon + 1, at - colon - 1);
  if (event.target.empty()) {
    return Status::InvalidArgument("event '" + token + "' has empty target");
  }

  std::string rest = token.substr(at + 1);
  std::string value_str;
  const size_t eq = rest.find('=');
  if (eq != std::string::npos) {
    value_str = rest.substr(eq + 1);
    rest = rest.substr(0, eq);
  }
  std::string duration_str;
  const size_t plus = rest.find('+');
  if (plus != std::string::npos) {
    duration_str = rest.substr(plus + 1);
    rest = rest.substr(0, plus);
  }

  DECO_ASSIGN_OR_RETURN(event.at_nanos, ParseTime(rest));
  if (!duration_str.empty()) {
    DECO_ASSIGN_OR_RETURN(event.duration_nanos, ParseTime(duration_str));
  }
  if (!value_str.empty()) {
    switch (event.kind) {
      case FaultKind::kDropBurst: {
        DECO_ASSIGN_OR_RETURN(event.drop_probability, ParseNumber(value_str));
        break;
      }
      case FaultKind::kLatencySpike: {
        DECO_ASSIGN_OR_RETURN(event.latency_nanos, ParseTime(value_str));
        break;
      }
      case FaultKind::kRateSurge: {
        DECO_ASSIGN_OR_RETURN(event.rate_factor, ParseNumber(value_str));
        break;
      }
      default:
        return Status::InvalidArgument("event '" + token +
                                       "': '=' value not allowed for " +
                                       std::string(FaultKindName(event.kind)));
    }
  } else if (event.kind == FaultKind::kLatencySpike) {
    return Status::InvalidArgument("event '" + token +
                                   "': lag requires '=<latency>'");
  } else if (event.kind == FaultKind::kRateSurge) {
    return Status::InvalidArgument("event '" + token +
                                   "': surge requires '=<factor>'");
  }
  return event;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kDropBurst: return "drop";
    case FaultKind::kLatencySpike: return "lag";
    case FaultKind::kPartition: return "part";
    case FaultKind::kRateSurge: return "surge";
  }
  return "?";
}

std::string FaultEvent::ToSpec() const {
  std::ostringstream out;
  out << FaultKindName(kind) << ":" << target << "@" << FormatTime(at_nanos);
  if (duration_nanos > 0) out << "+" << FormatTime(duration_nanos);
  switch (kind) {
    case FaultKind::kDropBurst:
      out << "=" << FormatValue(drop_probability);
      break;
    case FaultKind::kLatencySpike:
      out << "=" << FormatTime(latency_nanos);
      break;
    case FaultKind::kRateSurge:
      out << "=" << FormatValue(rate_factor);
      break;
    default:
      break;
  }
  return out.str();
}

ChaosSchedule& ChaosSchedule::Crash(const std::string& target, TimeNanos at) {
  FaultEvent e;
  e.kind = FaultKind::kCrash;
  e.target = target;
  e.at_nanos = at;
  return Add(std::move(e));
}

ChaosSchedule& ChaosSchedule::Restart(const std::string& target,
                                      TimeNanos at) {
  FaultEvent e;
  e.kind = FaultKind::kRestart;
  e.target = target;
  e.at_nanos = at;
  return Add(std::move(e));
}

ChaosSchedule& ChaosSchedule::DropBurst(const std::string& target,
                                        TimeNanos at, TimeNanos duration,
                                        double probability) {
  FaultEvent e;
  e.kind = FaultKind::kDropBurst;
  e.target = target;
  e.at_nanos = at;
  e.duration_nanos = duration;
  e.drop_probability = probability;
  return Add(std::move(e));
}

ChaosSchedule& ChaosSchedule::LatencySpike(const std::string& target,
                                           TimeNanos at, TimeNanos duration,
                                           TimeNanos latency) {
  FaultEvent e;
  e.kind = FaultKind::kLatencySpike;
  e.target = target;
  e.at_nanos = at;
  e.duration_nanos = duration;
  e.latency_nanos = latency;
  return Add(std::move(e));
}

ChaosSchedule& ChaosSchedule::Partition(const std::string& target,
                                        TimeNanos at, TimeNanos duration) {
  FaultEvent e;
  e.kind = FaultKind::kPartition;
  e.target = target;
  e.at_nanos = at;
  e.duration_nanos = duration;
  return Add(std::move(e));
}

ChaosSchedule& ChaosSchedule::RateSurge(const std::string& target,
                                        TimeNanos at, TimeNanos duration,
                                        double factor) {
  FaultEvent e;
  e.kind = FaultKind::kRateSurge;
  e.target = target;
  e.at_nanos = at;
  e.duration_nanos = duration;
  e.rate_factor = factor;
  return Add(std::move(e));
}

ChaosSchedule& ChaosSchedule::Add(FaultEvent event) {
  events_.push_back(std::move(event));
  return *this;
}

ChaosSchedule& ChaosSchedule::WithSeed(uint64_t seed) {
  seed_ = seed;
  return *this;
}

Result<ChaosSchedule> ChaosSchedule::Parse(const std::string& spec) {
  ChaosSchedule schedule;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(start, end - start);
    if (!token.empty()) {
      DECO_ASSIGN_OR_RETURN(FaultEvent event, ParseEvent(token));
      schedule.Add(std::move(event));
    }
    start = end + 1;
  }
  DECO_RETURN_NOT_OK(schedule.Validate());
  return schedule;
}

std::string ChaosSchedule::ToSpecString() const {
  std::ostringstream out;
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out << ",";
    out << events_[i].ToSpec();
  }
  return out.str();
}

Status ChaosSchedule::Validate() const {
  // Crash/restart pairing is checked in schedule order per target: the
  // controller applies ties in list order, so the schedule's own order is
  // the semantics.
  std::map<std::string, bool> down;  // target -> currently crashed
  std::vector<const FaultEvent*> ordered;
  ordered.reserve(events_.size());
  for (const FaultEvent& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FaultEvent* a, const FaultEvent* b) {
                     return a->at_nanos < b->at_nanos;
                   });
  for (const FaultEvent* e : ordered) {
    if (e->target.empty()) {
      return Status::InvalidArgument("fault event has empty target");
    }
    if (e->at_nanos < 0 || e->duration_nanos < 0 || e->latency_nanos < 0) {
      return Status::InvalidArgument("fault event '" + e->ToSpec() +
                                     "' has a negative time");
    }
    switch (e->kind) {
      case FaultKind::kCrash:
        if (down[e->target]) {
          return Status::InvalidArgument("double crash of '" + e->target +
                                         "' at " + e->ToSpec());
        }
        down[e->target] = true;
        break;
      case FaultKind::kRestart:
        if (!down[e->target]) {
          return Status::InvalidArgument("restart of non-crashed '" +
                                         e->target + "' at " + e->ToSpec());
        }
        down[e->target] = false;
        break;
      case FaultKind::kDropBurst:
        if (e->drop_probability < 0.0 || e->drop_probability > 1.0) {
          return Status::InvalidArgument(
              "drop probability outside [0, 1] in '" + e->ToSpec() + "'");
        }
        break;
      case FaultKind::kRateSurge:
        if (e->rate_factor <= 0.0) {
          return Status::InvalidArgument("non-positive rate factor in '" +
                                         e->ToSpec() + "'");
        }
        break;
      default:
        break;
    }
  }
  return Status::OK();
}

}  // namespace deco
